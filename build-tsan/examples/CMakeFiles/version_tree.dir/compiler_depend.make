# Empty compiler generated dependencies file for version_tree.
# This may be replaced when dependencies are built.
