file(REMOVE_RECURSE
  "CMakeFiles/version_tree.dir/version_tree.cpp.o"
  "CMakeFiles/version_tree.dir/version_tree.cpp.o.d"
  "version_tree"
  "version_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
