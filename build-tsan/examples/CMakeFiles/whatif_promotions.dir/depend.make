# Empty dependencies file for whatif_promotions.
# This may be replaced when dependencies are built.
