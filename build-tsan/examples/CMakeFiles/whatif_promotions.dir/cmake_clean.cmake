file(REMOVE_RECURSE
  "CMakeFiles/whatif_promotions.dir/whatif_promotions.cpp.o"
  "CMakeFiles/whatif_promotions.dir/whatif_promotions.cpp.o.d"
  "whatif_promotions"
  "whatif_promotions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_promotions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
