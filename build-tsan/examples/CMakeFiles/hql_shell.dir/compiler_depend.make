# Empty compiler generated dependencies file for hql_shell.
# This may be replaced when dependencies are built.
