file(REMOVE_RECURSE
  "CMakeFiles/hql_shell.dir/hql_shell.cpp.o"
  "CMakeFiles/hql_shell.dir/hql_shell.cpp.o.d"
  "hql_shell"
  "hql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
