file(REMOVE_RECURSE
  "CMakeFiles/integrity_guard.dir/integrity_guard.cpp.o"
  "CMakeFiles/integrity_guard.dir/integrity_guard.cpp.o.d"
  "integrity_guard"
  "integrity_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrity_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
