# Empty compiler generated dependencies file for integrity_guard.
# This may be replaced when dependencies are built.
