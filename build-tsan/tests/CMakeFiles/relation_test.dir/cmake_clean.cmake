file(REMOVE_RECURSE
  "CMakeFiles/relation_test.dir/relation_test.cc.o"
  "CMakeFiles/relation_test.dir/relation_test.cc.o.d"
  "relation_test"
  "relation_test.pdb"
  "relation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
