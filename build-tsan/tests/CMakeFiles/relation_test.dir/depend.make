# Empty dependencies file for relation_test.
# This may be replaced when dependencies are built.
