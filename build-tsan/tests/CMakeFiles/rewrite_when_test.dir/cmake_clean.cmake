file(REMOVE_RECURSE
  "CMakeFiles/rewrite_when_test.dir/rewrite_when_test.cc.o"
  "CMakeFiles/rewrite_when_test.dir/rewrite_when_test.cc.o.d"
  "rewrite_when_test"
  "rewrite_when_test.pdb"
  "rewrite_when_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_when_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
