# Empty compiler generated dependencies file for rewrite_when_test.
# This may be replaced when dependencies are built.
