# Empty compiler generated dependencies file for filters_test.
# This may be replaced when dependencies are built.
