file(REMOVE_RECURSE
  "CMakeFiles/filters_test.dir/filters_test.cc.o"
  "CMakeFiles/filters_test.dir/filters_test.cc.o.d"
  "filters_test"
  "filters_test.pdb"
  "filters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
