# Empty dependencies file for reduce_test.
# This may be replaced when dependencies are built.
