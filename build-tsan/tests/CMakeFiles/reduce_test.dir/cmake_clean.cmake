file(REMOVE_RECURSE
  "CMakeFiles/reduce_test.dir/reduce_test.cc.o"
  "CMakeFiles/reduce_test.dir/reduce_test.cc.o.d"
  "reduce_test"
  "reduce_test.pdb"
  "reduce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
