# Empty compiler generated dependencies file for chaos_failpoint_test.
# This may be replaced when dependencies are built.
