file(REMOVE_RECURSE
  "CMakeFiles/chaos_failpoint_test.dir/chaos_failpoint_test.cc.o"
  "CMakeFiles/chaos_failpoint_test.dir/chaos_failpoint_test.cc.o.d"
  "chaos_failpoint_test"
  "chaos_failpoint_test.pdb"
  "chaos_failpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_failpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
