# Empty dependencies file for state_when_test.
# This may be replaced when dependencies are built.
