file(REMOVE_RECURSE
  "CMakeFiles/state_when_test.dir/state_when_test.cc.o"
  "CMakeFiles/state_when_test.dir/state_when_test.cc.o.d"
  "state_when_test"
  "state_when_test.pdb"
  "state_when_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_when_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
