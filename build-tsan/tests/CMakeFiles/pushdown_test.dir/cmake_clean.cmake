file(REMOVE_RECURSE
  "CMakeFiles/pushdown_test.dir/pushdown_test.cc.o"
  "CMakeFiles/pushdown_test.dir/pushdown_test.cc.o.d"
  "pushdown_test"
  "pushdown_test.pdb"
  "pushdown_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushdown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
