# Empty dependencies file for pushdown_test.
# This may be replaced when dependencies are built.
