file(REMOVE_RECURSE
  "CMakeFiles/join_kernel_test.dir/join_kernel_test.cc.o"
  "CMakeFiles/join_kernel_test.dir/join_kernel_test.cc.o.d"
  "join_kernel_test"
  "join_kernel_test.pdb"
  "join_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
