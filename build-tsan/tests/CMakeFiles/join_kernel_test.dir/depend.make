# Empty dependencies file for join_kernel_test.
# This may be replaced when dependencies are built.
