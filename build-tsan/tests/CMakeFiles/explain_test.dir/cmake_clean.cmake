file(REMOVE_RECURSE
  "CMakeFiles/explain_test.dir/explain_test.cc.o"
  "CMakeFiles/explain_test.dir/explain_test.cc.o.d"
  "explain_test"
  "explain_test.pdb"
  "explain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
