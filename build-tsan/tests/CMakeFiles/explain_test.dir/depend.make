# Empty dependencies file for explain_test.
# This may be replaced when dependencies are built.
