# Empty compiler generated dependencies file for alternatives_test.
# This may be replaced when dependencies are built.
