file(REMOVE_RECURSE
  "CMakeFiles/alternatives_test.dir/alternatives_test.cc.o"
  "CMakeFiles/alternatives_test.dir/alternatives_test.cc.o.d"
  "alternatives_test"
  "alternatives_test.pdb"
  "alternatives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alternatives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
