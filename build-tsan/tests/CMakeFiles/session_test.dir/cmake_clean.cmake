file(REMOVE_RECURSE
  "CMakeFiles/session_test.dir/session_test.cc.o"
  "CMakeFiles/session_test.dir/session_test.cc.o.d"
  "session_test"
  "session_test.pdb"
  "session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
