# Empty dependencies file for session_test.
# This may be replaced when dependencies are built.
