# Empty compiler generated dependencies file for aggregate_test.
# This may be replaced when dependencies are built.
