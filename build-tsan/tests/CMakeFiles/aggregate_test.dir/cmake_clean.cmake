file(REMOVE_RECURSE
  "CMakeFiles/aggregate_test.dir/aggregate_test.cc.o"
  "CMakeFiles/aggregate_test.dir/aggregate_test.cc.o.d"
  "aggregate_test"
  "aggregate_test.pdb"
  "aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
