file(REMOVE_RECURSE
  "CMakeFiles/governor_test.dir/governor_test.cc.o"
  "CMakeFiles/governor_test.dir/governor_test.cc.o.d"
  "governor_test"
  "governor_test.pdb"
  "governor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/governor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
