# Empty dependencies file for governor_test.
# This may be replaced when dependencies are built.
