# Empty compiler generated dependencies file for strategy_param_test.
# This may be replaced when dependencies are built.
