file(REMOVE_RECURSE
  "CMakeFiles/strategy_param_test.dir/strategy_param_test.cc.o"
  "CMakeFiles/strategy_param_test.dir/strategy_param_test.cc.o.d"
  "strategy_param_test"
  "strategy_param_test.pdb"
  "strategy_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
