# Empty compiler generated dependencies file for memo_test.
# This may be replaced when dependencies are built.
