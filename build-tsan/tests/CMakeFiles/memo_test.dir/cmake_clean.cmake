file(REMOVE_RECURSE
  "CMakeFiles/memo_test.dir/memo_test.cc.o"
  "CMakeFiles/memo_test.dir/memo_test.cc.o.d"
  "memo_test"
  "memo_test.pdb"
  "memo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
