# Empty dependencies file for subst_test.
# This may be replaced when dependencies are built.
