file(REMOVE_RECURSE
  "CMakeFiles/subst_test.dir/subst_test.cc.o"
  "CMakeFiles/subst_test.dir/subst_test.cc.o.d"
  "subst_test"
  "subst_test.pdb"
  "subst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
