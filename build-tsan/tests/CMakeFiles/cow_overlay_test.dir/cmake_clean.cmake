file(REMOVE_RECURSE
  "CMakeFiles/cow_overlay_test.dir/cow_overlay_test.cc.o"
  "CMakeFiles/cow_overlay_test.dir/cow_overlay_test.cc.o.d"
  "cow_overlay_test"
  "cow_overlay_test.pdb"
  "cow_overlay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cow_overlay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
