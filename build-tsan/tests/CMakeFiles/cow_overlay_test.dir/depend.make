# Empty dependencies file for cow_overlay_test.
# This may be replaced when dependencies are built.
