file(REMOVE_RECURSE
  "CMakeFiles/ast_test.dir/ast_test.cc.o"
  "CMakeFiles/ast_test.dir/ast_test.cc.o.d"
  "ast_test"
  "ast_test.pdb"
  "ast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
