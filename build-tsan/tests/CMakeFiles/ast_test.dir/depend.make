# Empty dependencies file for ast_test.
# This may be replaced when dependencies are built.
