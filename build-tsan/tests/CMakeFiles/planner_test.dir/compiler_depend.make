# Empty compiler generated dependencies file for planner_test.
# This may be replaced when dependencies are built.
