file(REMOVE_RECURSE
  "CMakeFiles/planner_test.dir/planner_test.cc.o"
  "CMakeFiles/planner_test.dir/planner_test.cc.o.d"
  "planner_test"
  "planner_test.pdb"
  "planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
