# Empty dependencies file for robustness_test.
# This may be replaced when dependencies are built.
