file(REMOVE_RECURSE
  "CMakeFiles/robustness_test.dir/robustness_test.cc.o"
  "CMakeFiles/robustness_test.dir/robustness_test.cc.o.d"
  "robustness_test"
  "robustness_test.pdb"
  "robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
