# Empty dependencies file for parser_test.
# This may be replaced when dependencies are built.
