file(REMOVE_RECURSE
  "CMakeFiles/parser_test.dir/parser_test.cc.o"
  "CMakeFiles/parser_test.dir/parser_test.cc.o.d"
  "parser_test"
  "parser_test.pdb"
  "parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
