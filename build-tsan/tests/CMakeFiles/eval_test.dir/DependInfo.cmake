
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/eval_test.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/opt/CMakeFiles/hql_opt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/eval/CMakeFiles/hql_eval.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hql/CMakeFiles/hql_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/parser/CMakeFiles/hql_parser.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/hql_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ast/CMakeFiles/hql_ast.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/hql_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/hql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
