file(REMOVE_RECURSE
  "CMakeFiles/view_test.dir/view_test.cc.o"
  "CMakeFiles/view_test.dir/view_test.cc.o.d"
  "view_test"
  "view_test.pdb"
  "view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
