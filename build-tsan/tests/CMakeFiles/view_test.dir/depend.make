# Empty dependencies file for view_test.
# This may be replaced when dependencies are built.
