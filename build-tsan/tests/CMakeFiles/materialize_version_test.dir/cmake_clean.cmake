file(REMOVE_RECURSE
  "CMakeFiles/materialize_version_test.dir/materialize_version_test.cc.o"
  "CMakeFiles/materialize_version_test.dir/materialize_version_test.cc.o.d"
  "materialize_version_test"
  "materialize_version_test.pdb"
  "materialize_version_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/materialize_version_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
