# Empty dependencies file for materialize_version_test.
# This may be replaced when dependencies are built.
