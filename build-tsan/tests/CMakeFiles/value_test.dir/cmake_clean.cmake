file(REMOVE_RECURSE
  "CMakeFiles/value_test.dir/value_test.cc.o"
  "CMakeFiles/value_test.dir/value_test.cc.o.d"
  "value_test"
  "value_test.pdb"
  "value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
