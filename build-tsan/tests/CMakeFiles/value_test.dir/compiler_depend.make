# Empty compiler generated dependencies file for value_test.
# This may be replaced when dependencies are built.
