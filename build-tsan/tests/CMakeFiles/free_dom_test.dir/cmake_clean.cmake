file(REMOVE_RECURSE
  "CMakeFiles/free_dom_test.dir/free_dom_test.cc.o"
  "CMakeFiles/free_dom_test.dir/free_dom_test.cc.o.d"
  "free_dom_test"
  "free_dom_test.pdb"
  "free_dom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/free_dom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
