# Empty dependencies file for free_dom_test.
# This may be replaced when dependencies are built.
