# Empty compiler generated dependencies file for enf_collapse_test.
# This may be replaced when dependencies are built.
