file(REMOVE_RECURSE
  "CMakeFiles/enf_collapse_test.dir/enf_collapse_test.cc.o"
  "CMakeFiles/enf_collapse_test.dir/enf_collapse_test.cc.o.d"
  "enf_collapse_test"
  "enf_collapse_test.pdb"
  "enf_collapse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enf_collapse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
