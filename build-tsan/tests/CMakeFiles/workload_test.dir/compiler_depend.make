# Empty compiler generated dependencies file for workload_test.
# This may be replaced when dependencies are built.
