file(REMOVE_RECURSE
  "CMakeFiles/workload_test.dir/workload_test.cc.o"
  "CMakeFiles/workload_test.dir/workload_test.cc.o.d"
  "workload_test"
  "workload_test.pdb"
  "workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
