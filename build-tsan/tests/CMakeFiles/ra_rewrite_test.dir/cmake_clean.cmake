file(REMOVE_RECURSE
  "CMakeFiles/ra_rewrite_test.dir/ra_rewrite_test.cc.o"
  "CMakeFiles/ra_rewrite_test.dir/ra_rewrite_test.cc.o.d"
  "ra_rewrite_test"
  "ra_rewrite_test.pdb"
  "ra_rewrite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ra_rewrite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
