# Empty compiler generated dependencies file for ra_rewrite_test.
# This may be replaced when dependencies are built.
