# Empty compiler generated dependencies file for exec_context_test.
# This may be replaced when dependencies are built.
