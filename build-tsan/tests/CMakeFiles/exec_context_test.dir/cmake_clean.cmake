file(REMOVE_RECURSE
  "CMakeFiles/exec_context_test.dir/exec_context_test.cc.o"
  "CMakeFiles/exec_context_test.dir/exec_context_test.cc.o.d"
  "exec_context_test"
  "exec_context_test.pdb"
  "exec_context_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
