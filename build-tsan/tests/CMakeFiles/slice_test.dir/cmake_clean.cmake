file(REMOVE_RECURSE
  "CMakeFiles/slice_test.dir/slice_test.cc.o"
  "CMakeFiles/slice_test.dir/slice_test.cc.o.d"
  "slice_test"
  "slice_test.pdb"
  "slice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
