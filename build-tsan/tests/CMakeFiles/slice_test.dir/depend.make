# Empty dependencies file for slice_test.
# This may be replaced when dependencies are built.
