# Empty dependencies file for scalar_expr_test.
# This may be replaced when dependencies are built.
