file(REMOVE_RECURSE
  "CMakeFiles/scalar_expr_test.dir/scalar_expr_test.cc.o"
  "CMakeFiles/scalar_expr_test.dir/scalar_expr_test.cc.o.d"
  "scalar_expr_test"
  "scalar_expr_test.pdb"
  "scalar_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalar_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
