# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for scalar_expr_test.
