file(REMOVE_RECURSE
  "CMakeFiles/xsub_delta_test.dir/xsub_delta_test.cc.o"
  "CMakeFiles/xsub_delta_test.dir/xsub_delta_test.cc.o.d"
  "xsub_delta_test"
  "xsub_delta_test.pdb"
  "xsub_delta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsub_delta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
