# Empty compiler generated dependencies file for xsub_delta_test.
# This may be replaced when dependencies are built.
