file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_planner_oracle.dir/bench_e8_planner_oracle.cc.o"
  "CMakeFiles/bench_e8_planner_oracle.dir/bench_e8_planner_oracle.cc.o.d"
  "bench_e8_planner_oracle"
  "bench_e8_planner_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_planner_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
