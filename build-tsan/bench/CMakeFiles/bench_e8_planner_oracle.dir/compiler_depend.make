# Empty compiler generated dependencies file for bench_e8_planner_oracle.
# This may be replaced when dependencies are built.
