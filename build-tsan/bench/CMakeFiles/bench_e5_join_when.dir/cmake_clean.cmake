file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_join_when.dir/bench_e5_join_when.cc.o"
  "CMakeFiles/bench_e5_join_when.dir/bench_e5_join_when.cc.o.d"
  "bench_e5_join_when"
  "bench_e5_join_when.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_join_when.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
