# Empty compiler generated dependencies file for bench_e5_join_when.
# This may be replaced when dependencies are built.
