# Empty compiler generated dependencies file for bench_e6_spectrum.
# This may be replaced when dependencies are built.
