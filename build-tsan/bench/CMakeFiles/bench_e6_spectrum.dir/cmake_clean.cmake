file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_spectrum.dir/bench_e6_spectrum.cc.o"
  "CMakeFiles/bench_e6_spectrum.dir/bench_e6_spectrum.cc.o.d"
  "bench_e6_spectrum"
  "bench_e6_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
