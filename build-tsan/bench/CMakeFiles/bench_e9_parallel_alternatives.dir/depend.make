# Empty dependencies file for bench_e9_parallel_alternatives.
# This may be replaced when dependencies are built.
