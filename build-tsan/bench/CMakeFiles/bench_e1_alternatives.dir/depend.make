# Empty dependencies file for bench_e1_alternatives.
# This may be replaced when dependencies are built.
