file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_alternatives.dir/bench_e1_alternatives.cc.o"
  "CMakeFiles/bench_e1_alternatives.dir/bench_e1_alternatives.cc.o.d"
  "bench_e1_alternatives"
  "bench_e1_alternatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
