file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_binding_removal.dir/bench_e3_binding_removal.cc.o"
  "CMakeFiles/bench_e3_binding_removal.dir/bench_e3_binding_removal.cc.o.d"
  "bench_e3_binding_removal"
  "bench_e3_binding_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_binding_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
