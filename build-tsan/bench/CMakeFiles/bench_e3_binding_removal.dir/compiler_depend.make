# Empty compiler generated dependencies file for bench_e3_binding_removal.
# This may be replaced when dependencies are built.
