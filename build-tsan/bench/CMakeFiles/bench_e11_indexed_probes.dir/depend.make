# Empty dependencies file for bench_e11_indexed_probes.
# This may be replaced when dependencies are built.
