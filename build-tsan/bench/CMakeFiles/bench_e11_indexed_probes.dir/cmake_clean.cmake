file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_indexed_probes.dir/bench_e11_indexed_probes.cc.o"
  "CMakeFiles/bench_e11_indexed_probes.dir/bench_e11_indexed_probes.cc.o.d"
  "bench_e11_indexed_probes"
  "bench_e11_indexed_probes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_indexed_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
