# Empty compiler generated dependencies file for bench_e2_composition.
# This may be replaced when dependencies are built.
