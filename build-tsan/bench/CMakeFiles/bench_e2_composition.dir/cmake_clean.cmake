file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_composition.dir/bench_e2_composition.cc.o"
  "CMakeFiles/bench_e2_composition.dir/bench_e2_composition.cc.o.d"
  "bench_e2_composition"
  "bench_e2_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
