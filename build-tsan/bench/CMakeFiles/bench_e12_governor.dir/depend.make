# Empty dependencies file for bench_e12_governor.
# This may be replaced when dependencies are built.
