file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_governor.dir/bench_e12_governor.cc.o"
  "CMakeFiles/bench_e12_governor.dir/bench_e12_governor.cc.o.d"
  "bench_e12_governor"
  "bench_e12_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
