# Empty compiler generated dependencies file for bench_e7_rewrite_cost.
# This may be replaced when dependencies are built.
