file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_rewrite_cost.dir/bench_e7_rewrite_cost.cc.o"
  "CMakeFiles/bench_e7_rewrite_cost.dir/bench_e7_rewrite_cost.cc.o.d"
  "bench_e7_rewrite_cost"
  "bench_e7_rewrite_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_rewrite_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
