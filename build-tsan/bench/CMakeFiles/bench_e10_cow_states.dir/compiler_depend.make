# Empty compiler generated dependencies file for bench_e10_cow_states.
# This may be replaced when dependencies are built.
