file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_cow_states.dir/bench_e10_cow_states.cc.o"
  "CMakeFiles/bench_e10_cow_states.dir/bench_e10_cow_states.cc.o.d"
  "bench_e10_cow_states"
  "bench_e10_cow_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_cow_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
