file(REMOVE_RECURSE
  "CMakeFiles/check_bench_json.dir/check_bench_json.cc.o"
  "CMakeFiles/check_bench_json.dir/check_bench_json.cc.o.d"
  "check_bench_json"
  "check_bench_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_bench_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
