# Empty compiler generated dependencies file for check_bench_json.
# This may be replaced when dependencies are built.
