# Empty compiler generated dependencies file for bench_e4_blowup.
# This may be replaced when dependencies are built.
