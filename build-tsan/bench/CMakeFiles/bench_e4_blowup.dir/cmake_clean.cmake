file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_blowup.dir/bench_e4_blowup.cc.o"
  "CMakeFiles/bench_e4_blowup.dir/bench_e4_blowup.cc.o.d"
  "bench_e4_blowup"
  "bench_e4_blowup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_blowup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
