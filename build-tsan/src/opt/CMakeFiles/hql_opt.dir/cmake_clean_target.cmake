file(REMOVE_RECURSE
  "libhql_opt.a"
)
