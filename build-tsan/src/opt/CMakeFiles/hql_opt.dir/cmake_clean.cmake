file(REMOVE_RECURSE
  "CMakeFiles/hql_opt.dir/estimator.cc.o"
  "CMakeFiles/hql_opt.dir/estimator.cc.o.d"
  "CMakeFiles/hql_opt.dir/explain.cc.o"
  "CMakeFiles/hql_opt.dir/explain.cc.o.d"
  "CMakeFiles/hql_opt.dir/planner.cc.o"
  "CMakeFiles/hql_opt.dir/planner.cc.o.d"
  "CMakeFiles/hql_opt.dir/session.cc.o"
  "CMakeFiles/hql_opt.dir/session.cc.o.d"
  "libhql_opt.a"
  "libhql_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hql_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
