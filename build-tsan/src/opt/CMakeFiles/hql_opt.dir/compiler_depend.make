# Empty compiler generated dependencies file for hql_opt.
# This may be replaced when dependencies are built.
