# CMake generated Testfile for 
# Source directory: /root/repo/src/storage
# Build directory: /root/repo/build-tsan/src/storage
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
