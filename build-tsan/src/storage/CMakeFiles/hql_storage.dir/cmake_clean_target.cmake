file(REMOVE_RECURSE
  "libhql_storage.a"
)
