
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/database.cc" "src/storage/CMakeFiles/hql_storage.dir/database.cc.o" "gcc" "src/storage/CMakeFiles/hql_storage.dir/database.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/storage/CMakeFiles/hql_storage.dir/index.cc.o" "gcc" "src/storage/CMakeFiles/hql_storage.dir/index.cc.o.d"
  "/root/repo/src/storage/io.cc" "src/storage/CMakeFiles/hql_storage.dir/io.cc.o" "gcc" "src/storage/CMakeFiles/hql_storage.dir/io.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/storage/CMakeFiles/hql_storage.dir/relation.cc.o" "gcc" "src/storage/CMakeFiles/hql_storage.dir/relation.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/storage/CMakeFiles/hql_storage.dir/schema.cc.o" "gcc" "src/storage/CMakeFiles/hql_storage.dir/schema.cc.o.d"
  "/root/repo/src/storage/stats.cc" "src/storage/CMakeFiles/hql_storage.dir/stats.cc.o" "gcc" "src/storage/CMakeFiles/hql_storage.dir/stats.cc.o.d"
  "/root/repo/src/storage/tuple.cc" "src/storage/CMakeFiles/hql_storage.dir/tuple.cc.o" "gcc" "src/storage/CMakeFiles/hql_storage.dir/tuple.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/storage/CMakeFiles/hql_storage.dir/value.cc.o" "gcc" "src/storage/CMakeFiles/hql_storage.dir/value.cc.o.d"
  "/root/repo/src/storage/view.cc" "src/storage/CMakeFiles/hql_storage.dir/view.cc.o" "gcc" "src/storage/CMakeFiles/hql_storage.dir/view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/hql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
