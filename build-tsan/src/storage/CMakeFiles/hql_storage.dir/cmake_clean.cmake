file(REMOVE_RECURSE
  "CMakeFiles/hql_storage.dir/database.cc.o"
  "CMakeFiles/hql_storage.dir/database.cc.o.d"
  "CMakeFiles/hql_storage.dir/index.cc.o"
  "CMakeFiles/hql_storage.dir/index.cc.o.d"
  "CMakeFiles/hql_storage.dir/io.cc.o"
  "CMakeFiles/hql_storage.dir/io.cc.o.d"
  "CMakeFiles/hql_storage.dir/relation.cc.o"
  "CMakeFiles/hql_storage.dir/relation.cc.o.d"
  "CMakeFiles/hql_storage.dir/schema.cc.o"
  "CMakeFiles/hql_storage.dir/schema.cc.o.d"
  "CMakeFiles/hql_storage.dir/stats.cc.o"
  "CMakeFiles/hql_storage.dir/stats.cc.o.d"
  "CMakeFiles/hql_storage.dir/tuple.cc.o"
  "CMakeFiles/hql_storage.dir/tuple.cc.o.d"
  "CMakeFiles/hql_storage.dir/value.cc.o"
  "CMakeFiles/hql_storage.dir/value.cc.o.d"
  "CMakeFiles/hql_storage.dir/view.cc.o"
  "CMakeFiles/hql_storage.dir/view.cc.o.d"
  "libhql_storage.a"
  "libhql_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hql_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
