# Empty compiler generated dependencies file for hql_storage.
# This may be replaced when dependencies are built.
