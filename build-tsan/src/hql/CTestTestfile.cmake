# CMake generated Testfile for 
# Source directory: /root/repo/src/hql
# Build directory: /root/repo/build-tsan/src/hql
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
