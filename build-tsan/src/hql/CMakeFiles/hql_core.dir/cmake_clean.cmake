file(REMOVE_RECURSE
  "CMakeFiles/hql_core.dir/collapse.cc.o"
  "CMakeFiles/hql_core.dir/collapse.cc.o.d"
  "CMakeFiles/hql_core.dir/enf.cc.o"
  "CMakeFiles/hql_core.dir/enf.cc.o.d"
  "CMakeFiles/hql_core.dir/free_dom.cc.o"
  "CMakeFiles/hql_core.dir/free_dom.cc.o.d"
  "CMakeFiles/hql_core.dir/pushdown.cc.o"
  "CMakeFiles/hql_core.dir/pushdown.cc.o.d"
  "CMakeFiles/hql_core.dir/ra_rewrite.cc.o"
  "CMakeFiles/hql_core.dir/ra_rewrite.cc.o.d"
  "CMakeFiles/hql_core.dir/reduce.cc.o"
  "CMakeFiles/hql_core.dir/reduce.cc.o.d"
  "CMakeFiles/hql_core.dir/rewrite_when.cc.o"
  "CMakeFiles/hql_core.dir/rewrite_when.cc.o.d"
  "CMakeFiles/hql_core.dir/slice.cc.o"
  "CMakeFiles/hql_core.dir/slice.cc.o.d"
  "CMakeFiles/hql_core.dir/subst.cc.o"
  "CMakeFiles/hql_core.dir/subst.cc.o.d"
  "libhql_core.a"
  "libhql_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hql_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
