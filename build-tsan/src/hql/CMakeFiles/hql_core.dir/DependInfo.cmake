
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hql/collapse.cc" "src/hql/CMakeFiles/hql_core.dir/collapse.cc.o" "gcc" "src/hql/CMakeFiles/hql_core.dir/collapse.cc.o.d"
  "/root/repo/src/hql/enf.cc" "src/hql/CMakeFiles/hql_core.dir/enf.cc.o" "gcc" "src/hql/CMakeFiles/hql_core.dir/enf.cc.o.d"
  "/root/repo/src/hql/free_dom.cc" "src/hql/CMakeFiles/hql_core.dir/free_dom.cc.o" "gcc" "src/hql/CMakeFiles/hql_core.dir/free_dom.cc.o.d"
  "/root/repo/src/hql/pushdown.cc" "src/hql/CMakeFiles/hql_core.dir/pushdown.cc.o" "gcc" "src/hql/CMakeFiles/hql_core.dir/pushdown.cc.o.d"
  "/root/repo/src/hql/ra_rewrite.cc" "src/hql/CMakeFiles/hql_core.dir/ra_rewrite.cc.o" "gcc" "src/hql/CMakeFiles/hql_core.dir/ra_rewrite.cc.o.d"
  "/root/repo/src/hql/reduce.cc" "src/hql/CMakeFiles/hql_core.dir/reduce.cc.o" "gcc" "src/hql/CMakeFiles/hql_core.dir/reduce.cc.o.d"
  "/root/repo/src/hql/rewrite_when.cc" "src/hql/CMakeFiles/hql_core.dir/rewrite_when.cc.o" "gcc" "src/hql/CMakeFiles/hql_core.dir/rewrite_when.cc.o.d"
  "/root/repo/src/hql/slice.cc" "src/hql/CMakeFiles/hql_core.dir/slice.cc.o" "gcc" "src/hql/CMakeFiles/hql_core.dir/slice.cc.o.d"
  "/root/repo/src/hql/subst.cc" "src/hql/CMakeFiles/hql_core.dir/subst.cc.o" "gcc" "src/hql/CMakeFiles/hql_core.dir/subst.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/ast/CMakeFiles/hql_ast.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/hql_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/hql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
