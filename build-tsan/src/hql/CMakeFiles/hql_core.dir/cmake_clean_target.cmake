file(REMOVE_RECURSE
  "libhql_core.a"
)
