# Empty dependencies file for hql_core.
# This may be replaced when dependencies are built.
