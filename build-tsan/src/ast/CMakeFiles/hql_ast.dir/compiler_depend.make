# Empty compiler generated dependencies file for hql_ast.
# This may be replaced when dependencies are built.
