file(REMOVE_RECURSE
  "CMakeFiles/hql_ast.dir/hypo.cc.o"
  "CMakeFiles/hql_ast.dir/hypo.cc.o.d"
  "CMakeFiles/hql_ast.dir/metrics.cc.o"
  "CMakeFiles/hql_ast.dir/metrics.cc.o.d"
  "CMakeFiles/hql_ast.dir/query.cc.o"
  "CMakeFiles/hql_ast.dir/query.cc.o.d"
  "CMakeFiles/hql_ast.dir/scalar_expr.cc.o"
  "CMakeFiles/hql_ast.dir/scalar_expr.cc.o.d"
  "CMakeFiles/hql_ast.dir/typecheck.cc.o"
  "CMakeFiles/hql_ast.dir/typecheck.cc.o.d"
  "CMakeFiles/hql_ast.dir/update.cc.o"
  "CMakeFiles/hql_ast.dir/update.cc.o.d"
  "libhql_ast.a"
  "libhql_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hql_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
