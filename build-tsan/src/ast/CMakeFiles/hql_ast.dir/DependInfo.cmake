
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/hypo.cc" "src/ast/CMakeFiles/hql_ast.dir/hypo.cc.o" "gcc" "src/ast/CMakeFiles/hql_ast.dir/hypo.cc.o.d"
  "/root/repo/src/ast/metrics.cc" "src/ast/CMakeFiles/hql_ast.dir/metrics.cc.o" "gcc" "src/ast/CMakeFiles/hql_ast.dir/metrics.cc.o.d"
  "/root/repo/src/ast/query.cc" "src/ast/CMakeFiles/hql_ast.dir/query.cc.o" "gcc" "src/ast/CMakeFiles/hql_ast.dir/query.cc.o.d"
  "/root/repo/src/ast/scalar_expr.cc" "src/ast/CMakeFiles/hql_ast.dir/scalar_expr.cc.o" "gcc" "src/ast/CMakeFiles/hql_ast.dir/scalar_expr.cc.o.d"
  "/root/repo/src/ast/typecheck.cc" "src/ast/CMakeFiles/hql_ast.dir/typecheck.cc.o" "gcc" "src/ast/CMakeFiles/hql_ast.dir/typecheck.cc.o.d"
  "/root/repo/src/ast/update.cc" "src/ast/CMakeFiles/hql_ast.dir/update.cc.o" "gcc" "src/ast/CMakeFiles/hql_ast.dir/update.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/storage/CMakeFiles/hql_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/hql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
