file(REMOVE_RECURSE
  "libhql_ast.a"
)
