file(REMOVE_RECURSE
  "CMakeFiles/hql_workload.dir/generators.cc.o"
  "CMakeFiles/hql_workload.dir/generators.cc.o.d"
  "CMakeFiles/hql_workload.dir/version_tree.cc.o"
  "CMakeFiles/hql_workload.dir/version_tree.cc.o.d"
  "libhql_workload.a"
  "libhql_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hql_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
