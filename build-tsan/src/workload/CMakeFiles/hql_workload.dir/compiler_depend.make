# Empty compiler generated dependencies file for hql_workload.
# This may be replaced when dependencies are built.
