file(REMOVE_RECURSE
  "libhql_workload.a"
)
