
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generators.cc" "src/workload/CMakeFiles/hql_workload.dir/generators.cc.o" "gcc" "src/workload/CMakeFiles/hql_workload.dir/generators.cc.o.d"
  "/root/repo/src/workload/version_tree.cc" "src/workload/CMakeFiles/hql_workload.dir/version_tree.cc.o" "gcc" "src/workload/CMakeFiles/hql_workload.dir/version_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/ast/CMakeFiles/hql_ast.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/hql_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/hql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
