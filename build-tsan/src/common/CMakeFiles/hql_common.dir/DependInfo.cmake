
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/exec_context.cc" "src/common/CMakeFiles/hql_common.dir/exec_context.cc.o" "gcc" "src/common/CMakeFiles/hql_common.dir/exec_context.cc.o.d"
  "/root/repo/src/common/failpoint.cc" "src/common/CMakeFiles/hql_common.dir/failpoint.cc.o" "gcc" "src/common/CMakeFiles/hql_common.dir/failpoint.cc.o.d"
  "/root/repo/src/common/governor.cc" "src/common/CMakeFiles/hql_common.dir/governor.cc.o" "gcc" "src/common/CMakeFiles/hql_common.dir/governor.cc.o.d"
  "/root/repo/src/common/json.cc" "src/common/CMakeFiles/hql_common.dir/json.cc.o" "gcc" "src/common/CMakeFiles/hql_common.dir/json.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/common/CMakeFiles/hql_common.dir/rng.cc.o" "gcc" "src/common/CMakeFiles/hql_common.dir/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/common/CMakeFiles/hql_common.dir/status.cc.o" "gcc" "src/common/CMakeFiles/hql_common.dir/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/common/CMakeFiles/hql_common.dir/strings.cc.o" "gcc" "src/common/CMakeFiles/hql_common.dir/strings.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/common/CMakeFiles/hql_common.dir/thread_pool.cc.o" "gcc" "src/common/CMakeFiles/hql_common.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
