file(REMOVE_RECURSE
  "CMakeFiles/hql_common.dir/exec_context.cc.o"
  "CMakeFiles/hql_common.dir/exec_context.cc.o.d"
  "CMakeFiles/hql_common.dir/failpoint.cc.o"
  "CMakeFiles/hql_common.dir/failpoint.cc.o.d"
  "CMakeFiles/hql_common.dir/governor.cc.o"
  "CMakeFiles/hql_common.dir/governor.cc.o.d"
  "CMakeFiles/hql_common.dir/json.cc.o"
  "CMakeFiles/hql_common.dir/json.cc.o.d"
  "CMakeFiles/hql_common.dir/rng.cc.o"
  "CMakeFiles/hql_common.dir/rng.cc.o.d"
  "CMakeFiles/hql_common.dir/status.cc.o"
  "CMakeFiles/hql_common.dir/status.cc.o.d"
  "CMakeFiles/hql_common.dir/strings.cc.o"
  "CMakeFiles/hql_common.dir/strings.cc.o.d"
  "CMakeFiles/hql_common.dir/thread_pool.cc.o"
  "CMakeFiles/hql_common.dir/thread_pool.cc.o.d"
  "libhql_common.a"
  "libhql_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hql_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
