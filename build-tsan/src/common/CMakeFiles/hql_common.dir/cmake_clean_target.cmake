file(REMOVE_RECURSE
  "libhql_common.a"
)
