# Empty dependencies file for hql_common.
# This may be replaced when dependencies are built.
