# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("storage")
subdirs("ast")
subdirs("hql")
subdirs("eval")
subdirs("opt")
subdirs("parser")
subdirs("workload")
