
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/delta.cc" "src/eval/CMakeFiles/hql_eval.dir/delta.cc.o" "gcc" "src/eval/CMakeFiles/hql_eval.dir/delta.cc.o.d"
  "/root/repo/src/eval/delta_ops.cc" "src/eval/CMakeFiles/hql_eval.dir/delta_ops.cc.o" "gcc" "src/eval/CMakeFiles/hql_eval.dir/delta_ops.cc.o.d"
  "/root/repo/src/eval/direct.cc" "src/eval/CMakeFiles/hql_eval.dir/direct.cc.o" "gcc" "src/eval/CMakeFiles/hql_eval.dir/direct.cc.o.d"
  "/root/repo/src/eval/filter1.cc" "src/eval/CMakeFiles/hql_eval.dir/filter1.cc.o" "gcc" "src/eval/CMakeFiles/hql_eval.dir/filter1.cc.o.d"
  "/root/repo/src/eval/filter2.cc" "src/eval/CMakeFiles/hql_eval.dir/filter2.cc.o" "gcc" "src/eval/CMakeFiles/hql_eval.dir/filter2.cc.o.d"
  "/root/repo/src/eval/filter3.cc" "src/eval/CMakeFiles/hql_eval.dir/filter3.cc.o" "gcc" "src/eval/CMakeFiles/hql_eval.dir/filter3.cc.o.d"
  "/root/repo/src/eval/index_exec.cc" "src/eval/CMakeFiles/hql_eval.dir/index_exec.cc.o" "gcc" "src/eval/CMakeFiles/hql_eval.dir/index_exec.cc.o.d"
  "/root/repo/src/eval/materialize.cc" "src/eval/CMakeFiles/hql_eval.dir/materialize.cc.o" "gcc" "src/eval/CMakeFiles/hql_eval.dir/materialize.cc.o.d"
  "/root/repo/src/eval/memo.cc" "src/eval/CMakeFiles/hql_eval.dir/memo.cc.o" "gcc" "src/eval/CMakeFiles/hql_eval.dir/memo.cc.o.d"
  "/root/repo/src/eval/ra_eval.cc" "src/eval/CMakeFiles/hql_eval.dir/ra_eval.cc.o" "gcc" "src/eval/CMakeFiles/hql_eval.dir/ra_eval.cc.o.d"
  "/root/repo/src/eval/xsub.cc" "src/eval/CMakeFiles/hql_eval.dir/xsub.cc.o" "gcc" "src/eval/CMakeFiles/hql_eval.dir/xsub.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/hql/CMakeFiles/hql_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ast/CMakeFiles/hql_ast.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/hql_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/hql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
