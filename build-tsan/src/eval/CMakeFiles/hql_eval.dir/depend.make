# Empty dependencies file for hql_eval.
# This may be replaced when dependencies are built.
