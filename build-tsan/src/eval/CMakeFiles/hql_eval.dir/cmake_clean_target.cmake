file(REMOVE_RECURSE
  "libhql_eval.a"
)
