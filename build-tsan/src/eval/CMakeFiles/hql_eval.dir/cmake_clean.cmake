file(REMOVE_RECURSE
  "CMakeFiles/hql_eval.dir/delta.cc.o"
  "CMakeFiles/hql_eval.dir/delta.cc.o.d"
  "CMakeFiles/hql_eval.dir/delta_ops.cc.o"
  "CMakeFiles/hql_eval.dir/delta_ops.cc.o.d"
  "CMakeFiles/hql_eval.dir/direct.cc.o"
  "CMakeFiles/hql_eval.dir/direct.cc.o.d"
  "CMakeFiles/hql_eval.dir/filter1.cc.o"
  "CMakeFiles/hql_eval.dir/filter1.cc.o.d"
  "CMakeFiles/hql_eval.dir/filter2.cc.o"
  "CMakeFiles/hql_eval.dir/filter2.cc.o.d"
  "CMakeFiles/hql_eval.dir/filter3.cc.o"
  "CMakeFiles/hql_eval.dir/filter3.cc.o.d"
  "CMakeFiles/hql_eval.dir/index_exec.cc.o"
  "CMakeFiles/hql_eval.dir/index_exec.cc.o.d"
  "CMakeFiles/hql_eval.dir/materialize.cc.o"
  "CMakeFiles/hql_eval.dir/materialize.cc.o.d"
  "CMakeFiles/hql_eval.dir/memo.cc.o"
  "CMakeFiles/hql_eval.dir/memo.cc.o.d"
  "CMakeFiles/hql_eval.dir/ra_eval.cc.o"
  "CMakeFiles/hql_eval.dir/ra_eval.cc.o.d"
  "CMakeFiles/hql_eval.dir/xsub.cc.o"
  "CMakeFiles/hql_eval.dir/xsub.cc.o.d"
  "libhql_eval.a"
  "libhql_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hql_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
