
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parser/lexer.cc" "src/parser/CMakeFiles/hql_parser.dir/lexer.cc.o" "gcc" "src/parser/CMakeFiles/hql_parser.dir/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/parser/CMakeFiles/hql_parser.dir/parser.cc.o" "gcc" "src/parser/CMakeFiles/hql_parser.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/ast/CMakeFiles/hql_ast.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/hql_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/hql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
