file(REMOVE_RECURSE
  "libhql_parser.a"
)
