file(REMOVE_RECURSE
  "CMakeFiles/hql_parser.dir/lexer.cc.o"
  "CMakeFiles/hql_parser.dir/lexer.cc.o.d"
  "CMakeFiles/hql_parser.dir/parser.cc.o"
  "CMakeFiles/hql_parser.dir/parser.cc.o.d"
  "libhql_parser.a"
  "libhql_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hql_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
