# Empty compiler generated dependencies file for hql_parser.
# This may be replaced when dependencies are built.
