# CMake generated Testfile for 
# Source directory: /root/repo/src/parser
# Build directory: /root/repo/build-tsan/src/parser
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
