# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/ast_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/enf_collapse_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
include("/root/repo/build/tests/filters_test[1]_include.cmake")
include("/root/repo/build/tests/free_dom_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/materialize_version_test[1]_include.cmake")
include("/root/repo/build/tests/paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/pushdown_test[1]_include.cmake")
include("/root/repo/build/tests/ra_rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/reduce_test[1]_include.cmake")
include("/root/repo/build/tests/relation_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_when_test[1]_include.cmake")
include("/root/repo/build/tests/scalar_expr_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/slice_test[1]_include.cmake")
include("/root/repo/build/tests/state_when_test[1]_include.cmake")
include("/root/repo/build/tests/strategy_param_test[1]_include.cmake")
include("/root/repo/build/tests/subst_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/xsub_delta_test[1]_include.cmake")
