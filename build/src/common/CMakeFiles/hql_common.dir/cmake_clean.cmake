file(REMOVE_RECURSE
  "CMakeFiles/hql_common.dir/rng.cc.o"
  "CMakeFiles/hql_common.dir/rng.cc.o.d"
  "CMakeFiles/hql_common.dir/status.cc.o"
  "CMakeFiles/hql_common.dir/status.cc.o.d"
  "CMakeFiles/hql_common.dir/strings.cc.o"
  "CMakeFiles/hql_common.dir/strings.cc.o.d"
  "libhql_common.a"
  "libhql_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hql_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
