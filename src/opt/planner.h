#ifndef HQL_OPT_PLANNER_H_
#define HQL_OPT_PLANNER_H_

// The evaluation-strategy spectrum of the paper made operational. A
// Strategy names one point on the lazy <-> eager axis; the hybrid planner
// walks the query and decides per `when` node whether to substitute it away
// (lazy) or keep it for materialization (eager), following the heuristics
// sketched in Examples 2.1(c) and 2.2(b): substitution wins when the
// affected names occur rarely in the scope and the rewritten query stays
// small; materialization wins when the state is reused often or the
// rewrite would blow up (Example 2.4).

#include <cstdint>
#include <string>

#include "ast/forward.h"
#include "common/governor.h"
#include "common/result.h"
#include "eval/incremental.h"
#include "opt/estimator.h"
#include "storage/column_batch.h"
#include "storage/database.h"
#include "storage/index.h"
#include "storage/schema.h"
#include "storage/stats.h"

namespace hql {

class MemoCache;

enum class Strategy {
  kDirect,   // reference semantics: materialize whole hypothetical states
  kLazy,     // red(Q), RA-simplify, evaluate as pure RA (Theorem 4.1)
  kFilter1,  // ENF + Algorithm HQL-1 (eager xsub, node-at-a-time)
  kFilter2,  // ENF + collapse + Algorithm HQL-2 (eager xsub, clustered)
  kFilter3,  // mod-ENF + collapse + Algorithm HQL-3 (eager deltas)
  kHybrid,   // planner decides per `when` node
};

const char* StrategyName(Strategy s);

struct PlannerOptions {
  /// How many queries are expected to run against each hypothetical state
  /// (Example 2.2's "families of hypothetical queries"). Materialization
  /// cost is amortized over this count.
  double reuse_count = 1.0;

  /// Hard cap on the expanded tree size a lazy rewrite may reach; beyond
  /// it the planner forces materialization (Example 2.4's guard).
  double max_lazy_tree_size = 100000.0;

  /// Run the RA simplifier over pure parts of the plan.
  bool simplify = true;

  /// Hybrid execution takes the delta route (Algorithm HQL-3) when the
  /// query has a mod-ENF form and the estimated state materialization is
  /// below this fraction of the affected base relations — the Section 5.5
  /// regime where join-when/select-when beat xsub materialization. Set to
  /// 0 to disable the delta route.
  double delta_fraction_threshold = 0.25;

  /// Optional memoizing subplan cache (eval/memo.h). When set, Execute's
  /// pure-RA evaluation serves repeated subplans from the cache, and state
  /// materialization (sessions, EvalAlternatives) reuses shared sub-states.
  /// The cache may be shared across queries, sessions, and threads; the
  /// caller owns it and it must outlive the calls that use it.
  MemoCache* memo = nullptr;

  /// Secondary-index policy for the physical operators (storage/index.h).
  /// kOff (default) keeps the scan kernels exactly; kManual probes only
  /// indexes already built via Database::BuildIndex; kAdvisor additionally
  /// lets `index_advisor` build indexes for frequently probed column sets.
  IndexMode index_mode = IndexMode::kOff;

  /// Advisor used in kAdvisor mode (caller-owned; shared across queries and
  /// threads so its access counts span a whole family of alternatives).
  /// Null in kAdvisor mode degrades to kManual behavior.
  IndexAdvisor* index_advisor = nullptr;

  /// Base relations smaller than this are never probed through an index —
  /// a scan already beats the probe bookkeeping.
  size_t index_min_rows = 64;

  /// Resource limits for the execution (common/governor.h). When any limit
  /// is set (or `cancel_token` is non-null) and no governor is already
  /// installed on the thread, Execute installs one for the duration of the
  /// call; limit violations surface as kResourceExhausted, observed
  /// cancellation as kCancelled. A rewrite-node trip on the lazy route
  /// degrades gracefully instead: Execute retries along the fallback
  /// lattice lazy -> hybrid -> eager (recorded in
  /// ExecStats::governor_lazy_fallbacks).
  ExecBudget budget;

  /// Optional cooperative cancellation for this execution; polled on the
  /// budget's check cadence.
  CancelTokenPtr cancel_token;

  /// Columnar/vectorized execution policy (storage/column_batch.h). kOff
  /// (default) keeps the row kernels exactly; kAuto lets large flat-base
  /// selections and equi-joins run the vectorized morsel kernels
  /// (eval/vector_exec.h), falling back to row execution for small bases,
  /// overlay-heavy views, or non-vectorizable predicates.
  ColumnarMode columnar_mode = ColumnarMode::kOff;

  /// Base relations smaller than this never take the columnar route — the
  /// batch build would not amortize.
  size_t columnar_min_rows = 4096;

  /// Rows per morsel for the vectorized kernels.
  size_t columnar_morsel_rows = 65536;

  /// Worker threads for morsel dispatch: 0 = hardware concurrency,
  /// 1 = run morsels inline on the calling thread.
  size_t columnar_threads = 0;

  /// Incremental re-evaluation policy (eval/incremental.h). kOff (default)
  /// recomputes every execution exactly as before. kAuto lets the lazy and
  /// hybrid-lazy routes patch a cached result of the same plan when the
  /// database differs from the recorded execution only by a small overlay
  /// edit and the estimator prices the patch below a recompute; every other
  /// case (cold cache, consolidated base, large edit, aggregate plans)
  /// falls back to full evaluation — results are always bit-identical.
  IncrementalMode incremental_mode = IncrementalMode::kOff;

  /// Entry store for incremental execution (caller-owned, must outlive the
  /// calls that use it). Null disables patching even in kAuto mode.
  IncrementalCache* incremental_cache = nullptr;

  /// Edits larger than this fraction of the changed relations' current
  /// cardinality are recomputed rather than patched.
  double incremental_edit_fraction = 0.10;

  /// The index configuration the options denote.
  IndexConfig index_config() const {
    return IndexConfig{index_mode, index_advisor, index_min_rows};
  }

  /// The columnar configuration the options denote.
  ColumnarConfig columnar_config() const {
    ColumnarConfig c;
    c.mode = columnar_mode;
    c.min_rows = columnar_min_rows;
    c.morsel_rows = columnar_morsel_rows;
    c.threads = columnar_threads;
    return c;
  }

  /// The incremental configuration the options denote.
  IncrementalConfig incremental_config() const {
    IncrementalConfig c;
    c.mode = incremental_mode;
    c.cache = incremental_cache;
    c.max_edit_fraction = incremental_edit_fraction;
    return c;
  }
};

struct Plan {
  /// The planned query: `when` nodes that remain are to be materialized.
  QueryPtr query;
  /// Number of `when` nodes substituted away (lazy decisions).
  int lazy_decisions = 0;
  /// Number of `when` nodes kept for materialization (eager decisions).
  int eager_decisions = 0;
};

/// Hybrid planning: returns an equivalent query with per-`when` decisions
/// applied. The result is in ENF (remaining states are explicit
/// substitutions) and its pure parts are RA-simplified.
Result<Plan> PlanHybrid(const QueryPtr& query, const Schema& schema,
                        const StatsCatalog& stats,
                        const PlannerOptions& options = PlannerOptions());

/// Evaluates `query` in `db` under the given strategy. All strategies
/// compute the same value (Theorems 4.1 / Propositions 5.1, 5.3, 5.4).
Result<Relation> Execute(const QueryPtr& query, const Database& db,
                         const Schema& schema, Strategy strategy,
                         const PlannerOptions& options = PlannerOptions());

}  // namespace hql

#endif  // HQL_OPT_PLANNER_H_
