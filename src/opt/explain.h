#ifndef HQL_OPT_EXPLAIN_H_
#define HQL_OPT_EXPLAIN_H_

// Structured explanation of how the framework treats a hypothetical query.
//
// The report is split along the static/runtime axis:
//
//   * PlanReport   — everything derivable without executing: the query's
//                    shape, every normal form along the lazy<->eager
//                    spectrum, the hybrid plan, and the cost model's view
//                    of each route. This is the developer-facing face of
//                    the paper's "choice of an equivalent ENF query is the
//                    choice of how eager or lazy the evaluation of Q is"
//                    (Section 5.2).
//   * ExecStats    — what an execution actually did (common/exec_context.h):
//                    view sharing, index probes, memo traffic, governor
//                    trips, traced operator spans.
//   * ExplainReport — the combined view (PlanReport + an ExecStats
//                    snapshot + the memo cache's counters), rendered by
//                    FormatExplain.
//   * AnalyzeReport — EXPLAIN ANALYZE: the static plan annotated with a
//                    *fresh, traced* execution of the query — actual rows
//                    and wall time next to the estimates, the route taken,
//                    and per-operator spans. Rendered by
//                    FormatExplainAnalyze.

#include <cstdint>
#include <string>

#include "ast/forward.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "opt/planner.h"
#include "storage/database.h"
#include "storage/schema.h"
#include "storage/stats.h"

namespace hql {

class MemoCache;

/// The static half of the report: everything known before running.
struct PlanReport {
  // Static shape.
  size_t arity = 0;
  size_t when_depth = 0;
  double tree_size = 0;
  uint64_t dag_size = 0;

  // Normal forms (textual syntax; all parse back).
  std::string enf;             // every state an explicit substitution
  std::string collapsed;       // HQL-2's clustered tree (debug rendering)
  std::string lazy;            // red(Q) after RA simplification
  bool lazy_is_empty = false;  // the rewriter proved the query empty
  double lazy_tree_size = 0;   // size of the (unsimplified) lazy rewrite
  bool has_mod_enf = false;    // HQL-3 can run on atomic deltas directly

  // Hybrid plan.
  std::string plan;
  int lazy_decisions = 0;
  int eager_decisions = 0;

  // Cost model.
  double estimated_cardinality = 0;
  double lazy_cost = 0;
  double hybrid_cost = 0;
  double state_materialization = 0;  // eager xsub tuples, all states
};

/// The combined view: static plan + a runtime snapshot. The runtime
/// counters are duplicated as flat fields (filled from `exec`) so existing
/// readers keep compiling; new code should read `exec` directly.
struct ExplainReport : PlanReport {
  // The execution-stats snapshot the flat fields below were filled from.
  ExecStats exec;

  // Memoizing subplan cache (populated when Explain is given one; these
  // are cache-lifetime counters, not per-execution ones).
  bool has_memo = false;
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  uint64_t memo_evictions = 0;
  uint64_t memo_entries = 0;
  uint64_t memo_cached_tuples = 0;
  double memo_hit_rate = 0;

  // Copy-on-write view layer (see ExecStats).
  uint64_t views_created = 0;
  uint64_t view_consolidations = 0;
  uint64_t view_tuples_shared = 0;
  uint64_t view_tuples_copied = 0;

  // Secondary indexes (see ExecStats).
  uint64_t indexes_built = 0;
  uint64_t indexes_shared = 0;
  uint64_t index_probes = 0;
  uint64_t index_tuples_skipped = 0;

  // Execution governor (see ExecStats).
  uint64_t governor_deadline_trips = 0;
  uint64_t governor_tuple_trips = 0;
  uint64_t governor_rewrite_trips = 0;
  uint64_t governor_cancellations = 0;
  uint64_t governor_lazy_fallbacks = 0;
  uint64_t governor_index_fallbacks = 0;
  uint64_t governor_max_tuples_charged = 0;
  uint64_t governor_max_rewrite_nodes_charged = 0;
};

/// Builds the static half only — no counters are read, nothing executes.
/// `stats` drives the cost numbers (use StatsCatalog::FromDatabase for
/// exact base cardinalities).
Result<PlanReport> ExplainPlan(const QueryPtr& query, const Schema& schema,
                               const StatsCatalog& stats);

/// Builds the combined report: ExplainPlan plus a snapshot of the ambient
/// ExecContext (the thread's installed context, else the process default —
/// where the deprecated Global*Stats shims charge). A non-null `memo` adds
/// the cache's hit/miss/eviction counters.
Result<ExplainReport> Explain(const QueryPtr& query, const Schema& schema,
                              const StatsCatalog& stats,
                              const MemoCache* memo = nullptr);

/// Multi-line human-readable rendering of the combined report.
std::string FormatExplain(const ExplainReport& report);

/// Options for ExplainAnalyze.
struct AnalyzeOptions {
  /// Execution route (all strategies agree on the value; see planner.h).
  Strategy strategy = Strategy::kHybrid;

  /// Per-operator span recording on the analysis context. On by default —
  /// that is what ANALYZE is for; turn off to measure counters only.
  bool tracing = true;

  /// Planner options for the traced execution (memo cache, index policy,
  /// budget, cancellation).
  PlannerOptions planner;
};

/// EXPLAIN ANALYZE: the static plan annotated with an actual execution.
struct AnalyzeReport {
  PlanReport plan;

  /// Exactly this execution's stats, from a fresh ExecContext installed
  /// around the run (tracing per AnalyzeOptions). Includes the route taken
  /// and the per-operator spans.
  ExecStats exec;

  uint64_t actual_rows = 0;   // result cardinality (vs estimated_cardinality)
  uint64_t wall_micros = 0;   // end-to-end wall time of the execution
};

/// Plans `query`, then executes it in `db` under a fresh traced
/// ExecContext and reports estimates and actuals side by side. The
/// execution's charges are merged into the caller's ambient context
/// afterwards, so analyzing a query never hides its work from enclosing
/// accounting. Errors from either planning or execution surface as the
/// Result's status.
Result<AnalyzeReport> ExplainAnalyze(const QueryPtr& query, const Database& db,
                                     const Schema& schema,
                                     const AnalyzeOptions& options = {});

/// Multi-line rendering: plan, estimated-vs-actual line, per-execution
/// counters, and a span table when tracing was on.
std::string FormatExplainAnalyze(const AnalyzeReport& report);

}  // namespace hql

#endif  // HQL_OPT_EXPLAIN_H_
