#ifndef HQL_OPT_EXPLAIN_H_
#define HQL_OPT_EXPLAIN_H_

// Structured explanation of how the framework would treat a hypothetical
// query: its static shape, every normal form along the lazy<->eager
// spectrum, the hybrid plan, and the cost model's view of each route.
// This is the developer-facing face of the paper's "choice of an
// equivalent ENF query is the choice of how eager or lazy the evaluation
// of Q is" (Section 5.2).

#include <string>

#include "ast/forward.h"
#include "common/result.h"
#include "storage/schema.h"
#include "storage/stats.h"

namespace hql {

class MemoCache;

struct ExplainReport {
  // Static shape.
  size_t arity = 0;
  size_t when_depth = 0;
  double tree_size = 0;
  uint64_t dag_size = 0;

  // Normal forms (textual syntax; all parse back).
  std::string enf;             // every state an explicit substitution
  std::string collapsed;       // HQL-2's clustered tree (debug rendering)
  std::string lazy;            // red(Q) after RA simplification
  bool lazy_is_empty = false;  // the rewriter proved the query empty
  double lazy_tree_size = 0;   // size of the (unsimplified) lazy rewrite
  bool has_mod_enf = false;    // HQL-3 can run on atomic deltas directly

  // Hybrid plan.
  std::string plan;
  int lazy_decisions = 0;
  int eager_decisions = 0;

  // Cost model.
  double estimated_cardinality = 0;
  double lazy_cost = 0;
  double hybrid_cost = 0;
  double state_materialization = 0;  // eager xsub tuples, all states

  // Memoizing subplan cache (populated when Explain is given one).
  bool has_memo = false;
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  uint64_t memo_evictions = 0;
  uint64_t memo_entries = 0;
  uint64_t memo_cached_tuples = 0;
  double memo_hit_rate = 0;

  // Copy-on-write view layer (process-wide counters, see GlobalViewStats):
  // how many relation views were derived by sharing a base, how often an
  // overlay grew past the consolidation threshold, and the tuple traffic
  // split between shared (refcounted) and copied (materialized) tuples.
  uint64_t views_created = 0;
  uint64_t view_consolidations = 0;
  uint64_t view_tuples_shared = 0;
  uint64_t view_tuples_copied = 0;

  // Secondary indexes (process-wide counters, see GlobalIndexStats): how
  // many indexes were built vs served from a base's cache, how often the
  // kernels probed one, and the scan rows the probes skipped.
  uint64_t indexes_built = 0;
  uint64_t indexes_shared = 0;
  uint64_t index_probes = 0;
  uint64_t index_tuples_skipped = 0;

  // Execution governor (process-wide counters, see GlobalGovernorStats):
  // budget trips by kind, observed cancellations, graceful-degradation
  // fallbacks taken (lazy -> hybrid -> eager rewrites, index build ->
  // scan), and the high-water marks any single execution charged.
  uint64_t governor_deadline_trips = 0;
  uint64_t governor_tuple_trips = 0;
  uint64_t governor_rewrite_trips = 0;
  uint64_t governor_cancellations = 0;
  uint64_t governor_lazy_fallbacks = 0;
  uint64_t governor_index_fallbacks = 0;
  uint64_t governor_max_tuples_charged = 0;
  uint64_t governor_max_rewrite_nodes_charged = 0;
};

/// Builds the full report. `stats` drives the cost numbers (use
/// StatsCatalog::FromDatabase for exact base cardinalities). A non-null
/// `memo` adds the cache's hit/miss/eviction counters to the report — the
/// observability face of the memoizing evaluation layer.
Result<ExplainReport> Explain(const QueryPtr& query, const Schema& schema,
                              const StatsCatalog& stats,
                              const MemoCache* memo = nullptr);

/// Multi-line human-readable rendering.
std::string FormatExplain(const ExplainReport& report);

}  // namespace hql

#endif  // HQL_OPT_EXPLAIN_H_
