#include "opt/estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "ast/hypo.h"
#include "ast/query.h"
#include "ast/scalar_expr.h"
#include "ast/update.h"
#include "common/check.h"
#include "hql/free_dom.h"

namespace hql {

namespace {

constexpr double kUnknownCardinality = 1000.0;

}  // namespace

double CardinalityEstimator::EstimateQuery(const QueryPtr& query) const {
  return Estimate(query, Env());
}

double CardinalityEstimator::EstimateCost(const QueryPtr& query) const {
  double cost = 0;
  Cost(query, Env(), &cost);
  return cost;
}

double CardinalityEstimator::Cost(const QueryPtr& query, const Env& env,
                                  double* cost) const {
  switch (query->kind()) {
    case QueryKind::kRel:
    case QueryKind::kEmpty:
    case QueryKind::kSingleton: {
      double card = Estimate(query, env);
      *cost += card;
      return card;
    }
    case QueryKind::kSelect:
    case QueryKind::kProject:
    case QueryKind::kAggregate: {
      double child = Cost(query->left(), env, cost);
      double card = child;
      if (query->kind() == QueryKind::kSelect) {
        card = child * (query->left()->kind() == QueryKind::kRel
                            ? EstimatePredicateOn(query->predicate(),
                                                  query->left()->rel_name())
                            : EstimatePredicate(query->predicate()));
      } else if (query->kind() == QueryKind::kAggregate) {
        card = child * 0.1;  // grouping collapses ~10x by default
      }
      *cost += card;
      return card;
    }
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kJoin:
    case QueryKind::kDifference: {
      double l = Cost(query->left(), env, cost);
      double r = Cost(query->right(), env, cost);
      double card = 0;
      switch (query->kind()) {
        case QueryKind::kUnion:
          card = l + r;
          break;
        case QueryKind::kIntersect:
          card = 0.5 * std::min(l, r);
          break;
        case QueryKind::kProduct:
          card = l * r;
          break;
        case QueryKind::kJoin:
          card = std::max(1.0, l * r *
                                   EstimatePredicate(query->predicate()));
          break;
        default:
          card = l;
          break;
      }
      *cost += card;
      return card;
    }
    case QueryKind::kWhen: {
      // Charge the state's bindings once (they are materialized or, in a
      // lazy reading, shared), then the body under the adjusted env.
      Env inner = ApplyState(query->state(), env);
      if (query->state()->kind() == HypoKind::kSubst) {
        for (const Binding& b : query->state()->bindings()) {
          Cost(b.query, env, cost);
        }
      } else {
        *cost += EstimateStateMaterialization(query->state());
      }
      return Cost(query->left(), inner, cost);
    }
  }
  HQL_UNREACHABLE();
}

double CardinalityEstimator::EstimateStateMaterialization(
    const HypoExprPtr& state) const {
  Env env;
  switch (state->kind()) {
    case HypoKind::kSubst: {
      double total = 0;
      for (const Binding& b : state->bindings()) {
        total += Estimate(b.query, env);
      }
      return total;
    }
    case HypoKind::kUpdateState:
    case HypoKind::kCompose:
    case HypoKind::kStateWhen: {
      // Materialization cost of the resulting state: the cardinalities of
      // every relation the state writes, in the final environment.
      Env out = ApplyState(state, env);
      double total = 0;
      for (const auto& [name, card] : out) {
        (void)name;
        total += card;
      }
      return total;
    }
  }
  HQL_UNREACHABLE();
}

double CardinalityEstimator::BaseCardinality(const std::string& name,
                                             const Env& env) const {
  auto it = env.find(name);
  if (it != env.end()) return it->second;
  return static_cast<double>(stats_->CardinalityOf(
      name, static_cast<uint64_t>(kUnknownCardinality)));
}

double CardinalityEstimator::EstimatePredicateOn(
    const ScalarExprPtr& pred, const std::string& rel_name) const {
  std::vector<ScalarExprPtr> conjuncts;
  FlattenConjuncts(pred, &conjuncts);
  double selectivity = 1.0;
  for (const ScalarExprPtr& c : conjuncts) {
    const ScalarExpr* col = nullptr;
    if (c->kind() == ScalarKind::kBinary && c->op() == ScalarOp::kEq) {
      if (c->lhs()->kind() == ScalarKind::kColumn &&
          c->rhs()->kind() == ScalarKind::kLiteral) {
        col = c->lhs().get();
      } else if (c->rhs()->kind() == ScalarKind::kColumn &&
                 c->lhs()->kind() == ScalarKind::kLiteral) {
        col = c->rhs().get();
      }
    }
    uint64_t distinct =
        col == nullptr ? 0
                       : stats_->DistinctCountOf(rel_name, col->column(), 0);
    selectivity *= distinct > 0 ? 1.0 / static_cast<double>(distinct)
                                : EstimatePredicate(c);
  }
  return selectivity;
}

double CardinalityEstimator::EstimateProbeCost(
    const std::string& rel_name, const std::vector<size_t>& columns) const {
  double card = static_cast<double>(stats_->CardinalityOf(
      rel_name, static_cast<uint64_t>(kUnknownCardinality)));
  double expected = card;
  for (size_t column : columns) {
    uint64_t distinct = stats_->DistinctCountOf(rel_name, column, 0);
    expected *= distinct > 0 ? 1.0 / static_cast<double>(distinct)
                             : sel_.equality;
  }
  return expected;
}

double CardinalityEstimator::EstimateScanCost(
    const std::string& rel_name) const {
  return static_cast<double>(stats_->CardinalityOf(
      rel_name, static_cast<uint64_t>(kUnknownCardinality)));
}

bool CardinalityEstimator::IndexProbeWins(
    const std::string& rel_name, const std::vector<size_t>& columns) const {
  // A probe touches its expected result rows plus constant bookkeeping
  // (hashing the key, patching the overlay); the scan touches every row.
  constexpr double kProbeOverhead = 8.0;
  return EstimateProbeCost(rel_name, columns) + kProbeOverhead <
         EstimateScanCost(rel_name);
}

double CardinalityEstimator::EstimateColumnarScanCost(
    const std::string& rel_name, size_t morsel_rows) const {
  // Per-morsel setup (slot allocation, governor tick, dispatch) plus the
  // vectorized per-row cost: the tight typed loop touches each row at a
  // fraction of the row kernel's per-tuple expression interpretation.
  constexpr double kMorselSetup = 32.0;
  constexpr double kVectorizedRowFraction = 0.25;
  double card = static_cast<double>(stats_->CardinalityOf(
      rel_name, static_cast<uint64_t>(kUnknownCardinality)));
  double rows_per_morsel =
      morsel_rows > 0 ? static_cast<double>(morsel_rows) : 1.0;
  double morsels = std::ceil(card / rows_per_morsel);
  return morsels * kMorselSetup + card * kVectorizedRowFraction;
}

bool CardinalityEstimator::ColumnarScanWins(const std::string& rel_name,
                                            size_t min_rows,
                                            size_t morsel_rows) const {
  double card = static_cast<double>(stats_->CardinalityOf(
      rel_name, static_cast<uint64_t>(kUnknownCardinality)));
  if (card < static_cast<double>(min_rows)) return false;
  return EstimateColumnarScanCost(rel_name, morsel_rows) <
         EstimateScanCost(rel_name);
}

double CardinalityEstimator::EstimateColumnarAggCost(
    const std::string& rel_name, size_t morsel_rows) const {
  // Same dispatch setup as the columnar scan; the per-row work (packed
  // int64 key extract, flat-table probe, typed accumulate) runs at about
  // half the row kernel's per-tuple cost — heavier than a selection's
  // compare-and-emit because every row probes the group table.
  constexpr double kMorselSetup = 32.0;
  constexpr double kVectorizedAggRowFraction = 0.5;
  double card = static_cast<double>(stats_->CardinalityOf(
      rel_name, static_cast<uint64_t>(kUnknownCardinality)));
  double rows_per_morsel =
      morsel_rows > 0 ? static_cast<double>(morsel_rows) : 1.0;
  double morsels = std::ceil(card / rows_per_morsel);
  return morsels * kMorselSetup + card * kVectorizedAggRowFraction;
}

bool CardinalityEstimator::ColumnarAggWins(const std::string& rel_name,
                                           size_t min_rows,
                                           size_t morsel_rows) const {
  double card = static_cast<double>(stats_->CardinalityOf(
      rel_name, static_cast<uint64_t>(kUnknownCardinality)));
  if (card < static_cast<double>(min_rows)) return false;
  return EstimateColumnarAggCost(rel_name, morsel_rows) <
         EstimateScanCost(rel_name);
}

double CardinalityEstimator::EstimateIncrementalCost(
    const QueryPtr& query, double edit_tuples) const {
  if (query == nullptr) return 0.0;
  // Every operator touches ~the edit; joins probe the cached other side
  // (index or one hashed scan) and projections rescan the child for
  // deletion support, both charged at a small fraction of the inputs they
  // consult.
  constexpr double kSiblingTouchFraction = 0.05;
  double cost = edit_tuples;
  switch (query->kind()) {
    case QueryKind::kRel:
    case QueryKind::kEmpty:
    case QueryKind::kSingleton:
      return cost;
    case QueryKind::kSelect: {
      const QueryPtr& child = query->left();
      // The evaluator (and the patcher) cluster sigma over x / join into
      // one theta join; cost the clustered shape.
      if (child->kind() == QueryKind::kProduct ||
          child->kind() == QueryKind::kJoin) {
        cost += kSiblingTouchFraction * (EstimateQuery(child->left()) +
                                         EstimateQuery(child->right()));
        return cost + EstimateIncrementalCost(child->left(), edit_tuples) +
               EstimateIncrementalCost(child->right(), edit_tuples);
      }
      return cost + EstimateIncrementalCost(child, edit_tuples);
    }
    case QueryKind::kProject:
      cost += kSiblingTouchFraction * EstimateQuery(query->left());
      return cost + EstimateIncrementalCost(query->left(), edit_tuples);
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kDifference:
      return cost + EstimateIncrementalCost(query->left(), edit_tuples) +
             EstimateIncrementalCost(query->right(), edit_tuples);
    case QueryKind::kProduct:
    case QueryKind::kJoin:
      cost += kSiblingTouchFraction * (EstimateQuery(query->left()) +
                                       EstimateQuery(query->right()));
      return cost + EstimateIncrementalCost(query->left(), edit_tuples) +
             EstimateIncrementalCost(query->right(), edit_tuples);
    case QueryKind::kAggregate:
      // Sum/count patch group-wise: re-accumulate the affected groups with
      // one discounted pass over the child (the same shape as projection's
      // support scan). Min/max may need evidence the old extremum still
      // exists after a deletion, so they stay recompute-only.
      if (query->agg_func() == AggFunc::kSum ||
          query->agg_func() == AggFunc::kCount) {
        cost += kSiblingTouchFraction * EstimateQuery(query->left());
        return cost + EstimateIncrementalCost(query->left(), edit_tuples);
      }
      return std::numeric_limits<double>::infinity();
    case QueryKind::kWhen:
      // Not incrementally maintainable: make the patch alternative lose
      // every cost comparison so the planner recomputes.
      return std::numeric_limits<double>::infinity();
  }
  return std::numeric_limits<double>::infinity();
}

double CardinalityEstimator::EstimatePredicate(
    const ScalarExprPtr& pred) const {
  if (pred->kind() == ScalarKind::kBinary) {
    switch (pred->op()) {
      case ScalarOp::kEq:
        return sel_.equality;
      case ScalarOp::kLt:
      case ScalarOp::kLe:
      case ScalarOp::kGt:
      case ScalarOp::kGe:
        return sel_.range;
      case ScalarOp::kAnd:
        return EstimatePredicate(pred->lhs()) *
               EstimatePredicate(pred->rhs());
      case ScalarOp::kOr: {
        double a = EstimatePredicate(pred->lhs());
        double b = EstimatePredicate(pred->rhs());
        return std::min(1.0, a + b - a * b);
      }
      default:
        return sel_.other;
    }
  }
  return sel_.other;
}

double CardinalityEstimator::Estimate(const QueryPtr& query,
                                      const Env& env) const {
  switch (query->kind()) {
    case QueryKind::kRel:
      return BaseCardinality(query->rel_name(), env);
    case QueryKind::kEmpty:
      return 0;
    case QueryKind::kSingleton:
      return 1;
    case QueryKind::kSelect:
      return Estimate(query->left(), env) *
             (query->left()->kind() == QueryKind::kRel
                  ? EstimatePredicateOn(query->predicate(),
                                        query->left()->rel_name())
                  : EstimatePredicate(query->predicate()));
    case QueryKind::kProject:
      return Estimate(query->left(), env);
    case QueryKind::kAggregate:
      return 0.1 * Estimate(query->left(), env);
    case QueryKind::kUnion:
      return Estimate(query->left(), env) + Estimate(query->right(), env);
    case QueryKind::kIntersect:
      return 0.5 * std::min(Estimate(query->left(), env),
                            Estimate(query->right(), env));
    case QueryKind::kProduct:
      return Estimate(query->left(), env) * Estimate(query->right(), env);
    case QueryKind::kJoin: {
      double l = Estimate(query->left(), env);
      double r = Estimate(query->right(), env);
      return std::max(1.0, l * r * EstimatePredicate(query->predicate()));
    }
    case QueryKind::kDifference:
      return Estimate(query->left(), env);
    case QueryKind::kWhen: {
      Env inner = ApplyState(query->state(), env);
      return Estimate(query->left(), inner);
    }
  }
  HQL_UNREACHABLE();
}

CardinalityEstimator::Env CardinalityEstimator::ApplyState(
    const HypoExprPtr& state, const Env& env) const {
  switch (state->kind()) {
    case HypoKind::kUpdateState:
      return ApplyUpdate(state->update(), env);
    case HypoKind::kSubst: {
      Env out = env;
      for (const Binding& b : state->bindings()) {
        out[b.rel_name] = Estimate(b.query, env);  // parallel assignment
      }
      return out;
    }
    case HypoKind::kCompose:
      return ApplyState(state->second(),
                        ApplyState(state->first(), env));
    case HypoKind::kStateWhen: {
      // eta1's effect estimated in eta2's environment; only dom(eta1)
      // names change relative to env.
      Env context = ApplyState(state->second(), env);
      Env moved = ApplyState(state->first(), context);
      Env out = env;
      for (const std::string& name : DomNames(state->first())) {
        auto it = moved.find(name);
        if (it != moved.end()) out[name] = it->second;
      }
      return out;
    }
  }
  HQL_UNREACHABLE();
}

CardinalityEstimator::Env CardinalityEstimator::ApplyUpdate(
    const UpdatePtr& update, const Env& env) const {
  switch (update->kind()) {
    case UpdateKind::kInsert: {
      Env out = env;
      out[update->rel_name()] = BaseCardinality(update->rel_name(), env) +
                                Estimate(update->query(), env);
      return out;
    }
    case UpdateKind::kDelete: {
      Env out = env;
      double base = BaseCardinality(update->rel_name(), env);
      out[update->rel_name()] =
          std::max(0.0, base - 0.5 * Estimate(update->query(), env));
      return out;
    }
    case UpdateKind::kSeq:
      return ApplyUpdate(update->second(),
                         ApplyUpdate(update->first(), env));
    case UpdateKind::kCond: {
      // Average the two branches.
      Env a = ApplyUpdate(update->then_branch(), env);
      Env b = ApplyUpdate(update->else_branch(), env);
      Env out = env;
      for (const auto& [name, card] : a) out[name] = card;
      for (const auto& [name, card] : b) {
        auto it = out.find(name);
        out[name] = it == out.end() ? card : 0.5 * (it->second + card);
      }
      return out;
    }
  }
  HQL_UNREACHABLE();
}

}  // namespace hql
