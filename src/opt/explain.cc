#include "opt/explain.h"

#include "ast/metrics.h"
#include "ast/query.h"
#include "ast/typecheck.h"
#include "common/strings.h"
#include "hql/collapse.h"
#include "hql/enf.h"
#include "hql/free_dom.h"
#include "hql/ra_rewrite.h"
#include "hql/reduce.h"
#include "eval/memo.h"
#include "opt/estimator.h"
#include "opt/planner.h"
#include "storage/index.h"
#include "storage/view.h"

namespace hql {

Result<ExplainReport> Explain(const QueryPtr& query, const Schema& schema,
                              const StatsCatalog& stats,
                              const MemoCache* memo) {
  ExplainReport report;

  HQL_ASSIGN_OR_RETURN(report.arity, InferQueryArity(query, schema));
  report.when_depth = WhenDepth(query);
  report.tree_size = TreeSize(query);
  report.dag_size = DagSize(query);

  HQL_ASSIGN_OR_RETURN(QueryPtr enf, ToEnf(query, schema));
  report.enf = enf->ToString();
  HQL_ASSIGN_OR_RETURN(CollapsedPtr tree, Collapse(enf, schema));
  report.collapsed = CollapsedToString(tree);
  report.has_mod_enf = ToModEnf(query, schema).ok();

  HQL_ASSIGN_OR_RETURN(QueryPtr reduced, Reduce(query, schema));
  report.lazy_tree_size = TreeSize(reduced);
  HQL_ASSIGN_OR_RETURN(QueryPtr simplified, SimplifyRa(reduced, schema));
  report.lazy = simplified->ToString();
  report.lazy_is_empty = simplified->kind() == QueryKind::kEmpty;

  HQL_ASSIGN_OR_RETURN(Plan plan, PlanHybrid(query, schema, stats));
  report.plan = plan.query->ToString();
  report.lazy_decisions = plan.lazy_decisions;
  report.eager_decisions = plan.eager_decisions;

  CardinalityEstimator estimator(stats);
  report.estimated_cardinality = estimator.EstimateQuery(query);
  report.lazy_cost = estimator.EstimateCost(simplified);
  report.hybrid_cost = estimator.EstimateCost(plan.query);
  double materialization = 0;
  if (enf->kind() == QueryKind::kWhen) {
    materialization =
        estimator.EstimateStateMaterialization(enf->state());
  }
  report.state_materialization = materialization;

  ViewStats views = GlobalViewStats();
  report.views_created = views.views_created;
  report.view_consolidations = views.consolidations;
  report.view_tuples_shared = views.tuples_shared;
  report.view_tuples_copied = views.tuples_copied;

  IndexStats indexes = GlobalIndexStats();
  report.indexes_built = indexes.indexes_built;
  report.indexes_shared = indexes.indexes_shared;
  report.index_probes = indexes.index_probes;
  report.index_tuples_skipped = indexes.tuples_skipped;

  GovernorStats governor = GlobalGovernorStats();
  report.governor_deadline_trips = governor.deadline_trips;
  report.governor_tuple_trips = governor.tuple_trips;
  report.governor_rewrite_trips = governor.rewrite_trips;
  report.governor_cancellations = governor.cancellations;
  report.governor_lazy_fallbacks = governor.lazy_fallbacks;
  report.governor_index_fallbacks = governor.index_fallbacks;
  report.governor_max_tuples_charged = governor.max_tuples_charged;
  report.governor_max_rewrite_nodes_charged =
      governor.max_rewrite_nodes_charged;

  if (memo != nullptr) {
    MemoCache::Stats cache = memo->stats();
    report.has_memo = true;
    report.memo_hits = cache.hits;
    report.memo_misses = cache.misses;
    report.memo_evictions = cache.evictions;
    report.memo_entries = cache.entries;
    report.memo_cached_tuples = cache.cached_tuples;
    report.memo_hit_rate = cache.HitRate();
  }
  return report;
}

std::string FormatExplain(const ExplainReport& report) {
  std::string out;
  out += StrFormat(
      "shape:      arity %zu, when-depth %zu, tree %.0f nodes, dag %llu "
      "nodes\n",
      report.arity, report.when_depth, report.tree_size,
      static_cast<unsigned long long>(report.dag_size));
  out += "enf:        " + report.enf + "\n";
  out += "collapsed:  " + report.collapsed + "\n";
  out += StrFormat("lazy (%.0f nodes before simplification):\n",
                   report.lazy_tree_size);
  out += "            " + report.lazy + "\n";
  if (report.lazy_is_empty) {
    out += "            (statically empty: no evaluation needed)\n";
  }
  out += "plan:       " + report.plan + "\n";
  out += StrFormat("decisions:  %d lazy, %d eager; mod-ENF (HQL-3): %s\n",
                   report.lazy_decisions, report.eager_decisions,
                   report.has_mod_enf ? "yes" : "via precise deltas");
  out += StrFormat(
      "estimates:  |result| ~%.0f, lazy cost ~%.0f, hybrid cost ~%.0f, "
      "state materialization ~%.0f tuples\n",
      report.estimated_cardinality, report.lazy_cost, report.hybrid_cost,
      report.state_materialization);
  if (report.has_memo) {
    out += StrFormat(
        "memo:       %llu hits, %llu misses (%.1f%% hit rate), %llu "
        "evictions; %llu entries holding %llu tuples\n",
        static_cast<unsigned long long>(report.memo_hits),
        static_cast<unsigned long long>(report.memo_misses),
        report.memo_hit_rate * 100.0,
        static_cast<unsigned long long>(report.memo_evictions),
        static_cast<unsigned long long>(report.memo_entries),
        static_cast<unsigned long long>(report.memo_cached_tuples));
  }
  out += StrFormat(
      "views:      %llu created, %llu consolidations; tuples %llu shared / "
      "%llu copied\n",
      static_cast<unsigned long long>(report.views_created),
      static_cast<unsigned long long>(report.view_consolidations),
      static_cast<unsigned long long>(report.view_tuples_shared),
      static_cast<unsigned long long>(report.view_tuples_copied));
  out += StrFormat(
      "indexes:    %llu built, %llu shared; %llu probes skipping %llu "
      "scan rows\n",
      static_cast<unsigned long long>(report.indexes_built),
      static_cast<unsigned long long>(report.indexes_shared),
      static_cast<unsigned long long>(report.index_probes),
      static_cast<unsigned long long>(report.index_tuples_skipped));
  out += StrFormat(
      "governor:   trips %llu deadline / %llu tuple / %llu rewrite, "
      "%llu cancellations; fallbacks %llu lazy / %llu index; peaks "
      "%llu tuples, %llu rewrite nodes\n",
      static_cast<unsigned long long>(report.governor_deadline_trips),
      static_cast<unsigned long long>(report.governor_tuple_trips),
      static_cast<unsigned long long>(report.governor_rewrite_trips),
      static_cast<unsigned long long>(report.governor_cancellations),
      static_cast<unsigned long long>(report.governor_lazy_fallbacks),
      static_cast<unsigned long long>(report.governor_index_fallbacks),
      static_cast<unsigned long long>(report.governor_max_tuples_charged),
      static_cast<unsigned long long>(
          report.governor_max_rewrite_nodes_charged));
  return out;
}

}  // namespace hql
