#include "opt/explain.h"

#include <chrono>
#include <utility>

#include "ast/metrics.h"
#include "ast/query.h"
#include "ast/typecheck.h"
#include "common/strings.h"
#include "hql/collapse.h"
#include "hql/enf.h"
#include "hql/free_dom.h"
#include "hql/ra_rewrite.h"
#include "hql/reduce.h"
#include "eval/memo.h"
#include "opt/estimator.h"

namespace hql {

namespace {

// Fills the compatibility flat fields of an ExplainReport from a snapshot.
void FillFromStats(const ExecStats& stats, ExplainReport* report) {
  report->exec = stats;

  report->views_created = stats.views_created;
  report->view_consolidations = stats.view_consolidations;
  report->view_tuples_shared = stats.view_tuples_shared;
  report->view_tuples_copied = stats.view_tuples_copied;

  report->indexes_built = stats.indexes_built;
  report->indexes_shared = stats.indexes_shared;
  report->index_probes = stats.index_probes;
  report->index_tuples_skipped = stats.index_tuples_skipped;

  report->governor_deadline_trips = stats.governor_deadline_trips;
  report->governor_tuple_trips = stats.governor_tuple_trips;
  report->governor_rewrite_trips = stats.governor_rewrite_trips;
  report->governor_cancellations = stats.governor_cancellations;
  report->governor_lazy_fallbacks = stats.governor_lazy_fallbacks;
  report->governor_index_fallbacks = stats.governor_index_fallbacks;
  report->governor_max_tuples_charged = stats.governor_max_tuples_charged;
  report->governor_max_rewrite_nodes_charged =
      stats.governor_max_rewrite_nodes_charged;
}

std::string FormatExecCounters(const ExecStats& stats) {
  std::string out;
  out += StrFormat(
      "views:      %llu created, %llu consolidations; tuples %llu shared / "
      "%llu copied\n",
      static_cast<unsigned long long>(stats.views_created),
      static_cast<unsigned long long>(stats.view_consolidations),
      static_cast<unsigned long long>(stats.view_tuples_shared),
      static_cast<unsigned long long>(stats.view_tuples_copied));
  out += StrFormat(
      "indexes:    %llu built, %llu shared; %llu probes skipping %llu "
      "scan rows\n",
      static_cast<unsigned long long>(stats.indexes_built),
      static_cast<unsigned long long>(stats.indexes_shared),
      static_cast<unsigned long long>(stats.index_probes),
      static_cast<unsigned long long>(stats.index_tuples_skipped));
  out += StrFormat(
      "columnar:   %llu batches built, %llu reused; %llu morsels, "
      "%llu rows vectorized / %llu fallback\n",
      static_cast<unsigned long long>(stats.columnar_batches_built),
      static_cast<unsigned long long>(stats.columnar_batches_reused),
      static_cast<unsigned long long>(stats.columnar_morsels_dispatched),
      static_cast<unsigned long long>(stats.columnar_rows_vectorized),
      static_cast<unsigned long long>(stats.columnar_rows_fallback));
  out += StrFormat(
      "vectorized: agg %llu rows into %llu groups; %llu when-deltas "
      "routed columnar\n",
      static_cast<unsigned long long>(stats.columnar_agg_rows_vectorized),
      static_cast<unsigned long long>(stats.columnar_agg_groups),
      static_cast<unsigned long long>(stats.columnar_when_routed));
  out += StrFormat(
      "incremental: %llu results patched, %llu edit tuples propagated, "
      "%llu fallbacks\n",
      static_cast<unsigned long long>(stats.incremental_results_patched),
      static_cast<unsigned long long>(stats.incremental_edits_propagated),
      static_cast<unsigned long long>(stats.incremental_fallbacks));
  out += StrFormat(
      "governor:   trips %llu deadline / %llu tuple / %llu rewrite, "
      "%llu cancellations; fallbacks %llu lazy / %llu index; peaks "
      "%llu tuples, %llu rewrite nodes\n",
      static_cast<unsigned long long>(stats.governor_deadline_trips),
      static_cast<unsigned long long>(stats.governor_tuple_trips),
      static_cast<unsigned long long>(stats.governor_rewrite_trips),
      static_cast<unsigned long long>(stats.governor_cancellations),
      static_cast<unsigned long long>(stats.governor_lazy_fallbacks),
      static_cast<unsigned long long>(stats.governor_index_fallbacks),
      static_cast<unsigned long long>(stats.governor_max_tuples_charged),
      static_cast<unsigned long long>(
          stats.governor_max_rewrite_nodes_charged));
  return out;
}

}  // namespace

Result<PlanReport> ExplainPlan(const QueryPtr& query, const Schema& schema,
                               const StatsCatalog& stats) {
  PlanReport report;

  HQL_ASSIGN_OR_RETURN(report.arity, InferQueryArity(query, schema));
  report.when_depth = WhenDepth(query);
  report.tree_size = TreeSize(query);
  report.dag_size = DagSize(query);

  HQL_ASSIGN_OR_RETURN(QueryPtr enf, ToEnf(query, schema));
  report.enf = enf->ToString();
  HQL_ASSIGN_OR_RETURN(CollapsedPtr tree, Collapse(enf, schema));
  report.collapsed = CollapsedToString(tree);
  report.has_mod_enf = ToModEnf(query, schema).ok();

  HQL_ASSIGN_OR_RETURN(QueryPtr reduced, Reduce(query, schema));
  report.lazy_tree_size = TreeSize(reduced);
  HQL_ASSIGN_OR_RETURN(QueryPtr simplified, SimplifyRa(reduced, schema));
  report.lazy = simplified->ToString();
  report.lazy_is_empty = simplified->kind() == QueryKind::kEmpty;

  HQL_ASSIGN_OR_RETURN(Plan plan, PlanHybrid(query, schema, stats));
  report.plan = plan.query->ToString();
  report.lazy_decisions = plan.lazy_decisions;
  report.eager_decisions = plan.eager_decisions;

  CardinalityEstimator estimator(stats);
  report.estimated_cardinality = estimator.EstimateQuery(query);
  report.lazy_cost = estimator.EstimateCost(simplified);
  report.hybrid_cost = estimator.EstimateCost(plan.query);
  double materialization = 0;
  if (enf->kind() == QueryKind::kWhen) {
    materialization =
        estimator.EstimateStateMaterialization(enf->state());
  }
  report.state_materialization = materialization;
  return report;
}

Result<ExplainReport> Explain(const QueryPtr& query, const Schema& schema,
                              const StatsCatalog& stats,
                              const MemoCache* memo) {
  ExplainReport report;
  HQL_ASSIGN_OR_RETURN(static_cast<PlanReport&>(report),
                       ExplainPlan(query, schema, stats));
  FillFromStats(AmbientExecContext().Snapshot(), &report);

  if (memo != nullptr) {
    MemoCache::Stats cache = memo->stats();
    report.has_memo = true;
    report.memo_hits = cache.hits;
    report.memo_misses = cache.misses;
    report.memo_evictions = cache.evictions;
    report.memo_entries = cache.entries;
    report.memo_cached_tuples = cache.cached_tuples;
    report.memo_hit_rate = cache.HitRate();
  }
  return report;
}

Result<AnalyzeReport> ExplainAnalyze(const QueryPtr& query, const Database& db,
                                     const Schema& schema,
                                     const AnalyzeOptions& options) {
  AnalyzeReport report;
  StatsCatalog stats = StatsCatalog::FromDatabase(db);
  HQL_ASSIGN_OR_RETURN(report.plan, ExplainPlan(query, schema, stats));

  // Execute under a fresh context so the report holds exactly this run's
  // work; the parent context is captured first so the charges still
  // propagate to whoever is accounting for us.
  ExecContext& parent = AmbientExecContext();
  ExecContext ctx;
  ctx.set_tracing(options.tracing);
  Result<Relation> result = Status::Internal("analyze never ran");
  uint64_t wall = 0;
  {
    ExecContextScope scope(&ctx);
    auto start = std::chrono::steady_clock::now();
    result = Execute(query, db, schema, options.strategy, options.planner);
    wall = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  ExecStats run = ctx.Snapshot();
  parent.MergeFrom(run);
  HQL_RETURN_IF_ERROR(result.status());

  report.exec = std::move(run);
  report.actual_rows = result.value().size();
  report.wall_micros = wall;
  return report;
}

std::string FormatExplain(const ExplainReport& report) {
  std::string out;
  out += StrFormat(
      "shape:      arity %zu, when-depth %zu, tree %.0f nodes, dag %llu "
      "nodes\n",
      report.arity, report.when_depth, report.tree_size,
      static_cast<unsigned long long>(report.dag_size));
  out += "enf:        " + report.enf + "\n";
  out += "collapsed:  " + report.collapsed + "\n";
  out += StrFormat("lazy (%.0f nodes before simplification):\n",
                   report.lazy_tree_size);
  out += "            " + report.lazy + "\n";
  if (report.lazy_is_empty) {
    out += "            (statically empty: no evaluation needed)\n";
  }
  out += "plan:       " + report.plan + "\n";
  out += StrFormat("decisions:  %d lazy, %d eager; mod-ENF (HQL-3): %s\n",
                   report.lazy_decisions, report.eager_decisions,
                   report.has_mod_enf ? "yes" : "via precise deltas");
  out += StrFormat(
      "estimates:  |result| ~%.0f, lazy cost ~%.0f, hybrid cost ~%.0f, "
      "state materialization ~%.0f tuples\n",
      report.estimated_cardinality, report.lazy_cost, report.hybrid_cost,
      report.state_materialization);
  if (report.has_memo) {
    out += StrFormat(
        "memo:       %llu hits, %llu misses (%.1f%% hit rate), %llu "
        "evictions; %llu entries holding %llu tuples\n",
        static_cast<unsigned long long>(report.memo_hits),
        static_cast<unsigned long long>(report.memo_misses),
        report.memo_hit_rate * 100.0,
        static_cast<unsigned long long>(report.memo_evictions),
        static_cast<unsigned long long>(report.memo_entries),
        static_cast<unsigned long long>(report.memo_cached_tuples));
  }
  out += FormatExecCounters(report.exec);
  return out;
}

std::string FormatExplainAnalyze(const AnalyzeReport& report) {
  const PlanReport& plan = report.plan;
  std::string out;
  out += StrFormat(
      "shape:      arity %zu, when-depth %zu, tree %.0f nodes, dag %llu "
      "nodes\n",
      plan.arity, plan.when_depth, plan.tree_size,
      static_cast<unsigned long long>(plan.dag_size));
  out += "plan:       " + plan.plan + "\n";
  out += StrFormat("decisions:  %d lazy, %d eager; mod-ENF (HQL-3): %s\n",
                   plan.lazy_decisions, plan.eager_decisions,
                   plan.has_mod_enf ? "yes" : "via precise deltas");
  out += StrFormat(
      "estimated:  |result| ~%.0f, lazy cost ~%.0f, hybrid cost ~%.0f, "
      "state materialization ~%.0f tuples\n",
      plan.estimated_cardinality, plan.lazy_cost, plan.hybrid_cost,
      plan.state_materialization);
  out += StrFormat(
      "actual:     |result| %llu rows in %.3f ms via %s\n",
      static_cast<unsigned long long>(report.actual_rows),
      static_cast<double>(report.wall_micros) / 1000.0,
      report.exec.route.empty() ? "(unrouted)" : report.exec.route.c_str());
  out += StrFormat(
      "exec:       memo %llu hits / %llu misses\n",
      static_cast<unsigned long long>(report.exec.memo_hits),
      static_cast<unsigned long long>(report.exec.memo_misses));
  out += FormatExecCounters(report.exec);
  if (!report.exec.spans.empty()) {
    out += "spans:      operator          route          rows in -> out"
           "      micros\n";
    for (const OperatorSpan& span : report.exec.spans) {
      out += StrFormat("            %-16s  %-12s  %8llu -> %-8llu  %8llu\n",
                       span.op.c_str(),
                       span.route.empty() ? "-" : span.route.c_str(),
                       static_cast<unsigned long long>(span.rows_in),
                       static_cast<unsigned long long>(span.rows_out),
                       static_cast<unsigned long long>(span.micros));
    }
  }
  return out;
}

}  // namespace hql
