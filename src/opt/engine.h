#ifndef HQL_OPT_ENGINE_H_
#define HQL_OPT_ENGINE_H_

// The public facade of the library: one process-wide Engine and one
// Session per client.
//
// Before this facade every front-end (the REPL, the stress driver, each
// test) hand-wired its own stack of PlannerOptions, Filter3Options, memo
// caches and advisor pointers. The facade makes the composition the paper
// implies a first-class object:
//
//   * EngineOptions — the validated knob surface. Every PlannerOptions
//     field reachable from a front-end lives here once, settable by name
//     (`Set("columnar", "auto")`) and bundled into named profiles
//     (`fast`, `safe`, `all-on`).
//   * Engine       — process-wide shared state: the schema, the base
//     database (the only committed state), the shared MemoCache /
//     IndexAdvisor / IncrementalCache, the default options, and session
//     admission.
//   * Session      — one client's private tree of named hypothetical
//     states over an immutable snapshot of the base. Deriving a child
//     scenario is O(delta) (CoW overlays), reads are snapshot-isolated
//     (nothing a sibling session does is observable), and every query
//     runs under the session's own ExecContext and governor budget.
//
//   Engine engine(schema, db);
//   auto session = engine.CreateSession("alice").value();
//   session->Derive("root", "layoffs", ParseHypo("{del(emp, ...)}").value());
//   Relation r = session->Query("layoffs", ParseQuery("...").value()).value();
//
// The REPL (examples/hql_shell.cpp), the network server (src/server) and
// the workload driver's --connect mode are all thin clients of this API.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ast/forward.h"
#include "common/exec_context.h"
#include "common/governor.h"
#include "common/result.h"
#include "eval/memo.h"
#include "opt/explain.h"
#include "opt/planner.h"
#include "storage/database.h"
#include "storage/index.h"
#include "storage/schema.h"

namespace hql {

class Engine;
class Session;
using SessionPtr = std::unique_ptr<Session>;

/// The single validated knob surface. A front-end never touches raw
/// PlannerOptions fields; it holds an EngineOptions (usually from a
/// profile), adjusts it with Set(), and lets the Engine/Session layer
/// compose the PlannerOptions — including the cache and advisor pointers
/// the options merely *enable*.
struct EngineOptions {
  Strategy strategy = Strategy::kHybrid;
  /// Serve repeated subplans from the engine's shared MemoCache.
  bool memo = true;
  /// Secondary-index policy; kAdvisor uses the engine's shared advisor.
  IndexMode index_mode = IndexMode::kOff;
  ColumnarMode columnar_mode = ColumnarMode::kOff;
  /// Patch cached results under small scenario edits (engine's shared
  /// IncrementalCache).
  IncrementalMode incremental_mode = IncrementalMode::kOff;

  // Planner heuristics (see opt/planner.h for semantics).
  double reuse_count = 1.0;
  double max_lazy_tree_size = 100000.0;
  double delta_fraction_threshold = 0.25;
  double incremental_edit_fraction = 0.10;
  size_t index_min_rows = 64;
  size_t columnar_min_rows = 4096;
  size_t columnar_morsel_rows = 65536;
  size_t columnar_threads = 0;

  /// Per-query governor budget (admission control): every session query
  /// runs under these limits. Unlimited by default.
  ExecBudget budget;

  /// Engine-level: CreateSession beyond this cap is rejected with
  /// kResourceExhausted. 0 = unlimited.
  size_t max_sessions = 64;

  /// The named profiles: "fast" (every performance feature on, no
  /// limits), "safe" (plain hybrid with a defensive governor budget),
  /// "all-on" (every feature on AND the defensive budget).
  static Result<EngineOptions> Profile(const std::string& name);
  static std::vector<std::string> ProfileNames();

  /// Sets one knob by name from its textual value — the single mapping
  /// behind the shell's \set command, the server's `set` op and
  /// hql_stress's --engine-* flags. Knobs: profile, strategy, memo,
  /// index, columnar, incremental, reuse_count, max_lazy_tree_size,
  /// delta_fraction, edit_fraction, index_min_rows, columnar_min_rows,
  /// morsel_rows, columnar_threads, deadline_ms, max_tuples,
  /// max_rewrite_nodes, max_sessions. InvalidArgument names the knob or
  /// the offending value.
  Status Set(const std::string& knob, const std::string& value);

  /// Structural validation (fractions in [0,1], positive sizes); Set()
  /// already validates per knob, Validate() re-checks a hand-built value.
  Status Validate() const;

  /// One-line `knob=value` listing (the shell's \set with no arguments).
  std::string Describe() const;

  /// The PlannerOptions these knobs denote. Cache/advisor pointers are
  /// supplied by the caller (normally Session::Options): the options only
  /// say *whether* each is used.
  PlannerOptions ToPlannerOptions(MemoCache* memo_cache,
                                  IndexAdvisor* advisor,
                                  IncrementalCache* incremental) const;
};

/// Info row for Session::Nodes().
struct ScenarioInfo {
  std::string name;
  std::string parent;  // empty for the root
  bool materialized = false;
};

/// Process-wide shared state. Thread-safe: any number of sessions (and
/// the administrative entry points below) may run concurrently.
class Engine {
 public:
  /// An engine over an empty database of the given schema.
  explicit Engine(Schema schema, EngineOptions options = EngineOptions());
  /// An engine adopting an existing database (schema taken from it).
  explicit Engine(Database db, EngineOptions options = EngineOptions());
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Opens a session over a snapshot of the current base state.
  /// kResourceExhausted once `max_sessions` sessions are live. The session
  /// must not outlive the engine. `name` is informational (connection ids,
  /// logs); it need not be unique.
  Result<SessionPtr> CreateSession(std::string name = "");
  size_t live_sessions() const;

  // -- committed-state administration (REPL \schema/\gen/\apply, server
  //    admin ops). Open sessions keep their snapshots; they observe a new
  //    base only via Session::Refresh(). --

  /// Adds a relation to the schema (existing relations keep their data).
  Status DeclareRelation(const std::string& name, size_t arity);
  /// DB[name <- value]; arity must match the schema.
  Status SetRelation(const std::string& name, Relation value);
  /// Commits `update` to the base state.
  Status Apply(const UpdatePtr& update);
  /// Replaces schema and base wholesale (\open, seeding).
  void ResetDatabase(Database db);

  /// A snapshot of the base (CoW: refcount bumps, no tuple copies).
  Database Snapshot() const;
  Schema schema() const;
  /// Bumped by every successful DeclareRelation/SetRelation/Apply/Reset.
  uint64_t base_version() const;

  /// Engine-wide default options; sessions copy them at creation.
  EngineOptions options() const;
  Status SetOptions(const EngineOptions& options);

  // Shared caches (exposed for stats surfaces; sessions wire them
  // automatically).
  MemoCache& memo() { return memo_; }
  IndexAdvisor& advisor() { return advisor_; }
  IncrementalCache& incremental_cache() { return incremental_; }

 private:
  friend class Session;
  void ReleaseSession();

  mutable std::mutex mu_;
  Schema schema_;
  Database base_;
  uint64_t base_version_ = 0;
  EngineOptions options_;
  size_t live_sessions_ = 0;

  MemoCache memo_;
  IndexAdvisor advisor_;
  IncrementalCache incremental_;
};

/// One client's scenario tree. A session is owned by a single logical
/// client; its methods may be called from that client's thread while
/// Cancel() arrives from any other thread (the server uses this for
/// disconnect-mid-query cleanup).
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& name() const { return name_; }

  // -- scenario-tree ops. Nodes are named; "root" is the base snapshot. --

  /// Adds scenario `child` below `parent`, reached by hypothetical update
  /// `edge`. AlreadyExists / NotFound on name clashes; the child state is
  /// materialized lazily, O(|edge delta|) from the parent's state.
  Status Derive(const std::string& parent, const std::string& child,
                const HypoExprPtr& edge);

  /// Replaces `node`'s edge. The node's and every descendant's
  /// materialized state is invalidated (recomputed on next use). The root
  /// cannot be edited.
  Status Edit(const std::string& node, const HypoExprPtr& edge);

  /// Drops `node` and its whole subtree. The root cannot be dropped.
  Status Drop(const std::string& node);

  /// The value `query` has at scenario `node`, under the session's
  /// options, context and governor budget.
  Result<Relation> Query(const std::string& node, const QueryPtr& query);

  /// The difference (Q at a) - (Q at b) of Example 2.1.
  Result<Relation> Compare(const std::string& a, const std::string& b,
                           const QueryPtr& query);

  /// EXPLAIN ANALYZE at a scenario node (the shell's \analyze).
  Result<AnalyzeReport> Analyze(const std::string& node,
                                const QueryPtr& query);

  /// All live scenarios, root first, then sorted by name.
  std::vector<ScenarioInfo> Nodes() const;
  size_t NumNodes() const;

  // -- options & observability --

  /// Session-local knob override (shell \set, wire `set`); same knob
  /// grammar as EngineOptions::Set. `max_sessions` is engine-level and
  /// rejected here.
  Status Set(const std::string& knob, const std::string& value);
  Status SetProfile(const std::string& profile);
  EngineOptions options() const;

  /// This session's accumulated execution stats.
  ExecStats Stats() const;
  /// The session's live context (the shell installs it around parsing /
  /// direct evaluation too).
  ExecContext& exec_context() { return exec_; }

  /// The PlannerOptions a query at this session runs under (shared caches
  /// wired in). Exposed so thin clients can run side computations — e.g.
  /// the shell's \explain — under the session's exact configuration.
  PlannerOptions PlannerConfig() const;

  /// Trips every in-flight and future query with kCancelled. Used by the
  /// server when a connection drops mid-query; a cancelled session is
  /// only good for destruction.
  void Cancel();
  bool cancelled() const { return cancel_->cancelled(); }

  /// Re-snapshots the base from the engine (drops every derived
  /// scenario's materialized state so the tree re-derives over the new
  /// base). Fails with kInvalidArgument when the schema changed while
  /// scenarios other than the root exist.
  Status Refresh();

  /// The base snapshot this session reads (for tests and the shell's \db).
  Database BaseSnapshot() const;
  /// The fully materialized hypothetical state at `node` (the shell's
  /// `\db <node>`): [path](base), computed O(delta) from the nearest
  /// materialized ancestor and cached until an Edit/Refresh invalidates it.
  Result<Database> StateAt(const std::string& node);
  /// Engine base version this session's snapshot was taken at.
  uint64_t snapshot_version() const { return snapshot_version_; }

 private:
  friend class Engine;
  Session(Engine* engine, std::string name, Database base,
          uint64_t base_version, EngineOptions options);

  struct Node {
    std::string name;
    int parent = -1;
    HypoExprPtr edge;                  // null for the root
    std::shared_ptr<Database> state;   // lazily materialized; root = base
  };

  int FindNode(const std::string& name) const;  // -1 when absent
  /// Materializes (and caches) the state of node `index`.
  Result<std::shared_ptr<Database>> StateOf(int index);
  void InvalidateSubtree(int index);
  /// Composition of the edges on the path root -> index (null at root).
  HypoExprPtr PathState(int index) const;
  Result<Relation> RunAt(int index, const QueryPtr& query);

  Engine* engine_;
  std::string name_;
  CancelTokenPtr cancel_;

  mutable std::mutex mu_;
  Database base_;
  uint64_t snapshot_version_ = 0;
  EngineOptions options_;
  std::vector<Node> nodes_;  // dropped nodes have empty names
  ExecContext exec_;
};

}  // namespace hql

#endif  // HQL_OPT_ENGINE_H_
