#include "opt/session.h"

#include <optional>
#include <utility>

#include "ast/hypo.h"
#include "ast/query.h"
#include "common/thread_pool.h"
#include "eval/filter1.h"
#include "eval/filter3.h"
#include "eval/materialize.h"
#include "hql/collapse.h"
#include "hql/enf.h"
#include "hql/free_dom.h"

namespace hql {

Result<HypotheticalSession> HypotheticalSession::Create(
    const HypoExprPtr& state, const Database& db, const Schema& schema,
    const PlannerOptions& options) {
  if (state == nullptr) {
    return Status::InvalidArgument("null hypothetical state");
  }
  HypotheticalSession session(db, schema);
  session.index_config_ = options.index_config();

  // Materialize the precise delta first; it is enough to decide the
  // representation (the xsub is recoverable from base + delta when the
  // decision goes the other way).
  HQL_ASSIGN_OR_RETURN(DeltaValue delta,
                       MaterializeDelta(state, db, schema, options.memo));
  double affected_base = 0;
  for (const auto& [name, pair] : delta.pairs()) {
    (void)pair;
    HQL_ASSIGN_OR_RETURN(RelationView base, db.GetView(name));
    affected_base += static_cast<double>(base.size());
  }
  double change = static_cast<double>(delta.TotalTuples());
  if (options.delta_fraction_threshold > 0 && affected_base > 0 &&
      change < options.delta_fraction_threshold * affected_base) {
    session.uses_delta_ = true;
    session.delta_ = std::move(delta);
    return session;
  }
  HQL_ASSIGN_OR_RETURN(session.xsub_,
                       MaterializeXsub(state, db, schema, options.memo));
  return session;
}

Result<Relation> HypotheticalSession::Evaluate(const QueryPtr& query) const {
  if (query == nullptr) return Status::InvalidArgument("null query");
  HQL_ASSIGN_OR_RETURN(QueryPtr enf, ToEnf(query, *schema_));
  if (uses_delta_) {
    HQL_ASSIGN_OR_RETURN(CollapsedPtr tree, Collapse(enf, *schema_));
    Filter3Options options;
    options.collapsed = tree;
    options.env = &delta_;
    options.indexes = index_config_;
    return RunFilter3(nullptr, *db_, db_->schema(), options);
  }
  Filter1Options options;
  options.env = &xsub_;
  return RunFilter1(enf, *db_, options);
}

uint64_t HypotheticalSession::materialized_tuples() const {
  return uses_delta_ ? delta_.TotalTuples() : xsub_.TotalTuples();
}

namespace {

// One alternative of the family: Q when s (or Q itself at the root),
// governed by its own ExecGovernor so one alternative's budget trip never
// eats a sibling's, and observed by its own ExecContext so `out_stats`
// holds exactly this alternative's work. `pool_cancel` (null on the serial
// path) is the pool's first-hard-failure token; `tracing` is inherited
// from the caller's ambient context.
Result<Relation> EvalOneAlternative(const QueryPtr& query,
                                    const HypoExprPtr& state,
                                    const Database& db, const Schema& schema,
                                    const AlternativesOptions& options,
                                    const CancelTokenPtr& pool_cancel,
                                    bool tracing, ExecStats* out_stats) {
  QueryPtr q = state == nullptr ? query : Query::When(query, state);
  ExecContext ctx;
  ctx.set_tracing(tracing);
  Result<Relation> result = Status::Internal("alternative never ran");
  {
    // The governor lives inside the context scope: its destructor charges
    // the high-water marks to the ambient context, which must still be ctx.
    ExecContextScope ctx_scope(&ctx);
    ExecGovernor gov(options.planner.budget, options.planner.cancel_token,
                     pool_cancel);
    GovernorScope scope(&gov);
    result = Execute(q, db, schema, options.strategy, options.planner);
  }
  *out_stats = ctx.Snapshot();
  return result;
}

// A failure that indicates something broke (as opposed to a budget trip or
// a cancellation, which are this alternative's own governed outcome).
bool IsHardFailure(const Status& s) {
  return !s.ok() && s.code() != StatusCode::kCancelled &&
         s.code() != StatusCode::kResourceExhausted;
}

Status NeverRan() {
  return Status::Cancelled("alternative cancelled before it ran");
}

}  // namespace

std::vector<Result<Relation>> EvalAlternativesPartial(
    const QueryPtr& query, const std::vector<HypoExprPtr>& states,
    const Database& db, const Schema& schema,
    const AlternativesOptions& options) {
  const size_t n = states.size();
  std::vector<std::optional<Result<Relation>>> slots(n);
  if (query == nullptr) {
    std::vector<Result<Relation>> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(Status::InvalidArgument("null query"));
    }
    return out;
  }

  size_t threads = options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                            : options.num_threads;
  if (threads > n) threads = n;

  // Each slot gets its own ExecContext (built inside EvalOneAlternative);
  // tracing follows the caller's ambient context, and the input-order
  // rollup lands back on it below.
  ExecContext& parent = AmbientExecContext();
  const bool tracing = parent.tracing();
  std::vector<ExecStats> stats(n);

  if (threads <= 1) {
    // Serial loop with the same semantics as the pool: a hard failure
    // cancels (skips) everything after it, budget trips do not.
    bool hard_failed = false;
    for (size_t i = 0; i < n; ++i) {
      if (hard_failed) {
        slots[i] = NeverRan();
        continue;
      }
      Result<Relation> r = EvalOneAlternative(query, states[i], db, schema,
                                              options, nullptr, tracing,
                                              &stats[i]);
      hard_failed = IsHardFailure(r.status());
      slots[i] = std::move(r);
    }
  } else {
    // Fan one task per alternative out across the pool. Tasks only write
    // their own slot; the pool's WaitAll() provides the synchronization
    // that makes the slots safe to read afterwards. Returning the hard
    // failure to the pool cancels its batch token, which both drains the
    // still-queued tasks and trips the running siblings' governors.
    ThreadPool pool(threads);
    const CancelTokenPtr pool_cancel = pool.cancel_token();
    for (size_t i = 0; i < n; ++i) {
      pool.Submit(std::function<Status()>([&, i]() -> Status {
        Result<Relation> r = EvalOneAlternative(query, states[i], db, schema,
                                                options, pool_cancel, tracing,
                                                &stats[i]);
        Status hard =
            IsHardFailure(r.status()) ? r.status() : Status::OK();
        slots[i] = std::move(r);
        return hard;
      }));
    }
    pool.WaitAll();
    for (size_t i = 0; i < n; ++i) {
      if (!slots[i].has_value()) slots[i] = NeverRan();  // drained unrun
    }
  }

  // Deterministic family rollup: merge in input order, never in completion
  // order, so repeated runs report identically.
  ExecStats family;
  for (const ExecStats& s : stats) family.MergeFrom(s);
  parent.MergeFrom(family);
  if (options.slot_stats != nullptr) *options.slot_stats = std::move(stats);
  if (options.family_stats != nullptr) *options.family_stats = std::move(family);

  std::vector<Result<Relation>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(*std::move(slots[i]));
  return out;
}

Result<std::vector<Relation>> EvalAlternatives(
    const QueryPtr& query, const std::vector<HypoExprPtr>& states,
    const Database& db, const Schema& schema,
    const AlternativesOptions& options) {
  if (query == nullptr) return Status::InvalidArgument("null query");
  if (states.empty()) return std::vector<Relation>();

  std::vector<Result<Relation>> partial =
      EvalAlternativesPartial(query, states, db, schema, options);
  // Deterministic error selection regardless of which sibling a pool-wide
  // cancellation reached first: prefer the first non-cancellation error by
  // input order (the root cause), then the first error of any kind.
  for (const Result<Relation>& r : partial) {
    if (!r.ok() && r.status().code() != StatusCode::kCancelled) {
      return r.status();
    }
  }
  for (const Result<Relation>& r : partial) {
    if (!r.ok()) return r.status();
  }
  std::vector<Relation> results;
  results.reserve(partial.size());
  for (Result<Relation>& r : partial) results.push_back(std::move(r).value());
  return results;
}

}  // namespace hql
