#include "opt/session.h"

#include <optional>
#include <utility>

#include "ast/hypo.h"
#include "ast/query.h"
#include "common/thread_pool.h"
#include "eval/filter1.h"
#include "eval/filter3.h"
#include "eval/materialize.h"
#include "hql/collapse.h"
#include "hql/enf.h"
#include "hql/free_dom.h"

namespace hql {

Result<HypotheticalSession> HypotheticalSession::Create(
    const HypoExprPtr& state, const Database& db, const Schema& schema,
    const PlannerOptions& options) {
  if (state == nullptr) {
    return Status::InvalidArgument("null hypothetical state");
  }
  HypotheticalSession session(db, schema);
  session.index_config_ = options.index_config();

  // Materialize the precise delta first; it is enough to decide the
  // representation (the xsub is recoverable from base + delta when the
  // decision goes the other way).
  HQL_ASSIGN_OR_RETURN(DeltaValue delta,
                       MaterializeDelta(state, db, schema, options.memo));
  double affected_base = 0;
  for (const auto& [name, pair] : delta.pairs()) {
    (void)pair;
    HQL_ASSIGN_OR_RETURN(RelationView base, db.GetView(name));
    affected_base += static_cast<double>(base.size());
  }
  double change = static_cast<double>(delta.TotalTuples());
  if (options.delta_fraction_threshold > 0 && affected_base > 0 &&
      change < options.delta_fraction_threshold * affected_base) {
    session.uses_delta_ = true;
    session.delta_ = std::move(delta);
    return session;
  }
  HQL_ASSIGN_OR_RETURN(session.xsub_,
                       MaterializeXsub(state, db, schema, options.memo));
  return session;
}

Result<Relation> HypotheticalSession::Evaluate(const QueryPtr& query) const {
  if (query == nullptr) return Status::InvalidArgument("null query");
  HQL_ASSIGN_OR_RETURN(QueryPtr enf, ToEnf(query, *schema_));
  if (uses_delta_) {
    HQL_ASSIGN_OR_RETURN(CollapsedPtr tree, Collapse(enf, *schema_));
    return Filter3WithEnv(tree, *db_, delta_, index_config_);
  }
  return Filter1WithEnv(enf, *db_, xsub_);
}

uint64_t HypotheticalSession::materialized_tuples() const {
  return uses_delta_ ? delta_.TotalTuples() : xsub_.TotalTuples();
}

namespace {

// One alternative of the family: Q when s (or Q itself at the root).
Result<Relation> EvalOneAlternative(const QueryPtr& query,
                                    const HypoExprPtr& state,
                                    const Database& db, const Schema& schema,
                                    const AlternativesOptions& options) {
  QueryPtr q = state == nullptr ? query : Query::When(query, state);
  return Execute(q, db, schema, options.strategy, options.planner);
}

}  // namespace

Result<std::vector<Relation>> EvalAlternatives(
    const QueryPtr& query, const std::vector<HypoExprPtr>& states,
    const Database& db, const Schema& schema,
    const AlternativesOptions& options) {
  if (query == nullptr) return Status::InvalidArgument("null query");
  const size_t n = states.size();
  if (n == 0) return std::vector<Relation>();

  size_t threads = options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                            : options.num_threads;
  if (threads > n) threads = n;

  if (threads == 1) {
    std::vector<Relation> results;
    results.reserve(n);
    for (const HypoExprPtr& state : states) {
      HQL_ASSIGN_OR_RETURN(
          Relation r, EvalOneAlternative(query, state, db, schema, options));
      results.push_back(std::move(r));
    }
    return results;
  }

  // Fan one task per alternative out across the pool. Tasks only write
  // their own slot; the pool's Wait() provides the synchronization that
  // makes the slots safe to read afterwards.
  std::vector<std::optional<Relation>> slots(n);
  std::vector<Status> errors(n);
  {
    ThreadPool pool(threads);
    for (size_t i = 0; i < n; ++i) {
      pool.Submit([&, i] {
        Result<Relation> r =
            EvalOneAlternative(query, states[i], db, schema, options);
        if (r.ok()) {
          slots[i] = std::move(r).value();
        } else {
          errors[i] = r.status();
        }
      });
    }
    pool.Wait();
  }

  // First error by input order wins, matching the serial loop's behavior.
  for (size_t i = 0; i < n; ++i) {
    if (!errors[i].ok()) return errors[i];
  }
  std::vector<Relation> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) results.push_back(*std::move(slots[i]));
  return results;
}

}  // namespace hql
