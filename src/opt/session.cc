#include "opt/session.h"

#include "ast/hypo.h"
#include "eval/filter1.h"
#include "eval/filter3.h"
#include "eval/materialize.h"
#include "hql/collapse.h"
#include "hql/enf.h"
#include "hql/free_dom.h"

namespace hql {

Result<HypotheticalSession> HypotheticalSession::Create(
    const HypoExprPtr& state, const Database& db, const Schema& schema,
    const PlannerOptions& options) {
  if (state == nullptr) {
    return Status::InvalidArgument("null hypothetical state");
  }
  HypotheticalSession session(db, schema);

  // Materialize the precise delta first; it is enough to decide the
  // representation (the xsub is recoverable from base + delta when the
  // decision goes the other way).
  HQL_ASSIGN_OR_RETURN(DeltaValue delta,
                       MaterializeDelta(state, db, schema));
  double affected_base = 0;
  for (const auto& [name, pair] : delta.pairs()) {
    (void)pair;
    HQL_ASSIGN_OR_RETURN(Relation base, db.Get(name));
    affected_base += static_cast<double>(base.size());
  }
  double change = static_cast<double>(delta.TotalTuples());
  if (options.delta_fraction_threshold > 0 && affected_base > 0 &&
      change < options.delta_fraction_threshold * affected_base) {
    session.uses_delta_ = true;
    session.delta_ = std::move(delta);
    return session;
  }
  HQL_ASSIGN_OR_RETURN(session.xsub_, MaterializeXsub(state, db, schema));
  return session;
}

Result<Relation> HypotheticalSession::Evaluate(const QueryPtr& query) const {
  if (query == nullptr) return Status::InvalidArgument("null query");
  HQL_ASSIGN_OR_RETURN(QueryPtr enf, ToEnf(query, *schema_));
  if (uses_delta_) {
    HQL_ASSIGN_OR_RETURN(CollapsedPtr tree, Collapse(enf, *schema_));
    return Filter3WithEnv(tree, *db_, delta_);
  }
  return Filter1WithEnv(enf, *db_, xsub_);
}

uint64_t HypotheticalSession::materialized_tuples() const {
  return uses_delta_ ? delta_.TotalTuples() : xsub_.TotalTuples();
}

}  // namespace hql
