#include "opt/planner.h"

#include <algorithm>
#include <vector>

#include "ast/hypo.h"
#include "ast/metrics.h"
#include "ast/query.h"
#include "common/check.h"
#include "common/exec_context.h"
#include "eval/direct.h"
#include "eval/filter1.h"
#include "eval/filter2.h"
#include "eval/filter3.h"
#include "eval/memo.h"
#include "eval/ra_eval.h"
#include "hql/enf.h"
#include "hql/ra_rewrite.h"
#include "hql/reduce.h"
#include "hql/free_dom.h"
#include "hql/subst.h"
#include "opt/estimator.h"

namespace hql {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kDirect:
      return "direct";
    case Strategy::kLazy:
      return "lazy";
    case Strategy::kFilter1:
      return "filter1";
    case Strategy::kFilter2:
      return "filter2";
    case Strategy::kFilter3:
      return "filter3";
    case Strategy::kHybrid:
      return "hybrid";
  }
  return "?";
}

namespace {

// SimplifyMixed (hql/ra_rewrite.h) simplifies the pure-RA regions of a
// (possibly hypothetical) query; shared with the delta route's block
// preparation (eval/filter3.cc).

struct HybridWalker {
  const Schema& schema;
  const CardinalityEstimator estimator;
  const PlannerOptions& options;
  int lazy_decisions = 0;
  int eager_decisions = 0;

  HybridWalker(const Schema& s, const StatsCatalog& stats,
               const PlannerOptions& o)
      : schema(s), estimator(stats), options(o) {}

  Result<QueryPtr> Walk(const QueryPtr& q) {
    switch (q->kind()) {
      case QueryKind::kRel:
      case QueryKind::kEmpty:
      case QueryKind::kSingleton:
        return q;
      case QueryKind::kSelect: {
        HQL_ASSIGN_OR_RETURN(QueryPtr c, Walk(q->left()));
        return Query::Select(q->predicate(), std::move(c));
      }
      case QueryKind::kProject: {
        HQL_ASSIGN_OR_RETURN(QueryPtr c, Walk(q->left()));
        return Query::Project(q->columns(), std::move(c));
      }
      case QueryKind::kAggregate: {
        HQL_ASSIGN_OR_RETURN(QueryPtr c, Walk(q->left()));
        return Query::Aggregate(q->columns(), q->agg_func(), q->agg_column(),
                                std::move(c));
      }
      case QueryKind::kUnion:
      case QueryKind::kIntersect:
      case QueryKind::kProduct:
      case QueryKind::kDifference: {
        HQL_ASSIGN_OR_RETURN(QueryPtr l, Walk(q->left()));
        HQL_ASSIGN_OR_RETURN(QueryPtr r, Walk(q->right()));
        switch (q->kind()) {
          case QueryKind::kUnion:
            return Query::Union(std::move(l), std::move(r));
          case QueryKind::kIntersect:
            return Query::Intersect(std::move(l), std::move(r));
          case QueryKind::kProduct:
            return Query::Product(std::move(l), std::move(r));
          default:
            return Query::Difference(std::move(l), std::move(r));
        }
      }
      case QueryKind::kJoin: {
        HQL_ASSIGN_OR_RETURN(QueryPtr l, Walk(q->left()));
        HQL_ASSIGN_OR_RETURN(QueryPtr r, Walk(q->right()));
        return Query::Join(q->predicate(), std::move(l), std::move(r));
      }
      case QueryKind::kWhen:
        return WalkWhen(q);
    }
    return Status::Internal("unknown query kind in PlanHybrid");
  }

  Result<QueryPtr> WalkWhen(const QueryPtr& q) {
    HQL_CHECK(q->state()->kind() == HypoKind::kSubst);  // input is ENF
    HQL_ASSIGN_OR_RETURN(QueryPtr body, Walk(q->left()));
    std::vector<Binding> bindings;
    bool pure = IsPureRelAlg(body);
    for (const Binding& b : q->state()->bindings()) {
      HQL_ASSIGN_OR_RETURN(QueryPtr v, Walk(b.query));
      pure = pure && IsPureRelAlg(v);
      bindings.push_back(Binding{b.rel_name, std::move(v)});
    }
    HypoExprPtr state = HypoExpr::Subst(bindings);
    QueryPtr eager_form = Query::When(body, state);

    if (pure) {
      Substitution subst;
      for (const Binding& b : bindings) subst.Bind(b.rel_name, b.query);
      QueryPtr applied = subst.Apply(body);
      if (TreeSize(applied) <= options.max_lazy_tree_size) {
        double lazy_cost = estimator.EstimateCost(applied);
        double eager_cost =
            estimator.EstimateStateMaterialization(state) /
                std::max(1.0, options.reuse_count) +
            estimator.EstimateCost(eager_form);
        if (lazy_cost <= eager_cost) {
          ++lazy_decisions;
          return applied;
        }
      }
    }
    ++eager_decisions;
    return eager_form;
  }
};

// Sums, over every hypothetical state in `q`, the estimated tuples the
// state writes (materialization) and the current cardinality of the
// relations it writes (affected base) — the inputs to the delta-route
// decision.
void CollectStateLoad(const QueryPtr& q, const StatsCatalog& stats,
                      const CardinalityEstimator& estimator,
                      double* materialization, double* affected_base) {
  switch (q->kind()) {
    case QueryKind::kRel:
    case QueryKind::kEmpty:
    case QueryKind::kSingleton:
      return;
    case QueryKind::kSelect:
    case QueryKind::kProject:
    case QueryKind::kAggregate:
      CollectStateLoad(q->left(), stats, estimator, materialization,
                       affected_base);
      return;
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kJoin:
    case QueryKind::kDifference:
      CollectStateLoad(q->left(), stats, estimator, materialization,
                       affected_base);
      CollectStateLoad(q->right(), stats, estimator, materialization,
                       affected_base);
      return;
    case QueryKind::kWhen: {
      CollectStateLoad(q->left(), stats, estimator, materialization,
                       affected_base);
      // For {ins/del} chains the change is the atoms' arguments, not the
      // whole new relation value: charge the argument estimates.
      if (q->state()->kind() == HypoKind::kUpdateState) {
        std::vector<UpdatePtr> stack = {q->state()->update()};
        while (!stack.empty()) {
          UpdatePtr u = stack.back();
          stack.pop_back();
          switch (u->kind()) {
            case UpdateKind::kInsert:
            case UpdateKind::kDelete:
              *materialization += estimator.EstimateQuery(u->query());
              // For an overlay-backed relation the eager route pays for
              // consolidating base + delta, not just the current size.
              *affected_base += static_cast<double>(stats.UpperBoundOf(
                  u->rel_name(), stats.CardinalityOf(u->rel_name(), 1000)));
              break;
            case UpdateKind::kSeq:
              stack.push_back(u->first());
              stack.push_back(u->second());
              break;
            case UpdateKind::kCond:
              stack.push_back(u->then_branch());
              stack.push_back(u->else_branch());
              break;
          }
        }
      } else {
        *materialization +=
            estimator.EstimateStateMaterialization(q->state());
        for (const std::string& name : DomNames(q->state())) {
          *affected_base += static_cast<double>(
              stats.UpperBoundOf(name, stats.CardinalityOf(name, 1000)));
        }
      }
      return;
    }
  }
}

}  // namespace

Result<Plan> PlanHybrid(const QueryPtr& query, const Schema& schema,
                        const StatsCatalog& stats,
                        const PlannerOptions& options) {
  if (query == nullptr) {
    return Status::InvalidArgument("PlanHybrid: query must not be null");
  }
  HQL_ASSIGN_OR_RETURN(QueryPtr enf, ToEnf(query, schema));
  HybridWalker walker(schema, stats, options);
  HQL_ASSIGN_OR_RETURN(QueryPtr planned, walker.Walk(enf));
  if (options.simplify) {
    HQL_ASSIGN_OR_RETURN(planned, SimplifyMixed(planned, schema));
  }
  Plan plan;
  plan.query = std::move(planned);
  plan.lazy_decisions = walker.lazy_decisions;
  plan.eager_decisions = walker.eager_decisions;
  return plan;
}

namespace {

// Pure-RA evaluation on the lazy / hybrid-lazy routes, with incremental
// re-evaluation when the options enable it. The decision lattice:
//
//   cold cache ........................ full evaluation (recorded)
//   unpatchable (base replaced, leaf
//   uncovered, non-pure plan) ......... fallback counter + full evaluation
//   edit too large / estimator says
//   recompute ......................... fallback counter + full evaluation
//   propagation hits a rule gap
//   (kUnimplemented) .................. fallback counter + full evaluation
//   governor trip / cancellation ...... surfaces as the error it is
//   otherwise ......................... patch the cached result, O(|edit|)
//
// Every full evaluation runs with a recorder so the *next* edit can patch.
// Lives here rather than in eval/ because the estimator gate needs the
// opt-layer cost model (hql_opt already links hql_eval; the reverse
// dependency would cycle).
Result<Relation> EvalRaIncremental(const QueryPtr& query, const Database& db,
                                   const RelResolver& resolver, EvalMemo memo,
                                   const PlannerOptions& options) {
  const IncrementalConfig inc = options.incremental_config();
  if (!inc.enabled()) return EvalRa(query, resolver, memo);

  HQL_ASSIGN_OR_RETURN(IncrementalAttempt attempt,
                       ComputeIncrementalEdits(query, db, inc.cache));
  if (attempt.entry != nullptr) {
    bool patch = attempt.patchable;
    if (patch && attempt.edit_tuples > 0) {
      double changed = static_cast<double>(attempt.changed_relation_tuples);
      if (static_cast<double>(attempt.edit_tuples) >
          inc.max_edit_fraction * std::max(1.0, changed)) {
        patch = false;
      }
    }
    if (patch) {
      StatsCatalog stats = StatsCatalog::FromDatabase(db);
      CardinalityEstimator estimator(stats);
      double patch_cost = estimator.EstimateIncrementalCost(
          query, static_cast<double>(attempt.edit_tuples));
      if (patch_cost >= estimator.EstimateCost(query)) patch = false;
    }
    if (patch) {
      Result<RelationView> patched = ApplyIncrementalPatch(
          query, attempt, memo.state_fingerprint, inc.cache);
      if (patched.ok()) return patched->Materialize();
      if (patched.status().code() != StatusCode::kUnimplemented) {
        return patched.status();
      }
    }
    // A warm cache that could not serve this execution is the interesting
    // signal; a cold one is just the first run.
    AmbientExecContext().AddIncrementalFallback();
  }

  IncrementalRecorder recorder;
  memo.recorder = &recorder;
  HQL_ASSIGN_OR_RETURN(RelationView out, EvalRaView(query, resolver, memo));
  inc.cache->Insert(query->Fingerprint(),
                    recorder.TakeEntry(out, memo.state_fingerprint));
  return out.Materialize();
}

// The strategy switch, run under whatever governor is ambient. Fallback and
// governor installation live in the public Execute wrapper below.
Result<Relation> ExecuteImpl(const QueryPtr& query, const Database& db,
                             const Schema& schema, Strategy strategy,
                             const PlannerOptions& options) {
  const IndexConfig icfg = options.index_config();
  const ColumnarConfig ccfg = options.columnar_config();
  // Each branch tags the ambient ExecContext (and any spans recorded below
  // it) with the execution route actually taken — the explain-analyze
  // answer to "which point of the lazy<->eager spectrum ran".
  switch (strategy) {
    case Strategy::kDirect: {
      ExecRouteScope route("direct");
      AmbientExecContext().NoteRoute("direct");
      return EvalDirect(query, db);
    }
    case Strategy::kLazy: {
      ExecRouteScope route("lazy");
      AmbientExecContext().NoteRoute("lazy");
      HQL_ASSIGN_OR_RETURN(QueryPtr reduced, Reduce(query, schema));
      if (options.simplify) {
        HQL_ASSIGN_OR_RETURN(reduced, SimplifyRa(reduced, schema));
      }
      DatabaseResolver resolver(db);
      return EvalRaIncremental(
          reduced, db, resolver,
          EvalMemo{options.memo, FingerprintState(db), icfg, ccfg}, options);
    }
    case Strategy::kFilter1: {
      ExecRouteScope route("eager");
      AmbientExecContext().NoteRoute("eager");
      HQL_ASSIGN_OR_RETURN(QueryPtr enf, ToEnf(query, schema));
      return RunFilter1(enf, db);
    }
    case Strategy::kFilter2: {
      ExecRouteScope route("eager");
      AmbientExecContext().NoteRoute("eager");
      HQL_ASSIGN_OR_RETURN(QueryPtr enf, ToEnf(query, schema));
      return RunFilter2(enf, db, schema);
    }
    case Strategy::kFilter3: {
      ExecRouteScope route("delta");
      AmbientExecContext().NoteRoute("delta");
      Filter3Options f3;
      f3.indexes = icfg;
      f3.columnar = ccfg;
      return RunFilter3(query, db, schema, f3);
    }
    case Strategy::kHybrid: {
      StatsCatalog stats = StatsCatalog::FromDatabase(db);
      // Delta route: if every state is an atomic update chain (mod-ENF)
      // and the estimated change is a small fraction of the data, HQL-3's
      // streaming operators beat both substitution and xsub
      // materialization (Section 5.5).
      if (options.delta_fraction_threshold > 0 &&
          !IsPureRelAlg(query) && ToModEnf(query, schema).ok()) {
        CardinalityEstimator estimator(stats);
        double materialization = 0;
        double affected_base = 0;
        CollectStateLoad(query, stats, estimator, &materialization,
                         &affected_base);
        if (affected_base > 0 &&
            materialization <
                options.delta_fraction_threshold * affected_base) {
          ExecRouteScope route("hybrid-delta");
          AmbientExecContext().NoteRoute("hybrid-delta");
          Filter3Options f3;
          f3.indexes = icfg;
          f3.columnar = ccfg;
          return RunFilter3(query, db, schema, f3);
        }
      }
      HQL_ASSIGN_OR_RETURN(Plan plan,
                           PlanHybrid(query, schema, stats, options));
      if (IsPureRelAlg(plan.query)) {
        ExecRouteScope route("hybrid-lazy");
        AmbientExecContext().NoteRoute("hybrid-lazy");
        DatabaseResolver resolver(db);
        return EvalRaIncremental(
            plan.query, db, resolver,
            EvalMemo{options.memo, FingerprintState(db), icfg, ccfg}, options);
      }
      ExecRouteScope route("hybrid-eager");
      AmbientExecContext().NoteRoute("hybrid-eager");
      return RunFilter2(plan.query, db, schema);
    }
  }
  return Status::Internal("unknown strategy");
}

// Runs ExecuteImpl and, when the ambient governor tripped on the rewrite
// budget (the recoverable trip kind — an Example 2.4 blow-up caught before
// evaluation), retries along the fallback lattice lazy -> hybrid -> eager.
// The rewrite counter rewinds at each step; non-rewrite trips (deadline,
// tuple budget, cancellation) are never retried.
Result<Relation> ExecuteWithFallback(const QueryPtr& query, const Database& db,
                                     const Schema& schema, Strategy strategy,
                                     const PlannerOptions& options) {
  HQL_RETURN_IF_ERROR(GovernorCheck());  // cancel-before-start
  Result<Relation> result = ExecuteImpl(query, db, schema, strategy, options);
  ExecGovernor* gov = CurrentGovernor();
  PlannerOptions retry = options;
  while (!result.ok() && gov != nullptr && gov->rewrite_tripped() &&
         (strategy == Strategy::kLazy || strategy == Strategy::kHybrid)) {
    if (!gov->ClearRewriteTrip()) break;
    AddLazyFallback();
    if (strategy == Strategy::kLazy) {
      strategy = Strategy::kHybrid;
      // Clamp the hybrid planner's lazy expansion to the rewrite budget so
      // the retry plans eager where the reduction just blew up.
      if (options.budget.max_rewrite_nodes > 0) {
        retry.max_lazy_tree_size =
            std::min(retry.max_lazy_tree_size,
                     static_cast<double>(options.budget.max_rewrite_nodes));
      }
    } else {
      strategy = Strategy::kFilter2;
    }
    result = ExecuteImpl(query, db, schema, strategy, retry);
  }
  // A kernel trip at the plan root can leave a truncated relation behind an
  // OK status; the final check turns it into the trip error.
  if (result.ok()) HQL_RETURN_IF_ERROR(GovernorCheck());
  return result;
}

}  // namespace

Result<Relation> Execute(const QueryPtr& query, const Database& db,
                         const Schema& schema, Strategy strategy,
                         const PlannerOptions& options) {
  if (query == nullptr) {
    return Status::InvalidArgument("Execute: query must not be null");
  }
  // Install a governor when the options ask for one and none is ambient
  // (EvalAlternatives installs per-alternative governors before calling in).
  if (CurrentGovernor() == nullptr &&
      (!options.budget.unlimited() || options.cancel_token != nullptr)) {
    ExecGovernor gov(options.budget, options.cancel_token);
    GovernorScope scope(&gov);
    return ExecuteWithFallback(query, db, schema, strategy, options);
  }
  return ExecuteWithFallback(query, db, schema, strategy, options);
}

}  // namespace hql
