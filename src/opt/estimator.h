#ifndef HQL_OPT_ESTIMATOR_H_
#define HQL_OPT_ESTIMATOR_H_

// Cardinality estimation for RA_hyp queries. The paper leaves "techniques
// for estimating the cost of execution plans involving xsub-values and
// delta values" as future work (Section 6); this is the standard
// System-R-style model instantiated for HQL: hypothetical states adjust
// the per-relation cardinality environment under which the query in their
// scope is estimated.

#include <map>
#include <string>

#include "ast/forward.h"
#include "storage/stats.h"

namespace hql {

/// Selectivity constants (classic textbook defaults).
struct Selectivity {
  double equality = 0.1;
  double range = 0.33;
  double other = 0.5;
  double equi_join = 0.1;   // of the smaller input
  double theta_join = 0.33; // of the product
};

class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const StatsCatalog& stats,
                                Selectivity selectivity = Selectivity())
      : stats_(&stats), sel_(selectivity) {}

  /// Estimated output cardinality of `query` (handles `when` by estimating
  /// hypothetical states into a modified cardinality environment).
  double EstimateQuery(const QueryPtr& query) const;

  /// Estimated evaluation cost in the C_out model: the sum of the estimated
  /// cardinalities of every intermediate result, including the cost of
  /// materializing hypothetical states. Unlike EstimateQuery this charges
  /// for *work*, so inlining a binding at k occurrences costs ~k times the
  /// binding's cost — the quantity the hybrid planner trades off against
  /// one-shot materialization.
  double EstimateCost(const QueryPtr& query) const;

  /// Estimated total tuples that materializing `state` would produce (the
  /// eager cost of an xsub-value for this state).
  double EstimateStateMaterialization(const HypoExprPtr& state) const;

  /// Selectivity of `pred` applied to base relation `rel_name`. Equality
  /// conjuncts `$c = lit` use 1/distinct(c) when the catalog collected
  /// per-column distinct counts for the relation; everything else falls
  /// back to the textbook constants. This is what kSelect-over-kRel nodes
  /// use in Estimate/Cost, so distinct-aware catalogs sharpen the hybrid
  /// planner's lazy-vs-eager comparison.
  double EstimatePredicateOn(const ScalarExprPtr& pred,
                             const std::string& rel_name) const;

  /// Expected tuples an index probe on `columns` of `rel_name` touches:
  /// cardinality / prod(distinct counts). Without distinct stats the
  /// equality constant stands in per column.
  double EstimateProbeCost(const std::string& rel_name,
                           const std::vector<size_t>& columns) const;

  /// Cost of the scan alternative: the relation's cardinality.
  double EstimateScanCost(const std::string& rel_name) const;

  /// True when an index probe on `columns` is estimated cheaper than a
  /// scan of `rel_name` (probe bookkeeping charged at one scan row per
  /// result row plus a constant).
  bool IndexProbeWins(const std::string& rel_name,
                      const std::vector<size_t>& columns) const;

  /// Cost of the vectorized columnar scan alternative over `rel_name`:
  /// per-morsel dispatch setup plus a per-row charge discounted to the
  /// tight-loop fraction of the row kernel's per-tuple interpretation cost.
  double EstimateColumnarScanCost(const std::string& rel_name,
                                  size_t morsel_rows) const;

  /// True when the vectorized columnar scan is estimated cheaper than the
  /// row scan of `rel_name` — only once the base clears `min_rows`, the
  /// same gate the executor applies (vector_exec's TryColumnarFilter).
  bool ColumnarScanWins(const std::string& rel_name, size_t min_rows,
                        size_t morsel_rows) const;

  /// Cost of the vectorized hash aggregation over `rel_name`: per-morsel
  /// dispatch setup plus a per-row charge for the typed key-extract /
  /// accumulate loop, discounted against the row kernel's per-tuple Value
  /// hashing (vector_exec's TryColumnarAggregate).
  double EstimateColumnarAggCost(const std::string& rel_name,
                                 size_t morsel_rows) const;

  /// True when the vectorized aggregation is estimated cheaper than the
  /// row aggregate of `rel_name`, mirroring the executor's `min_rows`
  /// engagement gate.
  bool ColumnarAggWins(const std::string& rel_name, size_t min_rows,
                       size_t morsel_rows) const;

  /// Cost of patching a cached result of `query` through the incremental
  /// delta rules (eval/incremental.h) for a leaf edit of `edit_tuples`
  /// tuples: every operator handles ~the edit, and the operators that must
  /// consult a cached sibling or rescan a child (join/product probing the
  /// other side, projection's support scan) additionally pay a discounted
  /// fraction of their inputs. Compare against EstimateCost(query) — the
  /// recompute alternative — to decide whether a patch is worthwhile.
  double EstimateIncrementalCost(const QueryPtr& query,
                                 double edit_tuples) const;

 private:
  using Env = std::map<std::string, double>;

  double Estimate(const QueryPtr& query, const Env& env) const;
  /// Returns output cardinality; adds the node's C_out contribution (its
  /// own output plus its children's costs) to *cost.
  double Cost(const QueryPtr& query, const Env& env, double* cost) const;
  double EstimatePredicate(const ScalarExprPtr& pred) const;
  /// Returns the environment reflecting `state` applied on top of `env`.
  Env ApplyState(const HypoExprPtr& state, const Env& env) const;
  Env ApplyUpdate(const UpdatePtr& update, const Env& env) const;

  double BaseCardinality(const std::string& name, const Env& env) const;

  const StatsCatalog* stats_;
  Selectivity sel_;
};

}  // namespace hql

#endif  // HQL_OPT_ESTIMATOR_H_
