#include "opt/engine.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "ast/hypo.h"
#include "ast/query.h"
#include "ast/typecheck.h"
#include "ast/update.h"
#include "common/strings.h"
#include "eval/direct.h"

namespace hql {

namespace {

Status BadKnob(const std::string& knob, const std::string& value,
               const char* expected) {
  return Status::InvalidArgument(StrFormat("bad value '%s' for %s (want %s)",
                                           value.c_str(), knob.c_str(),
                                           expected));
}

Result<bool> ParseBoolValue(const std::string& knob,
                            const std::string& value) {
  if (value == "on" || value == "true" || value == "1") return true;
  if (value == "off" || value == "false" || value == "0") return false;
  return BadKnob(knob, value, "on|off");
}

Result<double> ParseDoubleValue(const std::string& knob,
                                const std::string& value) {
  char* end = nullptr;
  double d = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0' || value.empty()) {
    return BadKnob(knob, value, "a number");
  }
  return d;
}

Result<uint64_t> ParseCountValue(const std::string& knob,
                                 const std::string& value) {
  HQL_ASSIGN_OR_RETURN(double d, ParseDoubleValue(knob, value));
  if (d < 0 || d != static_cast<double>(static_cast<uint64_t>(d))) {
    return BadKnob(knob, value, "a non-negative integer");
  }
  return static_cast<uint64_t>(d);
}

Result<Strategy> ParseStrategyValue(const std::string& knob,
                                    const std::string& value) {
  for (Strategy s :
       {Strategy::kDirect, Strategy::kLazy, Strategy::kFilter1,
        Strategy::kFilter2, Strategy::kFilter3, Strategy::kHybrid}) {
    if (value == StrategyName(s)) return s;
  }
  return BadKnob(knob, value, "direct|lazy|filter1|filter2|filter3|hybrid");
}

/// The "safe"/"all-on" profiles' defensive governor budget: generous
/// enough that the test workloads never trip it by accident, tight enough
/// that an Example 2.4 blow-up or a runaway join dies as a clean
/// kResourceExhausted instead of taking the process down.
ExecBudget DefensiveBudget() {
  ExecBudget b;
  b.deadline_ms = 10000;
  b.max_tuples = 20u * 1000 * 1000;
  b.max_rewrite_nodes = 2u * 1000 * 1000;
  b.max_index_build_rows = 4u * 1000 * 1000;
  return b;
}

}  // namespace

Result<EngineOptions> EngineOptions::Profile(const std::string& name) {
  EngineOptions o;
  if (name == "default") return o;
  if (name == "fast" || name == "all-on") {
    o.strategy = Strategy::kHybrid;
    o.memo = true;
    o.index_mode = IndexMode::kAdvisor;
    o.columnar_mode = ColumnarMode::kAuto;
    o.incremental_mode = IncrementalMode::kAuto;
    if (name == "all-on") o.budget = DefensiveBudget();
    return o;
  }
  if (name == "safe") {
    o.strategy = Strategy::kHybrid;
    o.memo = true;
    o.budget = DefensiveBudget();
    return o;
  }
  return Status::InvalidArgument(
      StrFormat("unknown profile '%s' (want default|fast|safe|all-on)",
                name.c_str()));
}

std::vector<std::string> EngineOptions::ProfileNames() {
  return {"default", "fast", "safe", "all-on"};
}

Status EngineOptions::Set(const std::string& knob, const std::string& value) {
  if (knob == "profile") {
    // A profile resets every knob it defines; max_sessions is engine
    // deployment shape, not evaluation policy, so it survives.
    size_t keep_sessions = max_sessions;
    HQL_ASSIGN_OR_RETURN(*this, Profile(value));
    max_sessions = keep_sessions;
    return Status::OK();
  }
  if (knob == "strategy") {
    HQL_ASSIGN_OR_RETURN(strategy, ParseStrategyValue(knob, value));
    return Status::OK();
  }
  if (knob == "memo") {
    HQL_ASSIGN_OR_RETURN(memo, ParseBoolValue(knob, value));
    return Status::OK();
  }
  if (knob == "index") {
    if (value == IndexModeName(IndexMode::kOff)) {
      index_mode = IndexMode::kOff;
    } else if (value == IndexModeName(IndexMode::kManual)) {
      index_mode = IndexMode::kManual;
    } else if (value == IndexModeName(IndexMode::kAdvisor)) {
      index_mode = IndexMode::kAdvisor;
    } else {
      return BadKnob(knob, value, "off|manual|advisor");
    }
    return Status::OK();
  }
  if (knob == "columnar") {
    if (value == ColumnarModeName(ColumnarMode::kOff)) {
      columnar_mode = ColumnarMode::kOff;
    } else if (value == ColumnarModeName(ColumnarMode::kAuto)) {
      columnar_mode = ColumnarMode::kAuto;
    } else {
      return BadKnob(knob, value, "off|auto");
    }
    return Status::OK();
  }
  if (knob == "incremental") {
    if (value == IncrementalModeName(IncrementalMode::kOff)) {
      incremental_mode = IncrementalMode::kOff;
    } else if (value == IncrementalModeName(IncrementalMode::kAuto)) {
      incremental_mode = IncrementalMode::kAuto;
    } else {
      return BadKnob(knob, value, "off|auto");
    }
    return Status::OK();
  }
  if (knob == "reuse_count") {
    HQL_ASSIGN_OR_RETURN(double d, ParseDoubleValue(knob, value));
    if (d < 0) return BadKnob(knob, value, ">= 0");
    reuse_count = d;
    return Status::OK();
  }
  if (knob == "max_lazy_tree_size") {
    HQL_ASSIGN_OR_RETURN(double d, ParseDoubleValue(knob, value));
    if (d <= 0) return BadKnob(knob, value, "> 0");
    max_lazy_tree_size = d;
    return Status::OK();
  }
  if (knob == "delta_fraction") {
    HQL_ASSIGN_OR_RETURN(double d, ParseDoubleValue(knob, value));
    if (d < 0 || d > 1) return BadKnob(knob, value, "in [0,1]");
    delta_fraction_threshold = d;
    return Status::OK();
  }
  if (knob == "edit_fraction") {
    HQL_ASSIGN_OR_RETURN(double d, ParseDoubleValue(knob, value));
    if (d < 0 || d > 1) return BadKnob(knob, value, "in [0,1]");
    incremental_edit_fraction = d;
    return Status::OK();
  }
  if (knob == "index_min_rows") {
    HQL_ASSIGN_OR_RETURN(uint64_t n, ParseCountValue(knob, value));
    index_min_rows = static_cast<size_t>(n);
    return Status::OK();
  }
  if (knob == "columnar_min_rows") {
    HQL_ASSIGN_OR_RETURN(uint64_t n, ParseCountValue(knob, value));
    columnar_min_rows = static_cast<size_t>(n);
    return Status::OK();
  }
  if (knob == "morsel_rows") {
    HQL_ASSIGN_OR_RETURN(uint64_t n, ParseCountValue(knob, value));
    if (n == 0) return BadKnob(knob, value, "> 0");
    columnar_morsel_rows = static_cast<size_t>(n);
    return Status::OK();
  }
  if (knob == "columnar_threads") {
    HQL_ASSIGN_OR_RETURN(uint64_t n, ParseCountValue(knob, value));
    columnar_threads = static_cast<size_t>(n);
    return Status::OK();
  }
  if (knob == "deadline_ms") {
    HQL_ASSIGN_OR_RETURN(uint64_t n, ParseCountValue(knob, value));
    budget.deadline_ms = static_cast<int64_t>(n);
    return Status::OK();
  }
  if (knob == "max_tuples") {
    HQL_ASSIGN_OR_RETURN(budget.max_tuples, ParseCountValue(knob, value));
    return Status::OK();
  }
  if (knob == "max_rewrite_nodes") {
    HQL_ASSIGN_OR_RETURN(budget.max_rewrite_nodes,
                         ParseCountValue(knob, value));
    return Status::OK();
  }
  if (knob == "max_sessions") {
    HQL_ASSIGN_OR_RETURN(uint64_t n, ParseCountValue(knob, value));
    max_sessions = static_cast<size_t>(n);
    return Status::OK();
  }
  return Status::InvalidArgument(StrFormat("unknown knob '%s'", knob.c_str()));
}

Status EngineOptions::Validate() const {
  if (reuse_count < 0) {
    return Status::InvalidArgument("reuse_count must be >= 0");
  }
  if (max_lazy_tree_size <= 0) {
    return Status::InvalidArgument("max_lazy_tree_size must be > 0");
  }
  if (delta_fraction_threshold < 0 || delta_fraction_threshold > 1) {
    return Status::InvalidArgument("delta_fraction must be in [0,1]");
  }
  if (incremental_edit_fraction < 0 || incremental_edit_fraction > 1) {
    return Status::InvalidArgument("edit_fraction must be in [0,1]");
  }
  if (columnar_morsel_rows == 0) {
    return Status::InvalidArgument("morsel_rows must be > 0");
  }
  if (budget.deadline_ms < 0) {
    return Status::InvalidArgument("deadline_ms must be >= 0");
  }
  return Status::OK();
}

std::string EngineOptions::Describe() const {
  std::string out;
  out += StrFormat("strategy=%s memo=%s index=%s columnar=%s incremental=%s",
                   StrategyName(strategy), memo ? "on" : "off",
                   IndexModeName(index_mode), ColumnarModeName(columnar_mode),
                   IncrementalModeName(incremental_mode));
  out += StrFormat(
      " reuse_count=%g max_lazy_tree_size=%g delta_fraction=%g"
      " edit_fraction=%g",
      reuse_count, max_lazy_tree_size, delta_fraction_threshold,
      incremental_edit_fraction);
  out += StrFormat(
      " index_min_rows=%zu columnar_min_rows=%zu morsel_rows=%zu"
      " columnar_threads=%zu",
      index_min_rows, columnar_min_rows, columnar_morsel_rows,
      columnar_threads);
  out += StrFormat(
      " deadline_ms=%lld max_tuples=%llu max_rewrite_nodes=%llu"
      " max_sessions=%zu",
      static_cast<long long>(budget.deadline_ms),
      static_cast<unsigned long long>(budget.max_tuples),
      static_cast<unsigned long long>(budget.max_rewrite_nodes), max_sessions);
  return out;
}

PlannerOptions EngineOptions::ToPlannerOptions(
    MemoCache* memo_cache, IndexAdvisor* advisor,
    IncrementalCache* incremental) const {
  PlannerOptions p;
  p.reuse_count = reuse_count;
  p.max_lazy_tree_size = max_lazy_tree_size;
  p.delta_fraction_threshold = delta_fraction_threshold;
  p.memo = memo ? memo_cache : nullptr;
  p.index_mode = index_mode;
  p.index_advisor = index_mode == IndexMode::kAdvisor ? advisor : nullptr;
  p.index_min_rows = index_min_rows;
  p.budget = budget;
  p.columnar_mode = columnar_mode;
  p.columnar_min_rows = columnar_min_rows;
  p.columnar_morsel_rows = columnar_morsel_rows;
  p.columnar_threads = columnar_threads;
  p.incremental_mode = incremental_mode;
  p.incremental_cache =
      incremental_mode == IncrementalMode::kAuto ? incremental : nullptr;
  p.incremental_edit_fraction = incremental_edit_fraction;
  return p;
}

// ---------------------------------------------------------------------------
// Engine

Engine::Engine(Schema schema, EngineOptions options)
    : schema_(schema), base_(Database(std::move(schema))),
      options_(std::move(options)) {}

Engine::Engine(Database db, EngineOptions options)
    : schema_(db.schema()), base_(std::move(db)),
      options_(std::move(options)) {}

Engine::~Engine() = default;

Result<SessionPtr> Engine::CreateSession(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_sessions > 0 && live_sessions_ >= options_.max_sessions) {
    return Status::ResourceExhausted(
        StrFormat("session limit reached (%zu live, max_sessions=%zu)",
                  live_sessions_, options_.max_sessions));
  }
  ++live_sessions_;
  return SessionPtr(
      new Session(this, std::move(name), base_, base_version_, options_));
}

void Engine::ReleaseSession() {
  std::lock_guard<std::mutex> lock(mu_);
  --live_sessions_;
}

size_t Engine::live_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_sessions_;
}

Status Engine::DeclareRelation(const std::string& name, size_t arity) {
  std::lock_guard<std::mutex> lock(mu_);
  HQL_RETURN_IF_ERROR(schema_.AddRelation(name, arity));
  // Rebuild the base over the widened schema; existing relations are moved
  // across as views (refcount bumps, no tuple copies).
  Database next(schema_);
  for (const auto& [rel, view] : base_.relations()) {
    HQL_RETURN_IF_ERROR(next.SetView(rel, view));
  }
  base_ = std::move(next);
  ++base_version_;
  return Status::OK();
}

Status Engine::SetRelation(const std::string& name, Relation value) {
  std::lock_guard<std::mutex> lock(mu_);
  HQL_RETURN_IF_ERROR(base_.Set(name, std::move(value)));
  ++base_version_;
  return Status::OK();
}

Status Engine::Apply(const UpdatePtr& update) {
  if (update == nullptr) {
    return Status::InvalidArgument("Apply: null update");
  }
  std::lock_guard<std::mutex> lock(mu_);
  HQL_RETURN_IF_ERROR(CheckUpdate(update, schema_));
  HQL_ASSIGN_OR_RETURN(Database next, ExecUpdate(update, base_));
  base_ = std::move(next);
  ++base_version_;
  return Status::OK();
}

void Engine::ResetDatabase(Database db) {
  std::lock_guard<std::mutex> lock(mu_);
  schema_ = db.schema();
  base_ = std::move(db);
  ++base_version_;
}

Database Engine::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_;
}

Schema Engine::schema() const {
  std::lock_guard<std::mutex> lock(mu_);
  return schema_;
}

uint64_t Engine::base_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_version_;
}

EngineOptions Engine::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

Status Engine::SetOptions(const EngineOptions& options) {
  HQL_RETURN_IF_ERROR(options.Validate());
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Session

Session::Session(Engine* engine, std::string name, Database base,
                 uint64_t base_version, EngineOptions options)
    : engine_(engine),
      name_(std::move(name)),
      cancel_(std::make_shared<CancelToken>()),
      base_(std::move(base)),
      snapshot_version_(base_version),
      options_(std::move(options)) {
  nodes_.push_back(Node{"root", -1, nullptr, nullptr});
}

Session::~Session() { engine_->ReleaseSession(); }

int Session::FindNode(const std::string& name) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].name.empty() && nodes_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Status Session::Derive(const std::string& parent, const std::string& child,
                       const HypoExprPtr& edge) {
  if (edge == nullptr) return Status::InvalidArgument("derive: null edge");
  if (child.empty()) {
    return Status::InvalidArgument("derive: empty scenario name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  HQL_RETURN_IF_ERROR(CheckHypo(edge, base_.schema()));
  int p = FindNode(parent);
  if (p < 0) {
    return Status::NotFound(StrFormat("no scenario '%s'", parent.c_str()));
  }
  if (FindNode(child) >= 0) {
    return Status::AlreadyExists(
        StrFormat("scenario '%s' already exists", child.c_str()));
  }
  nodes_.push_back(Node{child, p, edge, nullptr});
  return Status::OK();
}

Status Session::Edit(const std::string& node, const HypoExprPtr& edge) {
  if (edge == nullptr) return Status::InvalidArgument("edit: null edge");
  std::lock_guard<std::mutex> lock(mu_);
  HQL_RETURN_IF_ERROR(CheckHypo(edge, base_.schema()));
  int i = FindNode(node);
  if (i < 0) {
    return Status::NotFound(StrFormat("no scenario '%s'", node.c_str()));
  }
  if (i == 0) return Status::InvalidArgument("the root cannot be edited");
  nodes_[static_cast<size_t>(i)].edge = edge;
  InvalidateSubtree(i);
  return Status::OK();
}

Status Session::Drop(const std::string& node) {
  std::lock_guard<std::mutex> lock(mu_);
  int i = FindNode(node);
  if (i < 0) {
    return Status::NotFound(StrFormat("no scenario '%s'", node.c_str()));
  }
  if (i == 0) return Status::InvalidArgument("the root cannot be dropped");
  // Children are always appended after their parent, so one forward sweep
  // finds the whole subtree.
  std::vector<bool> doomed(nodes_.size(), false);
  doomed[static_cast<size_t>(i)] = true;
  for (size_t j = static_cast<size_t>(i) + 1; j < nodes_.size(); ++j) {
    if (nodes_[j].name.empty()) continue;
    if (nodes_[j].parent >= 0 &&
        doomed[static_cast<size_t>(nodes_[j].parent)]) {
      doomed[j] = true;
    }
  }
  for (size_t j = 0; j < nodes_.size(); ++j) {
    if (!doomed[j]) continue;
    nodes_[j] = Node{};  // empty name = dropped slot
  }
  return Status::OK();
}

void Session::InvalidateSubtree(int index) {
  std::vector<bool> stale(nodes_.size(), false);
  stale[static_cast<size_t>(index)] = true;
  nodes_[static_cast<size_t>(index)].state = nullptr;
  for (size_t j = static_cast<size_t>(index) + 1; j < nodes_.size(); ++j) {
    if (nodes_[j].name.empty()) continue;
    if (nodes_[j].parent >= 0 && stale[static_cast<size_t>(nodes_[j].parent)]) {
      stale[j] = true;
      nodes_[j].state = nullptr;
    }
  }
}

HypoExprPtr Session::PathState(int index) const {
  HypoExprPtr state = nullptr;
  for (int cur = index; nodes_[static_cast<size_t>(cur)].parent >= 0;
       cur = nodes_[static_cast<size_t>(cur)].parent) {
    const HypoExprPtr& edge = nodes_[static_cast<size_t>(cur)].edge;
    state = state == nullptr ? edge : HypoExpr::Compose(edge, state);
  }
  return state;
}

Result<std::shared_ptr<Database>> Session::StateOf(int index) {
  // Walk up to the nearest materialized ancestor, then materialize down —
  // each step is one EvalState over the parent's CoW state, so deriving a
  // new leaf touches only the edge's delta.
  std::vector<int> path;
  int cur = index;
  while (cur >= 0 && nodes_[static_cast<size_t>(cur)].state == nullptr) {
    path.push_back(cur);
    cur = nodes_[static_cast<size_t>(cur)].parent;
  }
  std::shared_ptr<Database> state =
      cur >= 0 ? nodes_[static_cast<size_t>(cur)].state
               : std::make_shared<Database>(base_);
  if (cur < 0 && !path.empty() && path.back() == 0) {
    nodes_[0].state = state;
    path.pop_back();
  }
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    Node& n = nodes_[static_cast<size_t>(*it)];
    HQL_ASSIGN_OR_RETURN(Database next, EvalState(n.edge, *state));
    state = std::make_shared<Database>(std::move(next));
    n.state = state;
  }
  return state;
}

Result<Relation> Session::RunAt(int index, const QueryPtr& query) {
  // Compose `Q when (path)` and hand the whole thing to the planner: which
  // point of the lazy<->eager spectrum evaluates the path is exactly the
  // session's strategy knob (every strategy computes the same value).
  QueryPtr composed;
  PlannerOptions planner;
  Strategy strategy;
  Database base{Schema()};
  {
    std::lock_guard<std::mutex> lock(mu_);
    HypoExprPtr state = PathState(index);
    composed = state == nullptr ? query : Query::When(query, state);
    planner = options_.ToPlannerOptions(&engine_->memo_, &engine_->advisor_,
                                        &engine_->incremental_);
    planner.cancel_token = cancel_;
    strategy = options_.strategy;
    base = base_;
  }
  if (cancel_->cancelled()) {
    return Status::Cancelled("session cancelled");
  }
  HQL_RETURN_IF_ERROR(InferQueryArity(composed, base.schema()).status());
  ExecContextScope scope(&exec_);
  return Execute(composed, base, base.schema(), strategy, planner);
}

Result<Relation> Session::Query(const std::string& node,
                                const QueryPtr& query) {
  if (query == nullptr) return Status::InvalidArgument("query: null query");
  int i;
  {
    std::lock_guard<std::mutex> lock(mu_);
    i = FindNode(node);
  }
  if (i < 0) {
    return Status::NotFound(StrFormat("no scenario '%s'", node.c_str()));
  }
  return RunAt(i, query);
}

Result<Relation> Session::Compare(const std::string& a, const std::string& b,
                                  const QueryPtr& query) {
  if (query == nullptr) return Status::InvalidArgument("compare: null query");
  QueryPtr diff;
  {
    std::lock_guard<std::mutex> lock(mu_);
    int ia = FindNode(a);
    if (ia < 0) {
      return Status::NotFound(StrFormat("no scenario '%s'", a.c_str()));
    }
    int ib = FindNode(b);
    if (ib < 0) {
      return Status::NotFound(StrFormat("no scenario '%s'", b.c_str()));
    }
    HypoExprPtr sa = PathState(ia);
    HypoExprPtr sb = PathState(ib);
    diff = Query::Difference(
        sa == nullptr ? query : Query::When(query, sa),
        sb == nullptr ? query : Query::When(query, sb));
  }
  return RunAt(0, diff);
}

Result<AnalyzeReport> Session::Analyze(const std::string& node,
                                       const QueryPtr& query) {
  if (query == nullptr) return Status::InvalidArgument("analyze: null query");
  QueryPtr composed;
  AnalyzeOptions opts;
  Database base{Schema()};
  {
    std::lock_guard<std::mutex> lock(mu_);
    int i = FindNode(node);
    if (i < 0) {
      return Status::NotFound(StrFormat("no scenario '%s'", node.c_str()));
    }
    HypoExprPtr state = PathState(i);
    composed = state == nullptr ? query : Query::When(query, state);
    opts.strategy = options_.strategy;
    opts.planner = options_.ToPlannerOptions(
        &engine_->memo_, &engine_->advisor_, &engine_->incremental_);
    opts.planner.cancel_token = cancel_;
    base = base_;
  }
  if (cancel_->cancelled()) {
    return Status::Cancelled("session cancelled");
  }
  ExecContextScope scope(&exec_);
  return ExplainAnalyze(composed, base, base.schema(), opts);
}

std::vector<ScenarioInfo> Session::Nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ScenarioInfo> out;
  out.push_back(ScenarioInfo{"root", "", nodes_[0].state != nullptr});
  std::vector<ScenarioInfo> rest;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.name.empty()) continue;
    rest.push_back(ScenarioInfo{
        n.name, nodes_[static_cast<size_t>(n.parent)].name,
        n.state != nullptr});
  }
  std::sort(rest.begin(), rest.end(),
            [](const ScenarioInfo& x, const ScenarioInfo& y) {
              return x.name < y.name;
            });
  out.insert(out.end(), rest.begin(), rest.end());
  return out;
}

size_t Session::NumNodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const Node& n : nodes_) {
    if (!n.name.empty()) ++count;
  }
  return count;
}

Status Session::Set(const std::string& knob, const std::string& value) {
  if (knob == "max_sessions") {
    return Status::InvalidArgument(
        "max_sessions is engine-level; set it on the engine's options");
  }
  std::lock_guard<std::mutex> lock(mu_);
  EngineOptions next = options_;
  HQL_RETURN_IF_ERROR(next.Set(knob, value));
  HQL_RETURN_IF_ERROR(next.Validate());
  options_ = std::move(next);
  return Status::OK();
}

Status Session::SetProfile(const std::string& profile) {
  return Set("profile", profile);
}

EngineOptions Session::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

ExecStats Session::Stats() const { return exec_.Snapshot(); }

PlannerOptions Session::PlannerConfig() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlannerOptions p = options_.ToPlannerOptions(
      &engine_->memo_, &engine_->advisor_, &engine_->incremental_);
  p.cancel_token = cancel_;
  return p;
}

void Session::Cancel() { cancel_->Cancel(); }

Status Session::Refresh() {
  Database next = engine_->Snapshot();
  uint64_t version = engine_->base_version();
  std::lock_guard<std::mutex> lock(mu_);
  if (!(next.schema().arities() == base_.schema().arities())) {
    size_t live = 0;
    for (const Node& n : nodes_) {
      if (!n.name.empty()) ++live;
    }
    if (live > 1) {
      return Status::InvalidArgument(
          "refresh: schema changed under a non-trivial scenario tree; "
          "drop derived scenarios first");
    }
  }
  base_ = std::move(next);
  snapshot_version_ = version;
  for (Node& n : nodes_) n.state = nullptr;
  return Status::OK();
}

Database Session::BaseSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_;
}

Result<Database> Session::StateAt(const std::string& node) {
  std::lock_guard<std::mutex> lock(mu_);
  int i = FindNode(node);
  if (i < 0) {
    return Status::NotFound(StrFormat("no scenario '%s'", node.c_str()));
  }
  HQL_ASSIGN_OR_RETURN(std::shared_ptr<Database> state, StateOf(i));
  return *state;
}

}  // namespace hql
