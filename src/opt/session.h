#ifndef HQL_OPT_SESSION_H_
#define HQL_OPT_SESSION_H_

// A hypothetical session: the "many queries against a single hypothetical
// state" pattern of Examples 2.1/2.2 as a first-class object. Creating a
// session materializes the state once — as a delta value when the change
// is a small fraction of the data (the Section 5.5 regime), as an
// xsub-value otherwise — and every Evaluate() call filters one query
// through that materialization. Nothing ever touches the underlying
// database state.
//
//   HypotheticalSession session = *HypotheticalSession::Create(
//       ParseHypo("{ins(R, sigma[$0 > 30](S))}").value(), db, schema);
//   Relation a = *session.Evaluate(ParseQuery("sigma[$0 = 1](R)").value());
//   Relation b = *session.Evaluate(ParseQuery("R join[$0 = $2] S").value());
//
// The session holds references to `db` and `schema`; both must outlive it.

#include <memory>
#include <vector>

#include "ast/forward.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "eval/delta.h"
#include "eval/xsub.h"
#include "opt/planner.h"
#include "storage/database.h"
#include "storage/schema.h"

namespace hql {

class HypotheticalSession {
 public:
  /// Materializes `state` over `db`. The representation (delta vs xsub) is
  /// chosen by comparing the materialized change against
  /// options.delta_fraction_threshold of the affected base relations.
  static Result<HypotheticalSession> Create(
      const HypoExprPtr& state, const Database& db, const Schema& schema,
      const PlannerOptions& options = PlannerOptions());

  /// The value `query` would have in the hypothetical state. `query` may
  /// itself contain further `when`s (nested what-ifs on top of the
  /// session's state).
  Result<Relation> Evaluate(const QueryPtr& query) const;

  /// True if the session holds a delta representation (Algorithm HQL-3
  /// route); false for a full xsub-value.
  bool uses_delta() const { return uses_delta_; }

  /// Materialized tuples held by the session (cost accounting).
  uint64_t materialized_tuples() const;

 private:
  HypotheticalSession(const Database& db, const Schema& schema)
      : db_(&db), schema_(&schema) {}

  const Database* db_;
  const Schema* schema_;
  bool uses_delta_ = false;
  IndexConfig index_config_;
  DeltaValue delta_;
  XsubValue xsub_;
};

/// Options for EvalAlternatives.
struct AlternativesOptions {
  /// Execution route for every alternative (all strategies agree on the
  /// value; see planner.h).
  Strategy strategy = Strategy::kHybrid;

  /// Worker threads fanning the alternatives out; 0 picks
  /// ThreadPool::DefaultThreads(). 1 runs the serial loop inline (no pool).
  size_t num_threads = 0;

  /// Per-alternative planner options. `planner.memo` (when set) is the
  /// shared subplan cache: alternatives that share path prefixes or state
  /// subqueries compute them once across the whole family, whichever
  /// worker gets there first.
  PlannerOptions planner;

  /// When non-null, receives each alternative's own ExecStats in input
  /// order (resized to states.size()): every alternative runs under its
  /// own ExecContext, so slot i holds exactly alternative i's work even
  /// under the thread pool. Tracing is inherited from the caller's ambient
  /// context. Caller-owned; must outlive the call.
  std::vector<ExecStats>* slot_stats = nullptr;

  /// When non-null, receives the family rollup: the slots merged in input
  /// order (deterministic regardless of which worker finished first; see
  /// ExecStats::MergeFrom). Caller-owned; must outlive the call.
  ExecStats* family_stats = nullptr;
};

/// The family primitive: evaluates `query` under every hypothetical state
/// in `states` — the "family of alternatives" workload of Example 2.1,
/// where states are the root paths of a version tree
/// (workload/version_tree.h) — and surfaces every alternative's outcome
/// separately: slot i holds alternative i's relation or its own error. A
/// null state evaluates `query` against the real database (the root
/// version). Alternatives that were never run (drained after a hard
/// failure, or cancelled via the caller's token) hold kCancelled. One
/// alternative blowing its budget thus costs exactly that alternative, not
/// the family.
///
/// Results arrive in input order and are identical to the serial loop
///   for (s : states) Execute(Query::When(query, s), db, schema, ...)
/// regardless of thread count or cache state.
///
/// Governance: `options.planner.budget` / `options.planner.cancel_token`
/// apply to each alternative separately (each gets its own governor, so one
/// alternative's deadline or tuple budget never eats a sibling's). A hard
/// failure (any code except kCancelled / kResourceExhausted) cancels the
/// remaining alternatives pool-wide; budget trips do not.
///
/// Observability: each alternative runs under its own ExecContext; the
/// per-slot stats and their input-order rollup are available via
/// AlternativesOptions, and the rollup is also merged into the caller's
/// ambient context.
std::vector<Result<Relation>> EvalAlternativesPartial(
    const QueryPtr& query, const std::vector<HypoExprPtr>& states,
    const Database& db, const Schema& schema,
    const AlternativesOptions& options = AlternativesOptions());

/// Thin wrapper over EvalAlternativesPartial collapsing the per-slot
/// outcomes into all-or-nothing. Error selection (the single place this
/// rule lives): the first error by input order whose code is not
/// kCancelled wins — that is the root cause, not a ripple of the pool-wide
/// cancellation it triggered; if every error is a cancellation, the first
/// one by input order wins.
Result<std::vector<Relation>> EvalAlternatives(
    const QueryPtr& query, const std::vector<HypoExprPtr>& states,
    const Database& db, const Schema& schema,
    const AlternativesOptions& options = AlternativesOptions());

}  // namespace hql

#endif  // HQL_OPT_SESSION_H_
