#include "server/soak.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/rng.h"
#include "opt/engine.h"
#include "parser/parser.h"
#include "server/client.h"
#include "workload/generators.h"

namespace hql {

namespace {

// Fixed textual query pool over PropertySchema (A1..B3). Kept small and
// cheap: the soak's job is concurrency + isolation coverage, not operator
// coverage (the local property suites own that).
const char* kQueryPool[] = {
    "A1",
    "B1",
    "sigma[$0 >= 1](A2)",
    "pi[0](B2)",
    "A1 u B1",
    "A2 join[$0 = $2] B2",
    "pi[0](A3)",
    "sigma[$0 >= 2](B3)",
};
constexpr size_t kQueryPoolSize = sizeof(kQueryPool) / sizeof(kQueryPool[0]);

std::string RandomEdgeText(Rng* rng, int64_t domain) {
  int64_t v = rng->Uniform(0, domain > 1 ? domain - 1 : 0);
  int64_t w = rng->Uniform(0, domain > 1 ? domain - 1 : 0);
  switch (rng->Uniform(0, 4)) {
    case 0:
      return "{ins(A1, {(" + std::to_string(v) + ")})}";
    case 1:
      return "{del(A1, {(" + std::to_string(v) + ")})}";
    case 2:
      return "{ins(A2, {(" + std::to_string(v) + ", " + std::to_string(w) +
             ")})}";
    case 3:
      return "{del(B2, sigma[$0 >= " + std::to_string(v) + "](B2))}";
    default:
      return "{ins(B1, pi[0](A2))}";
  }
}

// One wire session plus its local kDirect mirror and private op stream.
struct Soaker {
  std::unique_ptr<WireClient> wire;
  SessionPtr local;
  std::vector<std::string> nodes;  // live scenario names, nodes[0] = root
  Rng rng;
  int id = 0;
  int64_t domain = 64;
  uint64_t requests = 0;
  uint64_t mismatches = 0;
  uint64_t transport_errors = 0;
  std::vector<double> latencies_ms;

  explicit Soaker(uint64_t seed) : rng(seed) {}

  std::string FreshName() {
    return "s" + std::to_string(id) + "n" + std::to_string(requests);
  }

  const std::string& RandomNode() {
    return nodes[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(nodes.size()) - 1))];
  }

  Result<JsonPtr> Timed(const std::string& line) {
    auto start = std::chrono::steady_clock::now();
    Result<JsonPtr> out = wire->Call(line);
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count());
    ++requests;
    return out;
  }

  /// The differential oracle: asks the server, asks the local kDirect
  /// mirror, and requires both to agree — on success/failure, and on row
  /// count + relation hash when both succeed.
  void OracleQuery(const std::string& node, const std::string& qtext) {
    Result<JsonPtr> resp = Timed("query " + node + " " + qtext);
    if (!resp.ok()) {
      ++transport_errors;
      return;
    }
    Result<Relation> expected = [&]() -> Result<Relation> {
      HQL_ASSIGN_OR_RETURN(QueryPtr q, ParseQuery(qtext));
      return local->Query(node, q);
    }();
    bool server_ok = (*resp)->Get("ok")->bool_value();
    if (server_ok != expected.ok()) {
      ++mismatches;
      return;
    }
    if (!server_ok) return;  // both failed cleanly: agreement
    if ((*resp)->Get("rows")->number() !=
            static_cast<double>(expected->size()) ||
        (*resp)->Get("hash")->string_value() !=
            std::to_string(expected->Hash())) {
      ++mismatches;
    }
  }

  /// Derives a fresh child of a random live node on both sides.
  void Grow() {
    std::string parent = RandomNode();
    std::string child = FreshName();
    std::string edge = RandomEdgeText(&rng, domain);
    Result<JsonPtr> resp = Timed("derive " + parent + " " + child + " " + edge);
    if (!resp.ok()) {
      ++transport_errors;
      return;
    }
    Status mirrored = [&]() -> Status {
      HQL_ASSIGN_OR_RETURN(HypoExprPtr e, ParseHypo(edge));
      return local->Derive(parent, child, e);
    }();
    if ((*resp)->Get("ok")->bool_value() != mirrored.ok()) {
      ++mismatches;
      return;
    }
    if (mirrored.ok()) nodes.push_back(child);
  }

  /// Rewrites a random non-root node's edge on both sides, then
  /// oracle-checks a query at that node (the invalidated subtree must
  /// re-derive consistently).
  void Edit() {
    if (nodes.size() < 2) {
      Grow();
      return;
    }
    const std::string& node = nodes[static_cast<size_t>(
        rng.Uniform(1, static_cast<int64_t>(nodes.size()) - 1))];
    std::string edge = RandomEdgeText(&rng, domain);
    Result<JsonPtr> resp = Timed("edit " + node + " " + edge);
    if (!resp.ok()) {
      ++transport_errors;
      return;
    }
    Status mirrored = [&]() -> Status {
      HQL_ASSIGN_OR_RETURN(HypoExprPtr e, ParseHypo(edge));
      return local->Edit(node, e);
    }();
    if ((*resp)->Get("ok")->bool_value() != mirrored.ok()) {
      ++mismatches;
      return;
    }
    OracleQuery(node, kQueryPool[static_cast<size_t>(
                          rng.Uniform(0, static_cast<int64_t>(kQueryPoolSize) - 1))]);
  }

  /// Drops a random non-root subtree on both sides, then re-grows one
  /// node so the tree never collapses to the root.
  void Churn() {
    if (nodes.size() >= 2) {
      size_t pick = static_cast<size_t>(
          rng.Uniform(1, static_cast<int64_t>(nodes.size()) - 1));
      std::string victim = nodes[pick];
      Result<JsonPtr> resp = Timed("drop " + victim);
      if (!resp.ok()) {
        ++transport_errors;
        return;
      }
      Status mirrored = local->Drop(victim);
      if ((*resp)->Get("ok")->bool_value() != mirrored.ok()) {
        ++mismatches;
        return;
      }
      // The drop may have taken descendants with it: resync the live list
      // from the mirror (both sides dropped the same subtree).
      nodes.clear();
      for (const ScenarioInfo& info : local->Nodes()) {
        nodes.push_back(info.name);
      }
    }
    Grow();
    OracleQuery(RandomNode(), kQueryPool[static_cast<size_t>(
                                  rng.Uniform(0, static_cast<int64_t>(kQueryPoolSize) - 1))]);
  }
};

/// Runs `op` concurrently on every soaker and folds the per-session
/// latencies/counters into one PhaseMetrics.
template <typename Op>
PhaseMetrics RunPhase(const std::string& label,
                      std::vector<std::unique_ptr<Soaker>>& soakers, Op op) {
  for (auto& s : soakers) s->latencies_ms.clear();
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(soakers.size());
  for (auto& s : soakers) {
    threads.emplace_back([&op, &s] { op(*s); });
  }
  for (auto& t : threads) t.join();

  PhaseMetrics m;
  m.label = label;
  m.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  for (auto& s : soakers) {
    m.ops += static_cast<int>(s->latencies_ms.size());
    m.latencies_ms.insert(m.latencies_ms.end(), s->latencies_ms.begin(),
                          s->latencies_ms.end());
  }
  m.oracle_runs = static_cast<uint64_t>(m.ops);
  std::sort(m.latencies_ms.begin(), m.latencies_ms.end());
  return m;
}

}  // namespace

std::string NetSoakReport::Summary() const {
  std::ostringstream os;
  os << "net soak: " << requests << " requests in " << seconds << "s, "
     << mismatches << " oracle mismatch(es), " << transport_errors
     << " transport error(s)";
  for (const PhaseMetrics& m : phases) {
    os << "\n  [" << m.label << "] " << m.ops << " ops, "
       << m.OpsPerSec() << " ops/s, p50 " << m.LatencyMs(50) << "ms, p99 "
       << m.LatencyMs(99) << "ms";
  }
  return os.str();
}

Result<NetSoakReport> RunNetSoak(const NetSoakConfig& config) {
  if (config.sessions < 1 || config.nodes_per_session < 1) {
    return Status::InvalidArgument("net soak needs >= 1 session and node");
  }

  // The local mirror: same base the server generated from the same flags.
  Rng base_rng(config.seed);
  Database base = RandomDatabase(&base_rng, PropertySchema(), config.gen_rows,
                                 config.gen_domain);
  EngineOptions options;
  options.strategy = Strategy::kDirect;
  options.max_sessions = static_cast<size_t>(config.sessions);
  Engine mirror(std::move(base), options);

  auto soak_start = std::chrono::steady_clock::now();
  NetSoakReport report;
  std::vector<std::unique_ptr<Soaker>> soakers;

  // Phase 1: connect. Session setup is itself measured — a server that
  // serializes handshakes shows up here.
  {
    auto start = std::chrono::steady_clock::now();
    PhaseMetrics m;
    m.label = "connect";
    for (int i = 0; i < config.sessions; ++i) {
      auto op_start = std::chrono::steady_clock::now();
      auto soaker =
          std::make_unique<Soaker>(config.seed ^ (0x9e3779b97f4a7c15ull *
                                                  static_cast<uint64_t>(i + 1)));
      soaker->id = i;
      soaker->domain = config.gen_domain;
      soaker->nodes.push_back("root");
      HQL_ASSIGN_OR_RETURN(WireClient wire, WireClient::Connect(config.port));
      soaker->wire = std::make_unique<WireClient>(std::move(wire));
      HQL_ASSIGN_OR_RETURN(soaker->local, mirror.CreateSession(
                                              "mirror-" + std::to_string(i)));
      Result<JsonPtr> pong = soaker->wire->CallOk("ping");
      if (!pong.ok()) {
        return Status::Internal("session " + std::to_string(i) +
                                " handshake failed: " +
                                pong.status().ToString());
      }
      m.latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - op_start)
              .count());
      ++m.ops;
      soakers.push_back(std::move(soaker));
    }
    m.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    std::sort(m.latencies_ms.begin(), m.latencies_ms.end());
    report.phases.push_back(std::move(m));
  }

  // Phase 2: grow — every session derives its private tree, verifying
  // each fresh node immediately.
  const int nodes = config.nodes_per_session;
  report.phases.push_back(RunPhase("grow", soakers, [nodes](Soaker& s) {
    for (int i = 0; i < nodes; ++i) {
      s.Grow();
      s.OracleQuery(s.nodes.back(),
                    kQueryPool[static_cast<size_t>(
                        s.rng.Uniform(0, static_cast<int64_t>(kQueryPoolSize) - 1))]);
    }
  }));

  // Phase 3: query — read-heavy, random (node, query) pairs.
  const int ops = config.ops_per_phase;
  report.phases.push_back(RunPhase("query", soakers, [ops](Soaker& s) {
    for (int i = 0; i < ops; ++i) {
      s.OracleQuery(s.RandomNode(),
                    kQueryPool[static_cast<size_t>(
                        s.rng.Uniform(0, static_cast<int64_t>(kQueryPoolSize) - 1))]);
    }
  }));

  // Phase 4: edit — subtree invalidation under concurrency.
  report.phases.push_back(RunPhase("edit", soakers, [ops](Soaker& s) {
    for (int i = 0; i < ops; ++i) s.Edit();
  }));

  // Phase 5: churn — drops, re-derives, and queries interleaved.
  report.phases.push_back(RunPhase("churn", soakers, [ops](Soaker& s) {
    for (int i = 0; i < ops; ++i) s.Churn();
  }));

  for (auto& s : soakers) {
    report.requests += s->requests;
    report.mismatches += s->mismatches;
    report.transport_errors += s->transport_errors;
    s->wire->Quit();
  }
  report.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - soak_start)
                       .count();
  return report;
}

}  // namespace hql
