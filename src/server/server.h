#ifndef HQL_SERVER_SERVER_H_
#define HQL_SERVER_SERVER_H_

// The concurrent hypothetical-state server: a loopback TCP listener with
// one thread and one hql::Session per connection, speaking the line/JSON
// protocol of server/wire.h.
//
// Concurrency model:
//   * accept thread    — accepts connections, reaps finished handlers
//   * handler threads  — one per live connection; each owns its Session
//                        and serves requests strictly in order
//   * monitor thread   — polls *busy* connections (a query in flight) for
//                        peer hang-up and trips the session's CancelToken,
//                        so a client that disconnects mid-query stops its
//                        work within one governor check interval instead
//                        of running to completion against a dead socket
//
// Isolation is the facade's: every connection's session holds its own base
// snapshot and scenario tree; the only shared state is the Engine (schema,
// base, caches), which is internally synchronized. Admission control is
// EngineOptions::max_sessions — a connection past the cap gets one JSON
// error line and a clean close.
//
// The server binds 127.0.0.1 only: the protocol is unauthenticated by
// design (a research artifact, not a deployment surface).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "opt/engine.h"

namespace hql {

struct ServerOptions {
  /// TCP port; 0 picks an ephemeral port (read it back from port()).
  uint16_t port = 0;

  /// Hard cap on one request line; longer input closes the connection.
  size_t max_line_bytes = 1 << 20;

  /// Cadence of the disconnect monitor's poll over busy connections.
  int monitor_interval_ms = 20;
};

class HqlServer {
 public:
  /// Serves `engine` (caller-owned; must outlive the server).
  explicit HqlServer(Engine* engine, ServerOptions options = ServerOptions());
  ~HqlServer();

  HqlServer(const HqlServer&) = delete;
  HqlServer& operator=(const HqlServer&) = delete;

  /// Binds, listens and spawns the accept + monitor threads. Fails with
  /// kInternal when the socket cannot be bound.
  Status Start();

  /// Stops accepting, cancels every in-flight query, closes every
  /// connection and joins all threads. Idempotent; also run by ~HqlServer.
  void Stop();

  /// The bound port (after Start).
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Live connections (handlers that have not finished).
  size_t active_connections() const;

  /// Lifetime counters, for tests and the \serve status line.
  uint64_t total_connections() const {
    return total_connections_.load(std::memory_order_relaxed);
  }
  uint64_t total_requests() const {
    return total_requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;

  void AcceptLoop();
  void MonitorLoop();
  void HandleConnection(std::shared_ptr<Conn> conn);
  /// One request line -> one response line (never throws, never blocks on
  /// the peer). Sets *close_after for `quit`.
  std::string Dispatch(Conn& conn, const std::string& line, bool* close_after);
  void ReapFinished();

  Engine* engine_;
  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::thread monitor_thread_;

  mutable std::mutex mu_;  // guards conns_
  std::vector<std::shared_ptr<Conn>> conns_;

  std::atomic<uint64_t> total_connections_{0};
  std::atomic<uint64_t> total_requests_{0};
};

}  // namespace hql

#endif  // HQL_SERVER_SERVER_H_
