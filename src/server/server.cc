#include "server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/strings.h"
#include "opt/explain.h"
#include "parser/parser.h"
#include "server/wire.h"

namespace hql {

namespace {

/// Sends the whole buffer; false on a dead peer. MSG_NOSIGNAL keeps a
/// disconnected client from killing the process with SIGPIPE.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

struct HqlServer::Conn {
  int fd = -1;
  SessionPtr session;
  std::thread thread;
  /// True while a request is executing — the monitor polls only these.
  std::atomic<bool> busy{false};
  std::atomic<bool> finished{false};
};

HqlServer::HqlServer(Engine* engine, ServerOptions options)
    : engine_(engine), options_(options) {}

HqlServer::~HqlServer() { Stop(); }

Status HqlServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }
  stopping_.store(false, std::memory_order_release);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::Internal(StrFormat("bind: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status st = Status::Internal(StrFormat("listen: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    Status st =
        Status::Internal(StrFormat("getsockname: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(addr.sin_port);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  monitor_thread_ = std::thread([this] { MonitorLoop(); });
  return Status::OK();
}

void HqlServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock accept().
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (monitor_thread_.joinable()) monitor_thread_.join();
  // Cancel in-flight work, then unblock every handler's read.
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->session != nullptr) conn->session->Cancel();
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
}

size_t HqlServer::active_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (const auto& conn : conns_) {
    if (!conn->finished.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

void HqlServer::ReapFinished() {
  std::vector<std::shared_ptr<Conn>> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->finished.load(std::memory_order_acquire)) {
        done.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : done) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
}

void HqlServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    total_connections_.fetch_add(1, std::memory_order_relaxed);
    ReapFinished();
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      conns_.push_back(conn);
    }
    conn->thread = std::thread([this, conn] { HandleConnection(conn); });
  }
}

void HqlServer::MonitorLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::vector<std::shared_ptr<Conn>> busy;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& conn : conns_) {
        if (conn->busy.load(std::memory_order_acquire) &&
            !conn->finished.load(std::memory_order_acquire)) {
          busy.push_back(conn);
        }
      }
    }
    for (const auto& conn : busy) {
      pollfd pfd;
      pfd.fd = conn->fd;
      pfd.events = POLLRDHUP;
      pfd.revents = 0;
      if (::poll(&pfd, 1, 0) > 0 &&
          (pfd.revents & (POLLRDHUP | POLLHUP | POLLERR | POLLNVAL)) != 0) {
        if (conn->session != nullptr) conn->session->Cancel();
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.monitor_interval_ms));
  }
}

void HqlServer::HandleConnection(std::shared_ptr<Conn> conn) {
  auto created = engine_->CreateSession(StrFormat("conn-%d", conn->fd));
  if (!created.ok()) {
    // Admission failure: one error line, then a clean close.
    WriteAll(conn->fd, WireResponse::Error(created.status()) + "\n");
    ::shutdown(conn->fd, SHUT_RDWR);
    conn->finished.store(true, std::memory_order_release);
    return;
  }
  conn->session = std::move(created).value();

  std::string buffer;
  char chunk[4096];
  bool close_after = false;
  while (!close_after && !stopping_.load(std::memory_order_acquire)) {
    // Serve every complete line already buffered.
    size_t nl;
    while (!close_after && (nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response = Dispatch(*conn, line, &close_after);
      if (!WriteAll(conn->fd, response + "\n")) {
        // Peer vanished while we were replying: drop the connection.
        close_after = true;
      }
    }
    if (close_after) break;
    if (buffer.size() > options_.max_line_bytes) {
      WriteAll(conn->fd,
               WireResponse::Error(Status::InvalidArgument(
                   "request line too long")) +
                   "\n");
      break;
    }
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // disconnect (or Stop's shutdown)
    buffer.append(chunk, static_cast<size_t>(n));
  }
  // Whatever happens next (a half-written query, Stop racing us), this
  // session must not keep any engine slot or run any more work.
  conn->session->Cancel();
  conn->session.reset();
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->finished.store(true, std::memory_order_release);
}

std::string HqlServer::Dispatch(Conn& conn, const std::string& line,
                                bool* close_after) {
  total_requests_.fetch_add(1, std::memory_order_relaxed);
  auto parsed = ParseWireRequest(line);
  if (!parsed.ok()) return WireResponse::Error(parsed.status());
  const WireRequest& req = parsed.value();
  Session& session = *conn.session;

  if (req.op == "ping") {
    return std::move(WireResponse(true)
                         .AddString("server", "hql")
                         .AddNumber("protocol", 1)
                         .AddNumber("sessions",
                                    static_cast<double>(
                                        engine_->live_sessions())))
        .Finish();
  }
  if (req.op == "options") {
    return std::move(
               WireResponse(true).AddString("options",
                                            session.options().Describe()))
        .Finish();
  }
  if (req.op == "profile") {
    Status st = session.SetProfile(req.args[0]);
    if (!st.ok()) return WireResponse::Error(st);
    return std::move(WireResponse(true)).Finish();
  }
  if (req.op == "set") {
    Status st = session.Set(req.args[0], req.args[1]);
    if (!st.ok()) return WireResponse::Error(st);
    return std::move(WireResponse(true)).Finish();
  }
  if (req.op == "derive") {
    auto edge = ParseHypo(req.tail);
    if (!edge.ok()) return WireResponse::Error(edge.status());
    Status st = session.Derive(req.args[0], req.args[1], edge.value());
    if (!st.ok()) return WireResponse::Error(st);
    return std::move(WireResponse(true).AddNumber(
                         "nodes", static_cast<double>(session.NumNodes())))
        .Finish();
  }
  if (req.op == "edit") {
    auto edge = ParseHypo(req.tail);
    if (!edge.ok()) return WireResponse::Error(edge.status());
    Status st = session.Edit(req.args[0], edge.value());
    if (!st.ok()) return WireResponse::Error(st);
    return std::move(WireResponse(true)).Finish();
  }
  if (req.op == "drop") {
    Status st = session.Drop(req.args[0]);
    if (!st.ok()) return WireResponse::Error(st);
    return std::move(WireResponse(true).AddNumber(
                         "nodes", static_cast<double>(session.NumNodes())))
        .Finish();
  }
  if (req.op == "nodes") {
    std::string arr = "[";
    bool first = true;
    for (const ScenarioInfo& info : session.Nodes()) {
      if (!first) arr += ',';
      first = false;
      arr += std::move(WireResponse(true)
                           .AddString("name", info.name)
                           .AddString("parent", info.parent)
                           .AddBool("materialized", info.materialized))
                 .Finish();
    }
    arr += ']';
    // The per-node objects reuse the response builder, so each carries an
    // "ok":true field; readers key on "name".
    return std::move(WireResponse(true).AddRaw("nodes", arr)).Finish();
  }
  if (req.op == "query" || req.op == "fetch" || req.op == "compare") {
    auto query = ParseQuery(req.tail);
    if (!query.ok()) return WireResponse::Error(query.status());
    conn.busy.store(true, std::memory_order_release);
    Result<Relation> out =
        req.op == "compare"
            ? session.Compare(req.args[0], req.args[1], query.value())
            : session.Query(req.args[0], query.value());
    conn.busy.store(false, std::memory_order_release);
    if (!out.ok()) return WireResponse::Error(out.status());
    WireResponse r(true);
    r.AddRelationSummary(out.value());
    if (req.op == "fetch") r.AddTuples(out.value());
    return std::move(r).Finish();
  }
  if (req.op == "analyze") {
    auto query = ParseQuery(req.tail);
    if (!query.ok()) return WireResponse::Error(query.status());
    conn.busy.store(true, std::memory_order_release);
    Result<AnalyzeReport> report = session.Analyze(req.args[0], query.value());
    conn.busy.store(false, std::memory_order_release);
    if (!report.ok()) return WireResponse::Error(report.status());
    return std::move(
               WireResponse(true)
                   .AddNumber("rows",
                              static_cast<double>(report->actual_rows))
                   .AddNumber("wall_micros",
                              static_cast<double>(report->wall_micros))
                   .AddString("route", report->exec.route)
                   .AddString("report", FormatExplainAnalyze(report.value())))
        .Finish();
  }
  if (req.op == "stats") {
    return std::move(
               WireResponse(true).AddRaw("stats", session.Stats().ToJson()))
        .Finish();
  }
  if (req.op == "refresh") {
    Status st = session.Refresh();
    if (!st.ok()) return WireResponse::Error(st);
    return std::move(WireResponse(true).AddNumber(
                         "version",
                         static_cast<double>(session.snapshot_version())))
        .Finish();
  }
  if (req.op == "base") {
    Database snapshot = session.BaseSnapshot();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(snapshot.Hash()));
    return std::move(
               WireResponse(true)
                   .AddNumber("version",
                              static_cast<double>(session.snapshot_version()))
                   .AddString("hash", buf)
                   .AddNumber("relations",
                              static_cast<double>(
                                  snapshot.schema().NumRelations())))
        .Finish();
  }
  if (req.op == "quit") {
    *close_after = true;
    return std::move(WireResponse(true).AddBool("bye", true)).Finish();
  }
  return WireResponse::Error(
      Status::Internal(StrFormat("unhandled op '%s'", req.op.c_str())));
}

}  // namespace hql
