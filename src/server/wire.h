#ifndef HQL_SERVER_WIRE_H_
#define HQL_SERVER_WIRE_H_

// The hql wire protocol: a line-oriented request grammar wrapping the
// facade (opt/engine.h), answered with one-line JSON documents.
//
// Requests — one per line, UTF-8, '\n'-terminated:
//
//   request   := op (' ' word)* (' ' tail)?
//   op        := ping | options | profile | set | derive | edit | drop
//              | nodes | query | fetch | compare | analyze | stats
//              | refresh | base | quit
//   word      := run of non-space characters (scenario names, knob names)
//   tail      := the rest of the line, verbatim — HQL query / hypothetical
//                syntax, which may itself contain spaces
//
// Fixed shapes (W = word, T = tail):
//
//   ping                      profile W            set W W
//   options                   derive W W T         edit W T
//   drop W                    nodes                query W T
//   fetch W T                 compare W W T        analyze W T
//   stats                     refresh              base
//   quit
//
// Responses — exactly one line of JSON per request:
//
//   success: {"ok":true, ...op-specific fields...}
//   failure: {"ok":false,"code":"<StatusCodeName>","message":"..."}
//
// Relation results travel as {"rows":N,"arity":N,"hash":"<decimal>"}; the
// hash is Relation::Hash rendered as a *string* because a 64-bit value
// does not survive a JSON double. `fetch` adds "tuples":[...], each tuple
// in TupleToString syntax (which parses back, storage/io.h).
//
// The grammar and the JSON vocabulary live here, free of socket code, so
// the server, the in-memory tests, and the --connect driver all share one
// definition.

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/relation.h"

namespace hql {

struct WireRequest {
  std::string op;
  std::vector<std::string> args;  // the fixed words
  std::string tail;               // verbatim remainder (may be empty)
};

/// Splits one request line per the shapes above. InvalidArgument on an
/// unknown op or a missing word/tail; a blank line is InvalidArgument too.
Result<WireRequest> ParseWireRequest(const std::string& line);

/// True when `op` is a known wire op (used for error messages).
bool IsWireOp(const std::string& op);

/// Builder for one-line JSON responses with stable field order.
class WireResponse {
 public:
  /// Starts a success ({"ok":true) or failure ({"ok":false) document.
  explicit WireResponse(bool ok);

  /// The canonical failure document for a Status.
  static std::string Error(const Status& status);

  WireResponse& AddString(const std::string& key, const std::string& value);
  WireResponse& AddNumber(const std::string& key, double value);
  WireResponse& AddBool(const std::string& key, bool value);
  /// Appends a pre-rendered JSON value (object, array, ...) verbatim.
  WireResponse& AddRaw(const std::string& key, const std::string& json);
  /// Adds rows/arity/hash for a relation (hash as a decimal string).
  WireResponse& AddRelationSummary(const Relation& relation);
  /// Adds "tuples":["(..)",...] in TupleToString syntax.
  WireResponse& AddTuples(const Relation& relation);

  /// Closes the document: one line, no trailing newline.
  std::string Finish() &&;

 private:
  std::string out_;
};

}  // namespace hql

#endif  // HQL_SERVER_WIRE_H_
