#include "server/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/strings.h"

namespace hql {

Result<WireClient> WireClient::Connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::Internal(
        StrFormat("connect to 127.0.0.1:%u: %s", static_cast<unsigned>(port),
                  std::strerror(errno)));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  WireClient client;
  client.fd_ = fd;
  return client;
}

Status WireClient::Send(const std::string& line) {
  if (fd_ < 0) return Status::Internal("not connected");
  std::string data = line + "\n";
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrFormat("send: %s", std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<JsonPtr> WireClient::Call(const std::string& line) {
  HQL_RETURN_IF_ERROR(Send(line));
  // One response line per request.
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return ParseJson(response);
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::Internal("connection closed by server");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<JsonPtr> WireClient::CallOk(const std::string& line) {
  HQL_ASSIGN_OR_RETURN(JsonPtr doc, Call(line));
  JsonPtr ok = doc->Get("ok");
  if (ok != nullptr && ok->is_bool() && ok->bool_value()) return doc;
  JsonPtr code = doc->Get("code");
  JsonPtr message = doc->Get("message");
  return Status::Internal(StrFormat(
      "server error [%s]: %s",
      code != nullptr && code->is_string() ? code->string_value().c_str()
                                           : "?",
      message != nullptr && message->is_string()
          ? message->string_value().c_str()
          : "?"));
}

void WireClient::Quit() {
  if (fd_ < 0) return;
  Call("quit");
  Close();
}

void WireClient::Close() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

}  // namespace hql
