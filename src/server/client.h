#ifndef HQL_SERVER_CLIENT_H_
#define HQL_SERVER_CLIENT_H_

// A small blocking client for the hql wire protocol — the other half of
// server/server.h, used by the server tests, the workload driver's
// --connect mode, and anything else that wants to script a server.

#include <cstdint>
#include <string>

#include "common/json.h"
#include "common/result.h"

namespace hql {

class WireClient {
 public:
  WireClient() = default;
  ~WireClient() { Close(); }

  WireClient(WireClient&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  WireClient& operator=(WireClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Connects to a server on the loopback interface.
  static Result<WireClient> Connect(uint16_t port);

  bool connected() const { return fd_ >= 0; }

  /// Sends one request line and waits for the one-line JSON response,
  /// parsed. Transport failures (server gone) surface as kInternal; a
  /// protocol-level failure is a parsed document with "ok":false — use
  /// CallOk when only success is acceptable.
  Result<JsonPtr> Call(const std::string& line);

  /// Call, then turns an "ok":false document into the error Status it
  /// carries.
  Result<JsonPtr> CallOk(const std::string& line);

  /// Sends a line WITHOUT waiting for the response — for tests that
  /// disconnect mid-query.
  Status Send(const std::string& line);

  /// Graceful goodbye: best-effort `quit`, then close.
  void Quit();

  /// Hard close, no goodbye (simulates a vanished client).
  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace hql

#endif  // HQL_SERVER_CLIENT_H_
