#ifndef HQL_SERVER_SOAK_H_
#define HQL_SERVER_SOAK_H_

// Network soak: replays the workload driver's phased mix over N concurrent
// wire sessions against a running hql_serve, with the same differential
// oracle as the local stress harness — every server answer is checked
// bit-identically (row count + relation hash) against a local mirror
// engine evaluating the identical scenario tree with Strategy::kDirect.
//
// The mirror rebuilds the server's base from (seed, gen_rows, gen_domain),
// so the soak only makes sense against a server started with the matching
// --gen-* flags (hql_stress --connect passes its own through).

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "workload/driver.h"

namespace hql {

struct NetSoakConfig {
  /// Loopback port of the hql_serve instance to drive.
  uint16_t port = 0;
  /// Concurrent wire sessions (each owns a private scenario tree).
  int sessions = 8;
  /// Scenario nodes each session derives in the grow phase (>= 1).
  int nodes_per_session = 8;
  /// Oracle-checked ops per session in each of the query/edit/churn phases.
  int ops_per_phase = 25;
  /// Seed for the op mix AND the server's base database. Must match the
  /// server's --gen-seed for the oracle to be meaningful.
  uint64_t seed = 1;
  /// The server's --gen-rows / --gen-domain, mirrored locally.
  size_t gen_rows = 64;
  int64_t gen_domain = 64;
};

struct NetSoakReport {
  /// One entry per phase: connect, grow, query, edit, churn.
  std::vector<PhaseMetrics> phases;
  uint64_t requests = 0;
  /// Server answers that differed from the local kDirect mirror, or
  /// ok/error disagreements between server and mirror.
  uint64_t mismatches = 0;
  /// Requests that failed at the transport layer (connection lost, bad
  /// JSON) — distinct from clean protocol errors, which the oracle checks.
  uint64_t transport_errors = 0;
  double seconds = 0.0;

  bool ok() const { return mismatches == 0 && transport_errors == 0; }
  std::string Summary() const;
};

/// Runs the soak against 127.0.0.1:port. Fails (non-OK status) only on
/// setup errors — oracle violations are reported in the result so the
/// caller can print per-phase context before exiting non-zero.
Result<NetSoakReport> RunNetSoak(const NetSoakConfig& config);

}  // namespace hql

#endif  // HQL_SERVER_SOAK_H_
