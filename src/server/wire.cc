#include "server/wire.h"

#include <cstdio>

#include "common/json.h"
#include "common/strings.h"
#include "storage/tuple.h"

namespace hql {

namespace {

// words = fixed leading words, tail = whether a verbatim remainder follows.
struct OpShape {
  const char* op;
  int words;
  bool tail;
};

constexpr OpShape kShapes[] = {
    {"ping", 0, false},    {"options", 0, false}, {"profile", 1, false},
    {"set", 2, false},     {"derive", 2, true},   {"edit", 1, true},
    {"drop", 1, false},    {"nodes", 0, false},   {"query", 1, true},
    {"fetch", 1, true},    {"compare", 2, true},  {"analyze", 1, true},
    {"stats", 0, false},   {"refresh", 0, false}, {"base", 0, false},
    {"quit", 0, false},
};

const OpShape* FindShape(const std::string& op) {
  for (const OpShape& s : kShapes) {
    if (op == s.op) return &s;
  }
  return nullptr;
}

size_t SkipSpaces(const std::string& s, size_t pos) {
  while (pos < s.size() && s[pos] == ' ') ++pos;
  return pos;
}

}  // namespace

bool IsWireOp(const std::string& op) { return FindShape(op) != nullptr; }

Result<WireRequest> ParseWireRequest(const std::string& line) {
  WireRequest req;
  size_t pos = SkipSpaces(line, 0);
  size_t end = line.find(' ', pos);
  if (end == std::string::npos) end = line.size();
  req.op = line.substr(pos, end - pos);
  if (req.op.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  const OpShape* shape = FindShape(req.op);
  if (shape == nullptr) {
    return Status::InvalidArgument(
        StrFormat("unknown op '%s'", req.op.c_str()));
  }
  pos = end;
  for (int i = 0; i < shape->words; ++i) {
    pos = SkipSpaces(line, pos);
    end = line.find(' ', pos);
    if (end == std::string::npos) end = line.size();
    if (pos == end) {
      return Status::InvalidArgument(
          StrFormat("op '%s' needs %d argument%s", req.op.c_str(),
                    shape->words, shape->words == 1 ? "" : "s"));
    }
    req.args.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  pos = SkipSpaces(line, pos);
  if (shape->tail) {
    if (pos >= line.size()) {
      return Status::InvalidArgument(
          StrFormat("op '%s' needs a query/hypothetical text", req.op.c_str()));
    }
    req.tail = line.substr(pos);
    // Trim trailing spaces and any stray '\r' from a CRLF client.
    while (!req.tail.empty() &&
           (req.tail.back() == ' ' || req.tail.back() == '\r')) {
      req.tail.pop_back();
    }
  } else if (pos < line.size() && line[pos] != '\r') {
    return Status::InvalidArgument(
        StrFormat("op '%s' takes no further input", req.op.c_str()));
  }
  return req;
}

WireResponse::WireResponse(bool ok) {
  out_ = ok ? "{\"ok\":true" : "{\"ok\":false";
}

std::string WireResponse::Error(const Status& status) {
  WireResponse r(false);
  r.AddString("code", StatusCodeName(status.code()));
  r.AddString("message", status.message());
  return std::move(r).Finish();
}

WireResponse& WireResponse::AddString(const std::string& key,
                                      const std::string& value) {
  out_ += ',';
  AppendJsonString(&out_, key);
  out_ += ':';
  AppendJsonString(&out_, value);
  return *this;
}

WireResponse& WireResponse::AddNumber(const std::string& key, double value) {
  out_ += ',';
  AppendJsonString(&out_, key);
  out_ += ':';
  out_ += FormatJsonNumber(value);
  return *this;
}

WireResponse& WireResponse::AddBool(const std::string& key, bool value) {
  out_ += ',';
  AppendJsonString(&out_, key);
  out_ += ':';
  out_ += value ? "true" : "false";
  return *this;
}

WireResponse& WireResponse::AddRaw(const std::string& key,
                                   const std::string& json) {
  out_ += ',';
  AppendJsonString(&out_, key);
  out_ += ':';
  out_ += json;
  return *this;
}

WireResponse& WireResponse::AddRelationSummary(const Relation& relation) {
  AddNumber("rows", static_cast<double>(relation.size()));
  AddNumber("arity", static_cast<double>(relation.arity()));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(relation.Hash()));
  AddString("hash", buf);
  return *this;
}

WireResponse& WireResponse::AddTuples(const Relation& relation) {
  out_ += ",\"tuples\":[";
  bool first = true;
  for (const Tuple& t : relation) {
    if (!first) out_ += ',';
    first = false;
    AppendJsonString(&out_, TupleToString(t));
  }
  out_ += ']';
  return *this;
}

std::string WireResponse::Finish() && {
  out_ += '}';
  return std::move(out_);
}

}  // namespace hql
