#ifndef HQL_COMMON_THREAD_POOL_H_
#define HQL_COMMON_THREAD_POOL_H_

// A small fixed-size thread pool for fanning independent evaluation work
// (one hypothetical alternative per task, see opt/session.h) across cores.
// Tasks are plain std::function<void()> or fallible std::function<Status()>;
// results travel through whatever state the task closes over. The pool is
// deliberately minimal: FIFO queue, no work stealing, no priorities —
// alternative evaluation produces a handful of coarse tasks, not millions
// of fine ones.
//
// Failure semantics: a task that returns a failed Status — or throws, which
// is caught and converted to kInternal — never takes down the pool or
// deadlocks joiners. The first error of the current batch is captured, the
// batch's CancelToken is cancelled (running tasks observe it through their
// governors), and the remaining queued tasks of the batch are drained
// without being run. WaitAll() returns the captured error; ResetBatch()
// rearms the pool for the next batch.
//
//   ThreadPool pool(4);
//   for (auto& item : items)
//     pool.Submit([&item]() -> Status { return Process(&item); });
//   Status st = pool.WaitAll();  // first failure, or OK

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/governor.h"
#include "common/status.h"

namespace hql {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1). Use
  /// DefaultThreads() for a hardware-sized pool.
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue (running every submitted task) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Thread-safe; may be
  /// called from inside a task. A thrown exception is caught and recorded
  /// as the batch error (kInternal) instead of terminating the process.
  void Submit(std::function<void()> task);

  /// Enqueues a fallible task: a non-OK return (or a thrown exception)
  /// records the batch's first error and cancels the batch token, after
  /// which still-queued tasks are drained unrun.
  void Submit(std::function<Status()> task);

  /// Blocks until every task submitted so far has finished or was drained.
  /// Does not stop the pool; more work may be submitted afterwards.
  void Wait();

  /// Wait() plus the first error captured in the current batch (OK if all
  /// tasks succeeded).
  Status WaitAll();

  /// The current batch's cancellation token: cancelled on the first task
  /// failure so sibling tasks can stop cooperatively (thread their
  /// ExecGovernor with it). Stable until ResetBatch().
  const CancelTokenPtr& cancel_token() const { return batch_cancel_; }

  /// Clears the captured batch error and installs a fresh CancelToken.
  /// Call between batches when reusing one pool.
  void ResetBatch();

  size_t num_threads() const { return workers_.size(); }

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();
  void RecordError(Status status);  // requires a non-OK status

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<Status()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
  Status batch_error_;           // first failure of the current batch
  CancelTokenPtr batch_cancel_;  // cancelled on first failure
  std::vector<std::thread> workers_;
};

}  // namespace hql

#endif  // HQL_COMMON_THREAD_POOL_H_
