#ifndef HQL_COMMON_THREAD_POOL_H_
#define HQL_COMMON_THREAD_POOL_H_

// A small fixed-size thread pool for fanning independent evaluation work
// (one hypothetical alternative per task, see opt/session.h) across cores.
// Tasks are plain std::function<void()>; results and errors travel through
// whatever state the task closes over. The pool is deliberately minimal:
// FIFO queue, no work stealing, no priorities — alternative evaluation
// produces a handful of coarse tasks, not millions of fine ones.
//
//   ThreadPool pool(4);
//   for (auto& item : items) pool.Submit([&item] { Process(&item); });
//   pool.Wait();  // all submitted tasks have finished

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hql {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1). Use
  /// DefaultThreads() for a hardware-sized pool.
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue (running every submitted task) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Thread-safe; may be
  /// called from inside a task.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. Does not stop
  /// the pool; more work may be submitted afterwards.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hql

#endif  // HQL_COMMON_THREAD_POOL_H_
