#include "common/exec_context.h"

#include <chrono>
#include <utility>

#include "common/strings.h"

namespace hql {
namespace {

thread_local ExecContext* t_current_context = nullptr;
thread_local const char* t_current_route = "";

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendField(std::string* out, const char* key, uint64_t value,
                 bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  *out += StrFormat("\"%s\":%llu", key,
                    static_cast<unsigned long long>(value));
}

}  // namespace

void ExecStats::MergeFrom(const ExecStats& other) {
  memo_hits += other.memo_hits;
  memo_misses += other.memo_misses;

  views_created += other.views_created;
  view_consolidations += other.view_consolidations;
  view_tuples_shared += other.view_tuples_shared;
  view_tuples_copied += other.view_tuples_copied;

  indexes_built += other.indexes_built;
  indexes_shared += other.indexes_shared;
  index_probes += other.index_probes;
  index_tuples_skipped += other.index_tuples_skipped;

  governor_deadline_trips += other.governor_deadline_trips;
  governor_tuple_trips += other.governor_tuple_trips;
  governor_rewrite_trips += other.governor_rewrite_trips;
  governor_cancellations += other.governor_cancellations;
  governor_lazy_fallbacks += other.governor_lazy_fallbacks;
  governor_index_fallbacks += other.governor_index_fallbacks;
  if (other.governor_max_tuples_charged > governor_max_tuples_charged) {
    governor_max_tuples_charged = other.governor_max_tuples_charged;
  }
  if (other.governor_max_rewrite_nodes_charged >
      governor_max_rewrite_nodes_charged) {
    governor_max_rewrite_nodes_charged =
        other.governor_max_rewrite_nodes_charged;
  }

  columnar_batches_built += other.columnar_batches_built;
  columnar_batches_reused += other.columnar_batches_reused;
  columnar_morsels_dispatched += other.columnar_morsels_dispatched;
  columnar_rows_vectorized += other.columnar_rows_vectorized;
  columnar_rows_fallback += other.columnar_rows_fallback;
  columnar_agg_rows_vectorized += other.columnar_agg_rows_vectorized;
  columnar_agg_groups += other.columnar_agg_groups;
  columnar_when_routed += other.columnar_when_routed;

  incremental_results_patched += other.incremental_results_patched;
  incremental_edits_propagated += other.incremental_edits_propagated;
  incremental_fallbacks += other.incremental_fallbacks;

  if (route.empty()) route = other.route;
  spans.insert(spans.end(), other.spans.begin(), other.spans.end());
}

std::string ExecStats::ToJson() const {
  std::string out = "{\"schema\":\"hql-exec-stats/v1\"";
  bool first = false;
  AppendField(&out, "memo_hits", memo_hits, &first);
  AppendField(&out, "memo_misses", memo_misses, &first);
  AppendField(&out, "views_created", views_created, &first);
  AppendField(&out, "view_consolidations", view_consolidations, &first);
  AppendField(&out, "view_tuples_shared", view_tuples_shared, &first);
  AppendField(&out, "view_tuples_copied", view_tuples_copied, &first);
  AppendField(&out, "indexes_built", indexes_built, &first);
  AppendField(&out, "indexes_shared", indexes_shared, &first);
  AppendField(&out, "index_probes", index_probes, &first);
  AppendField(&out, "index_tuples_skipped", index_tuples_skipped, &first);
  AppendField(&out, "governor_deadline_trips", governor_deadline_trips,
              &first);
  AppendField(&out, "governor_tuple_trips", governor_tuple_trips, &first);
  AppendField(&out, "governor_rewrite_trips", governor_rewrite_trips, &first);
  AppendField(&out, "governor_cancellations", governor_cancellations, &first);
  AppendField(&out, "governor_lazy_fallbacks", governor_lazy_fallbacks,
              &first);
  AppendField(&out, "governor_index_fallbacks", governor_index_fallbacks,
              &first);
  AppendField(&out, "governor_max_tuples_charged", governor_max_tuples_charged,
              &first);
  AppendField(&out, "governor_max_rewrite_nodes_charged",
              governor_max_rewrite_nodes_charged, &first);
  AppendField(&out, "columnar_batches_built", columnar_batches_built, &first);
  AppendField(&out, "columnar_batches_reused", columnar_batches_reused,
              &first);
  AppendField(&out, "columnar_morsels_dispatched", columnar_morsels_dispatched,
              &first);
  AppendField(&out, "columnar_rows_vectorized", columnar_rows_vectorized,
              &first);
  AppendField(&out, "columnar_rows_fallback", columnar_rows_fallback, &first);
  AppendField(&out, "columnar_agg_rows_vectorized",
              columnar_agg_rows_vectorized, &first);
  AppendField(&out, "columnar_agg_groups", columnar_agg_groups, &first);
  AppendField(&out, "columnar_when_routed", columnar_when_routed, &first);
  AppendField(&out, "incremental_results_patched", incremental_results_patched,
              &first);
  AppendField(&out, "incremental_edits_propagated",
              incremental_edits_propagated, &first);
  AppendField(&out, "incremental_fallbacks", incremental_fallbacks, &first);
  out += ",\"route\":";
  AppendJsonString(&out, route);
  out += ",\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const OperatorSpan& span = spans[i];
    if (i > 0) out.push_back(',');
    out += "{\"op\":";
    AppendJsonString(&out, span.op);
    out += ",\"route\":";
    AppendJsonString(&out, span.route);
    out += StrFormat(",\"rows_in\":%llu,\"rows_out\":%llu,\"micros\":%llu}",
                     static_cast<unsigned long long>(span.rows_in),
                     static_cast<unsigned long long>(span.rows_out),
                     static_cast<unsigned long long>(span.micros));
  }
  out += "]}";
  return out;
}

void ExecContext::AddGovernorTrip(GovernorTripKind kind) {
  switch (kind) {
    case GovernorTripKind::kDeadline:
      Bump(&governor_deadline_trips_);
      break;
    case GovernorTripKind::kTupleBudget:
      Bump(&governor_tuple_trips_);
      break;
    case GovernorTripKind::kRewriteBudget:
      Bump(&governor_rewrite_trips_);
      break;
    case GovernorTripKind::kCancelled:
      Bump(&governor_cancellations_);
      break;
  }
}

void ExecContext::RaiseHighWater(std::atomic<uint64_t>* mark, uint64_t value) {
  uint64_t seen = mark->load(std::memory_order_relaxed);
  while (value > seen &&
         !mark->compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void ExecContext::RaiseTuplesCharged(uint64_t n) {
  RaiseHighWater(&governor_max_tuples_charged_, n);
}

void ExecContext::RaiseRewriteNodesCharged(uint64_t n) {
  RaiseHighWater(&governor_max_rewrite_nodes_charged_, n);
}

void ExecContext::NoteRoute(const char* route) {
  std::lock_guard<std::mutex> lock(mu_);
  route_ = route;
}

void ExecContext::RecordSpan(OperatorSpan span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

ExecStats ExecContext::Snapshot() const {
  ExecStats stats;
  stats.memo_hits = memo_hits_.load(std::memory_order_relaxed);
  stats.memo_misses = memo_misses_.load(std::memory_order_relaxed);
  stats.views_created = views_created_.load(std::memory_order_relaxed);
  stats.view_consolidations =
      view_consolidations_.load(std::memory_order_relaxed);
  stats.view_tuples_shared =
      view_tuples_shared_.load(std::memory_order_relaxed);
  stats.view_tuples_copied =
      view_tuples_copied_.load(std::memory_order_relaxed);
  stats.indexes_built = indexes_built_.load(std::memory_order_relaxed);
  stats.indexes_shared = indexes_shared_.load(std::memory_order_relaxed);
  stats.index_probes = index_probes_.load(std::memory_order_relaxed);
  stats.index_tuples_skipped =
      index_tuples_skipped_.load(std::memory_order_relaxed);
  stats.governor_deadline_trips =
      governor_deadline_trips_.load(std::memory_order_relaxed);
  stats.governor_tuple_trips =
      governor_tuple_trips_.load(std::memory_order_relaxed);
  stats.governor_rewrite_trips =
      governor_rewrite_trips_.load(std::memory_order_relaxed);
  stats.governor_cancellations =
      governor_cancellations_.load(std::memory_order_relaxed);
  stats.governor_lazy_fallbacks =
      governor_lazy_fallbacks_.load(std::memory_order_relaxed);
  stats.governor_index_fallbacks =
      governor_index_fallbacks_.load(std::memory_order_relaxed);
  stats.governor_max_tuples_charged =
      governor_max_tuples_charged_.load(std::memory_order_relaxed);
  stats.governor_max_rewrite_nodes_charged =
      governor_max_rewrite_nodes_charged_.load(std::memory_order_relaxed);
  stats.columnar_batches_built =
      columnar_batches_built_.load(std::memory_order_relaxed);
  stats.columnar_batches_reused =
      columnar_batches_reused_.load(std::memory_order_relaxed);
  stats.columnar_morsels_dispatched =
      columnar_morsels_dispatched_.load(std::memory_order_relaxed);
  stats.columnar_rows_vectorized =
      columnar_rows_vectorized_.load(std::memory_order_relaxed);
  stats.columnar_rows_fallback =
      columnar_rows_fallback_.load(std::memory_order_relaxed);
  stats.columnar_agg_rows_vectorized =
      columnar_agg_rows_vectorized_.load(std::memory_order_relaxed);
  stats.columnar_agg_groups =
      columnar_agg_groups_.load(std::memory_order_relaxed);
  stats.columnar_when_routed =
      columnar_when_routed_.load(std::memory_order_relaxed);
  stats.incremental_results_patched =
      incremental_results_patched_.load(std::memory_order_relaxed);
  stats.incremental_edits_propagated =
      incremental_edits_propagated_.load(std::memory_order_relaxed);
  stats.incremental_fallbacks =
      incremental_fallbacks_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.route = route_;
    stats.spans = spans_;
  }
  return stats;
}

void ExecContext::MergeFrom(const ExecStats& stats) {
  Bump(&memo_hits_, stats.memo_hits);
  Bump(&memo_misses_, stats.memo_misses);
  Bump(&views_created_, stats.views_created);
  Bump(&view_consolidations_, stats.view_consolidations);
  Bump(&view_tuples_shared_, stats.view_tuples_shared);
  Bump(&view_tuples_copied_, stats.view_tuples_copied);
  Bump(&indexes_built_, stats.indexes_built);
  Bump(&indexes_shared_, stats.indexes_shared);
  Bump(&index_probes_, stats.index_probes);
  Bump(&index_tuples_skipped_, stats.index_tuples_skipped);
  Bump(&governor_deadline_trips_, stats.governor_deadline_trips);
  Bump(&governor_tuple_trips_, stats.governor_tuple_trips);
  Bump(&governor_rewrite_trips_, stats.governor_rewrite_trips);
  Bump(&governor_cancellations_, stats.governor_cancellations);
  Bump(&governor_lazy_fallbacks_, stats.governor_lazy_fallbacks);
  Bump(&governor_index_fallbacks_, stats.governor_index_fallbacks);
  RaiseTuplesCharged(stats.governor_max_tuples_charged);
  RaiseRewriteNodesCharged(stats.governor_max_rewrite_nodes_charged);
  Bump(&columnar_batches_built_, stats.columnar_batches_built);
  Bump(&columnar_batches_reused_, stats.columnar_batches_reused);
  Bump(&columnar_morsels_dispatched_, stats.columnar_morsels_dispatched);
  Bump(&columnar_rows_vectorized_, stats.columnar_rows_vectorized);
  Bump(&columnar_rows_fallback_, stats.columnar_rows_fallback);
  Bump(&columnar_agg_rows_vectorized_, stats.columnar_agg_rows_vectorized);
  Bump(&columnar_agg_groups_, stats.columnar_agg_groups);
  Bump(&columnar_when_routed_, stats.columnar_when_routed);
  Bump(&incremental_results_patched_, stats.incremental_results_patched);
  Bump(&incremental_edits_propagated_, stats.incremental_edits_propagated);
  Bump(&incremental_fallbacks_, stats.incremental_fallbacks);
  std::lock_guard<std::mutex> lock(mu_);
  if (route_.empty()) route_ = stats.route;
  spans_.insert(spans_.end(), stats.spans.begin(), stats.spans.end());
}

void ExecContext::Reset() {
  ResetMemoCounters();
  ResetViewCounters();
  ResetIndexCounters();
  ResetGovernorCounters();
  ResetColumnarCounters();
  ResetIncrementalCounters();
  std::lock_guard<std::mutex> lock(mu_);
  route_.clear();
  spans_.clear();
}

void ExecContext::ResetMemoCounters() {
  memo_hits_.store(0, std::memory_order_relaxed);
  memo_misses_.store(0, std::memory_order_relaxed);
}

void ExecContext::ResetViewCounters() {
  views_created_.store(0, std::memory_order_relaxed);
  view_consolidations_.store(0, std::memory_order_relaxed);
  view_tuples_shared_.store(0, std::memory_order_relaxed);
  view_tuples_copied_.store(0, std::memory_order_relaxed);
}

void ExecContext::ResetIndexCounters() {
  indexes_built_.store(0, std::memory_order_relaxed);
  indexes_shared_.store(0, std::memory_order_relaxed);
  index_probes_.store(0, std::memory_order_relaxed);
  index_tuples_skipped_.store(0, std::memory_order_relaxed);
}

void ExecContext::ResetGovernorCounters() {
  governor_deadline_trips_.store(0, std::memory_order_relaxed);
  governor_tuple_trips_.store(0, std::memory_order_relaxed);
  governor_rewrite_trips_.store(0, std::memory_order_relaxed);
  governor_cancellations_.store(0, std::memory_order_relaxed);
  governor_lazy_fallbacks_.store(0, std::memory_order_relaxed);
  governor_index_fallbacks_.store(0, std::memory_order_relaxed);
  governor_max_tuples_charged_.store(0, std::memory_order_relaxed);
  governor_max_rewrite_nodes_charged_.store(0, std::memory_order_relaxed);
}

void ExecContext::ResetColumnarCounters() {
  columnar_batches_built_.store(0, std::memory_order_relaxed);
  columnar_batches_reused_.store(0, std::memory_order_relaxed);
  columnar_morsels_dispatched_.store(0, std::memory_order_relaxed);
  columnar_rows_vectorized_.store(0, std::memory_order_relaxed);
  columnar_rows_fallback_.store(0, std::memory_order_relaxed);
  columnar_agg_rows_vectorized_.store(0, std::memory_order_relaxed);
  columnar_agg_groups_.store(0, std::memory_order_relaxed);
  columnar_when_routed_.store(0, std::memory_order_relaxed);
}

void ExecContext::ResetIncrementalCounters() {
  incremental_results_patched_.store(0, std::memory_order_relaxed);
  incremental_edits_propagated_.store(0, std::memory_order_relaxed);
  incremental_fallbacks_.store(0, std::memory_order_relaxed);
}

ExecContext* CurrentExecContext() { return t_current_context; }

ExecContext& ProcessDefaultExecContext() {
  static ExecContext* context = new ExecContext();  // never destroyed
  return *context;
}

ExecContextScope::ExecContextScope(ExecContext* context)
    : prev_(t_current_context) {
  t_current_context = context;
}

ExecContextScope::~ExecContextScope() { t_current_context = prev_; }

ExecRouteScope::ExecRouteScope(const char* route) : prev_(t_current_route) {
  t_current_route = route;
}

ExecRouteScope::~ExecRouteScope() { t_current_route = prev_; }

const char* CurrentExecRoute() { return t_current_route; }

TraceSpan::TraceSpan(const char* op, uint64_t rows_in) {
  ExecContext& ambient = AmbientExecContext();
  if (!ambient.tracing()) return;
  context_ = &ambient;
  op_ = op;
  rows_in_ = rows_in;
  start_micros_ = NowMicros();
}

TraceSpan::~TraceSpan() {
  if (context_ == nullptr) return;
  OperatorSpan span;
  span.op = op_;
  span.route = CurrentExecRoute();
  span.rows_in = rows_in_;
  span.rows_out = rows_out_;
  span.micros = NowMicros() - start_micros_;
  context_->RecordSpan(std::move(span));
}

}  // namespace hql
