#ifndef HQL_COMMON_STATUS_H_
#define HQL_COMMON_STATUS_H_

// Error handling for the hql library. The library does not use exceptions;
// fallible operations return Status (or Result<T>, see result.h). This
// mirrors the Status idiom used by Arrow / RocksDB / Abseil.

#include <string>
#include <utility>

namespace hql {

// Broad machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // malformed input from the caller (bad arity, parse...)
  kNotFound,           // unknown relation name
  kAlreadyExists,      // duplicate relation name in a schema or substitution
  kTypeError,          // arity / value-type mismatch detected by typecheck
  kUnimplemented,      // feature intentionally not supported
  kInternal,           // invariant violation surfaced as an error
  kCancelled,          // execution stopped via a CancelToken
  kResourceExhausted,  // an ExecBudget limit (deadline/tuples/rewrite) tripped
};

/// Returns a short stable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller. Requires the enclosing function
/// to return Status.
#define HQL_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::hql::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace hql

#endif  // HQL_COMMON_STATUS_H_
