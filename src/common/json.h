#ifndef HQL_COMMON_JSON_H_
#define HQL_COMMON_JSON_H_

// A minimal JSON reader: just enough to validate the files this repo
// emits (ExecStats::ToJson sidecars and google-benchmark --benchmark_out
// reports) from tests and the bench/check_bench_json tool. Parses the
// full JSON grammar into a tree of JsonValue nodes; numbers are kept as
// doubles. Not a performance-oriented or streaming parser — inputs here
// are small, machine-written files.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hql {

class JsonValue;
using JsonPtr = std::shared_ptr<const JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonPtr>& items() const { return items_; }
  const std::map<std::string, JsonPtr>& fields() const { return fields_; }

  /// The named member of an object, or nullptr when absent (or when this
  /// is not an object).
  JsonPtr Get(const std::string& key) const;

  static JsonPtr Null();
  static JsonPtr Bool(bool b);
  static JsonPtr Number(double d);
  static JsonPtr String(std::string s);
  static JsonPtr Array(std::vector<JsonPtr> items);
  static JsonPtr Object(std::map<std::string, JsonPtr> fields);

 private:
  explicit JsonValue(Kind kind) : kind_(kind) {}

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonPtr> items_;
  std::map<std::string, JsonPtr> fields_;
};

/// Parses one JSON document; trailing non-whitespace is an error.
Result<JsonPtr> ParseJson(const std::string& text);

// -- writing helpers (the hand-built emitters' shared vocabulary) --
//
// The repo's JSON writers (replay capsules, wire-protocol responses, bench
// phase reports) are hand-built for stable key order; these two helpers are
// the part every writer must agree on with the reader above.

/// Appends `s` as a JSON string literal (quotes, escapes, control chars as
/// \u00xx) to `*out`.
void AppendJsonString(std::string* out, const std::string& s);

/// Renders a double so it survives serialize -> parse -> serialize
/// unchanged: exact integers print without a fraction, everything else as
/// a 17-significant-digit decimal.
std::string FormatJsonNumber(double d);

}  // namespace hql

#endif  // HQL_COMMON_JSON_H_
