#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/strings.h"

namespace hql {

JsonPtr JsonValue::Get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = fields_.find(key);
  return it == fields_.end() ? nullptr : it->second;
}

JsonPtr JsonValue::Null() {
  return JsonPtr(new JsonValue(Kind::kNull));
}

JsonPtr JsonValue::Bool(bool b) {
  auto* v = new JsonValue(Kind::kBool);
  v->bool_ = b;
  return JsonPtr(v);
}

JsonPtr JsonValue::Number(double d) {
  auto* v = new JsonValue(Kind::kNumber);
  v->number_ = d;
  return JsonPtr(v);
}

JsonPtr JsonValue::String(std::string s) {
  auto* v = new JsonValue(Kind::kString);
  v->string_ = std::move(s);
  return JsonPtr(v);
}

JsonPtr JsonValue::Array(std::vector<JsonPtr> items) {
  auto* v = new JsonValue(Kind::kArray);
  v->items_ = std::move(items);
  return JsonPtr(v);
}

JsonPtr JsonValue::Object(std::map<std::string, JsonPtr> fields) {
  auto* v = new JsonValue(Kind::kObject);
  v->fields_ = std::move(fields);
  return JsonPtr(v);
}

namespace {

// Recursive-descent parser over a bounded string view. Depth is capped so
// a pathological file cannot overflow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonPtr> Parse() {
    HQL_ASSIGN_OR_RETURN(JsonPtr value, ParseValue(0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t len = 0;
    while (word[len] != '\0') ++len;
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  Result<JsonPtr> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        HQL_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) return JsonValue::Bool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) return JsonValue::Bool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) return JsonValue::Null();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonPtr> ParseObject(int depth) {
    Consume('{');
    std::map<std::string, JsonPtr> fields;
    SkipSpace();
    if (Consume('}')) return JsonValue::Object(std::move(fields));
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      HQL_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after object key");
      HQL_ASSIGN_OR_RETURN(JsonPtr value, ParseValue(depth + 1));
      fields[std::move(key)] = std::move(value);
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::Object(std::move(fields));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonPtr> ParseArray(int depth) {
    Consume('[');
    std::vector<JsonPtr> items;
    SkipSpace();
    if (Consume(']')) return JsonValue::Array(std::move(items));
    while (true) {
      HQL_ASSIGN_OR_RETURN(JsonPtr value, ParseValue(depth + 1));
      items.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::Array(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // Encode as UTF-8 (surrogate pairs are passed through as two
          // separate 3-byte sequences; good enough for validation).
          if (value < 0x80) {
            out.push_back(static_cast<char>(value));
          } else if (value < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (value >> 6)));
            out.push_back(static_cast<char>(0x80 | (value & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (value >> 12)));
            out.push_back(static_cast<char>(0x80 | ((value >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (value & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonPtr> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    return JsonValue::Number(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonPtr> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string FormatJsonNumber(double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

}  // namespace hql
