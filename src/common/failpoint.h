#ifndef HQL_COMMON_FAILPOINT_H_
#define HQL_COMMON_FAILPOINT_H_

// Deterministic fault injection (genny/MongoDB-style failpoints): named
// sites compiled into Debug builds at well-chosen chokepoints, armed by
// test code with either a fire-after-K countdown or a seeded per-hit
// probability. In Release (NDEBUG) the HQL_FAIL_POINT macro expands to a
// no-op and the sites cost nothing.
//
// Firing does not abort and does not throw: it trips the thread's ambient
// ExecGovernor (common/governor.h) with the configured status code, and
// cooperative checking turns that into a clean kCancelled /
// kResourceExhausted error on the normal propagation path. A fired site
// with no governor installed only counts the fire — exactly what a
// production build would do.
//
//   ArmFailPoint(kFailPointIndexBuild,
//                FailPointSpec::AfterN(2, StatusCode::kResourceExhausted));
//   ... run a governed query; the third index build trips it ...
//   DisarmAllFailPoints();

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace hql {

// The site catalog — the single source of truth. Adding a site means adding
// exactly one line here: the constant, RegisteredFailPointSites(), and every
// registry-derived chaos sweep (tests/chaos_failpoint_test.cc, the stress
// harness's chaos mode) pick it up automatically, so a new site can never be
// silently skipped by chaos coverage.
#define HQL_FAILPOINT_SITE_LIST(X)                    \
  X(kFailPointTaskEnqueue, "thread_pool.enqueue")     \
  X(kFailPointTupleAppend, "relation.append")         \
  X(kFailPointIndexBuild, "index.build")              \
  X(kFailPointMemoInsert, "memo.insert")              \
  X(kFailPointConsolidate, "view.consolidate")        \
  X(kFailPointColumnBatchBuild, "column_batch.build") \
  X(kFailPointMemoPatch, "memo.patch")

#define HQL_FAILPOINT_DECLARE_SITE(ident, name) \
  inline constexpr const char* ident = name;
HQL_FAILPOINT_SITE_LIST(HQL_FAILPOINT_DECLARE_SITE)
#undef HQL_FAILPOINT_DECLARE_SITE

struct FailPointSpec {
  enum class Mode {
    kOff,
    kAfterN,       // skip the first `after_n` hits, fire on every later hit
    kProbability,  // fire each hit with `probability`, seeded per site
  };

  Mode mode = Mode::kOff;
  uint64_t after_n = 0;
  double probability = 0.0;
  uint64_t seed = 0;
  /// What the fired site reports: kCancelled or kResourceExhausted.
  StatusCode code = StatusCode::kResourceExhausted;

  static FailPointSpec AfterN(uint64_t n,
                              StatusCode c = StatusCode::kResourceExhausted) {
    FailPointSpec s;
    s.mode = Mode::kAfterN;
    s.after_n = n;
    s.code = c;
    return s;
  }
  static FailPointSpec Probability(
      double p, uint64_t seed,
      StatusCode c = StatusCode::kResourceExhausted) {
    FailPointSpec s;
    s.mode = Mode::kProbability;
    s.probability = p;
    s.seed = seed;
    s.code = c;
    return s;
  }
};

/// Arms `site` with `spec`, resetting its hit/fire counters. Thread-safe.
void ArmFailPoint(const std::string& site, const FailPointSpec& spec);

/// Disarms one site / all sites (counters are kept until re-armed).
void DisarmFailPoint(const std::string& site);
void DisarmAllFailPoints();

/// Times the site fired since it was last armed.
uint64_t FailPointFireCount(const std::string& site);

/// The compiled-in site catalog (stable order, for sweeps and docs).
std::vector<std::string> RegisteredFailPointSites();

namespace internal {
/// The slow path behind HQL_FAIL_POINT; cheap no-op while nothing is armed.
void FailPointHit(const char* site);
}  // namespace internal

}  // namespace hql

#ifdef NDEBUG
#define HQL_FAIL_POINT(site) ((void)0)
#else
#define HQL_FAIL_POINT(site) ::hql::internal::FailPointHit(site)
#endif

#endif  // HQL_COMMON_FAILPOINT_H_
