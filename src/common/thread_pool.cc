#include "common/thread_pool.h"

#include <exception>
#include <utility>

#include "common/failpoint.h"

namespace hql {

ThreadPool::ThreadPool(size_t num_threads)
    : batch_cancel_(std::make_shared<CancelToken>()) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  Submit(std::function<Status()>([task = std::move(task)]() -> Status {
    task();
    return Status::OK();
  }));
}

void ThreadPool::Submit(std::function<Status()> task) {
  HQL_FAIL_POINT(kFailPointTaskEnqueue);
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

Status ThreadPool::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  return batch_error_;
}

void ThreadPool::ResetBatch() {
  std::unique_lock<std::mutex> lock(mu_);
  batch_error_ = Status::OK();
  batch_cancel_ = std::make_shared<CancelToken>();
}

size_t ThreadPool::DefaultThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ThreadPool::RecordError(Status status) {
  CancelTokenPtr to_cancel;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (batch_error_.ok()) {
      batch_error_ = std::move(status);
      to_cancel = batch_cancel_;
    }
  }
  // Cancel outside the lock; siblings observe the token cooperatively and
  // still-queued tasks of this batch are drained unrun in WorkerLoop.
  if (to_cancel != nullptr) to_cancel->Cancel();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<Status()> task;
    bool drained = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      drained = !batch_error_.ok();
    }
    if (!drained) {
      Status result;
      try {
        result = task();
      } catch (const std::exception& e) {
        result = Status::Internal(std::string("task threw: ") + e.what());
      } catch (...) {
        result = Status::Internal("task threw a non-std exception");
      }
      if (!result.ok()) RecordError(std::move(result));
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace hql
