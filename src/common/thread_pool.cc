#include "common/thread_pool.h"

#include <utility>

namespace hql {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

size_t ThreadPool::DefaultThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace hql
