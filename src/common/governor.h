#ifndef HQL_COMMON_GOVERNOR_H_
#define HQL_COMMON_GOVERNOR_H_

// The execution governor: bounded, cancellable, degrade-gracefully
// execution for every hot path in the library.
//
// Three pieces cooperate:
//   * ExecBudget — declarative resource limits: a wall-clock deadline, a
//     tuple budget on operator output, a node budget on the HQL rewriters
//     (the Example 2.4 blow-up guard), and a row cap on advisor-driven
//     index builds.
//   * CancelToken — a shared atomic flag; any thread may Cancel() it and
//     every governed loop observes it cooperatively within one check
//     interval.
//   * ExecGovernor — one in-flight execution's accounting: it owns the
//     deadline clock, the charge counters and the trip state. Installed
//     into a thread-local slot with GovernorScope, so the physical kernels
//     (whose signatures return plain Relations) can charge work without
//     signature churn; fallible layers observe trips via GovernorCheck().
//
// Trip semantics: an expired deadline or an exceeded budget trips the
// governor with kResourceExhausted; an observed CancelToken trips it with
// kCancelled. Once tripped, every subsequent ChargeTuples/Tick returns
// false (kernels break out of their loops and return truncated data that
// the Status-returning caller discards) and GovernorCheck() returns the
// trip status, which propagates out as a clean error — never an abort.
//
// The planner additionally *recovers* from one trip kind: a rewrite-node
// trip during the lazy route clears via ClearRewriteTrip() and execution
// retries along the hybrid/eager route (the fallback lattice
// lazy -> hybrid -> eager). Trips and fallbacks are charged to the ambient
// ExecContext (common/exec_context.h), which explain/ExplainAnalyze
// surface per execution.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace hql {

/// Shared cooperative-cancellation flag. Thread-safe; cheap to poll.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

using CancelTokenPtr = std::shared_ptr<CancelToken>;

/// Resource limits for one execution. Every limit defaults to 0 =
/// unlimited; a default-constructed budget governs nothing.
struct ExecBudget {
  /// Wall-clock deadline in milliseconds, measured from governor creation.
  int64_t deadline_ms = 0;

  /// Cap on tuples *produced* by physical operators (filter/project/join/
  /// aggregate/delta outputs), summed over the whole execution. Producing
  /// exactly max_tuples succeeds; one more trips.
  uint64_t max_tuples = 0;

  /// Cap on nodes produced by the HQL rewriters (reduce / enf / collapse,
  /// with lazy substitution charged at expanded-tree size). Trips the
  /// Example 2.4 blow-up before it reaches evaluation.
  uint64_t max_rewrite_nodes = 0;

  /// Advisor-driven index builds over bases larger than this fall back to
  /// scans instead of building (0 = always allowed).
  uint64_t max_index_build_rows = 0;

  /// Cooperative check cadence: deadline and cancel token are polled every
  /// this many charged/ticked tuples (and at every operator boundary).
  uint32_t check_interval = 1024;

  bool unlimited() const {
    return deadline_ms == 0 && max_tuples == 0 && max_rewrite_nodes == 0 &&
           max_index_build_rows == 0;
  }
};

// Governor charges land on the ambient ExecContext
// (common/exec_context.h): governor_*_trips, governor_cancellations,
// governor_*_fallbacks, and the governor_max_*_charged high-water marks.
// Install an ExecContextScope and read Snapshot() to observe them.

/// Records a planner lazy->hybrid/eager fallback (planner.cc).
void AddLazyFallback();
/// Records an index build degraded to scans (index_exec.cc).
void AddIndexFallback();

class ExecGovernor {
 public:
  /// An unlimited governor with no cancel token: every charge succeeds.
  ExecGovernor() : ExecGovernor(ExecBudget{}) {}

  /// Budgeted governor; the deadline clock starts now. Either token may be
  /// null; both are polled (EvalAlternatives links a caller token and the
  /// pool-wide first-failure token).
  explicit ExecGovernor(const ExecBudget& budget,
                        CancelTokenPtr cancel = nullptr,
                        CancelTokenPtr cancel2 = nullptr);

  /// Publishes this execution's high-water marks into the ambient
  /// ExecContext.
  ~ExecGovernor();

  ExecGovernor(const ExecGovernor&) = delete;
  ExecGovernor& operator=(const ExecGovernor&) = delete;

  /// Charges `n` produced tuples against the tuple budget and runs the
  /// cooperative check on cadence. Returns true to keep going; false means
  /// the governor tripped (status() has the error) and the loop must stop.
  bool ChargeTuples(uint64_t n);

  /// Accounts `n` processed (not produced) tuples toward the cooperative
  /// check cadence only — a selective scan over millions of rows observes
  /// deadline and cancellation even when it emits nothing.
  bool Tick(uint64_t n = 1);

  /// Charges `n` rewriter-produced nodes; trips kResourceExhausted with
  /// the rewrite marker when the budget is exceeded.
  bool ChargeRewriteNodes(uint64_t n);

  /// Full cooperative check regardless of cadence: trip state, cancel
  /// tokens, deadline. OK while execution may continue.
  Status Check();

  /// The trip status: OK while not tripped.
  Status status() const;

  bool tripped() const { return tripped_.load(std::memory_order_acquire); }

  /// True if the trip was the rewrite-node budget — the recoverable case.
  bool rewrite_tripped() const {
    return rewrite_tripped_.load(std::memory_order_acquire);
  }

  /// Clears a rewrite-node trip (and only that kind) so the planner can
  /// retry along the eager route; the charge counter is rewound to zero so
  /// the fallback's own (bounded) rewrites are not pre-charged. Returns
  /// false if the governor is tripped for a different reason.
  bool ClearRewriteTrip();

  /// Trips the governor explicitly (failpoints, tests). `code` must be
  /// kCancelled or kResourceExhausted.
  void Trip(StatusCode code, std::string message);

  /// False when an advisor-driven index build over `base_rows` rows must
  /// degrade to scans (budget cap or an already-tripped governor).
  bool AllowIndexBuild(uint64_t base_rows);

  uint64_t tuples_charged() const {
    return tuples_.load(std::memory_order_relaxed);
  }
  uint64_t rewrite_nodes_charged() const {
    return rewrite_nodes_.load(std::memory_order_relaxed);
  }
  const ExecBudget& budget() const { return budget_; }

 private:
  // Deadline + cancel-token poll; trips on violation. Returns !tripped().
  bool SlowCheck();

  ExecBudget budget_;
  CancelTokenPtr cancel_;
  CancelTokenPtr cancel2_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;

  std::atomic<uint64_t> tuples_{0};
  std::atomic<uint64_t> rewrite_nodes_{0};
  std::atomic<uint64_t> ticks_{0};
  std::atomic<uint64_t> next_check_{0};

  std::atomic<bool> tripped_{false};
  std::atomic<bool> rewrite_tripped_{false};
  mutable std::mutex mu_;  // guards the trip status message
  Status trip_status_;
};

/// The governor governing the current thread's execution, or nullptr.
ExecGovernor* CurrentGovernor();

/// RAII installation of a governor into the thread-local slot. Scopes nest;
/// the previous governor is restored on destruction. Passing nullptr
/// shields an inner region from an outer governor.
class GovernorScope {
 public:
  explicit GovernorScope(ExecGovernor* governor);
  ~GovernorScope();

  GovernorScope(const GovernorScope&) = delete;
  GovernorScope& operator=(const GovernorScope&) = delete;

 private:
  ExecGovernor* prev_;
};

/// Cooperative checkpoint for Status-returning layers: OK when no governor
/// is installed, otherwise the ambient governor's full Check().
inline Status GovernorCheck() {
  ExecGovernor* gov = CurrentGovernor();
  if (gov == nullptr) return Status::OK();
  return gov->Check();
}

/// Charges rewriter-produced nodes against the ambient governor (no-op
/// without one); returns the trip status when the budget is exceeded.
inline Status GovernorChargeRewriteNodes(uint64_t n) {
  ExecGovernor* gov = CurrentGovernor();
  if (gov == nullptr || gov->ChargeRewriteNodes(n)) return Status::OK();
  return gov->status();
}

}  // namespace hql

#endif  // HQL_COMMON_GOVERNOR_H_
