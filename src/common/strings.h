#ifndef HQL_COMMON_STRINGS_H_
#define HQL_COMMON_STRINGS_H_

// Small string utilities used across the library.

#include <cstdint>
#include <string>
#include <vector>

namespace hql {

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Combines two hash values (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9E3779B97F4A7C15ULL + (seed << 12) + (seed >> 4));
}

/// FNV-1a hash of a byte string.
uint64_t HashBytes(const void* data, size_t n);

inline uint64_t HashString(const std::string& s) {
  return HashBytes(s.data(), s.size());
}

}  // namespace hql

#endif  // HQL_COMMON_STRINGS_H_
