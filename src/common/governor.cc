#include "common/governor.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/exec_context.h"
#include "common/strings.h"

namespace hql {

namespace {

thread_local ExecGovernor* t_current_governor = nullptr;

}  // namespace

void AddLazyFallback() { AmbientExecContext().AddLazyFallback(); }

void AddIndexFallback() { AmbientExecContext().AddIndexFallback(); }

ExecGovernor::ExecGovernor(const ExecBudget& budget, CancelTokenPtr cancel,
                           CancelTokenPtr cancel2)
    : budget_(budget),
      cancel_(std::move(cancel)),
      cancel2_(std::move(cancel2)) {
  if (budget_.check_interval == 0) budget_.check_interval = 1;
  if (budget_.deadline_ms > 0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(budget_.deadline_ms);
  }
  next_check_.store(budget_.check_interval, std::memory_order_relaxed);
}

ExecGovernor::~ExecGovernor() {
  ExecContext& ctx = AmbientExecContext();
  ctx.RaiseTuplesCharged(tuples_.load(std::memory_order_relaxed));
  ctx.RaiseRewriteNodesCharged(rewrite_nodes_.load(std::memory_order_relaxed));
}

void ExecGovernor::Trip(StatusCode code, std::string message) {
  HQL_CHECK(code == StatusCode::kCancelled ||
            code == StatusCode::kResourceExhausted);
  std::lock_guard<std::mutex> lock(mu_);
  if (tripped_.load(std::memory_order_relaxed)) return;  // first trip wins
  trip_status_ = Status(code, std::move(message));
  if (code == StatusCode::kCancelled) {
    AmbientExecContext().AddGovernorTrip(GovernorTripKind::kCancelled);
  }
  tripped_.store(true, std::memory_order_release);
}

Status ExecGovernor::status() const {
  if (!tripped()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  return trip_status_;
}

bool ExecGovernor::SlowCheck() {
  if (tripped()) return false;
  if ((cancel_ != nullptr && cancel_->cancelled()) ||
      (cancel2_ != nullptr && cancel2_->cancelled())) {
    Trip(StatusCode::kCancelled, "execution cancelled via CancelToken");
    return false;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() > deadline_) {
    AmbientExecContext().AddGovernorTrip(GovernorTripKind::kDeadline);
    Trip(StatusCode::kResourceExhausted,
         StrFormat("deadline of %lld ms exceeded",
                   static_cast<long long>(budget_.deadline_ms)));
    return false;
  }
  return true;
}

bool ExecGovernor::ChargeTuples(uint64_t n) {
  if (tripped()) return false;
  uint64_t total = tuples_.fetch_add(n, std::memory_order_relaxed) + n;
  if (budget_.max_tuples != 0 && total > budget_.max_tuples) {
    AmbientExecContext().AddGovernorTrip(GovernorTripKind::kTupleBudget);
    Trip(StatusCode::kResourceExhausted,
         StrFormat("tuple budget of %llu exceeded",
                   static_cast<unsigned long long>(budget_.max_tuples)));
    return false;
  }
  return Tick(n);
}

bool ExecGovernor::Tick(uint64_t n) {
  if (tripped()) return false;
  uint64_t total = ticks_.fetch_add(n, std::memory_order_relaxed) + n;
  if (total >= next_check_.load(std::memory_order_relaxed)) {
    next_check_.store(total + budget_.check_interval,
                      std::memory_order_relaxed);
    return SlowCheck();
  }
  return true;
}

bool ExecGovernor::ChargeRewriteNodes(uint64_t n) {
  if (tripped()) return false;
  uint64_t total = rewrite_nodes_.fetch_add(n, std::memory_order_relaxed) + n;
  if (budget_.max_rewrite_nodes != 0 && total > budget_.max_rewrite_nodes) {
    ExecContext& ctx = AmbientExecContext();
    ctx.AddGovernorTrip(GovernorTripKind::kRewriteBudget);
    ctx.RaiseRewriteNodesCharged(total);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!tripped_.load(std::memory_order_relaxed)) {
        trip_status_ = Status::ResourceExhausted(StrFormat(
            "rewrite-node budget of %llu exceeded (lazy blow-up guard)",
            static_cast<unsigned long long>(budget_.max_rewrite_nodes)));
        rewrite_tripped_.store(true, std::memory_order_release);
        tripped_.store(true, std::memory_order_release);
      }
    }
    return false;
  }
  return !tripped();
}

bool ExecGovernor::ClearRewriteTrip() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!tripped_.load(std::memory_order_relaxed)) return true;
  if (!rewrite_tripped_.load(std::memory_order_relaxed)) return false;
  trip_status_ = Status::OK();
  rewrite_nodes_.store(0, std::memory_order_relaxed);
  rewrite_tripped_.store(false, std::memory_order_release);
  tripped_.store(false, std::memory_order_release);
  return true;
}

Status ExecGovernor::Check() {
  if (tripped()) return status();
  SlowCheck();
  return status();
}

bool ExecGovernor::AllowIndexBuild(uint64_t base_rows) {
  if (tripped()) return false;
  return budget_.max_index_build_rows == 0 ||
         base_rows <= budget_.max_index_build_rows;
}

ExecGovernor* CurrentGovernor() { return t_current_governor; }

GovernorScope::GovernorScope(ExecGovernor* governor)
    : prev_(t_current_governor) {
  t_current_governor = governor;
}

GovernorScope::~GovernorScope() { t_current_governor = prev_; }

}  // namespace hql
