#include "common/status.h"

namespace hql {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace hql
