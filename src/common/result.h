#ifndef HQL_COMMON_RESULT_H_
#define HQL_COMMON_RESULT_H_

// Result<T>: a value-or-Status, the library's return type for fallible
// computations that produce a value.

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace hql {

template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // terse: `return relation;` / `return Status::NotFound(...)`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    HQL_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// The contained value; requires ok().
  const T& value() const& {
    HQL_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    HQL_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    HQL_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>); on error returns the Status, otherwise
/// assigns the value to `lhs`. Requires the enclosing function to return
/// Status or Result<U>.
#define HQL_ASSIGN_OR_RETURN(lhs, expr)            \
  HQL_ASSIGN_OR_RETURN_IMPL_(                      \
      HQL_RESULT_CONCAT_(_hql_result_, __LINE__), lhs, expr)

#define HQL_RESULT_CONCAT_INNER_(a, b) a##b
#define HQL_RESULT_CONCAT_(a, b) HQL_RESULT_CONCAT_INNER_(a, b)

#define HQL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

}  // namespace hql

#endif  // HQL_COMMON_RESULT_H_
