#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hql {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97f4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  state_ = SplitMix64(&s);
  if (state_ == 0) state_ = 0x2545F4914F6CDD1DULL;
}

uint64_t Rng::Next() {
  // xorshift64*.
  uint64_t x = state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state_ = x;
  return x * 0x2545F4914F6CDD1DULL;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  HQL_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int64_t Rng::Zipf(int64_t n, double s) {
  HQL_CHECK(n > 0);
  if (s <= 0.0) return Uniform(0, n - 1);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(static_cast<size_t>(n));
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[static_cast<size_t>(i)] = acc;
    }
    for (auto& v : zipf_cdf_) v /= acc;
  }
  double u = NextDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) --it;
  return static_cast<int64_t>(it - zipf_cdf_.begin());
}

std::string Rng::NextString(int min_len, int max_len) {
  HQL_CHECK(0 <= min_len && min_len <= max_len);
  int len = static_cast<int>(Uniform(min_len, max_len));
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(0, 25)));
  }
  return out;
}

}  // namespace hql
