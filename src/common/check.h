#ifndef HQL_COMMON_CHECK_H_
#define HQL_COMMON_CHECK_H_

// CHECK-style macros for internal invariants. A failed check indicates a bug
// inside the library (never bad user input, which is reported via Status);
// it prints the condition and location and aborts.

#include <cstdio>
#include <cstdlib>

#define HQL_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "HQL_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define HQL_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "HQL_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                   (msg), __FILE__, __LINE__);                            \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

// Marks genuinely unreachable code paths (e.g. exhaustive switch defaults).
#define HQL_UNREACHABLE()                                                  \
  do {                                                                     \
    std::fprintf(stderr, "HQL_UNREACHABLE hit at %s:%d\n", __FILE__,       \
                 __LINE__);                                                \
    std::abort();                                                          \
  } while (0)

#endif  // HQL_COMMON_CHECK_H_
