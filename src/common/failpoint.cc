#include "common/failpoint.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "common/governor.h"

namespace hql {

namespace {

struct SiteState {
  FailPointSpec spec;
  uint64_t hits = 0;
  uint64_t fires = 0;
  uint64_t rng_state = 0;  // SplitMix64 state, deterministic per (site, seed)
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, SiteState> sites;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();
  return *r;
}

// Fast path guard: hot sites (tuple append) check one relaxed atomic and
// return while nothing is armed anywhere.
std::atomic<int> g_armed_count{0};

// SplitMix64: deterministic, seedable, cheap — the same sequence for the
// same (seed) regardless of what other sites do.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void ArmFailPoint(const std::string& site, const FailPointSpec& spec) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  SiteState& state = reg.sites[site];
  bool was_armed = state.spec.mode != FailPointSpec::Mode::kOff;
  state.spec = spec;
  state.hits = 0;
  state.fires = 0;
  state.rng_state = spec.seed;
  bool now_armed = spec.mode != FailPointSpec::Mode::kOff;
  if (now_armed && !was_armed) {
    g_armed_count.fetch_add(1, std::memory_order_relaxed);
  } else if (!now_armed && was_armed) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmFailPoint(const std::string& site) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return;
  if (it->second.spec.mode != FailPointSpec::Mode::kOff) {
    it->second.spec.mode = FailPointSpec::Mode::kOff;
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAllFailPoints() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [site, state] : reg.sites) {
    if (state.spec.mode != FailPointSpec::Mode::kOff) {
      state.spec.mode = FailPointSpec::Mode::kOff;
      g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

uint64_t FailPointFireCount(const std::string& site) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.fires;
}

std::vector<std::string> RegisteredFailPointSites() {
  return {
#define HQL_FAILPOINT_SITE_NAME(ident, name) name,
      HQL_FAILPOINT_SITE_LIST(HQL_FAILPOINT_SITE_NAME)
#undef HQL_FAILPOINT_SITE_NAME
  };
}

namespace internal {

void FailPointHit(const char* site) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return;
  StatusCode code;
  {
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.sites.find(site);
    if (it == reg.sites.end()) return;
    SiteState& state = it->second;
    if (state.spec.mode == FailPointSpec::Mode::kOff) return;
    ++state.hits;
    bool fire = false;
    switch (state.spec.mode) {
      case FailPointSpec::Mode::kOff:
        break;
      case FailPointSpec::Mode::kAfterN:
        fire = state.hits > state.spec.after_n;
        break;
      case FailPointSpec::Mode::kProbability: {
        double u = static_cast<double>(NextRandom(&state.rng_state) >> 11) *
                   (1.0 / 9007199254740992.0);  // uniform in [0, 1)
        fire = u < state.spec.probability;
        break;
      }
    }
    if (!fire) return;
    ++state.fires;
    code = state.spec.code;
  }
  // Outside the registry lock: trip the ambient governor so the failure
  // surfaces on the normal cooperative-cancellation path.
  if (ExecGovernor* gov = CurrentGovernor()) {
    gov->Trip(code, std::string("failpoint fired: ") + site);
  }
}

}  // namespace internal

}  // namespace hql
