#ifndef HQL_COMMON_RNG_H_
#define HQL_COMMON_RNG_H_

// Deterministic pseudo-random number generation for workload generators and
// property tests. A fixed algorithm (splitmix64 seeded xorshift*) keeps
// generated datasets identical across platforms and standard-library
// versions, unlike std::mt19937 + distribution objects.

#include <cstdint>
#include <string>
#include <vector>

namespace hql {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n) with exponent s (s=0 is uniform).
  /// Uses the rejection-free cumulative method with a cached table per (n,s).
  int64_t Zipf(int64_t n, double s);

  /// Random lowercase ASCII string of length in [min_len, max_len].
  std::string NextString(int min_len, int max_len);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_;
  // Cache for the Zipf cumulative table (re-built when (n, s) changes).
  int64_t zipf_n_ = -1;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace hql

#endif  // HQL_COMMON_RNG_H_
