#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace hql {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), static_cast<size_t>(n) + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

uint64_t HashBytes(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace hql
