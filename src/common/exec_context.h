#ifndef HQL_COMMON_EXEC_CONTEXT_H_
#define HQL_COMMON_EXEC_CONTEXT_H_

// Per-execution observability: ExecContext and ExecStats.
//
// Every runtime counter the library used to keep in process-wide mutable
// globals (view sharing, index probes, memo hits, governor trips) is now
// charged against an ExecContext — one in-flight execution's accounting.
// A context is installed into a thread-local slot with ExecContextScope,
// exactly like GovernorScope, so the physical kernels (whose signatures
// return plain Relations) charge stats without signature churn. The choice
// of an equivalent ENF query is the choice of how eager or lazy evaluation
// is (paper Section 5.2); ExecStats is how one query *measures* that
// choice, attributable to exactly that query even under heavy concurrency.
//
// Layering:
//   * ExecStats      — a plain value: the counters plus per-operator
//                      tracing spans, mergeable and JSON-serializable.
//   * ExecContext    — the live accounting object (atomic counters, a
//                      mutex-guarded span list). Thread-safe: one context
//                      may be shared by several worker threads.
//   * ExecContextScope — RAII installation into the thread-local slot;
//                      scopes nest and the previous context is restored.
//   * ExecRouteScope — tags subsequent spans with the execution route
//                      (lazy / eager / delta / hybrid-*) for the duration
//                      of a scope.
//   * TraceSpan      — RAII per-operator span recorder used inside the
//                      kernels; a no-op unless the ambient context has
//                      tracing enabled.
//
// Charging falls back to a process-default context when no scope is
// installed. To observe the work a piece of code does, install an
// ExecContextScope over a fresh context and read its Snapshot().

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace hql {

/// One traced physical-operator execution: what ran, along which route,
/// how many rows went in and came out, and how long it took.
struct OperatorSpan {
  std::string op;     // operator kind: "select", "join", "select-when", ...
  std::string route;  // execution route: "lazy", "eager", "delta", ...
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t micros = 0;  // wall time, microseconds
};

/// The kinds of governor trips, for per-context attribution.
enum class GovernorTripKind {
  kDeadline,
  kTupleBudget,
  kRewriteBudget,
  kCancelled,
};

/// A snapshot of one execution's work: every counter that used to live in
/// a process-wide global, plus the traced operator spans. Plain data —
/// copyable, mergeable, serializable.
struct ExecStats {
  // Memoizing subplan cache traffic attributed to this execution (the
  // cache-wide entry/eviction counters stay on MemoCache::stats()).
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;

  // Copy-on-write view layer.
  uint64_t views_created = 0;
  uint64_t view_consolidations = 0;
  uint64_t view_tuples_shared = 0;
  uint64_t view_tuples_copied = 0;

  // Secondary indexes.
  uint64_t indexes_built = 0;
  uint64_t indexes_shared = 0;
  uint64_t index_probes = 0;
  uint64_t index_tuples_skipped = 0;

  // Execution governor.
  uint64_t governor_deadline_trips = 0;
  uint64_t governor_tuple_trips = 0;
  uint64_t governor_rewrite_trips = 0;
  uint64_t governor_cancellations = 0;
  uint64_t governor_lazy_fallbacks = 0;
  uint64_t governor_index_fallbacks = 0;
  uint64_t governor_max_tuples_charged = 0;         // high-water mark
  uint64_t governor_max_rewrite_nodes_charged = 0;  // high-water mark

  // Columnar batch execution (eval/vector_exec.h).
  uint64_t columnar_batches_built = 0;      // physical batch transpositions
  uint64_t columnar_batches_reused = 0;     // cache hits serving a batch
  uint64_t columnar_morsels_dispatched = 0; // morsel tasks run
  uint64_t columnar_rows_vectorized = 0;    // rows through the batch kernels
  uint64_t columnar_rows_fallback = 0;      // rows the route declined
  uint64_t columnar_agg_rows_vectorized = 0;  // rows through the agg kernel
  uint64_t columnar_agg_groups = 0;           // groups the agg kernel emitted
  uint64_t columnar_when_routed = 0;  // delta-attached ops served columnar

  // Incremental re-evaluation (eval/incremental.h): cached results patched
  // by delta-of-delta propagation instead of recomputed.
  uint64_t incremental_results_patched = 0;   // cached results patched
  uint64_t incremental_edits_propagated = 0;  // edit tuples pushed through ops
  uint64_t incremental_fallbacks = 0;         // attempts that fell back

  // The top-level route the execution actually took ("lazy", "eager",
  // "delta", "hybrid-lazy", "hybrid-eager", "hybrid-delta", "direct";
  // empty when no routed execution ran under the context).
  std::string route;

  // Per-operator tracing spans, in recording order (empty unless tracing
  // was enabled on the context).
  std::vector<OperatorSpan> spans;

  /// Deterministic merge: counters add, high-water marks take the max,
  /// `other`'s spans append in order, the first non-empty route wins.
  /// Merging slots of a family in input order therefore yields the same
  /// rollup regardless of which worker finished first.
  void MergeFrom(const ExecStats& other);

  /// Stable JSON serialization (schema "hql-exec-stats/v1"): fixed key
  /// order, no locale dependence. Reused by the bench_* --json writers and
  /// validated by bench/check_bench_json.
  std::string ToJson() const;
};

/// The live per-execution accounting object. All charge methods are
/// thread-safe (relaxed atomics; the span list takes a short lock), so one
/// context can absorb a family of worker threads.
class ExecContext {
 public:
  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Enables per-operator span recording (off by default; counter charging
  /// is always on).
  void set_tracing(bool on) { tracing_.store(on, std::memory_order_relaxed); }
  bool tracing() const { return tracing_.load(std::memory_order_relaxed); }

  // -- charge API (called by storage/eval/opt layers) --
  void AddMemoHit() { Bump(&memo_hits_); }
  void AddMemoMiss() { Bump(&memo_misses_); }

  void AddViewCreated() { Bump(&views_created_); }
  void AddViewConsolidation() { Bump(&view_consolidations_); }
  void AddViewTuplesShared(uint64_t n) { Bump(&view_tuples_shared_, n); }
  void AddViewTuplesCopied(uint64_t n) { Bump(&view_tuples_copied_, n); }

  void AddIndexBuilt() { Bump(&indexes_built_); }
  void AddIndexShared() { Bump(&indexes_shared_); }
  void AddIndexProbe() { Bump(&index_probes_); }
  void AddIndexTuplesSkipped(uint64_t n) { Bump(&index_tuples_skipped_, n); }

  void AddColumnarBatchBuilt() { Bump(&columnar_batches_built_); }
  void AddColumnarBatchReused() { Bump(&columnar_batches_reused_); }
  void AddColumnarMorselsDispatched(uint64_t n) {
    Bump(&columnar_morsels_dispatched_, n);
  }
  void AddColumnarRowsVectorized(uint64_t n) {
    Bump(&columnar_rows_vectorized_, n);
  }
  void AddColumnarRowsFallback(uint64_t n) {
    Bump(&columnar_rows_fallback_, n);
  }
  void AddColumnarAggRowsVectorized(uint64_t n) {
    Bump(&columnar_agg_rows_vectorized_, n);
  }
  void AddColumnarAggGroups(uint64_t n) { Bump(&columnar_agg_groups_, n); }
  void AddColumnarWhenRouted() { Bump(&columnar_when_routed_); }

  void AddIncrementalResultPatched() { Bump(&incremental_results_patched_); }
  void AddIncrementalEditsPropagated(uint64_t n) {
    Bump(&incremental_edits_propagated_, n);
  }
  void AddIncrementalFallback() { Bump(&incremental_fallbacks_); }

  void AddGovernorTrip(GovernorTripKind kind);
  void AddLazyFallback() { Bump(&governor_lazy_fallbacks_); }
  void AddIndexFallback() { Bump(&governor_index_fallbacks_); }
  /// Raises the per-execution high-water marks (governor destructor).
  void RaiseTuplesCharged(uint64_t n);
  void RaiseRewriteNodesCharged(uint64_t n);

  /// Notes the top-level execution route (last write wins; see
  /// ExecStats::route).
  void NoteRoute(const char* route);

  /// Appends one traced span. Callers normally go through TraceSpan, which
  /// already checks tracing().
  void RecordSpan(OperatorSpan span);

  /// A coherent copy of the counters and spans charged so far.
  ExecStats Snapshot() const;

  /// Adds a finished execution's stats into this context (family rollups,
  /// ExplainAnalyze propagating to the caller's context).
  void MergeFrom(const ExecStats& stats);

  /// Zeroes every counter, the route, and the span list.
  void Reset();

  // Category resets backing the deprecated Reset{View,Index,Governor}Stats
  // shims: each clears only its own counters.
  void ResetViewCounters();
  void ResetIndexCounters();
  void ResetGovernorCounters();
  void ResetMemoCounters();
  void ResetColumnarCounters();
  void ResetIncrementalCounters();

 private:
  static void Bump(std::atomic<uint64_t>* c, uint64_t n = 1) {
    c->fetch_add(n, std::memory_order_relaxed);
  }
  static void RaiseHighWater(std::atomic<uint64_t>* mark, uint64_t value);

  std::atomic<bool> tracing_{false};

  std::atomic<uint64_t> memo_hits_{0};
  std::atomic<uint64_t> memo_misses_{0};

  std::atomic<uint64_t> views_created_{0};
  std::atomic<uint64_t> view_consolidations_{0};
  std::atomic<uint64_t> view_tuples_shared_{0};
  std::atomic<uint64_t> view_tuples_copied_{0};

  std::atomic<uint64_t> indexes_built_{0};
  std::atomic<uint64_t> indexes_shared_{0};
  std::atomic<uint64_t> index_probes_{0};
  std::atomic<uint64_t> index_tuples_skipped_{0};

  std::atomic<uint64_t> governor_deadline_trips_{0};
  std::atomic<uint64_t> governor_tuple_trips_{0};
  std::atomic<uint64_t> governor_rewrite_trips_{0};
  std::atomic<uint64_t> governor_cancellations_{0};
  std::atomic<uint64_t> governor_lazy_fallbacks_{0};
  std::atomic<uint64_t> governor_index_fallbacks_{0};
  std::atomic<uint64_t> governor_max_tuples_charged_{0};
  std::atomic<uint64_t> governor_max_rewrite_nodes_charged_{0};

  std::atomic<uint64_t> columnar_batches_built_{0};
  std::atomic<uint64_t> columnar_batches_reused_{0};
  std::atomic<uint64_t> columnar_morsels_dispatched_{0};
  std::atomic<uint64_t> columnar_rows_vectorized_{0};
  std::atomic<uint64_t> columnar_rows_fallback_{0};
  std::atomic<uint64_t> columnar_agg_rows_vectorized_{0};
  std::atomic<uint64_t> columnar_agg_groups_{0};
  std::atomic<uint64_t> columnar_when_routed_{0};

  std::atomic<uint64_t> incremental_results_patched_{0};
  std::atomic<uint64_t> incremental_edits_propagated_{0};
  std::atomic<uint64_t> incremental_fallbacks_{0};

  mutable std::mutex mu_;  // guards route_ and spans_
  std::string route_;
  std::vector<OperatorSpan> spans_;
};

/// The context observing the current thread's execution, or nullptr when
/// none is installed.
ExecContext* CurrentExecContext();

/// The process-default context backing the deprecated Global*Stats shims;
/// charges land here when no scope is installed.
ExecContext& ProcessDefaultExecContext();

/// The context charges on this thread go to: the installed one, else the
/// process default.
inline ExecContext& AmbientExecContext() {
  ExecContext* ctx = CurrentExecContext();
  return ctx != nullptr ? *ctx : ProcessDefaultExecContext();
}

/// RAII installation of a context into the thread-local slot. Scopes nest;
/// the previous context is restored on destruction. Passing nullptr
/// shields an inner region (its charges fall through to the process
/// default).
class ExecContextScope {
 public:
  explicit ExecContextScope(ExecContext* context);
  ~ExecContextScope();

  ExecContextScope(const ExecContextScope&) = delete;
  ExecContextScope& operator=(const ExecContextScope&) = delete;

 private:
  ExecContext* prev_;
};

/// Tags spans recorded on this thread with an execution route for the
/// scope's duration (planner strategy branches, the filter algorithms).
class ExecRouteScope {
 public:
  explicit ExecRouteScope(const char* route);
  ~ExecRouteScope();

  ExecRouteScope(const ExecRouteScope&) = delete;
  ExecRouteScope& operator=(const ExecRouteScope&) = delete;

 private:
  const char* prev_;
};

/// The route tag ambient on this thread ("" when none).
const char* CurrentExecRoute();

/// RAII per-operator span: constructed at kernel entry with the input
/// cardinality, told the output cardinality before return, recorded into
/// the ambient context on destruction. When the ambient context has
/// tracing off (the default), construction is a thread-local read and a
/// branch — no clock, no allocation.
class TraceSpan {
 public:
  TraceSpan(const char* op, uint64_t rows_in);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void set_rows_out(uint64_t n) { rows_out_ = n; }
  bool active() const { return context_ != nullptr; }

 private:
  ExecContext* context_ = nullptr;  // null when tracing is off
  const char* op_ = nullptr;
  uint64_t rows_in_ = 0;
  uint64_t rows_out_ = 0;
  uint64_t start_micros_ = 0;
};

}  // namespace hql

#endif  // HQL_COMMON_EXEC_CONTEXT_H_
