#ifndef HQL_WORKLOAD_DRIVER_H_
#define HQL_WORKLOAD_DRIVER_H_

// Phased workload driver over the differential stress harness
// (workload/stress.h): runs a StressConfig's phases front to back, tracks
// per-phase metrics, and on any oracle violation packages the failure into
// a deterministic replay capsule — optionally greedily shrunk to a minimal
// failing op sequence and written to disk. `Replay` re-executes a capsule
// and checks that the recorded failure reproduces bit-identically.
//
// Time limits (DriverOptions::max_seconds) only bound how *many* ops the
// driver issues; they never influence what any individual op does, so a
// time-limited run is a prefix of the unlimited run and its capsules stay
// deterministic.

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "workload/stress.h"

namespace hql {

struct DriverOptions {
  /// Stop issuing ops after the first failing one (capsules are still
  /// emitted for every failure recorded by that op).
  bool stop_on_failure = true;
  /// Greedily minimize each capsule's op sequence before emitting it.
  bool shrink = true;
  /// Replay-run budget for the shrinker, across all its passes.
  int shrink_max_runs = 128;
  /// Wall-clock bound on the whole run; 0 = run every configured op.
  double max_seconds = 0.0;
  /// Directory to write capsule JSON files into; empty = keep in memory.
  std::string capsule_dir;
  /// Invoked as each phase completes (progress reporting for long soaks).
  std::function<void(const struct PhaseMetrics&)> on_phase;
};

struct PhaseMetrics {
  std::string label;
  int ops = 0;
  double seconds = 0.0;
  uint64_t oracle_runs = 0;
  uint64_t clean_errors = 0;
  /// Wall latency of each op in milliseconds, sorted ascending once the
  /// phase completes (the driver sorts before invoking on_phase).
  std::vector<double> latencies_ms;

  /// Throughput over the phase's cumulative op time (0 if no time elapsed).
  double OpsPerSec() const;
  /// Nearest-rank latency percentile, p in [0, 100]; 0 when no ops ran.
  double LatencyMs(double p) const;
};

/// Writes phases as a google-benchmark-style JSON report — the bench_util
/// --json schema validated by bench/check_bench_json: a "context" object
/// and one "benchmarks" entry per phase named "<prefix>/<label>", carrying
/// real_time (cumulative op nanoseconds) plus ops_per_sec / p50_ms /
/// p99_ms / oracle_runs measurements.
Status WritePhaseMetricsJson(const std::vector<PhaseMetrics>& phases,
                             const std::string& prefix,
                             const std::string& path);

struct DriverResult {
  StressReport report;
  std::vector<ReplayCapsule> capsules;
  /// Paths of capsule files written (parallel to `capsules` when
  /// DriverOptions::capsule_dir is set; empty otherwise).
  std::vector<std::string> capsule_paths;
  std::vector<PhaseMetrics> phases;
  double seconds = 0.0;
  /// True if max_seconds stopped the run before all configured ops.
  bool time_limited = false;

  bool ok() const { return report.failures.empty(); }
};

struct ReplayOutcome {
  /// True iff re-running the capsule's op list recorded a failure exactly
  /// equal (field-wise, including result hashes in the detail text) to the
  /// capsule's.
  bool reproduced = false;
  StressReport report;
  std::string summary;
};

class WorkloadDriver {
 public:
  WorkloadDriver(const StressConfig& config, const DriverOptions& options);

  /// Runs the configured phases; deterministic given (config, options that
  /// affect op issuance).
  DriverResult Run();

  /// Greedy backward delta-debugging: repeatedly drop ops (never the
  /// failing one) while the exact failure still reproduces, bounded by
  /// `max_runs` replays. Returns the capsule with the minimized op list.
  static ReplayCapsule Shrink(const ReplayCapsule& capsule, int max_runs,
                              int* runs_used = nullptr);

  /// Re-executes the capsule's included ops on a fresh harness.
  static Result<ReplayOutcome> Replay(const ReplayCapsule& capsule);

  static Result<ReplayCapsule> LoadCapsuleFile(const std::string& path);
  static Status WriteCapsuleFile(const ReplayCapsule& capsule,
                                 const std::string& path);

 private:
  StressConfig config_;
  DriverOptions options_;
};

}  // namespace hql

#endif  // HQL_WORKLOAD_DRIVER_H_
