#include "workload/stress.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "ast/hypo.h"
#include "ast/query.h"
#include "ast/scalar_expr.h"
#include "ast/update.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "common/governor.h"
#include "eval/direct.h"

namespace hql {

namespace {

constexpr Strategy kAllStrategies[] = {
    Strategy::kDirect,  Strategy::kLazy,    Strategy::kFilter1,
    Strategy::kFilter2, Strategy::kFilter3, Strategy::kHybrid,
};
constexpr int kNumStrategies = 6;

// Caps keeping a long soak's working set bounded: the version tree stops
// growing and derived scenarios recycle their slots past these limits.
constexpr size_t kMaxTreeNodes = 64;
constexpr size_t kMaxScenarios = 24;

// SplitMix64 finalizer: per-op seeds that are independent of the op count.
uint64_t MixSeed(uint64_t seed, uint64_t index) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::string Truncate(const std::string& s, size_t limit = 400) {
  if (s.size() <= limit) return s;
  return s.substr(0, limit) + "...(" + std::to_string(s.size()) + " chars)";
}

// JSON string/number rendering lives in common/json.h (AppendJsonString /
// FormatJsonNumber), shared with the wire protocol and the bench writers.

double NumberOr(const JsonPtr& v, double fallback) {
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

bool BoolOr(const JsonPtr& v, bool fallback) {
  return v != nullptr && v->is_bool() ? v->bool_value() : fallback;
}

std::string StringOr(const JsonPtr& v, const std::string& fallback) {
  return v != nullptr && v->is_string() ? v->string_value() : fallback;
}

}  // namespace

const char* StressOpKindName(StressOpKind kind) {
  switch (kind) {
    case StressOpKind::kQuery:
      return "query";
    case StressOpKind::kDerive:
      return "derive";
    case StressOpKind::kEdit:
      return "edit";
    case StressOpKind::kAggregate:
      return "aggregate";
    case StressOpKind::kDeepWhen:
      return "deep-when";
    case StressOpKind::kCompose:
      return "compose";
    case StressOpKind::kCondUpdate:
      return "cond-update";
    case StressOpKind::kBlowup:
      return "blowup";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// StressConfig.
// ---------------------------------------------------------------------------

int StressConfig::TotalOps() const {
  int total = 0;
  for (const StressPhase& p : phases) total += p.ops > 0 ? p.ops : 0;
  return total;
}

const StressPhase& StressConfig::PhaseOf(int index) const {
  HQL_CHECK(!phases.empty());
  int offset = 0;
  for (const StressPhase& p : phases) {
    offset += p.ops > 0 ? p.ops : 0;
    if (index < offset) return p;
  }
  return phases.back();
}

StressConfig StressConfig::Mixed(uint64_t seed, int ops_per_phase,
                                 double chaos_probability) {
  StressConfig config;
  config.seed = seed;
  // Kind order: query, derive, edit, aggregate, deep-when, compose,
  // cond-update, blowup.
  StressPhase warmup;
  warmup.label = "warmup-read";
  warmup.ops = ops_per_phase;
  warmup.weights = {6, 1, 0, 1, 0.5, 0.5, 0.5, 0};

  StressPhase growth;
  growth.label = "scenario-growth";
  growth.ops = ops_per_phase;
  growth.weights = {2, 4, 1, 0.5, 1, 1, 0.5, 0};

  StressPhase edits;
  edits.label = "edit-soak";
  edits.ops = ops_per_phase;
  edits.weights = {1, 0.5, 5, 0.5, 0.5, 0.5, 0.5, 0};

  StressPhase adversarial;
  adversarial.label = "adversarial";
  adversarial.ops = ops_per_phase;
  adversarial.weights = {1, 0.5, 1, 1.5, 2, 1, 1.5, 1.5};
  adversarial.max_depth = 4;
  adversarial.budget_probability = 0.5;

  StressPhase chaos;
  chaos.label = "chaos-soak";
  chaos.ops = ops_per_phase;
  chaos.weights = {2, 1, 2, 1, 1, 1, 1, 0.5};
  chaos.chaos_probability = chaos_probability;
  chaos.budget_probability = 0.25;

  config.phases = {warmup, growth, edits, adversarial, chaos};
  return config;
}

std::string StressConfig::ToJson() const {
  std::string out = "{";
  out += "\"seed\": ";
  AppendJsonString(&out, std::to_string(seed));
  out += ", \"base_rows\": " + std::to_string(base_rows);
  out += ", \"domain\": " + std::to_string(domain);
  out += ", \"inject_mismatch_after\": " +
         std::to_string(inject_mismatch_after);
  out += ", \"phases\": [";
  for (size_t i = 0; i < phases.size(); ++i) {
    const StressPhase& p = phases[i];
    if (i > 0) out += ", ";
    out += "{\"label\": ";
    AppendJsonString(&out, p.label);
    out += ", \"ops\": " + std::to_string(p.ops);
    out += ", \"weights\": [";
    for (int k = 0; k < kNumStressOpKinds; ++k) {
      if (k > 0) out += ", ";
      out += FormatJsonNumber(p.weights[static_cast<size_t>(k)]);
    }
    out += "], \"max_depth\": " + std::to_string(p.max_depth);
    out += std::string(", \"allow_cond\": ") +
           (p.allow_cond ? "true" : "false");
    out += std::string(", \"allow_aggregate\": ") +
           (p.allow_aggregate ? "true" : "false");
    out += ", \"chaos_probability\": " + FormatJsonNumber(p.chaos_probability);
    out += ", \"budget_probability\": " +
           FormatJsonNumber(p.budget_probability);
    out += "}";
  }
  out += "]}";
  return out;
}

Result<StressConfig> StressConfig::FromJson(const JsonValue& value) {
  if (!value.is_object()) {
    return Status(StatusCode::kInvalidArgument, "config must be an object");
  }
  StressConfig config;
  JsonPtr seed = value.Get("seed");
  if (seed != nullptr && seed->is_string()) {
    config.seed = std::strtoull(seed->string_value().c_str(), nullptr, 10);
  } else if (seed != nullptr && seed->is_number()) {
    config.seed = static_cast<uint64_t>(seed->number());
  }
  config.base_rows = static_cast<size_t>(
      NumberOr(value.Get("base_rows"), static_cast<double>(config.base_rows)));
  config.domain = static_cast<int64_t>(
      NumberOr(value.Get("domain"), static_cast<double>(config.domain)));
  config.inject_mismatch_after = static_cast<int>(
      NumberOr(value.Get("inject_mismatch_after"), -1.0));
  JsonPtr phases = value.Get("phases");
  if (phases == nullptr || !phases->is_array() || phases->items().empty()) {
    return Status(StatusCode::kInvalidArgument,
                  "config.phases must be a non-empty array");
  }
  for (const JsonPtr& item : phases->items()) {
    if (item == nullptr || !item->is_object()) {
      return Status(StatusCode::kInvalidArgument,
                    "phase entries must be objects");
    }
    StressPhase p;
    p.label = StringOr(item->Get("label"), p.label);
    p.ops = static_cast<int>(NumberOr(item->Get("ops"), p.ops));
    JsonPtr weights = item->Get("weights");
    if (weights != nullptr && weights->is_array()) {
      const auto& items = weights->items();
      for (size_t k = 0;
           k < items.size() && k < static_cast<size_t>(kNumStressOpKinds);
           ++k) {
        p.weights[k] = NumberOr(items[k], p.weights[k]);
      }
    }
    p.max_depth =
        static_cast<int>(NumberOr(item->Get("max_depth"), p.max_depth));
    p.allow_cond = BoolOr(item->Get("allow_cond"), p.allow_cond);
    p.allow_aggregate =
        BoolOr(item->Get("allow_aggregate"), p.allow_aggregate);
    p.chaos_probability =
        NumberOr(item->Get("chaos_probability"), p.chaos_probability);
    p.budget_probability =
        NumberOr(item->Get("budget_probability"), p.budget_probability);
    config.phases.push_back(std::move(p));
  }
  return config;
}

// ---------------------------------------------------------------------------
// StressFailure / ReplayCapsule.
// ---------------------------------------------------------------------------

std::string StressFailure::ToString() const {
  std::ostringstream os;
  os << "op " << op_index << " [" << kind << "] strategy=" << strategy
     << " modes={" << modes << "}\n"
     << detail;
  return os.str();
}

std::string ReplayCapsule::ToJson() const {
  std::string out = "{";
  out += "\"format\": \"hql-replay-capsule\"";
  out += ", \"version\": " + std::to_string(kVersion);
  out += ", \"config\": " + config.ToJson();
  out += ", \"included_ops\": [";
  for (size_t i = 0; i < included_ops.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(included_ops[i]);
  }
  out += "], \"failure\": {";
  out += "\"op_index\": " + std::to_string(failure.op_index);
  out += ", \"kind\": ";
  AppendJsonString(&out, failure.kind);
  out += ", \"strategy\": ";
  AppendJsonString(&out, failure.strategy);
  out += ", \"modes\": ";
  AppendJsonString(&out, failure.modes);
  out += ", \"detail\": ";
  AppendJsonString(&out, failure.detail);
  out += "}}";
  return out;
}

Result<ReplayCapsule> ReplayCapsule::FromJsonText(const std::string& text) {
  Result<JsonPtr> parsed = ParseJson(text);
  if (!parsed.ok()) return parsed.status();
  const JsonPtr& root = parsed.value();
  if (root == nullptr || !root->is_object()) {
    return Status(StatusCode::kInvalidArgument, "capsule must be an object");
  }
  if (StringOr(root->Get("format"), "") != "hql-replay-capsule") {
    return Status(StatusCode::kInvalidArgument,
                  "not an hql-replay-capsule document");
  }
  int version = static_cast<int>(NumberOr(root->Get("version"), 0));
  if (version > kVersion) {
    return Status(StatusCode::kInvalidArgument,
                  "capsule version " + std::to_string(version) +
                      " is newer than supported " + std::to_string(kVersion));
  }
  JsonPtr config_json = root->Get("config");
  if (config_json == nullptr) {
    return Status(StatusCode::kInvalidArgument, "capsule missing config");
  }
  ReplayCapsule capsule;
  Result<StressConfig> config = StressConfig::FromJson(*config_json);
  if (!config.ok()) return config.status();
  capsule.config = std::move(config).value();
  JsonPtr included = root->Get("included_ops");
  if (included != nullptr && included->is_array()) {
    for (const JsonPtr& item : included->items()) {
      capsule.included_ops.push_back(static_cast<int>(NumberOr(item, -1.0)));
    }
  }
  JsonPtr failure = root->Get("failure");
  if (failure == nullptr || !failure->is_object()) {
    return Status(StatusCode::kInvalidArgument, "capsule missing failure");
  }
  capsule.failure.op_index =
      static_cast<int>(NumberOr(failure->Get("op_index"), -1.0));
  capsule.failure.kind = StringOr(failure->Get("kind"), "");
  capsule.failure.strategy = StringOr(failure->Get("strategy"), "");
  capsule.failure.modes = StringOr(failure->Get("modes"), "");
  capsule.failure.detail = StringOr(failure->Get("detail"), "");
  return capsule;
}

// ---------------------------------------------------------------------------
// Harness internals.
// ---------------------------------------------------------------------------

struct StressHarness::Scenario {
  VersionTree::NodeId node = VersionTree::kRoot;
  Database db;
  /// Re-asked after every edit — the "standing query of a scenario family"
  /// whose cached result the incremental layer patches.
  QueryPtr standing_query;
  /// One incremental cache per strategy: entries record that strategy's
  /// plan shape, so sharing across strategies would conflate plans.
  std::array<std::unique_ptr<IncrementalCache>, kNumStrategies> caches;

  Scenario(Database d, QueryPtr q)
      : db(std::move(d)), standing_query(std::move(q)) {}
};

/// Everything the oracle varies per op: the sampled mode combination plus
/// chaos / budget arming.
struct StressHarness::RunSpec {
  ColumnarMode columnar = ColumnarMode::kOff;
  IncrementalMode incremental = IncrementalMode::kOff;
  IndexMode index = IndexMode::kOff;
  bool use_memo = false;
  bool chaos = false;
  double chaos_probability = 0.0;
  StatusCode chaos_code = StatusCode::kResourceExhausted;
  bool budget = false;
  ExecBudget exec_budget;

  std::string Describe() const {
    std::ostringstream os;
    os << "columnar=" << ColumnarModeName(columnar)
       << ",incremental=" << IncrementalModeName(incremental)
       << ",index=" << IndexModeName(index)
       << ",memo=" << (use_memo ? "on" : "off");
    if (chaos) {
      os << ",chaos=" << chaos_probability << "/"
         << StatusCodeName(chaos_code);
    }
    if (budget) {
      os << ",budget=tuples:" << exec_budget.max_tuples
         << "/rewrite:" << exec_budget.max_rewrite_nodes;
    }
    return os.str();
  }
};

struct StressHarness::Outcome {
  bool ok = false;
  Relation relation{0};
  StatusCode code = StatusCode::kOk;
  std::string message;

  std::string Describe() const {
    if (ok) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%016" PRIx64, relation.Hash());
      return "ok(" + std::to_string(relation.size()) + " tuples, hash=" +
             buf + ")";
    }
    return std::string(StatusCodeName(code)) + ": " + message;
  }
};

StressHarness::StressHarness(const StressConfig& config)
    : config_(config),
      schema_(PropertySchema()),
      base_([&] {
        Rng rng(config.seed);
        return RandomDatabase(&rng, schema_, config.base_rows, config.domain);
      }()),
      advisor_(/*build_threshold=*/2) {
  base_hash_ = base_.Hash();
  Rng rng(MixSeed(config_.seed, 0x5eedull));
  AstGenOptions options;
  options.max_depth = 3;
  options.literal_domain = config_.domain;
  scenarios_.push_back(std::make_unique<Scenario>(
      base_, RandomQuery(&rng, schema_, 2, options)));
  inject_pending_ = config_.inject_mismatch_after >= 0;
}

StressHarness::~StressHarness() = default;

size_t StressHarness::scenario_count() const { return scenarios_.size(); }

Rng StressHarness::OpRng(int index) const {
  return Rng(MixSeed(config_.seed, static_cast<uint64_t>(index)));
}

StressHarness::Scenario& StressHarness::PickScenario(Rng* rng) {
  HQL_CHECK(!scenarios_.empty());
  size_t i = static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(scenarios_.size()) - 1));
  return *scenarios_[i];
}

AstGenOptions StressHarness::GenOptions(const StressPhase& phase) const {
  AstGenOptions options;
  options.max_depth = phase.max_depth;
  options.allow_cond = phase.allow_cond;
  options.allow_aggregate = phase.allow_aggregate;
  options.literal_domain = config_.domain;
  return options;
}

StressHarness::RunSpec StressHarness::SampleRunSpec(Rng* rng,
                                                    const StressPhase& phase) {
  RunSpec spec;
  spec.columnar = rng->Bernoulli(0.5) ? ColumnarMode::kAuto
                                      : ColumnarMode::kOff;
  spec.incremental = rng->Bernoulli(0.5) ? IncrementalMode::kAuto
                                         : IncrementalMode::kOff;
  spec.index = rng->Bernoulli(0.5) ? IndexMode::kAdvisor : IndexMode::kOff;
  spec.use_memo = rng->Bernoulli(0.5);
  if (phase.chaos_probability > 0.0) {
    spec.chaos = true;
    spec.chaos_probability = phase.chaos_probability;
    spec.chaos_code = rng->Bernoulli(0.5) ? StatusCode::kCancelled
                                          : StatusCode::kResourceExhausted;
  }
  if (phase.budget_probability > 0.0 &&
      rng->Bernoulli(phase.budget_probability)) {
    spec.budget = true;
    spec.exec_budget.max_tuples = 64ull << rng->Uniform(0, 8);
    spec.exec_budget.max_rewrite_nodes = 64ull << rng->Uniform(0, 8);
    spec.exec_budget.check_interval = 64;
  }
  return spec;
}

StressHarness::Outcome StressHarness::RunOne(
    const QueryPtr& query, const Database& db, const Schema& schema,
    Strategy strategy, const RunSpec& spec, IncrementalCache* cache,
    uint64_t chaos_seed) {
  PlannerOptions options;
  options.memo = spec.use_memo ? &memo_ : nullptr;
  options.index_mode = spec.index;
  if (spec.index == IndexMode::kAdvisor) options.index_advisor = &advisor_;
  options.index_min_rows = 1;
  options.columnar_mode = spec.columnar;
  options.columnar_min_rows = 1;
  options.columnar_morsel_rows = 16;
  // Single-threaded by design: morsel interleavings and per-worker
  // failpoint hit ordering would make chaos outcomes (though still clean)
  // non-reproducible from a capsule.
  options.columnar_threads = 1;
  if (cache != nullptr) {
    options.incremental_mode = IncrementalMode::kAuto;
    options.incremental_cache = cache;
  }
  // A (never-cancelled) token forces governor installation so fired
  // failpoints surface as clean errors instead of silent counters.
  options.cancel_token = std::make_shared<CancelToken>();
  if (spec.budget) options.budget = spec.exec_budget;

  if (spec.chaos) {
    std::vector<std::string> sites = RegisteredFailPointSites();
    for (size_t i = 0; i < sites.size(); ++i) {
      ArmFailPoint(sites[i],
                   FailPointSpec::Probability(
                       spec.chaos_probability,
                       chaos_seed + 0x9E3779B97F4A7C15ULL * (i + 1),
                       spec.chaos_code));
    }
  }
  Result<Relation> result = Execute(query, db, schema, strategy, options);
  if (spec.chaos) DisarmAllFailPoints();

  Outcome out;
  out.ok = result.ok();
  if (result.ok()) {
    out.relation = std::move(result).value();
  } else {
    out.code = result.status().code();
    out.message = result.status().message();
  }
  return out;
}

void StressHarness::AddFailure(int index, StressOpKind kind,
                               const std::string& strategy,
                               const std::string& modes, std::string detail) {
  StressFailure failure;
  failure.op_index = index;
  failure.kind = StressOpKindName(kind);
  failure.strategy = strategy;
  failure.modes = modes;
  failure.detail = std::move(detail);
  report_.failures.push_back(std::move(failure));
}

bool StressHarness::RunOracle(Rng* rng, int index, StressOpKind kind,
                              const QueryPtr& query, const Database& db,
                              const Schema& schema, const RunSpec& spec,
                              Scenario* scenario) {
  // The oracle baseline: direct semantics, every optimization off, nothing
  // armed. It must succeed — generated inputs are well-typed by
  // construction, so a reference error is itself a harness finding.
  Result<Relation> reference_or =
      Execute(query, db, schema, Strategy::kDirect);
  if (!reference_or.ok()) {
    AddFailure(index, kind, "reference", spec.Describe(),
               "query: " + Truncate(query->ToString()) +
                   "\nreference execution failed: " +
                   reference_or.status().ToString());
    return false;
  }
  Relation reference = std::move(reference_or).value();

  // Chaos seeds drawn up front in a fixed order, so a strategy's arming
  // never depends on how earlier strategies in the loop behaved.
  std::array<uint64_t, kNumStrategies> chaos_seeds;
  for (int s = 0; s < kNumStrategies; ++s) chaos_seeds[s] = rng->Next();

  bool passed = true;
  for (int s = 0; s < kNumStrategies; ++s) {
    Strategy strategy = kAllStrategies[s];
    IncrementalCache* cache = nullptr;
    std::unique_ptr<IncrementalCache> scratch;
    if (scenario != nullptr) {
      // Edit re-asks use the scenario's persistent per-strategy cache —
      // the warm-record-then-patch loop the incremental layer exists for.
      auto& slot = scenario->caches[static_cast<size_t>(s)];
      if (slot == nullptr) slot = std::make_unique<IncrementalCache>();
      cache = slot.get();
    } else if (spec.incremental == IncrementalMode::kAuto) {
      // Other ops still exercise the recorder with a throwaway cache.
      scratch = std::make_unique<IncrementalCache>();
      cache = scratch.get();
    }

    Outcome out = RunOne(query, db, schema, strategy, spec, cache,
                         chaos_seeds[static_cast<size_t>(s)]);
    ++report_.oracle_runs;

    // Test-only self-injection: corrupt the first qualifying ok outcome so
    // the capsule/replay/shrink pipeline has a guaranteed failure to chew
    // on (see StressConfig::inject_mismatch_after).
    if (inject_pending_ && index >= config_.inject_mismatch_after &&
        out.ok && strategy == Strategy::kLazy) {
      Tuple poison;
      for (size_t c = 0; c < std::max<size_t>(out.relation.arity(), 1); ++c) {
        poison.push_back(Value::Int((int64_t{1} << 40) + index));
      }
      out.relation.Insert(poison);
      inject_pending_ = false;
    }

    if (out.ok) {
      if (out.relation == reference) {
        ++report_.ok_runs;
      } else {
        Outcome ref_out;
        ref_out.ok = true;
        ref_out.relation = reference;
        AddFailure(index, kind, StrategyName(strategy), spec.Describe(),
                   "query: " + Truncate(query->ToString()) +
                       "\nreference: " + ref_out.Describe() +
                       "\nobserved:  " + out.Describe());
        passed = false;
      }
    } else if (out.code == StatusCode::kCancelled ||
               out.code == StatusCode::kResourceExhausted) {
      if (spec.chaos || spec.budget) {
        ++report_.clean_errors;
      } else {
        AddFailure(index, kind, StrategyName(strategy), spec.Describe(),
                   "query: " + Truncate(query->ToString()) +
                       "\ngoverned error with nothing armed: " +
                       out.Describe());
        passed = false;
      }
    } else {
      AddFailure(index, kind, StrategyName(strategy), spec.Describe(),
                 "query: " + Truncate(query->ToString()) +
                     "\nhard error: " + out.Describe());
      passed = false;
    }
  }
  return passed;
}

// ---------------------------------------------------------------------------
// Operations.
// ---------------------------------------------------------------------------

void StressHarness::OpQuery(Rng* rng, int index, const StressPhase& phase) {
  AstGenOptions options = GenOptions(phase);
  size_t arity = 1 + static_cast<size_t>(rng->Uniform(0, 2));
  RunSpec spec = SampleRunSpec(rng, phase);
  if (tree_.size() > 1 && rng->Bernoulli(0.5)) {
    // Query as seen at a version-tree node: Q when (root-path composition).
    auto node = static_cast<VersionTree::NodeId>(
        rng->Uniform(0, static_cast<int64_t>(tree_.size()) - 1));
    QueryPtr q = tree_.QueryAt(node, RandomQuery(rng, schema_, arity, options));
    RunOracle(rng, index, StressOpKind::kQuery, q, base_, schema_, spec,
              nullptr);
  } else {
    Scenario& scenario = PickScenario(rng);
    QueryPtr q = RandomQuery(rng, schema_, arity, options);
    RunOracle(rng, index, StressOpKind::kQuery, q, scenario.db, schema_, spec,
              nullptr);
  }
}

void StressHarness::OpDerive(Rng* rng, int index, const StressPhase& phase) {
  AstGenOptions options = GenOptions(phase);
  options.max_depth = std::min(phase.max_depth, 2);
  HypoExprPtr edge = RandomHypo(rng, schema_, options);
  auto parent = static_cast<VersionTree::NodeId>(
      rng->Uniform(0, static_cast<int64_t>(tree_.size()) - 1));
  VersionTree::NodeId node = parent;
  if (tree_.size() < kMaxTreeNodes) {
    node = tree_.AddChild(parent, "n" + std::to_string(index),
                          std::move(edge));
  }
  HypoExprPtr state = tree_.PathState(node);
  if (state == nullptr) return;  // root — the base is already scenario 0
  Result<Database> derived = EvalState(state, base_);
  if (!derived.ok()) {
    AddFailure(index, StressOpKind::kDerive, "materialize", "",
               "EvalState failed on path state: " +
                   derived.status().ToString());
    return;
  }
  auto scenario = std::make_unique<Scenario>(
      std::move(derived).value(),
      RandomQuery(rng, schema_, 2, GenOptions(phase)));
  scenario->node = node;
  if (scenarios_.size() >= kMaxScenarios) {
    // Recycle a non-root slot (slot 0 stays the real database).
    size_t slot = 1 + static_cast<size_t>(rng->Uniform(
                          0, static_cast<int64_t>(scenarios_.size()) - 2));
    scenarios_[slot] = std::move(scenario);
  } else {
    scenarios_.push_back(std::move(scenario));
  }
}

void StressHarness::OpEdit(Rng* rng, int index, const StressPhase& phase) {
  Scenario& scenario = PickScenario(rng);
  AstGenOptions options = GenOptions(phase);
  options.max_depth = std::min(phase.max_depth, 2);
  UpdatePtr update = RandomUpdate(rng, schema_, options);
  Result<Database> edited = ExecUpdate(update, scenario.db);
  if (!edited.ok()) {
    AddFailure(index, StressOpKind::kEdit, "edit", "",
               "ExecUpdate failed: " + edited.status().ToString());
    return;
  }
  // The edited state shares bases with the previous one (CoW overlays), so
  // the re-ask is exactly the delta-of-delta regime: warm caches patch,
  // cold ones record.
  scenario.db = std::move(edited).value();
  RunSpec spec = SampleRunSpec(rng, phase);
  spec.incremental = IncrementalMode::kAuto;
  RunOracle(rng, index, StressOpKind::kEdit, scenario.standing_query,
            scenario.db, schema_, spec, &scenario);
}

void StressHarness::OpAggregate(Rng* rng, int index,
                                const StressPhase& phase) {
  AstGenOptions options = GenOptions(phase);
  options.allow_aggregate = true;
  size_t inner_arity = 2 + static_cast<size_t>(rng->Uniform(0, 1));
  QueryPtr child = RandomQuery(rng, schema_, inner_arity, options);
  std::vector<size_t> cols;
  for (size_t i = 0; i + 1 < inner_arity; ++i) {
    cols.push_back(static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(inner_arity) - 1)));
  }
  static const AggFunc kFuncs[] = {AggFunc::kCount, AggFunc::kSum,
                                   AggFunc::kMin, AggFunc::kMax};
  AggFunc func = kFuncs[rng->Uniform(0, 3)];
  size_t agg_col = static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(inner_arity) - 1));
  QueryPtr q =
      Query::Aggregate(std::move(cols), func, agg_col, std::move(child));
  if (rng->Bernoulli(0.5)) {
    AstGenOptions shallow = options;
    shallow.max_depth = 2;
    q = Query::When(std::move(q), RandomHypo(rng, schema_, shallow));
  }
  RunSpec spec = SampleRunSpec(rng, phase);
  const Database& db =
      rng->Bernoulli(0.5) ? base_ : PickScenario(rng).db;
  RunOracle(rng, index, StressOpKind::kAggregate, q, db, schema_, spec,
            nullptr);
}

void StressHarness::OpDeepWhen(Rng* rng, int index, const StressPhase& phase) {
  AstGenOptions options = GenOptions(phase);
  AstGenOptions shallow = options;
  shallow.max_depth = 2;
  size_t arity = 1 + static_cast<size_t>(rng->Uniform(0, 2));
  QueryPtr q = RandomQuery(rng, schema_, arity, options);
  int layers = 2 + static_cast<int>(rng->Uniform(0, 2));
  for (int i = 0; i < layers; ++i) {
    q = Query::When(std::move(q), RandomHypo(rng, schema_, shallow));
  }
  RunSpec spec = SampleRunSpec(rng, phase);
  const Database& db = rng->Bernoulli(0.5) ? base_ : PickScenario(rng).db;
  RunOracle(rng, index, StressOpKind::kDeepWhen, q, db, schema_, spec,
            nullptr);
}

void StressHarness::OpCompose(Rng* rng, int index, const StressPhase& phase) {
  if (tree_.size() < 3) {
    // Not enough derived versions to compare yet; behave like a query op.
    OpQuery(rng, index, phase);
    return;
  }
  AstGenOptions options = GenOptions(phase);
  size_t arity = 1 + static_cast<size_t>(rng->Uniform(0, 2));
  auto pick = [&] {
    return static_cast<VersionTree::NodeId>(
        1 + rng->Uniform(0, static_cast<int64_t>(tree_.size()) - 2));
  };
  VersionTree::NodeId a = pick();
  VersionTree::NodeId b = pick();
  QueryPtr q = tree_.CompareAt(a, b, RandomQuery(rng, schema_, arity, options));
  RunSpec spec = SampleRunSpec(rng, phase);
  RunOracle(rng, index, StressOpKind::kCompose, q, base_, schema_, spec,
            nullptr);
}

void StressHarness::OpCondUpdate(Rng* rng, int index,
                                 const StressPhase& phase) {
  AstGenOptions options = GenOptions(phase);
  options.allow_cond = true;
  AstGenOptions shallow = options;
  shallow.max_depth = 2;
  // Force a conditional at the top of the state, whatever the random walk
  // below it picks.
  size_t guard_arity = 1 + static_cast<size_t>(rng->Uniform(0, 2));
  UpdatePtr update = Update::Cond(
      RandomQuery(rng, schema_, guard_arity, shallow),
      RandomUpdate(rng, schema_, shallow),
      RandomUpdate(rng, schema_, shallow));
  size_t arity = 1 + static_cast<size_t>(rng->Uniform(0, 2));
  QueryPtr q = Query::When(RandomQuery(rng, schema_, arity, options),
                           HypoExpr::UpdateState(std::move(update)));
  RunSpec spec = SampleRunSpec(rng, phase);
  const Database& db = rng->Bernoulli(0.5) ? base_ : PickScenario(rng).db;
  RunOracle(rng, index, StressOpKind::kCondUpdate, q, db, schema_, spec,
            nullptr);
}

void StressHarness::OpBlowup(Rng* rng, int index, const StressPhase& phase) {
  RunSpec spec = SampleRunSpec(rng, phase);
  // Blowups always run governed: the adversarial point is that the
  // Example 2.4 expansion must trip cleanly (and identically) rather than
  // take the process down, with the lazy route degrading along the
  // fallback lattice.
  spec.budget = true;
  spec.exec_budget.max_rewrite_nodes = 64ull << rng->Uniform(0, 6);
  spec.exec_budget.max_tuples = 1024ull << rng->Uniform(0, 6);
  spec.exec_budget.check_interval = 64;

  BlowupSpec blowup;
  switch (rng->Uniform(0, 2)) {
    case 0:
      // Small n: the direct reference materializes at most a few hundred
      // tuples while the lazy tree still doubles per step.
      blowup = BlowupChain(2 + static_cast<int>(rng->Uniform(0, 1)));
      break;
    case 1:
      // Empty-value chain: reference is linear, the rewrite exponential.
      blowup =
          BlowupChainSmallValues(4 + static_cast<int>(rng->Uniform(0, 4)));
      break;
    default: {
      int n = 3 + static_cast<int>(rng->Uniform(0, 1));
      blowup = BlowupChainWithDifference(
          n, 1 + static_cast<int>(rng->Uniform(0, n - 1)));
      break;
    }
  }
  Rng data_rng(rng->Next());
  Database db = GenDatabase(&data_rng, blowup.schema, 2, config_.domain);
  RunOracle(rng, index, StressOpKind::kBlowup, blowup.query, db,
            blowup.schema, spec, nullptr);
}

// ---------------------------------------------------------------------------
// RunOp.
// ---------------------------------------------------------------------------

namespace {

StressOpKind SampleKind(Rng* rng,
                        const std::array<double, kNumStressOpKinds>& weights) {
  double total = 0;
  for (double w : weights) total += w > 0 ? w : 0;
  if (total <= 0) return StressOpKind::kQuery;
  double u = rng->NextDouble() * total;
  for (int k = 0; k < kNumStressOpKinds; ++k) {
    double w = weights[static_cast<size_t>(k)];
    if (w <= 0) continue;
    u -= w;
    if (u < 0) return static_cast<StressOpKind>(k);
  }
  return StressOpKind::kQuery;
}

}  // namespace

bool StressHarness::RunOp(int index) {
  const StressPhase& phase = config_.PhaseOf(index);
  Rng rng = OpRng(index);
  StressOpKind kind = SampleKind(&rng, phase.weights);
  size_t failures_before = report_.failures.size();
  ++report_.ops_run;
  ++report_.ops_by_kind[static_cast<size_t>(kind)];

  switch (kind) {
    case StressOpKind::kQuery:
      OpQuery(&rng, index, phase);
      break;
    case StressOpKind::kDerive:
      OpDerive(&rng, index, phase);
      break;
    case StressOpKind::kEdit:
      OpEdit(&rng, index, phase);
      break;
    case StressOpKind::kAggregate:
      OpAggregate(&rng, index, phase);
      break;
    case StressOpKind::kDeepWhen:
      OpDeepWhen(&rng, index, phase);
      break;
    case StressOpKind::kCompose:
      OpCompose(&rng, index, phase);
      break;
    case StressOpKind::kCondUpdate:
      OpCondUpdate(&rng, index, phase);
      break;
    case StressOpKind::kBlowup:
      OpBlowup(&rng, index, phase);
      break;
  }

  // Never corrupt: queries and scenario derivations must leave the real
  // database bit-identical, whatever was armed while they ran.
  if (base_.Hash() != base_hash_) {
    AddFailure(index, kind, "base-database", "",
               "corruption: base database hash changed during op");
  }
  return report_.failures.size() == failures_before;
}

}  // namespace hql
