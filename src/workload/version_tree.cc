#include "workload/version_tree.h"

#include "ast/query.h"

namespace hql {

QueryPtr VersionTree::QueryAt(NodeId node, QueryPtr query) const {
  HypoExprPtr state = PathState(node);
  if (state == nullptr) return query;
  return Query::When(std::move(query), std::move(state));
}

QueryPtr VersionTree::CompareAt(NodeId a, NodeId b, QueryPtr query) const {
  return Query::Difference(QueryAt(a, query), QueryAt(b, query));
}

}  // namespace hql
