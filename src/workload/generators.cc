#include "workload/generators.h"

#include <algorithm>
#include <set>

#include "ast/builders.h"
#include "ast/hypo.h"
#include "ast/query.h"
#include "ast/scalar_expr.h"
#include "ast/update.h"
#include "common/check.h"

namespace hql {

Relation GenRelation(Rng* rng, size_t rows, size_t arity, int64_t key_domain,
                     int64_t value_domain, double zipf_s) {
  HQL_CHECK(arity > 0 && key_domain > 0 && value_domain > 0);
  std::set<Tuple, TupleLess> seen;
  size_t attempts = 0;
  const size_t max_attempts = rows * 20 + 1000;
  while (seen.size() < rows && attempts < max_attempts) {
    ++attempts;
    Tuple t;
    t.reserve(arity);
    int64_t key = zipf_s > 0.0 ? rng->Zipf(key_domain, zipf_s)
                               : rng->Uniform(0, key_domain - 1);
    t.push_back(Value::Int(key));
    for (size_t i = 1; i < arity; ++i) {
      t.push_back(Value::Int(rng->Uniform(0, value_domain - 1)));
    }
    seen.insert(std::move(t));
  }
  std::vector<Tuple> tuples(seen.begin(), seen.end());
  return Relation::FromSortedUnique(arity, std::move(tuples));
}

Database GenDatabase(Rng* rng, const Schema& schema, size_t rows,
                     int64_t key_domain) {
  Database db(schema);
  for (const auto& [name, arity] : schema.arities()) {
    Status st = db.Set(name, GenRelation(rng, rows, arity, key_domain));
    HQL_CHECK_MSG(st.ok(), st.ToString().c_str());
  }
  return db;
}

Relation SampleFraction(Rng* rng, const Relation& rel, double frac) {
  std::vector<Tuple> out;
  for (const Tuple& t : rel) {
    if (rng->Bernoulli(frac)) out.push_back(t);
  }
  return Relation::FromSortedUnique(rel.arity(), std::move(out));
}

// ---------------------------------------------------------------------------
// Random ASTs.
// ---------------------------------------------------------------------------

Schema PropertySchema() {
  Schema schema;
  for (size_t arity = 1; arity <= 3; ++arity) {
    HQL_CHECK(schema.AddRelation("A" + std::to_string(arity), arity).ok());
    HQL_CHECK(schema.AddRelation("B" + std::to_string(arity), arity).ok());
  }
  return schema;
}

Database RandomDatabase(Rng* rng, const Schema& schema, size_t max_rows,
                        int64_t domain) {
  Database db(schema);
  for (const auto& [name, arity] : schema.arities()) {
    size_t rows = static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(max_rows)));
    std::vector<Tuple> tuples;
    for (size_t i = 0; i < rows; ++i) {
      Tuple t;
      t.reserve(arity);
      for (size_t c = 0; c < arity; ++c) {
        t.push_back(Value::Int(rng->Uniform(0, domain - 1)));
      }
      tuples.push_back(std::move(t));
    }
    Status st = db.Set(name, Relation::FromTuples(arity, std::move(tuples)));
    HQL_CHECK_MSG(st.ok(), st.ToString().c_str());
  }
  return db;
}

namespace {

std::vector<std::string> NamesWithArity(const Schema& schema, size_t arity) {
  std::vector<std::string> names;
  for (const auto& [name, a] : schema.arities()) {
    if (a == arity) names.push_back(name);
  }
  return names;
}

std::string RandomName(Rng* rng, const Schema& schema) {
  std::vector<std::string> names = schema.RelationNames();
  HQL_CHECK(!names.empty());
  return names[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(names.size()) - 1))];
}

Tuple RandomTuple(Rng* rng, size_t arity, int64_t domain) {
  Tuple t;
  t.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    t.push_back(Value::Int(rng->Uniform(0, domain - 1)));
  }
  return t;
}

ScalarExprPtr RandomScalarTerm(Rng* rng, size_t arity,
                               const AstGenOptions& options) {
  if (arity > 0 && rng->Bernoulli(0.6)) {
    return ScalarExpr::Column(static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(arity) - 1)));
  }
  return ScalarExpr::Literal(
      Value::Int(rng->Uniform(0, options.literal_domain - 1)));
}

}  // namespace

ScalarExprPtr RandomPredicate(Rng* rng, size_t arity,
                              const AstGenOptions& options) {
  switch (rng->Uniform(0, 5)) {
    case 0:
    case 1: {
      static const ScalarOp kCmps[] = {ScalarOp::kEq, ScalarOp::kNe,
                                       ScalarOp::kLt, ScalarOp::kLe,
                                       ScalarOp::kGt, ScalarOp::kGe};
      ScalarOp op = kCmps[rng->Uniform(0, 5)];
      return ScalarExpr::Binary(op, RandomScalarTerm(rng, arity, options),
                                RandomScalarTerm(rng, arity, options));
    }
    case 2:
      return ScalarExpr::Binary(ScalarOp::kAnd,
                                RandomPredicate(rng, arity, options),
                                RandomPredicate(rng, arity, options));
    case 3:
      return ScalarExpr::Binary(ScalarOp::kOr,
                                RandomPredicate(rng, arity, options),
                                RandomPredicate(rng, arity, options));
    case 4:
      return ScalarExpr::Unary(ScalarOp::kNot,
                               RandomPredicate(rng, arity, options));
    default: {
      // Arithmetic comparison, e.g. $0 + 2 > $1.
      ScalarExprPtr sum = ScalarExpr::Binary(
          ScalarOp::kAdd, RandomScalarTerm(rng, arity, options),
          RandomScalarTerm(rng, arity, options));
      return ScalarExpr::Binary(ScalarOp::kGt, std::move(sum),
                                RandomScalarTerm(rng, arity, options));
    }
  }
}

namespace {

QueryPtr RandomQueryRec(Rng* rng, const Schema& schema, size_t arity,
                        int depth, const AstGenOptions& options) {
  // Leaves.
  if (depth <= 0 || rng->Bernoulli(0.2)) {
    std::vector<std::string> names = NamesWithArity(schema, arity);
    int64_t pick = rng->Uniform(0, 9);
    if (!names.empty() && pick < 7) {
      return Query::Rel(names[static_cast<size_t>(rng->Uniform(
          0, static_cast<int64_t>(names.size()) - 1))]);
    }
    if (pick == 7) return Query::Empty(arity);
    return Query::Singleton(RandomTuple(rng, arity, options.literal_domain));
  }
  if (options.allow_aggregate && arity >= 2 && rng->Bernoulli(0.12)) {
    // gamma with arity-1 group columns + one aggregate column.
    size_t child_arity = arity;  // group on arity-1 columns of same width
    std::vector<size_t> cols;
    for (size_t i = 0; i + 1 < arity; ++i) {
      cols.push_back(static_cast<size_t>(
          rng->Uniform(0, static_cast<int64_t>(child_arity) - 1)));
    }
    static const AggFunc kFuncs[] = {AggFunc::kCount, AggFunc::kSum,
                                     AggFunc::kMin, AggFunc::kMax};
    AggFunc func = kFuncs[rng->Uniform(0, 3)];
    size_t agg_col = static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(child_arity) - 1));
    return Query::Aggregate(
        std::move(cols), func, agg_col,
        RandomQueryRec(rng, schema, child_arity, depth - 1, options));
  }
  int64_t pick = rng->Uniform(0, options.allow_when ? 9 : 6);
  switch (pick) {
    case 0:
      return Query::Select(
          RandomPredicate(rng, arity, options),
          RandomQueryRec(rng, schema, arity, depth - 1, options));
    case 1: {
      // Project from a wider child.
      size_t child_arity = arity + static_cast<size_t>(rng->Uniform(0, 2));
      if (child_arity > 3) child_arity = arity;
      std::vector<size_t> cols;
      cols.reserve(arity);
      for (size_t i = 0; i < arity; ++i) {
        cols.push_back(static_cast<size_t>(
            rng->Uniform(0, static_cast<int64_t>(child_arity) - 1)));
      }
      return Query::Project(
          std::move(cols),
          RandomQueryRec(rng, schema, child_arity, depth - 1, options));
    }
    case 2:
      return Query::Union(
          RandomQueryRec(rng, schema, arity, depth - 1, options),
          RandomQueryRec(rng, schema, arity, depth - 1, options));
    case 3:
      return Query::Intersect(
          RandomQueryRec(rng, schema, arity, depth - 1, options),
          RandomQueryRec(rng, schema, arity, depth - 1, options));
    case 4:
      return Query::Difference(
          RandomQueryRec(rng, schema, arity, depth - 1, options),
          RandomQueryRec(rng, schema, arity, depth - 1, options));
    case 5:
    case 6: {
      if (arity < 2) {
        return Query::Select(
            RandomPredicate(rng, arity, options),
            RandomQueryRec(rng, schema, arity, depth - 1, options));
      }
      size_t left = 1 + static_cast<size_t>(
                            rng->Uniform(0, static_cast<int64_t>(arity) - 2));
      QueryPtr l = RandomQueryRec(rng, schema, left, depth - 1, options);
      QueryPtr r =
          RandomQueryRec(rng, schema, arity - left, depth - 1, options);
      if (pick == 5) return Query::Product(std::move(l), std::move(r));
      return Query::Join(RandomPredicate(rng, arity, options), std::move(l),
                         std::move(r));
    }
    default: {
      AstGenOptions inner = options;
      inner.max_depth = depth - 1;
      return Query::When(
          RandomQueryRec(rng, schema, arity, depth - 1, options),
          RandomHypo(rng, schema, inner));
    }
  }
}

UpdatePtr RandomUpdateRec(Rng* rng, const Schema& schema, int depth,
                          const AstGenOptions& options) {
  int64_t max_pick = 2;                      // ins, del
  if (depth > 0) max_pick = options.allow_cond ? 4 : 3;  // + seq (+ cond)
  int64_t pick = rng->Uniform(0, max_pick - 1);
  if (pick <= 1) {
    std::string name = RandomName(rng, schema);
    size_t arity = schema.ArityOf(name).value();
    QueryPtr q = RandomQueryRec(rng, schema, arity,
                                std::min(depth, options.max_depth), options);
    return pick == 0 ? Update::Insert(std::move(name), std::move(q))
                     : Update::Delete(std::move(name), std::move(q));
  }
  if (pick == 2) {
    return Update::Seq(RandomUpdateRec(rng, schema, depth - 1, options),
                       RandomUpdateRec(rng, schema, depth - 1, options));
  }
  size_t guard_arity = 1 + static_cast<size_t>(rng->Uniform(0, 2));
  return Update::Cond(
      RandomQueryRec(rng, schema, guard_arity, depth - 1, options),
      RandomUpdateRec(rng, schema, depth - 1, options),
      RandomUpdateRec(rng, schema, depth - 1, options));
}

}  // namespace

QueryPtr RandomQuery(Rng* rng, const Schema& schema, size_t arity,
                     const AstGenOptions& options) {
  return RandomQueryRec(rng, schema, arity, options.max_depth, options);
}

UpdatePtr RandomUpdate(Rng* rng, const Schema& schema,
                       const AstGenOptions& options) {
  return RandomUpdateRec(rng, schema, options.max_depth, options);
}

HypoExprPtr RandomHypo(Rng* rng, const Schema& schema,
                       const AstGenOptions& options) {
  int64_t pick = rng->Uniform(0, options.allow_compose ? 3 : 2);
  switch (pick) {
    case 0:
      return HypoExpr::UpdateState(RandomUpdate(rng, schema, options));
    case 1:
    case 2: {
      // Explicit substitution over 1-2 distinct names.
      std::vector<std::string> names = schema.RelationNames();
      rng->Shuffle(&names);
      size_t count = 1 + static_cast<size_t>(rng->Bernoulli(0.5) ? 1 : 0);
      count = std::min(count, names.size());
      std::vector<Binding> bindings;
      for (size_t i = 0; i < count; ++i) {
        size_t arity = schema.ArityOf(names[i]).value();
        bindings.push_back(Binding{
            names[i], RandomQueryRec(rng, schema, arity,
                                     options.max_depth - 1, options)});
      }
      return HypoExpr::Subst(std::move(bindings));
    }
    default: {
      AstGenOptions inner = options;
      inner.max_depth = std::max(0, options.max_depth - 1);
      if (rng->Bernoulli(0.3)) {
        return HypoExpr::StateWhen(RandomHypo(rng, schema, inner),
                                   RandomHypo(rng, schema, inner));
      }
      return HypoExpr::Compose(RandomHypo(rng, schema, inner),
                               RandomHypo(rng, schema, inner));
    }
  }
}

// ---------------------------------------------------------------------------
// Paper-example builders.
// ---------------------------------------------------------------------------

BlowupSpec BlowupChain(int n) {
  HQL_CHECK(n >= 1);
  BlowupSpec spec;
  // arity(R_i) = 2^(n - i): every step is a product that doubles the arity.
  for (int i = 0; i <= n; ++i) {
    size_t arity = static_cast<size_t>(1) << (n - i);
    HQL_CHECK(spec.schema.AddRelation("R" + std::to_string(i), arity).ok());
  }
  QueryPtr q = Query::Rel("R0");
  for (int i = 1; i <= n; ++i) {
    QueryPtr ri = Query::Rel("R" + std::to_string(i));
    QueryPtr ei = Query::Product(ri, ri);
    q = Query::When(q, HypoExpr::Subst({Binding{
                           "R" + std::to_string(i - 1), std::move(ei)}}));
  }
  spec.query = std::move(q);
  return spec;
}

BlowupSpec BlowupChainSmallValues(int n) {
  HQL_CHECK(n >= 1);
  BlowupSpec spec;
  for (int i = 0; i <= n; ++i) {
    size_t arity = static_cast<size_t>(1) << (n - i);
    HQL_CHECK(spec.schema.AddRelation("R" + std::to_string(i), arity).ok());
  }
  QueryPtr q = Query::Rel("R0");
  for (int i = 1; i <= n; ++i) {
    QueryPtr ri = Query::Rel("R" + std::to_string(i));
    QueryPtr ei = Query::Select(
        ScalarExpr::Binary(ScalarOp::kLt, ScalarExpr::Column(0),
                           ScalarExpr::Literal(Value::Int(0))),
        Query::Product(ri, ri));
    q = Query::When(q, HypoExpr::Subst({Binding{
                           "R" + std::to_string(i - 1), std::move(ei)}}));
  }
  spec.query = std::move(q);
  return spec;
}

BlowupSpec BlowupChainWithDifference(int n, int j) {
  HQL_CHECK(n >= 1 && j >= 1 && j <= n);
  BlowupSpec spec;
  // Arities top-down: need(R0) = 2^(#products); a product halves the
  // requirement going up, the difference at step j keeps it.
  std::vector<size_t> arity(static_cast<size_t>(n) + 1);
  arity[0] = static_cast<size_t>(1) << (n - 1);  // n-1 products
  for (int i = 1; i <= n; ++i) {
    arity[static_cast<size_t>(i)] =
        (i == j) ? arity[static_cast<size_t>(i - 1)]
                 : arity[static_cast<size_t>(i - 1)] / 2;
    HQL_CHECK(arity[static_cast<size_t>(i)] >= 1);
  }
  for (int i = 0; i <= n; ++i) {
    HQL_CHECK(spec.schema
                  .AddRelation("R" + std::to_string(i),
                               arity[static_cast<size_t>(i)])
                  .ok());
  }
  QueryPtr q = Query::Rel("R0");
  for (int i = 1; i <= n; ++i) {
    QueryPtr ri = Query::Rel("R" + std::to_string(i));
    QueryPtr ei = (i == j) ? Query::Difference(ri, ri)
                           : Query::Product(ri, ri);
    q = Query::When(q, HypoExpr::Subst({Binding{
                           "R" + std::to_string(i - 1), std::move(ei)}}));
  }
  spec.query = std::move(q);
  return spec;
}

}  // namespace hql
