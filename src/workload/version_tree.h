#ifndef HQL_WORKLOAD_VERSION_TREE_H_
#define HQL_WORKLOAD_VERSION_TREE_H_

// The tree-of-alternatives structure of Example 2.1: nodes are versions,
// edges carry hypothetical update expressions, and the state of a node is
// the # composition of the updates on its root path. Queries against any
// version are ordinary HQL queries; nothing is ever committed.

#include <string>
#include <vector>

#include "ast/forward.h"
#include "ast/hypo.h"
#include "common/check.h"

namespace hql {

class VersionTree {
 public:
  using NodeId = int;
  static constexpr NodeId kRoot = 0;

  VersionTree() { nodes_.push_back(Node{"root", -1, nullptr}); }

  /// Adds a child version reached from `parent` by `edge`; returns its id.
  NodeId AddChild(NodeId parent, std::string label, HypoExprPtr edge) {
    HQL_CHECK(parent >= 0 && parent < static_cast<NodeId>(nodes_.size()));
    HQL_CHECK(edge != nullptr);
    nodes_.push_back(Node{std::move(label), parent, std::move(edge)});
    return static_cast<NodeId>(nodes_.size()) - 1;
  }

  size_t size() const { return nodes_.size(); }
  const std::string& label(NodeId node) const { return At(node).label; }
  NodeId parent(NodeId node) const { return At(node).parent; }

  /// The hypothetical state of `node`: the composition of the edges on the
  /// path root -> node (nullptr for the root, whose state is the real DB).
  HypoExprPtr PathState(NodeId node) const {
    HypoExprPtr state = nullptr;
    for (NodeId cur = node; At(cur).parent >= 0; cur = At(cur).parent) {
      const HypoExprPtr& edge = At(cur).edge;
      state = state == nullptr ? edge : HypoExpr::Compose(edge, state);
    }
    return state;
  }

  /// `query` as seen at `node`: Q when (path composition), or Q at root.
  QueryPtr QueryAt(NodeId node, QueryPtr query) const;

  /// The difference query of Example 2.1: (Q at a) - (Q at b). Both nodes
  /// typically share a path prefix; the composition handles any pair.
  QueryPtr CompareAt(NodeId a, NodeId b, QueryPtr query) const;

 private:
  struct Node {
    std::string label;
    NodeId parent;
    HypoExprPtr edge;
  };

  const Node& At(NodeId node) const {
    HQL_CHECK(node >= 0 && node < static_cast<NodeId>(nodes_.size()));
    return nodes_[static_cast<size_t>(node)];
  }

  std::vector<Node> nodes_;
};

}  // namespace hql

#endif  // HQL_WORKLOAD_VERSION_TREE_H_
