#ifndef HQL_WORKLOAD_GENERATORS_H_
#define HQL_WORKLOAD_GENERATORS_H_

// Synthetic data and AST generators.
//
// Data generators substitute for the paper's (unreported) datasets: the
// reproduced claims are all relative (who wins, where crossovers fall), so
// uniform/zipf integer relations with controllable cardinality and key
// domain exercise the same code paths.
//
// AST generators drive the randomized property suites: thousands of random
// (query, state) pairs checked for agreement between the direct semantics
// and every rewrite/evaluation strategy.

#include <cstdint>
#include <string>
#include <vector>

#include "ast/forward.h"
#include "common/rng.h"
#include "storage/database.h"
#include "storage/relation.h"
#include "storage/schema.h"

namespace hql {

// ---------------------------------------------------------------------------
// Data generation.
// ---------------------------------------------------------------------------

/// A relation with `rows` distinct tuples of the given arity. Column 0 is
/// drawn from [0, key_domain) (uniform if zipf_s == 0); remaining columns
/// from [0, value_domain).
Relation GenRelation(Rng* rng, size_t rows, size_t arity, int64_t key_domain,
                     int64_t value_domain = 1000000, double zipf_s = 0.0);

/// A database over `schema` where every relation gets `rows` random tuples.
Database GenDatabase(Rng* rng, const Schema& schema, size_t rows,
                     int64_t key_domain);

/// A random fraction `frac` of `rel`'s tuples (used to build deltas of a
/// controlled size).
Relation SampleFraction(Rng* rng, const Relation& rel, double frac);

// ---------------------------------------------------------------------------
// Random AST generation (property tests).
// ---------------------------------------------------------------------------

struct AstGenOptions {
  int max_depth = 4;
  bool allow_when = true;
  bool allow_compose = true;
  bool allow_cond = false;   // conditional updates (Section 6 extension)
  bool allow_aggregate = false;  // gamma operator (Section 6 extension)
  int64_t literal_domain = 8;  // small domain so predicates hit data
};

/// The standard property-test schema: A1, B1 (arity 1), A2, B2 (arity 2),
/// A3, B3 (arity 3).
Schema PropertySchema();

/// A random database over PropertySchema() with up to `max_rows` rows per
/// relation, all int values drawn from [0, options.literal_domain).
Database RandomDatabase(Rng* rng, const Schema& schema, size_t max_rows,
                        int64_t domain);

/// A random RA_hyp query of the given arity.
QueryPtr RandomQuery(Rng* rng, const Schema& schema, size_t arity,
                     const AstGenOptions& options);

/// A random predicate over tuples of the given arity.
ScalarExprPtr RandomPredicate(Rng* rng, size_t arity,
                              const AstGenOptions& options);

/// A random update expression.
UpdatePtr RandomUpdate(Rng* rng, const Schema& schema,
                       const AstGenOptions& options);

/// A random hypothetical-state expression.
HypoExprPtr RandomHypo(Rng* rng, const Schema& schema,
                       const AstGenOptions& options);

// ---------------------------------------------------------------------------
// Paper-example builders.
// ---------------------------------------------------------------------------

/// A blow-up chain instance: the linear-size HQL query plus the schema
/// whose arities make it well-typed (arity(R_i) doubles per product step).
struct BlowupSpec {
  QueryPtr query;
  Schema schema;
};

/// Example 2.4's chain: (((R0 when {E1(R1)/R0}) when {E2(R2)/R1}) ... when
/// {En(Rn)/R(n-1)}) with E_i(R_i) = R_i x R_i: the query is linear in n but
/// its lazy rewrite red(Q) = E1(E2(...(En(Rn))...)) is exponential.
BlowupSpec BlowupChain(int n);

/// Same chain with E_j(R_j) = R_j - R_j at position `j` (1-based), making
/// the whole query equivalent to the empty query (Example 2.4(b)) — which
/// the RA rewriter discovers without touching the data.
BlowupSpec BlowupChainWithDifference(int n, int j);

/// Example 2.4(c): E_i(R_i) = sigma[$0 < 0](R_i x R_i), whose value is
/// empty for non-negative data. Eager evaluation computes each (empty)
/// intersection once — linear work — while the lazy rewrite still has an
/// exponential expression tree to build and evaluate.
BlowupSpec BlowupChainSmallValues(int n);

}  // namespace hql

#endif  // HQL_WORKLOAD_GENERATORS_H_
