#ifndef HQL_WORKLOAD_STRESS_H_
#define HQL_WORKLOAD_STRESS_H_

// Differential stress harness: the randomized op stream and the oracle
// that checks it.
//
// The paper's central claim is that every point on the lazy <-> eager
// spectrum computes the same answers. The per-feature property suites
// check that claim one feature at a time on fresh state; this harness
// checks it the way production would stress it — a sustained mixed stream
// of queries, scenario derivations, scenario edits with incremental
// re-asks, aggregates, deep `when`-nests, `eta1 # eta2` compositions,
// conditional updates, and adversarial Example-2.4 blowups, all running
// against shared caches (memo, incremental, index advisor) that persist
// across operations.
//
// Every sampled operation is a differential oracle: the reference value is
// the direct semantics with every optimization off, and all six strategies
// re-run it under a sampled mode combination (columnar / incremental /
// index / memo toggles). The invariant is *bit-identical-or-clean-error,
// never crash or corrupt*: a run either returns the reference relation
// exactly, or — only when chaos failpoints or a randomized governor budget
// are armed — a clean kCancelled / kResourceExhausted. Anything else is a
// StressFailure, which the driver (workload/driver.h) turns into a
// deterministic replay capsule.
//
// Determinism: op `i` draws from Rng(mix(config.seed, i)), so an op's
// generation depends only on the config and on the harness state left by
// previously executed ops. All oracle runs are single-threaded and budgets
// never include wall-clock deadlines, so a (config, executed-op-list) pair
// replays bit-identically.

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/rng.h"
#include "eval/incremental.h"
#include "eval/memo.h"
#include "opt/planner.h"
#include "storage/database.h"
#include "workload/generators.h"
#include "workload/version_tree.h"

namespace hql {

// ---------------------------------------------------------------------------
// Operation mix.
// ---------------------------------------------------------------------------

enum class StressOpKind {
  kQuery = 0,   // random RA_hyp query at a version-tree node or scenario
  kDerive,      // grow the scenario tree (derive + materialize a new state)
  kEdit,        // small update to a scenario DB + incremental re-ask
  kAggregate,   // gamma-rooted query, optionally under a `when`
  kDeepWhen,    // explicit when-tower several states deep
  kCompose,     // CompareAt over two nodes: path states composed with #
  kCondUpdate,  // state built from conditional updates (Section 6)
  kBlowup,      // Example 2.4 adversarial chain under a governor budget
};

inline constexpr int kNumStressOpKinds = 8;

const char* StressOpKindName(StressOpKind kind);

// ---------------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------------

/// One phase of the workload: genny-style op-mix / volume / fault knobs.
struct StressPhase {
  std::string label = "mixed";
  /// Operations this phase issues.
  int ops = 100;
  /// Sampling weight per StressOpKind (index = kind; 0 disables a kind).
  std::array<double, kNumStressOpKinds> weights = {4, 1, 1, 1, 1, 1, 1, 0};
  /// AST generator depth for this phase's queries and states.
  int max_depth = 3;
  bool allow_cond = true;
  bool allow_aggregate = true;
  /// Chaos mode: when > 0, every strategy run arms *all* registered
  /// failpoint sites with this per-hit fire probability (seeded per run).
  /// Sites compile out under NDEBUG, where chaos degenerates to the plain
  /// differential fuzzer — a valid, weaker pass.
  double chaos_probability = 0.0;
  /// Probability that an op's strategy runs carry a randomized governor
  /// budget (tuple + rewrite-node caps; never wall-clock — deadlines would
  /// break deterministic replay).
  double budget_probability = 0.0;
};

struct StressConfig {
  uint64_t seed = 1;
  /// Rows per relation in the base database (PropertySchema shape).
  size_t base_rows = 24;
  /// Key/value/literal domain for generated data and predicates.
  int64_t domain = 8;
  /// Test-only self-injection: after this many ops, the next oracle op
  /// corrupts one strategy's (otherwise correct) result, guaranteeing a
  /// differential failure. -1 = off. Exists so the capsule/replay/shrink
  /// pipeline is itself testable end to end.
  int inject_mismatch_after = -1;
  std::vector<StressPhase> phases;

  int TotalOps() const;
  /// The phase op `index` falls in (clamped to the last phase).
  const StressPhase& PhaseOf(int index) const;

  /// The default five-phase mixed profile: read-heavy warmup, scenario
  /// growth, edit/incremental soak, adversarial (blowups + budgets), and a
  /// chaos phase arming failpoints at `chaos_probability`.
  static StressConfig Mixed(uint64_t seed, int ops_per_phase,
                            double chaos_probability = 0.02);

  std::string ToJson() const;
  static Result<StressConfig> FromJson(const JsonValue& value);
};

// ---------------------------------------------------------------------------
// Outcomes.
// ---------------------------------------------------------------------------

/// One oracle violation. Equality is field-wise and the `detail` string
/// embeds result sizes and hashes, so two equal failures reproduced from
/// the same capsule are bit-identical observations, not just same-shaped.
struct StressFailure {
  int op_index = -1;
  std::string kind;      // StressOpKindName of the op, or "corruption"
  std::string strategy;  // the diverging run ("reference" = oracle baseline)
  std::string modes;     // sampled mode combo + chaos/budget arming
  std::string detail;    // query text + outcome comparison (hash, size)

  bool operator==(const StressFailure& other) const {
    return op_index == other.op_index && kind == other.kind &&
           strategy == other.strategy && modes == other.modes &&
           detail == other.detail;
  }
  bool operator!=(const StressFailure& other) const {
    return !(*this == other);
  }
  std::string ToString() const;
};

struct StressReport {
  int ops_run = 0;
  std::array<uint64_t, kNumStressOpKinds> ops_by_kind = {};
  /// Strategy executions checked against the reference.
  uint64_t oracle_runs = 0;
  uint64_t ok_runs = 0;
  /// Governed errors observed while chaos or a budget was armed (the
  /// expected failure mode, not a violation).
  uint64_t clean_errors = 0;
  std::vector<StressFailure> failures;
};

// ---------------------------------------------------------------------------
// Replay capsules.
// ---------------------------------------------------------------------------

/// A self-contained reproduction of one failure: the full config plus the
/// exact op indices to execute (in order). Serialized as JSON; u64 seeds
/// ride as strings so they survive the double-typed JSON number grammar.
struct ReplayCapsule {
  static constexpr int kVersion = 1;

  StressConfig config;
  std::vector<int> included_ops;
  StressFailure failure;

  std::string ToJson() const;
  static Result<ReplayCapsule> FromJsonText(const std::string& text);
};

// ---------------------------------------------------------------------------
// The harness.
// ---------------------------------------------------------------------------

/// Owns the evolving workload state — base database, scenario version
/// tree, materialized scenario databases with their standing queries and
/// per-strategy incremental caches, the shared memo cache and index
/// advisor — and executes one op at a time under the differential oracle.
class StressHarness {
 public:
  explicit StressHarness(const StressConfig& config);
  ~StressHarness();

  StressHarness(const StressHarness&) = delete;
  StressHarness& operator=(const StressHarness&) = delete;

  /// Executes global op `index` (generation is deterministic per index).
  /// Returns false if the op recorded at least one failure.
  bool RunOp(int index);

  const StressReport& report() const { return report_; }
  const StressConfig& config() const { return config_; }

  /// Number of live scenarios (root + derived); exposed for tests.
  size_t scenario_count() const;

 private:
  struct Scenario;
  struct RunSpec;
  struct Outcome;

  Rng OpRng(int index) const;
  Scenario& PickScenario(Rng* rng);
  AstGenOptions GenOptions(const StressPhase& phase) const;
  RunSpec SampleRunSpec(Rng* rng, const StressPhase& phase);
  Outcome RunOne(const QueryPtr& query, const Database& db,
                 const Schema& schema, Strategy strategy, const RunSpec& spec,
                 IncrementalCache* cache, uint64_t chaos_seed);
  /// The oracle: reference + 6 strategy runs; returns false on failure.
  bool RunOracle(Rng* rng, int index, StressOpKind kind,
                 const QueryPtr& query, const Database& db,
                 const Schema& schema, const RunSpec& spec,
                 Scenario* scenario);
  void AddFailure(int index, StressOpKind kind, const std::string& strategy,
                  const std::string& modes, std::string detail);

  void OpQuery(Rng* rng, int index, const StressPhase& phase);
  void OpDerive(Rng* rng, int index, const StressPhase& phase);
  void OpEdit(Rng* rng, int index, const StressPhase& phase);
  void OpAggregate(Rng* rng, int index, const StressPhase& phase);
  void OpDeepWhen(Rng* rng, int index, const StressPhase& phase);
  void OpCompose(Rng* rng, int index, const StressPhase& phase);
  void OpCondUpdate(Rng* rng, int index, const StressPhase& phase);
  void OpBlowup(Rng* rng, int index, const StressPhase& phase);

  StressConfig config_;
  Schema schema_;
  Database base_;
  uint64_t base_hash_ = 0;
  VersionTree tree_;
  std::vector<std::unique_ptr<Scenario>> scenarios_;
  MemoCache memo_;
  IndexAdvisor advisor_;
  StressReport report_;
  /// Self-injection arming (see StressConfig::inject_mismatch_after).
  bool inject_pending_ = false;
};

}  // namespace hql

#endif  // HQL_WORKLOAD_STRESS_H_
