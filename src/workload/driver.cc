#include "workload/driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/json.h"

namespace hql {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Runs `ops` on a fresh harness and reports whether `expected` was
/// recorded exactly (the shrinker's fitness function).
bool ReproducesExactly(const StressConfig& config,
                       const std::vector<int>& ops,
                       const StressFailure& expected) {
  StressHarness harness(config);
  for (int op : ops) harness.RunOp(op);
  for (const StressFailure& f : harness.report().failures) {
    if (f == expected) return true;
  }
  return false;
}

}  // namespace

double PhaseMetrics::OpsPerSec() const {
  return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0;
}

double PhaseMetrics::LatencyMs(double p) const {
  if (latencies_ms.empty()) return 0.0;
  double rank = p / 100.0 * static_cast<double>(latencies_ms.size());
  size_t index = static_cast<size_t>(std::ceil(rank));
  if (index > 0) --index;
  if (index >= latencies_ms.size()) index = latencies_ms.size() - 1;
  return latencies_ms[index];
}

Status WritePhaseMetricsJson(const std::vector<PhaseMetrics>& phases,
                             const std::string& prefix,
                             const std::string& path) {
  std::string out = "{\"context\": {\"driver\": ";
  AppendJsonString(&out, prefix);
  out += ", \"phases\": " +
         FormatJsonNumber(static_cast<double>(phases.size()));
  out += "}, \"benchmarks\": [";
  bool first = true;
  for (const PhaseMetrics& m : phases) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": ";
    AppendJsonString(&out, prefix + "/" + m.label);
    out += ", \"real_time\": " + FormatJsonNumber(m.seconds * 1e9);
    out += ", \"time_unit\": \"ns\"";
    out += ", \"iterations\": " + FormatJsonNumber(static_cast<double>(m.ops));
    out += ", \"ops_per_sec\": " + FormatJsonNumber(m.OpsPerSec());
    out += ", \"p50_ms\": " + FormatJsonNumber(m.LatencyMs(50));
    out += ", \"p99_ms\": " + FormatJsonNumber(m.LatencyMs(99));
    out += ", \"oracle_runs\": " +
           FormatJsonNumber(static_cast<double>(m.oracle_runs));
    out += ", \"clean_errors\": " +
           FormatJsonNumber(static_cast<double>(m.clean_errors));
    out += "}";
  }
  out += "]}\n";
  std::ofstream file(path);
  if (!file) return Status::Internal("cannot write " + path);
  file << out;
  file.close();
  if (!file) return Status::Internal("short write: " + path);
  return Status::OK();
}

WorkloadDriver::WorkloadDriver(const StressConfig& config,
                               const DriverOptions& options)
    : config_(config), options_(options) {}

DriverResult WorkloadDriver::Run() {
  DriverResult result;
  StressHarness harness(config_);
  const int total = config_.TotalOps();

  // Cumulative phase boundaries, so op index -> phase index is a scan.
  std::vector<int> boundaries;
  int offset = 0;
  for (const StressPhase& p : config_.phases) {
    offset += p.ops > 0 ? p.ops : 0;
    boundaries.push_back(offset);
    PhaseMetrics m;
    m.label = p.label;
    result.phases.push_back(std::move(m));
  }

  std::vector<int> executed;
  auto run_start = std::chrono::steady_clock::now();
  uint64_t prev_oracle = 0;
  uint64_t prev_clean = 0;
  size_t phase_index = 0;

  auto finish_phase = [&](size_t pi) {
    PhaseMetrics& m = result.phases[pi];
    m.oracle_runs = harness.report().oracle_runs - prev_oracle;
    m.clean_errors = harness.report().clean_errors - prev_clean;
    prev_oracle = harness.report().oracle_runs;
    prev_clean = harness.report().clean_errors;
    std::sort(m.latencies_ms.begin(), m.latencies_ms.end());
    if (options_.on_phase) options_.on_phase(m);
  };

  for (int i = 0; i < total; ++i) {
    if (options_.max_seconds > 0.0 &&
        SecondsSince(run_start) >= options_.max_seconds) {
      result.time_limited = true;
      break;
    }
    while (phase_index + 1 < boundaries.size() &&
           i >= boundaries[phase_index]) {
      finish_phase(phase_index);
      ++phase_index;
    }

    auto op_start = std::chrono::steady_clock::now();
    size_t failures_before = harness.report().failures.size();
    executed.push_back(i);
    bool ok = harness.RunOp(i);
    double op_seconds = SecondsSince(op_start);
    result.phases[phase_index].ops += 1;
    result.phases[phase_index].seconds += op_seconds;
    result.phases[phase_index].latencies_ms.push_back(op_seconds * 1e3);

    if (!ok) {
      const auto& failures = harness.report().failures;
      for (size_t f = failures_before; f < failures.size(); ++f) {
        ReplayCapsule capsule;
        capsule.config = config_;
        capsule.included_ops = executed;
        capsule.failure = failures[f];
        if (options_.shrink) {
          capsule = Shrink(capsule, options_.shrink_max_runs);
        }
        if (!options_.capsule_dir.empty()) {
          std::ostringstream name;
          name << options_.capsule_dir << "/hql-capsule-op"
               << capsule.failure.op_index << "-seed" << config_.seed << "-"
               << f << ".json";
          Status written = WriteCapsuleFile(capsule, name.str());
          result.capsule_paths.push_back(written.ok() ? name.str()
                                                      : "<write failed>");
        }
        result.capsules.push_back(std::move(capsule));
      }
      if (options_.stop_on_failure) break;
    }
  }

  while (phase_index < result.phases.size()) {
    finish_phase(phase_index);
    ++phase_index;
  }
  result.report = harness.report();
  result.seconds = SecondsSince(run_start);
  return result;
}

ReplayCapsule WorkloadDriver::Shrink(const ReplayCapsule& capsule,
                                     int max_runs, int* runs_used) {
  std::vector<int> current = capsule.included_ops;
  int runs = 0;
  bool improved = true;
  // Backward passes: later ops are the likeliest to be dead weight (they
  // ran after the failing op's state was already set up), and removing
  // from the back first keeps earlier candidate indices stable.
  while (improved && runs < max_runs) {
    improved = false;
    for (int i = static_cast<int>(current.size()) - 1;
         i >= 0 && runs < max_runs; --i) {
      if (current[static_cast<size_t>(i)] == capsule.failure.op_index) {
        continue;  // the failing op itself must stay
      }
      std::vector<int> candidate = current;
      candidate.erase(candidate.begin() + i);
      ++runs;
      if (ReproducesExactly(capsule.config, candidate, capsule.failure)) {
        current = std::move(candidate);
        improved = true;
      }
    }
  }
  if (runs_used != nullptr) *runs_used = runs;
  ReplayCapsule out = capsule;
  out.included_ops = std::move(current);
  return out;
}

Result<ReplayOutcome> WorkloadDriver::Replay(const ReplayCapsule& capsule) {
  const int total = capsule.config.TotalOps();
  for (int op : capsule.included_ops) {
    if (op < 0 || op >= total) {
      return Status(StatusCode::kInvalidArgument,
                    "capsule op index " + std::to_string(op) +
                        " outside configured range [0, " +
                        std::to_string(total) + ")");
    }
  }
  StressHarness harness(capsule.config);
  for (int op : capsule.included_ops) harness.RunOp(op);

  ReplayOutcome out;
  out.report = harness.report();
  for (const StressFailure& f : out.report.failures) {
    if (f == capsule.failure) {
      out.reproduced = true;
      break;
    }
  }
  std::ostringstream os;
  os << "replayed " << capsule.included_ops.size() << " ops, "
     << out.report.oracle_runs << " oracle runs, "
     << out.report.failures.size() << " failure(s); recorded failure "
     << (out.reproduced ? "REPRODUCED bit-identically" : "did NOT reproduce");
  out.summary = os.str();
  return out;
}

Result<ReplayCapsule> WorkloadDriver::LoadCapsuleFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status(StatusCode::kNotFound, "cannot open capsule: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReplayCapsule::FromJsonText(buffer.str());
}

Status WorkloadDriver::WriteCapsuleFile(const ReplayCapsule& capsule,
                                        const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status(StatusCode::kInternal, "cannot write capsule: " + path);
  }
  out << capsule.ToJson() << "\n";
  out.close();
  if (!out) {
    return Status(StatusCode::kInternal, "short write: " + path);
  }
  return Status::OK();
}

}  // namespace hql
