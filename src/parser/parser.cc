#include "parser/parser.h"

#include <set>
#include <vector>

#include "ast/hypo.h"
#include "ast/query.h"
#include "ast/scalar_expr.h"
#include "ast/update.h"
#include "common/strings.h"
#include "parser/lexer.h"
#include "storage/value.h"

namespace hql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QueryPtr> ParseQueryTop() {
    HQL_ASSIGN_OR_RETURN(QueryPtr q, Query_());
    HQL_RETURN_IF_ERROR(ExpectEof());
    return q;
  }

  Result<UpdatePtr> ParseUpdateTop() {
    HQL_ASSIGN_OR_RETURN(UpdatePtr u, Update_());
    HQL_RETURN_IF_ERROR(ExpectEof());
    return u;
  }

  Result<HypoExprPtr> ParseHypoTop() {
    HQL_ASSIGN_OR_RETURN(HypoExprPtr h, Hypo_());
    HQL_RETURN_IF_ERROR(ExpectEof());
    return h;
  }

  Result<ScalarExprPtr> ParseExprTop() {
    HQL_ASSIGN_OR_RETURN(ScalarExprPtr e, OrExpr());
    HQL_RETURN_IF_ERROR(ExpectEof());
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Check(TokenKind kind) const { return Peek().kind == kind; }

  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }

  Status Expect(TokenKind kind) {
    if (Match(kind)) return Status::OK();
    return Error(StrFormat("expected %s, found %s", TokenKindName(kind),
                           TokenKindName(Peek().kind)));
  }

  Status ExpectEof() { return Expect(TokenKind::kEof); }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("parse error at offset %zu: %s", Peek().offset,
                  msg.c_str()));
  }

  // ---- queries ----

  Result<QueryPtr> Query_() {
    HQL_ASSIGN_OR_RETURN(QueryPtr q, SetExpr());
    while (Match(TokenKind::kWhen)) {
      HQL_ASSIGN_OR_RETURN(HypoExprPtr h, HypoAtom());
      q = Query::When(std::move(q), std::move(h));
    }
    return q;
  }

  Result<QueryPtr> SetExpr() {
    HQL_ASSIGN_OR_RETURN(QueryPtr q, IsectExpr());
    for (;;) {
      if (Match(TokenKind::kUnion)) {
        HQL_ASSIGN_OR_RETURN(QueryPtr r, IsectExpr());
        q = Query::Union(std::move(q), std::move(r));
      } else if (Match(TokenKind::kMinus)) {
        HQL_ASSIGN_OR_RETURN(QueryPtr r, IsectExpr());
        q = Query::Difference(std::move(q), std::move(r));
      } else {
        return q;
      }
    }
  }

  Result<QueryPtr> IsectExpr() {
    HQL_ASSIGN_OR_RETURN(QueryPtr q, CrossExpr());
    while (Match(TokenKind::kIsect)) {
      HQL_ASSIGN_OR_RETURN(QueryPtr r, CrossExpr());
      q = Query::Intersect(std::move(q), std::move(r));
    }
    return q;
  }

  Result<QueryPtr> CrossExpr() {
    HQL_ASSIGN_OR_RETURN(QueryPtr q, Primary());
    for (;;) {
      if (Match(TokenKind::kCross)) {
        HQL_ASSIGN_OR_RETURN(QueryPtr r, Primary());
        q = Query::Product(std::move(q), std::move(r));
      } else if (Match(TokenKind::kJoin)) {
        HQL_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
        HQL_ASSIGN_OR_RETURN(ScalarExprPtr pred, OrExpr());
        HQL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
        HQL_ASSIGN_OR_RETURN(QueryPtr r, Primary());
        q = Query::Join(std::move(pred), std::move(q), std::move(r));
      } else {
        return q;
      }
    }
  }

  Result<QueryPtr> Primary() {
    if (Check(TokenKind::kIdent)) {
      return Query::Rel(Advance().text);
    }
    if (Match(TokenKind::kEmptyKw)) {
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
      if (!Check(TokenKind::kInt)) return Error("expected arity in empty[..]");
      int64_t arity = Advance().int_value;
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      if (arity <= 0) return Error("empty[..] arity must be positive");
      return Query::Empty(static_cast<size_t>(arity));
    }
    if (Match(TokenKind::kSigma)) {
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
      HQL_ASSIGN_OR_RETURN(ScalarExprPtr pred, OrExpr());
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      HQL_ASSIGN_OR_RETURN(QueryPtr q, Query_());
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return Query::Select(std::move(pred), std::move(q));
    }
    if (Match(TokenKind::kPi)) {
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
      std::vector<size_t> cols;
      do {
        if (!Check(TokenKind::kInt)) {
          return Error("expected column index in pi[..]");
        }
        cols.push_back(static_cast<size_t>(Advance().int_value));
      } while (Match(TokenKind::kComma));
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      HQL_ASSIGN_OR_RETURN(QueryPtr q, Query_());
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return Query::Project(std::move(cols), std::move(q));
    }
    if (Match(TokenKind::kGamma)) {
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
      std::vector<size_t> cols;
      while (Check(TokenKind::kInt)) {
        cols.push_back(static_cast<size_t>(Advance().int_value));
        if (!Match(TokenKind::kComma)) break;
      }
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
      AggFunc func;
      if (Match(TokenKind::kCount)) {
        func = AggFunc::kCount;
      } else if (Match(TokenKind::kSum)) {
        func = AggFunc::kSum;
      } else if (Match(TokenKind::kMin)) {
        func = AggFunc::kMin;
      } else if (Match(TokenKind::kMax)) {
        func = AggFunc::kMax;
      } else {
        return Error("expected count/sum/min/max in gamma[..]");
      }
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      if (!Check(TokenKind::kInt)) {
        return Error("expected aggregate column index");
      }
      size_t agg_col = static_cast<size_t>(Advance().int_value);
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      HQL_ASSIGN_OR_RETURN(QueryPtr q, Query_());
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return Query::Aggregate(std::move(cols), func, agg_col, std::move(q));
    }
    if (Match(TokenKind::kLBrace)) {
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      Tuple t;
      do {
        HQL_ASSIGN_OR_RETURN(Value v, Literal());
        t.push_back(std::move(v));
      } while (Match(TokenKind::kComma));
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
      return Query::Singleton(std::move(t));
    }
    if (Match(TokenKind::kLParen)) {
      HQL_ASSIGN_OR_RETURN(QueryPtr q, Query_());
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return q;
    }
    return Error(StrFormat("expected a query, found %s",
                           TokenKindName(Peek().kind)));
  }

  Result<Value> Literal() {
    if (Check(TokenKind::kInt)) return Value::Int(Advance().int_value);
    if (Check(TokenKind::kFloat)) return Value::Double(Advance().float_value);
    if (Check(TokenKind::kString)) return Value::Str(Advance().text);
    if (Match(TokenKind::kTrue)) return Value::Bool(true);
    if (Match(TokenKind::kFalse)) return Value::Bool(false);
    if (Match(TokenKind::kNull)) return Value::Nul();
    if (Match(TokenKind::kMinus)) {
      if (Check(TokenKind::kInt)) return Value::Int(-Advance().int_value);
      if (Check(TokenKind::kFloat)) {
        return Value::Double(-Advance().float_value);
      }
      return Error("expected a number after '-'");
    }
    return Error(StrFormat("expected a literal, found %s",
                           TokenKindName(Peek().kind)));
  }

  // ---- hypothetical states ----

  Result<HypoExprPtr> Hypo_() {
    HQL_ASSIGN_OR_RETURN(HypoExprPtr h, HypoAtom());
    for (;;) {
      if (Match(TokenKind::kHash)) {
        HQL_ASSIGN_OR_RETURN(HypoExprPtr r, HypoAtom());
        h = HypoExpr::Compose(std::move(h), std::move(r));
      } else if (Match(TokenKind::kWhen)) {
        // State-level when: eta1 when eta2 (only reachable inside
        // parentheses, so it never collides with query-level when).
        HQL_ASSIGN_OR_RETURN(HypoExprPtr r, HypoAtom());
        h = HypoExpr::StateWhen(std::move(h), std::move(r));
      } else {
        return h;
      }
    }
  }

  Result<HypoExprPtr> HypoAtom() {
    if (Match(TokenKind::kLParen)) {
      HQL_ASSIGN_OR_RETURN(HypoExprPtr h, Hypo_());
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return h;
    }
    HQL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    if (Match(TokenKind::kRBrace)) {
      return HypoExpr::Subst({});  // identity substitution
    }
    if (Check(TokenKind::kIns) || Check(TokenKind::kDel) ||
        Check(TokenKind::kIf)) {
      HQL_ASSIGN_OR_RETURN(UpdatePtr u, Update_());
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
      return HypoExpr::UpdateState(std::move(u));
    }
    // Binding list.
    std::vector<Binding> bindings;
    std::set<std::string> names;
    do {
      HQL_ASSIGN_OR_RETURN(QueryPtr q, Query_());
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kSlash));
      if (!Check(TokenKind::kIdent)) {
        return Error("expected a relation name after '/'");
      }
      std::string name = Advance().text;
      if (!names.insert(name).second) {
        return Error("duplicate relation in substitution: " + name);
      }
      bindings.push_back(Binding{std::move(name), std::move(q)});
    } while (Match(TokenKind::kComma));
    HQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    return HypoExpr::Subst(std::move(bindings));
  }

  // ---- updates ----

  Result<UpdatePtr> Update_() {
    HQL_ASSIGN_OR_RETURN(UpdatePtr u, UpdateAtom());
    while (Match(TokenKind::kSemicolon)) {
      HQL_ASSIGN_OR_RETURN(UpdatePtr r, UpdateAtom());
      u = Update::Seq(std::move(u), std::move(r));
    }
    return u;
  }

  Result<UpdatePtr> UpdateAtom() {
    if (Check(TokenKind::kIns) || Check(TokenKind::kDel)) {
      bool is_insert = Advance().kind == TokenKind::kIns;
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      if (!Check(TokenKind::kIdent)) {
        return Error("expected a relation name");
      }
      std::string name = Advance().text;
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      HQL_ASSIGN_OR_RETURN(QueryPtr q, Query_());
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return is_insert ? Update::Insert(std::move(name), std::move(q))
                       : Update::Delete(std::move(name), std::move(q));
    }
    if (Match(TokenKind::kIf)) {
      HQL_ASSIGN_OR_RETURN(QueryPtr guard, Query_());
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kThen));
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
      HQL_ASSIGN_OR_RETURN(UpdatePtr t, Update_());
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kElse));
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
      HQL_ASSIGN_OR_RETURN(UpdatePtr e, Update_());
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
      return Update::Cond(std::move(guard), std::move(t), std::move(e));
    }
    return Error(StrFormat("expected ins/del/if, found %s",
                           TokenKindName(Peek().kind)));
  }

  // ---- scalar expressions ----

  Result<ScalarExprPtr> OrExpr() {
    HQL_ASSIGN_OR_RETURN(ScalarExprPtr e, AndExpr());
    while (Match(TokenKind::kOr)) {
      HQL_ASSIGN_OR_RETURN(ScalarExprPtr r, AndExpr());
      e = ScalarExpr::Binary(ScalarOp::kOr, std::move(e), std::move(r));
    }
    return e;
  }

  Result<ScalarExprPtr> AndExpr() {
    HQL_ASSIGN_OR_RETURN(ScalarExprPtr e, NotExpr());
    while (Match(TokenKind::kAnd)) {
      HQL_ASSIGN_OR_RETURN(ScalarExprPtr r, NotExpr());
      e = ScalarExpr::Binary(ScalarOp::kAnd, std::move(e), std::move(r));
    }
    return e;
  }

  Result<ScalarExprPtr> NotExpr() {
    if (Match(TokenKind::kNot)) {
      HQL_ASSIGN_OR_RETURN(ScalarExprPtr e, NotExpr());
      return ScalarExpr::Unary(ScalarOp::kNot, std::move(e));
    }
    return CmpExpr();
  }

  Result<ScalarExprPtr> CmpExpr() {
    HQL_ASSIGN_OR_RETURN(ScalarExprPtr e, AddExpr());
    ScalarOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = ScalarOp::kEq;
        break;
      case TokenKind::kNe:
        op = ScalarOp::kNe;
        break;
      case TokenKind::kLt:
        op = ScalarOp::kLt;
        break;
      case TokenKind::kLe:
        op = ScalarOp::kLe;
        break;
      case TokenKind::kGt:
        op = ScalarOp::kGt;
        break;
      case TokenKind::kGe:
        op = ScalarOp::kGe;
        break;
      default:
        return e;
    }
    Advance();
    HQL_ASSIGN_OR_RETURN(ScalarExprPtr r, AddExpr());
    return ScalarExpr::Binary(op, std::move(e), std::move(r));
  }

  Result<ScalarExprPtr> AddExpr() {
    HQL_ASSIGN_OR_RETURN(ScalarExprPtr e, MulExpr());
    for (;;) {
      if (Match(TokenKind::kPlus)) {
        HQL_ASSIGN_OR_RETURN(ScalarExprPtr r, MulExpr());
        e = ScalarExpr::Binary(ScalarOp::kAdd, std::move(e), std::move(r));
      } else if (Match(TokenKind::kMinus)) {
        HQL_ASSIGN_OR_RETURN(ScalarExprPtr r, MulExpr());
        e = ScalarExpr::Binary(ScalarOp::kSub, std::move(e), std::move(r));
      } else {
        return e;
      }
    }
  }

  Result<ScalarExprPtr> MulExpr() {
    HQL_ASSIGN_OR_RETURN(ScalarExprPtr e, UnaryExpr());
    for (;;) {
      if (Match(TokenKind::kStar)) {
        HQL_ASSIGN_OR_RETURN(ScalarExprPtr r, UnaryExpr());
        e = ScalarExpr::Binary(ScalarOp::kMul, std::move(e), std::move(r));
      } else if (Match(TokenKind::kSlash)) {
        HQL_ASSIGN_OR_RETURN(ScalarExprPtr r, UnaryExpr());
        e = ScalarExpr::Binary(ScalarOp::kDiv, std::move(e), std::move(r));
      } else if (Match(TokenKind::kPercent)) {
        HQL_ASSIGN_OR_RETURN(ScalarExprPtr r, UnaryExpr());
        e = ScalarExpr::Binary(ScalarOp::kMod, std::move(e), std::move(r));
      } else {
        return e;
      }
    }
  }

  Result<ScalarExprPtr> UnaryExpr() {
    if (Match(TokenKind::kMinus)) {
      HQL_ASSIGN_OR_RETURN(ScalarExprPtr e, UnaryExpr());
      return ScalarExpr::Unary(ScalarOp::kNeg, std::move(e));
    }
    if (Check(TokenKind::kColumn)) {
      return ScalarExpr::Column(static_cast<size_t>(Advance().int_value));
    }
    if (Match(TokenKind::kLParen)) {
      HQL_ASSIGN_OR_RETURN(ScalarExprPtr e, OrExpr());
      HQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return e;
    }
    HQL_ASSIGN_OR_RETURN(Value v, Literal());
    return ScalarExpr::Literal(std::move(v));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<QueryPtr> ParseQuery(const std::string& input) {
  HQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseQueryTop();
}

Result<UpdatePtr> ParseUpdate(const std::string& input) {
  HQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseUpdateTop();
}

Result<HypoExprPtr> ParseHypo(const std::string& input) {
  HQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseHypoTop();
}

Result<ScalarExprPtr> ParseScalarExpr(const std::string& input) {
  HQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseExprTop();
}

}  // namespace hql
