#ifndef HQL_PARSER_PARSER_H_
#define HQL_PARSER_PARSER_H_

// Recursive-descent parser for textual HQL. The grammar (loosest binding
// first; every Query::ToString output parses back to an equal AST):
//
//   query    := setexpr ('when' hypoatom)*
//   setexpr  := isect (('union' | '-') isect)*         left associative
//   isect    := cross ('isect' cross)*
//   cross    := primary (('x' | 'join' '[' expr ']') primary)*
//   primary  := NAME | 'empty' '[' INT ']'
//             | 'sigma' '[' expr ']' '(' query ')'
//             | 'pi' '[' INT (',' INT)* ']' '(' query ')'
//             | '{' '(' literal (',' literal)* ')' '}'        singleton
//             | '(' query ')'
//
//   hypo     := hypoatom (('#' | 'when') hypoatom)*    left associative
//               ('when' here is state-level: eta1 when eta2)
//   hypoatom := '{' '}'                                identity substitution
//             | '{' update '}'
//             | '{' bindings '}'
//             | '(' hypo ')'
//   bindings := query '/' NAME (',' query '/' NAME)*
//   update   := uatom (';' uatom)*
//   uatom    := 'ins' '(' NAME ',' query ')'
//             | 'del' '(' NAME ',' query ')'
//             | 'if' query 'then' '{' update '}' else' '{' update '}'
//
//   expr     := orx;  orx := andx ('or' andx)*;  andx := notx ('and' notx)*
//   notx     := 'not' notx | cmp
//   cmp      := add (('='|'!='|'<'|'<='|'>'|'>=') add)?
//   add      := mul (('+'|'-') mul)*;  mul := unary (('*'|'/'|'%') unary)*
//   unary    := '-' unary | '$'INT | literal | '(' expr ')'
//
// Inside '{...}' the distinction between an update, a binding list and a
// singleton tuple is made by one-token lookahead ('ins'/'del'/'if' starts
// an update; '(' followed by a literal starts a tuple in query position;
// anything else starts a binding list).

#include <string>

#include "ast/forward.h"
#include "common/result.h"

namespace hql {

/// Parses a full HQL query; the entire input must be consumed.
Result<QueryPtr> ParseQuery(const std::string& input);

/// Parses an update expression (the body of a {U} state).
Result<UpdatePtr> ParseUpdate(const std::string& input);

/// Parses a hypothetical-state expression, e.g. "{Q/R} # {ins(S, Q)}".
Result<HypoExprPtr> ParseHypo(const std::string& input);

/// Parses a scalar/predicate expression, e.g. "$0 > 30 and $1 = 'x'".
Result<ScalarExprPtr> ParseScalarExpr(const std::string& input);

}  // namespace hql

#endif  // HQL_PARSER_PARSER_H_
