#include "parser/lexer.h"

#include <cctype>
#include <map>

#include "common/strings.h"

namespace hql {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kFloat:
      return "float";
    case TokenKind::kString:
      return "string";
    case TokenKind::kColumn:
      return "$column";
    case TokenKind::kSigma:
      return "sigma";
    case TokenKind::kPi:
      return "pi";
    case TokenKind::kGamma:
      return "gamma";
    case TokenKind::kCount:
      return "count";
    case TokenKind::kSum:
      return "sum";
    case TokenKind::kMin:
      return "min";
    case TokenKind::kMax:
      return "max";
    case TokenKind::kUnion:
      return "union";
    case TokenKind::kIsect:
      return "isect";
    case TokenKind::kCross:
      return "x";
    case TokenKind::kJoin:
      return "join";
    case TokenKind::kWhen:
      return "when";
    case TokenKind::kIns:
      return "ins";
    case TokenKind::kDel:
      return "del";
    case TokenKind::kIf:
      return "if";
    case TokenKind::kThen:
      return "then";
    case TokenKind::kElse:
      return "else";
    case TokenKind::kAnd:
      return "and";
    case TokenKind::kOr:
      return "or";
    case TokenKind::kNot:
      return "not";
    case TokenKind::kTrue:
      return "true";
    case TokenKind::kFalse:
      return "false";
    case TokenKind::kNull:
      return "null";
    case TokenKind::kEmptyKw:
      return "empty";
    case TokenKind::kLParen:
      return "(";
    case TokenKind::kRParen:
      return ")";
    case TokenKind::kLBracket:
      return "[";
    case TokenKind::kRBracket:
      return "]";
    case TokenKind::kLBrace:
      return "{";
    case TokenKind::kRBrace:
      return "}";
    case TokenKind::kComma:
      return ",";
    case TokenKind::kSemicolon:
      return ";";
    case TokenKind::kSlash:
      return "/";
    case TokenKind::kHash:
      return "#";
    case TokenKind::kMinus:
      return "-";
    case TokenKind::kPlus:
      return "+";
    case TokenKind::kStar:
      return "*";
    case TokenKind::kPercent:
      return "%";
    case TokenKind::kLt:
      return "<";
    case TokenKind::kLe:
      return "<=";
    case TokenKind::kGt:
      return ">";
    case TokenKind::kGe:
      return ">=";
    case TokenKind::kEq:
      return "=";
    case TokenKind::kNe:
      return "!=";
    case TokenKind::kEof:
      return "end of input";
  }
  return "?";
}

namespace {

const std::map<std::string, TokenKind>& Keywords() {
  static const auto* kKeywords = new std::map<std::string, TokenKind>{
      {"sigma", TokenKind::kSigma}, {"pi", TokenKind::kPi},
      {"gamma", TokenKind::kGamma}, {"count", TokenKind::kCount},
      {"sum", TokenKind::kSum},     {"min", TokenKind::kMin},
      {"max", TokenKind::kMax},
      {"union", TokenKind::kUnion}, {"isect", TokenKind::kIsect},
      {"x", TokenKind::kCross},     {"join", TokenKind::kJoin},
      {"when", TokenKind::kWhen},   {"ins", TokenKind::kIns},
      {"del", TokenKind::kDel},     {"if", TokenKind::kIf},
      {"then", TokenKind::kThen},   {"else", TokenKind::kElse},
      {"and", TokenKind::kAnd},     {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},     {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse}, {"null", TokenKind::kNull},
      {"empty", TokenKind::kEmptyKw},
  };
  return *kKeywords;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto error = [&](const std::string& msg) {
    return Status::InvalidArgument(
        StrFormat("lex error at offset %zu: %s", i, msg.c_str()));
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      tok.text = input.substr(start, i - start);
      auto it = Keywords().find(tok.text);
      tok.kind = it == Keywords().end() ? TokenKind::kIdent : it->second;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i + 1 < n && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      std::string text = input.substr(start, i - start);
      if (is_float) {
        tok.kind = TokenKind::kFloat;
        tok.float_value = std::stod(text);
      } else {
        tok.kind = TokenKind::kInt;
        tok.int_value = std::stoll(text);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    switch (c) {
      case '$': {
        ++i;
        if (i >= n || !std::isdigit(static_cast<unsigned char>(input[i]))) {
          return error("expected digits after '$'");
        }
        size_t start = i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
        tok.kind = TokenKind::kColumn;
        tok.int_value = std::stoll(input.substr(start, i - start));
        tokens.push_back(std::move(tok));
        continue;
      }
      case '\'': {
        ++i;
        std::string text;
        for (;;) {
          if (i >= n) return error("unterminated string literal");
          if (input[i] == '\'') {
            if (i + 1 < n && input[i + 1] == '\'') {
              text.push_back('\'');
              i += 2;
              continue;
            }
            ++i;
            break;
          }
          text.push_back(input[i]);
          ++i;
        }
        tok.kind = TokenKind::kString;
        tok.text = std::move(text);
        tokens.push_back(std::move(tok));
        continue;
      }
      case '(':
        tok.kind = TokenKind::kLParen;
        break;
      case ')':
        tok.kind = TokenKind::kRParen;
        break;
      case '[':
        tok.kind = TokenKind::kLBracket;
        break;
      case ']':
        tok.kind = TokenKind::kRBracket;
        break;
      case '{':
        tok.kind = TokenKind::kLBrace;
        break;
      case '}':
        tok.kind = TokenKind::kRBrace;
        break;
      case ',':
        tok.kind = TokenKind::kComma;
        break;
      case ';':
        tok.kind = TokenKind::kSemicolon;
        break;
      case '/':
        tok.kind = TokenKind::kSlash;
        break;
      case '#':
        tok.kind = TokenKind::kHash;
        break;
      case '-':
        tok.kind = TokenKind::kMinus;
        break;
      case '+':
        tok.kind = TokenKind::kPlus;
        break;
      case '*':
        tok.kind = TokenKind::kStar;
        break;
      case '%':
        tok.kind = TokenKind::kPercent;
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.kind = TokenKind::kLe;
          ++i;
        } else {
          tok.kind = TokenKind::kLt;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.kind = TokenKind::kGe;
          ++i;
        } else {
          tok.kind = TokenKind::kGt;
        }
        break;
      case '=':
        tok.kind = TokenKind::kEq;
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.kind = TokenKind::kNe;
          ++i;
        } else {
          return error("expected '=' after '!'");
        }
        break;
      default:
        return error(StrFormat("unexpected character '%c'", c));
    }
    ++i;
    tokens.push_back(std::move(tok));
  }
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.offset = n;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace hql
