#ifndef HQL_PARSER_LEXER_H_
#define HQL_PARSER_LEXER_H_

// Tokenizer for the textual HQL syntax (the notation used throughout the
// paper and produced by Query::ToString):
//
//   sigma[$0 > 30](R join[$0 = $2] S) when {ins(R, S); del(S, R)}
//   Q when {sigma[$0 >= 60](S)/S} # {U}
//
// Identifiers are [A-Za-z_][A-Za-z0-9_]*; the keywords below are reserved.
// Strings are single-quoted with '' as the escape for a quote.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace hql {

enum class TokenKind {
  kIdent,
  kInt,
  kFloat,
  kString,
  kColumn,  // $N
  // Keywords.
  kSigma,
  kPi,
  kGamma,
  kCount,
  kSum,
  kMin,
  kMax,
  kUnion,
  kIsect,
  kCross,  // x
  kJoin,
  kWhen,
  kIns,
  kDel,
  kIf,
  kThen,
  kElse,
  kAnd,
  kOr,
  kNot,
  kTrue,
  kFalse,
  kNull,
  kEmptyKw,  // empty
  // Punctuation.
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kSlash,
  kHash,
  kMinus,
  kPlus,
  kStar,
  kPercent,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kEof,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;      // identifier / string payload
  int64_t int_value = 0;  // kInt, kColumn
  double float_value = 0.0;
  size_t offset = 0;  // byte offset in the input, for error messages
};

/// Tokenizes `input`; InvalidArgument with offset context on bad input.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace hql

#endif  // HQL_PARSER_LEXER_H_
