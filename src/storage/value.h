#ifndef HQL_STORAGE_VALUE_H_
#define HQL_STORAGE_VALUE_H_

// The scalar value model: null, bool, int64, double, string.
//
// Values have a total order across types (null < bool < int < double <
// string, with int/double compared numerically within their shared "number"
// family so that selection predicates behave intuitively). The total order
// is what lets relations be stored as sorted sets.

#include <cstdint>
#include <string>
#include <variant>

namespace hql {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
};

/// Returns "null", "bool", "int", "double", or "string".
const char* ValueTypeName(ValueType t);

class Value {
 public:
  Value() : rep_(Null{}) {}
  static Value Nul() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Double(double d) { return Value(Rep(d)); }
  static Value Str(std::string s) { return Value(Rep(std::move(s))); }

  ValueType type() const;

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_number() const { return is_int() || is_double(); }

  /// Accessors; each requires the matching type.
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;  // accepts int or double, widening
  const std::string& AsString() const;

  /// Three-way comparison defining the library-wide total order.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  uint64_t Hash() const;

  /// Literal syntax: null, true, 42, 3.5, 'abc' (quotes escaped by doubling).
  std::string ToString() const;

 private:
  struct Null {};
  using Rep = std::variant<Null, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

/// Hash functor for unordered containers keyed by Value (consistent with
/// operator==: equal values have equal type, hence equal hashes).
struct ValueHash {
  size_t operator()(const Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};

}  // namespace hql

#endif  // HQL_STORAGE_VALUE_H_
