#ifndef HQL_STORAGE_TUPLE_H_
#define HQL_STORAGE_TUPLE_H_

// Tuples are fixed-arity sequences of Values, ordered lexicographically.

#include <cstdint>
#include <string>
#include <vector>

#include "storage/value.h"

namespace hql {

using Tuple = std::vector<Value>;

/// Lexicographic three-way comparison; shorter tuples sort first (arities
/// never mix within one relation, but mixed comparison must stay total).
int CompareTuples(const Tuple& a, const Tuple& b);

struct TupleLess {
  bool operator()(const Tuple& a, const Tuple& b) const {
    return CompareTuples(a, b) < 0;
  }
};

uint64_t HashTuple(const Tuple& t);

/// Hash functor for unordered containers keyed by Tuple. Consistent with
/// Tuple equality (vector operator==, i.e. elementwise Compare == 0):
/// numeric values of different types never compare equal, and Value::Hash
/// seeds by type.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return static_cast<size_t>(HashTuple(t));
  }
};

/// "(1, 'a', 3.5)".
std::string TupleToString(const Tuple& t);

/// Concatenation, the tuple-level operation under cartesian product / join.
Tuple ConcatTuples(const Tuple& a, const Tuple& b);

}  // namespace hql

#endif  // HQL_STORAGE_TUPLE_H_
