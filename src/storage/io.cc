#include "storage/io.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace hql {

std::string DatabaseToText(const Database& db) {
  std::string out;
  out += "# hql database, format v1\n";
  for (const auto& [name, rel] : db.relations()) {
    out += StrFormat("relation %s %zu\n", name.c_str(), rel.arity());
    for (const Tuple& t : rel) {
      out += TupleToString(t);
      out += "\n";
    }
    out += "end\n";
  }
  return out;
}

namespace {

// Parses one literal tuple line "(v, v, ...)" with the Value literal
// syntax (ints, floats, single-quoted strings, true/false/null).
Result<Tuple> ParseTupleLine(const std::string& line, size_t line_no) {
  auto error = [&](const std::string& msg) {
    return Status::InvalidArgument(
        StrFormat("line %zu: %s", line_no, msg.c_str()));
  };
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '(') return error("expected '('");
  ++i;
  Tuple t;
  for (;;) {
    skip_ws();
    if (i >= line.size()) return error("unterminated tuple");
    char c = line[i];
    if (c == '\'') {
      // String literal with '' escaping.
      ++i;
      std::string s;
      for (;;) {
        if (i >= line.size()) return error("unterminated string");
        if (line[i] == '\'') {
          if (i + 1 < line.size() && line[i + 1] == '\'') {
            s.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        s.push_back(line[i++]);
      }
      t.push_back(Value::Str(std::move(s)));
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
               c == '+') {
      size_t start = i;
      if (c == '-' || c == '+') ++i;
      bool is_float = false;
      while (i < line.size() &&
             (std::isdigit(static_cast<unsigned char>(line[i])) ||
              line[i] == '.' || line[i] == 'e' || line[i] == 'E' ||
              ((line[i] == '-' || line[i] == '+') &&
               (line[i - 1] == 'e' || line[i - 1] == 'E')))) {
        if (line[i] == '.' || line[i] == 'e' || line[i] == 'E') {
          is_float = true;
        }
        ++i;
      }
      std::string num = line.substr(start, i - start);
      try {
        if (is_float) {
          t.push_back(Value::Double(std::stod(num)));
        } else {
          t.push_back(Value::Int(std::stoll(num)));
        }
      } catch (...) {
        return error("bad number: " + num);
      }
    } else if (line.compare(i, 4, "true") == 0) {
      t.push_back(Value::Bool(true));
      i += 4;
    } else if (line.compare(i, 5, "false") == 0) {
      t.push_back(Value::Bool(false));
      i += 5;
    } else if (line.compare(i, 4, "null") == 0) {
      t.push_back(Value::Nul());
      i += 4;
    } else {
      return error(StrFormat("unexpected character '%c'", c));
    }
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < line.size() && line[i] == ')') {
      ++i;
      break;
    }
    return error("expected ',' or ')'");
  }
  skip_ws();
  if (i != line.size()) return error("trailing characters after tuple");
  return t;
}

}  // namespace

Result<Database> DatabaseFromText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;

  struct Pending {
    std::string name;
    size_t arity = 0;
    std::vector<Tuple> tuples;
  };
  std::vector<Pending> relations;
  Pending* current = nullptr;

  while (std::getline(in, line)) {
    ++line_no;
    // Trim trailing CR and surrounding whitespace.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    line = line.substr(b);
    if (line[0] == '#') continue;

    if (line.rfind("relation ", 0) == 0) {
      if (current != nullptr) {
        return Status::InvalidArgument(StrFormat(
            "line %zu: 'relation' before 'end' of previous block", line_no));
      }
      std::istringstream hdr(line);
      std::string kw, name;
      size_t arity = 0;
      hdr >> kw >> name >> arity;
      if (name.empty() || arity == 0) {
        return Status::InvalidArgument(
            StrFormat("line %zu: bad relation header", line_no));
      }
      relations.push_back(Pending{name, arity, {}});
      current = &relations.back();
      continue;
    }
    if (line == "end") {
      if (current == nullptr) {
        return Status::InvalidArgument(
            StrFormat("line %zu: 'end' without 'relation'", line_no));
      }
      current = nullptr;
      continue;
    }
    if (current == nullptr) {
      return Status::InvalidArgument(
          StrFormat("line %zu: tuple outside a relation block", line_no));
    }
    HQL_ASSIGN_OR_RETURN(Tuple t, ParseTupleLine(line, line_no));
    if (t.size() != current->arity) {
      return Status::TypeError(
          StrFormat("line %zu: tuple arity %zu, relation %s has arity %zu",
                    line_no, t.size(), current->name.c_str(),
                    current->arity));
    }
    current->tuples.push_back(std::move(t));
  }
  if (current != nullptr) {
    return Status::InvalidArgument("missing final 'end'");
  }

  Schema schema;
  for (const Pending& p : relations) {
    HQL_RETURN_IF_ERROR(schema.AddRelation(p.name, p.arity));
  }
  Database db(schema);
  for (Pending& p : relations) {
    HQL_RETURN_IF_ERROR(
        db.Set(p.name, Relation::FromTuples(p.arity, std::move(p.tuples))));
  }
  return db;
}

Status SaveDatabase(const Database& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open for write: " + path);
  out << DatabaseToText(db);
  out.close();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<Database> LoadDatabase(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DatabaseFromText(buffer.str());
}

}  // namespace hql
