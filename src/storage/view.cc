#include "storage/view.h"

#include <algorithm>

#include "common/check.h"
#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/strings.h"

namespace hql {

namespace {

void SortUnique(std::vector<Tuple>* tuples) {
  std::sort(tuples->begin(), tuples->end(), TupleLess());
  tuples->erase(std::unique(tuples->begin(), tuples->end()), tuples->end());
}

std::vector<Tuple> SortedDifference(const std::vector<Tuple>& a,
                                    const std::vector<Tuple>& b) {
  std::vector<Tuple> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out), TupleLess());
  return out;
}

std::vector<Tuple> SortedUnion(const std::vector<Tuple>& a,
                               const std::vector<Tuple>& b) {
  std::vector<Tuple> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out), TupleLess());
  return out;
}

#ifndef NDEBUG
bool SortedAndUnique(const std::vector<Tuple>& tuples) {
  for (size_t i = 1; i < tuples.size(); ++i) {
    if (CompareTuples(tuples[i - 1], tuples[i]) >= 0) return false;
  }
  return true;
}

bool Disjoint(const std::vector<Tuple>& a, const std::vector<Tuple>& b) {
  std::vector<Tuple> both;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(both), TupleLess());
  return both.empty();
}
#endif

}  // namespace

RelationView::RelationView(size_t arity)
    : arity_(arity), base_(std::make_shared<const Relation>(arity)) {}

RelationView::RelationView(Relation rel)
    : arity_(rel.arity()),
      base_(std::make_shared<const Relation>(std::move(rel))) {}

RelationView::RelationView(RelationPtr base)
    : arity_(base->arity()), base_(std::move(base)) {
  ExecContext& ctx = AmbientExecContext();
  ctx.AddViewCreated();
  ctx.AddViewTuplesShared(base_->size());
}

RelationView::RelationView(size_t arity, RelationPtr base,
                           std::vector<Tuple> adds, std::vector<Tuple> dels)
    : arity_(arity),
      base_(std::move(base)),
      adds_(std::move(adds)),
      dels_(std::move(dels)) {
#ifndef NDEBUG
  HQL_CHECK(SortedAndUnique(adds_));
  HQL_CHECK(SortedAndUnique(dels_));
  HQL_CHECK(Disjoint(adds_, dels_));
  for (const Tuple& t : adds_) HQL_CHECK(!base_->Contains(t));
  for (const Tuple& t : dels_) HQL_CHECK(base_->Contains(t));
#endif
  if (!is_flat()) flat_cache_ = std::make_shared<FlatCache>();
  ExecContext& ctx = AmbientExecContext();
  ctx.AddViewCreated();
  ctx.AddViewTuplesShared(base_->size() - dels_.size());
}

RelationView RelationView::Overlay(RelationPtr base, std::vector<Tuple> adds,
                                   std::vector<Tuple> dels) {
  size_t arity = base->arity();
  for (const Tuple& t : adds) HQL_CHECK_MSG(t.size() == arity, "add arity");
  for (const Tuple& t : dels) HQL_CHECK_MSG(t.size() == arity, "del arity");
  SortUnique(&adds);
  SortUnique(&dels);
  // Adds win on overlap: (base ∖ dels) ∪ adds keeps a tuple in both sets.
  dels = SortedDifference(dels, adds);
  // Canonicalize against the base: dels ⊆ base, adds ∩ base = ∅.
  std::erase_if(adds, [&](const Tuple& t) { return base->Contains(t); });
  std::erase_if(dels, [&](const Tuple& t) { return !base->Contains(t); });
  return RelationView(arity, std::move(base), std::move(adds),
                      std::move(dels));
}

bool RelationView::Contains(const Tuple& t) const {
  if (std::binary_search(adds_.begin(), adds_.end(), t, TupleLess())) {
    return true;
  }
  if (std::binary_search(dels_.begin(), dels_.end(), t, TupleLess())) {
    return false;
  }
  return base_->Contains(t);
}

RelationView RelationView::ApplyDelta(std::vector<Tuple> adds,
                                      std::vector<Tuple> dels,
                                      double consolidate_fraction) const {
  for (const Tuple& t : adds) HQL_CHECK_MSG(t.size() == arity_, "add arity");
  for (const Tuple& t : dels) HQL_CHECK_MSG(t.size() == arity_, "del arity");
  SortUnique(&adds);
  SortUnique(&dels);
  // Result content: (this ∖ dels) ∪ adds, adds winning on overlap.
  dels = SortedDifference(dels, adds);

  // Compose into a canonical overlay relative to the existing base:
  //   new_dels = (dels_ ∪ (dels ∩ base)) ∖ adds
  //   new_adds = (adds_ ∖ dels) ∪ (adds ∖ base)
  // Both results stay sorted/unique/disjoint, and the work is linear in the
  // two overlays — the base is only probed, never scanned.
  std::vector<Tuple> dels_in_base;
  dels_in_base.reserve(dels.size());
  for (const Tuple& t : dels) {
    if (base_->Contains(t)) dels_in_base.push_back(t);
  }
  std::vector<Tuple> new_dels =
      SortedDifference(SortedUnion(dels_, dels_in_base), adds);

  std::vector<Tuple> adds_not_in_base;
  adds_not_in_base.reserve(adds.size());
  for (const Tuple& t : adds) {
    if (!base_->Contains(t)) adds_not_in_base.push_back(t);
  }
  std::vector<Tuple> new_adds =
      SortedUnion(SortedDifference(adds_, dels), adds_not_in_base);

  size_t delta = new_adds.size() + new_dels.size();
  if (delta > 0 &&
      static_cast<double>(delta) >
          consolidate_fraction * static_cast<double>(base_->size())) {
    // Break-even crossed: collapse to a fresh flat base so later scans pay
    // no merge overhead and later deltas start from a small overlay again.
    HQL_FAIL_POINT(kFailPointConsolidate);
    ExecContext& ctx = AmbientExecContext();
    ctx.AddViewConsolidation();
    Relation flat = base_->ApplyTuples(new_adds, new_dels);
    ctx.AddViewTuplesCopied(flat.size());
    return RelationView(std::move(flat));
  }
  return RelationView(arity_, base_, std::move(new_adds),
                      std::move(new_dels));
}

Relation RelationView::Materialize() const {
  if (is_flat()) {
    AmbientExecContext().AddViewTuplesCopied(base_->size());
    return *base_;
  }
  Relation flat = base_->ApplyTuples(adds_, dels_);
  AmbientExecContext().AddViewTuplesCopied(flat.size());
  return flat;
}

RelationPtr RelationView::Shared() const {
  if (is_flat()) return base_;
  std::lock_guard<std::mutex> lock(flat_cache_->mu);
  if (flat_cache_->flat == nullptr) {
    HQL_FAIL_POINT(kFailPointConsolidate);
    ExecContext& ctx = AmbientExecContext();
    ctx.AddViewConsolidation();
    Relation flat = base_->ApplyTuples(adds_, dels_);
    ctx.AddViewTuplesCopied(flat.size());
    flat_cache_->flat = std::make_shared<const Relation>(std::move(flat));
  }
  return flat_cache_->flat;
}

bool RelationView::ContentEquals(const RelationView& other) const {
  if (arity_ != other.arity_ || size() != other.size()) return false;
  const_iterator a = begin(), b = other.begin();
  const_iterator ae = end(), be = other.end();
  for (; a != ae && b != be; ++a, ++b) {
    if (CompareTuples(*a, *b) != 0) return false;
  }
  return a == ae && b == be;
}

uint64_t RelationView::Fingerprint() const {
  if (is_flat()) return base_->Hash();
  uint64_t h = HashCombine(0x9E3779B97F4A7C15ULL, base_->Hash());
  h = HashCombine(h, adds_.size());
  for (const Tuple& t : adds_) h = HashCombine(h, HashTuple(t));
  h = HashCombine(h, dels_.size());
  for (const Tuple& t : dels_) h = HashCombine(h, HashTuple(t));
  return h;
}

std::string RelationView::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(size());
  for (const Tuple& t : *this) parts.push_back(TupleToString(t));
  return "{" + Join(parts, ", ") + "}";
}

RelationView::const_iterator::const_iterator(const RelationView* view,
                                             size_t bi, size_t ai)
    : view_(view), bi_(bi), ai_(ai) {
  SkipDeleted();
}

void RelationView::const_iterator::SkipDeleted() {
  const std::vector<Tuple>& base = view_->base_->tuples();
  const std::vector<Tuple>& dels = view_->dels_;
  while (bi_ < base.size() && di_ < dels.size()) {
    int cmp = CompareTuples(dels[di_], base[bi_]);
    if (cmp < 0) {
      ++di_;
    } else if (cmp == 0) {
      ++bi_;
      ++di_;
    } else {
      break;
    }
  }
}

const Tuple& RelationView::const_iterator::operator*() const {
  const std::vector<Tuple>& base = view_->base_->tuples();
  const std::vector<Tuple>& adds = view_->adds_;
  if (bi_ >= base.size()) return adds[ai_];
  if (ai_ >= adds.size()) return base[bi_];
  // Canonical views keep adds disjoint from the base, so no tie is possible.
  return CompareTuples(base[bi_], adds[ai_]) < 0 ? base[bi_] : adds[ai_];
}

RelationView::const_iterator& RelationView::const_iterator::operator++() {
  const std::vector<Tuple>& base = view_->base_->tuples();
  const std::vector<Tuple>& adds = view_->adds_;
  bool from_base;
  if (bi_ >= base.size()) {
    from_base = false;
  } else if (ai_ >= adds.size()) {
    from_base = true;
  } else {
    from_base = CompareTuples(base[bi_], adds[ai_]) < 0;
  }
  if (from_base) {
    ++bi_;
    SkipDeleted();
  } else {
    ++ai_;
  }
  return *this;
}

std::optional<RelationEdit> OverlayEditBetween(const RelationView& from,
                                               const RelationView& to) {
  if (from.base() != to.base()) return std::nullopt;
  // Both overlays are canonical against the shared base B, so
  //   content(from) = (B ∖ from.dels) ∪ from.adds
  //   content(to)   = (B ∖ to.dels)   ∪ to.adds
  // and the content difference decomposes into overlay set differences:
  //   removed = (to.dels ∖ from.dels) ∪ (from.adds ∖ to.adds)
  //   added   = (from.dels ∖ to.dels) ∪ (to.adds ∖ from.adds)
  // Each union is of disjoint sorted sets (one side lives in B, the other
  // outside it), and the result is canonical w.r.t. content(from): removed
  // tuples are all present in `from`, added tuples all absent.
  RelationEdit edit;
  edit.dels = SortedUnion(SortedDifference(to.dels(), from.dels()),
                          SortedDifference(from.adds(), to.adds()));
  edit.adds = SortedUnion(SortedDifference(from.dels(), to.dels()),
                          SortedDifference(to.adds(), from.adds()));
#ifndef NDEBUG
  HQL_CHECK(SortedAndUnique(edit.adds));
  HQL_CHECK(SortedAndUnique(edit.dels));
  for (const Tuple& t : edit.dels) HQL_CHECK(from.Contains(t));
  for (const Tuple& t : edit.adds) HQL_CHECK(!from.Contains(t));
#endif
  return edit;
}

namespace {

template <typename Merge>
Relation StreamBinary(const RelationView& a, const RelationView& b,
                      const char* what, Merge merge) {
  HQL_CHECK_MSG(a.arity() == b.arity(), what);
  std::vector<Tuple> out;
  merge(&out);
  return Relation::FromSortedUnique(a.arity(), std::move(out));
}

}  // namespace

Relation ViewUnion(const RelationView& a, const RelationView& b) {
  return StreamBinary(a, b, "view union arity mismatch",
                      [&](std::vector<Tuple>* out) {
                        out->reserve(a.size() + b.size());
                        std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                                       std::back_inserter(*out), TupleLess());
                      });
}

Relation ViewIntersect(const RelationView& a, const RelationView& b) {
  return StreamBinary(a, b, "view intersect arity mismatch",
                      [&](std::vector<Tuple>* out) {
                        std::set_intersection(a.begin(), a.end(), b.begin(),
                                              b.end(),
                                              std::back_inserter(*out),
                                              TupleLess());
                      });
}

Relation ViewDifference(const RelationView& a, const RelationView& b) {
  return StreamBinary(a, b, "view difference arity mismatch",
                      [&](std::vector<Tuple>* out) {
                        std::set_difference(a.begin(), a.end(), b.begin(),
                                            b.end(), std::back_inserter(*out),
                                            TupleLess());
                      });
}

Relation ViewProduct(const RelationView& a, const RelationView& b) {
  std::vector<Tuple> out;
  out.reserve(a.size() * b.size());
  for (const Tuple& ta : a) {
    for (const Tuple& tb : b) {
      out.push_back(ConcatTuples(ta, tb));
    }
  }
  return Relation::FromSortedUnique(a.arity() + b.arity(), std::move(out));
}

}  // namespace hql
