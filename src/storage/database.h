#ifndef HQL_STORAGE_DATABASE_H_
#define HQL_STORAGE_DATABASE_H_

// A database state DB: a function mapping every relation name of a schema to
// a relation of the appropriate arity (paper Section 3.1). Databases are
// value types: copying one produces an independent state, which is exactly
// the DB[R <- V] notation of the paper's update semantics.
//
// Storage is copy-on-write: each name maps to a RelationView — a shared
// immutable base relation plus a small add/del overlay — so copying a
// Database, deriving a hypothetical state, or binding an unchanged relation
// is a refcount bump, never a tuple copy. Flat access (Get/GetRef) is still
// available for callers that need a plain Relation; overlays consolidate
// lazily and cache the result.

#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/view.h"

namespace hql {

class Database {
 public:
  /// A state over `schema` with every relation empty.
  explicit Database(Schema schema);

  const Schema& schema() const { return schema_; }

  /// DB(R) as a flat copy; NotFound for names outside the schema.
  Result<Relation> Get(const std::string& name) const;

  /// DB(R) as a flat reference; CHECK-fails for names outside the schema
  /// (internal evaluator paths validate names beforehand via typecheck).
  /// Overlay-backed relations consolidate once and cache the flat form; the
  /// reference stays valid as long as this Database (or any copy of the
  /// view) is alive.
  const Relation& GetRef(const std::string& name) const;

  /// DB(R) as a copy-on-write view (cheap copy, no tuple movement);
  /// NotFound for names outside the schema.
  Result<RelationView> GetView(const std::string& name) const;

  /// DB(R) view by reference; CHECK-fails for names outside the schema.
  const RelationView& ViewRef(const std::string& name) const;

  /// DB(R) as a shared flat relation (refcount bump when already flat).
  /// CHECK-fails for names outside the schema.
  RelationPtr GetShared(const std::string& name) const;

  /// DB[R <- value]; arity must match the schema.
  Status Set(const std::string& name, Relation value);
  Status SetShared(const std::string& name, RelationPtr value);
  Status SetView(const std::string& name, RelationView value);

  /// Builds (or returns) a hash index over `columns` of DB(name)'s base
  /// relation — the manual face of the index policy (IndexMode::kManual).
  /// The index is cached on the base and shared by every copy-on-write
  /// descendant; an overlay-backed relation indexes its base, which the
  /// kernels patch with the overlay at probe time. NotFound for unknown
  /// names, InvalidArgument for empty/unsorted/out-of-range columns.
  Result<std::shared_ptr<const RelationIndex>> BuildIndex(
      const std::string& name, const std::vector<size_t>& columns) const;

  /// A deep, fully flat copy: every relation materialized into a fresh base
  /// with no structure shared with this state. This is the copy-per-state
  /// storage model the overlay representation replaces; kept as the
  /// benchmark baseline and for callers that must sever sharing.
  Database Consolidated() const;

  /// Content equality (representation-independent: an overlay and a flat
  /// relation with the same tuples compare equal).
  bool operator==(const Database& other) const;
  bool operator!=(const Database& other) const { return !(*this == other); }

  uint64_t Hash() const;

  /// Multi-line listing of all relations, for debugging and examples.
  std::string ToString() const;

  const std::map<std::string, RelationView>& relations() const {
    return relations_;
  }

 private:
  Schema schema_;
  std::map<std::string, RelationView> relations_;
};

}  // namespace hql

#endif  // HQL_STORAGE_DATABASE_H_
