#ifndef HQL_STORAGE_DATABASE_H_
#define HQL_STORAGE_DATABASE_H_

// A database state DB: a function mapping every relation name of a schema to
// a relation of the appropriate arity (paper Section 3.1). Databases are
// value types: copying one produces an independent state, which is exactly
// the DB[R <- V] notation of the paper's update semantics.

#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/relation.h"
#include "storage/schema.h"

namespace hql {

class Database {
 public:
  /// A state over `schema` with every relation empty.
  explicit Database(Schema schema);

  const Schema& schema() const { return schema_; }

  /// DB(R); NotFound for names outside the schema.
  Result<Relation> Get(const std::string& name) const;

  /// DB(R) by reference; CHECK-fails for names outside the schema (internal
  /// evaluator paths validate names beforehand via typecheck).
  const Relation& GetRef(const std::string& name) const;

  /// DB[R <- value]; arity must match the schema.
  Status Set(const std::string& name, Relation value);

  bool operator==(const Database& other) const;
  bool operator!=(const Database& other) const { return !(*this == other); }

  uint64_t Hash() const;

  /// Multi-line listing of all relations, for debugging and examples.
  std::string ToString() const;

  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

 private:
  Schema schema_;
  std::map<std::string, Relation> relations_;
};

}  // namespace hql

#endif  // HQL_STORAGE_DATABASE_H_
