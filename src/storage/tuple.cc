#include "storage/tuple.h"

#include "common/strings.h"

namespace hql {

int CompareTuples(const Tuple& a, const Tuple& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

uint64_t HashTuple(const Tuple& t) {
  uint64_t h = 0x84222325CBF29CE4ULL;
  for (const Value& v : t) h = HashCombine(h, v.Hash());
  return h;
}

std::string TupleToString(const Tuple& t) {
  std::vector<std::string> parts;
  parts.reserve(t.size());
  for (const Value& v : t) parts.push_back(v.ToString());
  return "(" + Join(parts, ", ") + ")";
}

Tuple ConcatTuples(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace hql
