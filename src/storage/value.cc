#include "storage/value.h"

#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace hql {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

ValueType Value::type() const {
  return static_cast<ValueType>(rep_.index());
}

bool Value::AsBool() const {
  HQL_CHECK(is_bool());
  return std::get<bool>(rep_);
}

int64_t Value::AsInt() const {
  HQL_CHECK(is_int());
  return std::get<int64_t>(rep_);
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(rep_));
  HQL_CHECK(is_double());
  return std::get<double>(rep_);
}

const std::string& Value::AsString() const {
  HQL_CHECK(is_string());
  return std::get<std::string>(rep_);
}

namespace {

// Order families: null(0) < bool(1) < number(2) < string(3).
int Family(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 2;
    case ValueType::kString:
      return 3;
  }
  return 4;
}

}  // namespace

int Value::Compare(const Value& other) const {
  int fa = Family(type());
  int fb = Family(other.type());
  if (fa != fb) return fa < fb ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      bool a = AsBool(), b = other.AsBool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kInt:
      if (other.is_int()) {
        int64_t a = AsInt(), b = other.AsInt();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      [[fallthrough]];
    case ValueType::kDouble: {
      double a = AsDouble(), b = other.AsDouble();
      if (a == b) {
        // int 1 and double 1.0 compare equal only if both are the same
        // type; tie-break by type so the order is antisymmetric and sorted
        // sets do not conflate them.
        int ta = static_cast<int>(type());
        int tb = static_cast<int>(other.type());
        return ta == tb ? 0 : (ta < tb ? -1 : 1);
      }
      return a < b ? -1 : 1;
    }
    case ValueType::kString: {
      int c = AsString().compare(other.AsString());
      return c == 0 ? 0 : (c < 0 ? -1 : 1);
    }
  }
  HQL_UNREACHABLE();
}

uint64_t Value::Hash() const {
  uint64_t seed = static_cast<uint64_t>(type()) * 0x9E3779B97F4A7C15ULL;
  switch (type()) {
    case ValueType::kNull:
      return seed;
    case ValueType::kBool:
      return HashCombine(seed, AsBool() ? 1 : 0);
    case ValueType::kInt:
      return HashCombine(seed, static_cast<uint64_t>(AsInt()));
    case ValueType::kDouble: {
      double d = AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashCombine(seed, bits);
    }
    case ValueType::kString:
      return HashCombine(seed, HashString(AsString()));
  }
  HQL_UNREACHABLE();
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::string s = StrFormat("%g", AsDouble());
      // Keep doubles distinguishable from ints in printed form.
      if (s.find_first_of(".eE") == std::string::npos) s += ".0";
      return s;
    }
    case ValueType::kString: {
      std::string out = "'";
      for (char c : AsString()) {
        if (c == '\'') out += "''";
        else out.push_back(c);
      }
      out += "'";
      return out;
    }
  }
  HQL_UNREACHABLE();
}

}  // namespace hql
