#ifndef HQL_STORAGE_INDEX_H_
#define HQL_STORAGE_INDEX_H_

// Secondary hash indexes over immutable base relations.
//
// A family of hypothetical states shares almost all of its data with the
// base state, so an index built once on a base Relation serves every
// copy-on-write descendant: probing a RelationView returns the base's
// matching positions minus `dels` plus a linear filter of the (small)
// `adds` — ~O(matches + |delta|) for a 10-row overlay on a 100k-row base,
// where a scan pays O(|base|) per query, per alternative.
//
// Indexes are built lazily once per (base relation, column set) and cached
// on the Relation with the same install-once/thread-safe pattern as the
// view layer's flat-consolidation cache; all CoW descendants share the
// cached index by refcount. The IndexAdvisor is the simple frequency-driven
// variant of automated index selection: it counts equality-predicate column
// sets per base and builds an index once a set crosses a threshold.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/relation.h"
#include "storage/tuple.h"
#include "storage/view.h"

namespace hql {

// Index work is charged to the ambient ExecContext
// (common/exec_context.h): indexes_built, indexes_shared, index_probes,
// index_tuples_skipped. Install an ExecContextScope and read Snapshot()
// to observe it.

/// Adds to ExecStats::index_tuples_skipped — called by the execution
/// kernels, which know how much of the base a probe avoided.
void AddIndexTuplesSkipped(uint64_t n);

/// An immutable hash index over one or more columns of a base Relation:
/// key tuple -> span of positions into the base's sorted tuple vector.
/// Positions within a span are ascending, so results sliced out of the
/// base stay in relation order. The index holds no reference to the base;
/// the caches that hand indexes out keep base and index alive together.
class RelationIndex {
 public:
  /// Builds over `base`. `columns` must be non-empty, strictly ascending
  /// and within the base's arity (checked). O(|base|).
  RelationIndex(const Relation& base, std::vector<size_t> columns);

  const std::vector<size_t>& columns() const { return columns_; }
  size_t distinct_keys() const { return buckets_.size(); }
  size_t indexed_rows() const { return positions_.size(); }

  /// A borrowed view of the ascending base positions matching one key.
  struct PosSpan {
    const uint32_t* data = nullptr;
    size_t count = 0;
    const uint32_t* begin() const { return data; }
    const uint32_t* end() const { return data + count; }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
  };

  /// Positions of base tuples whose key columns equal `key`. Key equality
  /// is Value equality (Compare() == 0), exactly the truth condition of a
  /// ScalarOp::kEq conjunct, so a probe never diverges from a scan.
  PosSpan Probe(const Tuple& key) const;

  /// The key tuple of `t` under this index's columns.
  Tuple KeyOf(const Tuple& t) const;

 private:
  std::vector<size_t> columns_;
  // All positions grouped by key into contiguous runs; buckets_ maps a key
  // to its (offset, length) run. One flat array keeps the whole index in
  // two allocations regardless of key count.
  std::vector<uint32_t> positions_;
  std::unordered_map<Tuple, std::pair<uint32_t, uint32_t>, TupleHash>
      buckets_;
};

using RelationIndexPtr = std::shared_ptr<const RelationIndex>;

/// The planner-facing index policy.
enum class IndexMode {
  kOff,      // never probe: plans and evaluation match the pre-index code
  kManual,   // probe indexes previously built (Database::BuildIndex)
  kAdvisor,  // record predicate columns; auto-build past a threshold
};

const char* IndexModeName(IndexMode mode);

/// Frequency-driven index advisor: records equality-predicate column-set
/// accesses per base relation and builds the index once a column set has
/// been requested `build_threshold` times. Thread-safe; meant to be shared
/// across a session or an EvalAlternatives family so the whole family funds
/// one build. Bases are identified by address — the advisor never extends a
/// base's lifetime, and a recycled address can at worst warm a counter
/// early, never produce a wrong result.
class IndexAdvisor {
 public:
  explicit IndexAdvisor(size_t build_threshold = 2)
      : threshold_(build_threshold < 1 ? 1 : build_threshold) {}

  /// Records one access to (base, columns); returns the index to probe —
  /// an existing one, or a freshly built one when the access count reaches
  /// the threshold — or null while the set is still below threshold.
  RelationIndexPtr Advise(const RelationPtr& base,
                          const std::vector<size_t>& columns);

  struct Stats {
    uint64_t accesses = 0;
    uint64_t builds = 0;
  };
  Stats stats() const;

 private:
  mutable std::mutex mu_;
  size_t threshold_;
  std::map<std::pair<const void*, std::vector<size_t>>, size_t> counts_;
  uint64_t accesses_ = 0;
  uint64_t builds_ = 0;
};

/// How the execution kernels resolve indexes; threaded from PlannerOptions
/// through the evaluators. Default-constructed = kOff = exact pre-index
/// behavior.
struct IndexConfig {
  IndexMode mode = IndexMode::kOff;
  /// Consulted in kAdvisor mode; caller-owned, may be shared across
  /// threads. Null degrades kAdvisor to kManual.
  IndexAdvisor* advisor = nullptr;
  /// Bases smaller than this are never probed — scanning them is cheaper
  /// than the probe bookkeeping.
  size_t min_index_rows = 64;

  bool enabled() const { return mode != IndexMode::kOff; }
};

}  // namespace hql

#endif  // HQL_STORAGE_INDEX_H_
