#ifndef HQL_STORAGE_SCHEMA_H_
#define HQL_STORAGE_SCHEMA_H_

// A database schema: a finite collection of relation names, each of a fixed
// arity (paper Section 3.1).

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hql {

class Schema {
 public:
  Schema() = default;

  /// Adds a relation name with the given arity.
  Status AddRelation(const std::string& name, size_t arity);

  bool HasRelation(const std::string& name) const;

  /// Arity of `name`; NotFound if absent.
  Result<size_t> ArityOf(const std::string& name) const;

  /// Names in sorted order.
  std::vector<std::string> RelationNames() const;

  size_t NumRelations() const { return arities_.size(); }

  const std::map<std::string, size_t>& arities() const { return arities_; }

 private:
  std::map<std::string, size_t> arities_;
};

}  // namespace hql

#endif  // HQL_STORAGE_SCHEMA_H_
