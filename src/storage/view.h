#ifndef HQL_STORAGE_VIEW_H_
#define HQL_STORAGE_VIEW_H_

// Copy-on-write relation storage: a RelationView represents the state
// (base ∖ dels) ∪ adds without materializing it. The base is an immutable,
// shared Relation; the overlay is a pair of small sorted tuple vectors held
// in canonical form:
//
//   * dels ⊆ base     (every del is actually present in the base)
//   * adds ∩ base = ∅ (no add is already in the base)
//   * adds ∩ dels = ∅ (follows from the two above)
//
// Canonical form makes the exact cardinality |base| − |dels| + |adds|
// available in O(1), makes the merge iterator a plain two-way merge that
// skips deletions, and is precisely the (R_I, R_D) pair of the paper's
// Section 5.5: R_D = DB(R) − V and R_I = V − DB(R).
//
// Deriving a hypothetical state from a parent is ApplyDelta, which composes
// overlays in O(|delta|) — never touching the base — until the accumulated
// overlay crosses a fraction of the base size, at which point the view
// consolidates into a fresh flat base (the Heraclitus break-even: once the
// delta is a sizable fraction of the relation, merging on every scan costs
// more than one materialization).

#include <cstdint>
#include <iterator>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "storage/relation.h"
#include "storage/tuple.h"

namespace hql {

using RelationPtr = std::shared_ptr<const Relation>;

// Copy-on-write work is charged to the ambient ExecContext
// (common/exec_context.h): views_created, view_consolidations,
// view_tuples_shared, view_tuples_copied. Install an ExecContextScope and
// read Snapshot() to observe it.

class RelationView {
 public:
  /// Fraction of |base| that |adds| + |dels| must exceed before ApplyDelta
  /// consolidates instead of stacking the overlay.
  static constexpr double kConsolidateFraction = 0.25;

  /// An empty flat view of the given arity.
  explicit RelationView(size_t arity);

  /// A flat view wrapping a freshly computed relation (takes ownership; not
  /// counted as sharing).
  explicit RelationView(Relation rel);

  /// A flat view sharing `base` (counted in ExecStats::view_tuples_shared).
  explicit RelationView(RelationPtr base);

  /// An overlay over `base`. `adds`/`dels` may be unsorted and need not be
  /// canonical; they are normalized against the base here. The resulting
  /// content is (base ∖ dels) ∪ adds with adds winning on overlap, i.e. a
  /// tuple in both is present. An empty normalized overlay yields a flat
  /// view of `base`.
  static RelationView Overlay(RelationPtr base, std::vector<Tuple> adds,
                              std::vector<Tuple> dels);

  size_t arity() const { return arity_; }
  /// Exact cardinality, O(1): |base| − |dels| + |adds|.
  size_t size() const { return base_->size() - dels_.size() + adds_.size(); }
  bool empty() const { return size() == 0; }

  bool is_flat() const { return adds_.empty() && dels_.empty(); }
  size_t delta_size() const { return adds_.size() + dels_.size(); }

  const RelationPtr& base() const { return base_; }
  const std::vector<Tuple>& adds() const { return adds_; }
  const std::vector<Tuple>& dels() const { return dels_; }

  bool Contains(const Tuple& t) const;

  /// Derives (this ∖ dels) ∪ adds as a new view, in O(|existing delta| +
  /// |new delta|) — adds win on add/del overlap, mirroring the update
  /// semantics (DB(R) − D) ∪ I. Consolidates into a flat view when the
  /// composed overlay exceeds `consolidate_fraction` × |base| (pass a large
  /// fraction to force overlay stacking, 0 to force consolidation).
  RelationView ApplyDelta(std::vector<Tuple> adds, std::vector<Tuple> dels,
                          double consolidate_fraction =
                              kConsolidateFraction) const;

  /// The merged content as a fresh flat Relation (always copies).
  Relation Materialize() const;

  /// The merged content as a shared flat relation. Flat views return their
  /// base (refcount bump); overlays consolidate once and cache the result —
  /// copies of this view share the cache, so repeated access is O(1).
  /// Thread-safe; the returned pointer is never invalidated.
  RelationPtr Shared() const;

  /// Shorthand for *Shared() — a flat reference valid as long as any copy of
  /// this view (or the returned Shared() pointer) is alive.
  const Relation& Flat() const { return *Shared(); }

  /// Content equality across representations (merge-compares, no
  /// materialization).
  bool ContentEquals(const RelationView& other) const;

  /// Representation-aware content fingerprint: base hash combined with the
  /// overlay hashes, O(|delta|) given the base's cached hash. Flat views
  /// fingerprint exactly as their base relation's Hash(), so a flat view and
  /// the relation it wraps agree. Two views with equal content but different
  /// base/delta splits may fingerprint differently — callers (the memo
  /// cache) only rely on equal representation ⇒ equal fingerprint, so a
  /// split mismatch costs a cache miss, never a wrong hit.
  uint64_t Fingerprint() const;

  std::string ToString() const;

  /// Merge iterator over the view content in tuple order. Skips deleted base
  /// tuples and interleaves adds; O(1) amortized per step.
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Tuple;
    using difference_type = std::ptrdiff_t;
    using pointer = const Tuple*;
    using reference = const Tuple&;

    const Tuple& operator*() const;
    const Tuple* operator->() const { return &**this; }
    const_iterator& operator++();
    bool operator==(const const_iterator& other) const {
      return bi_ == other.bi_ && ai_ == other.ai_;
    }
    bool operator!=(const const_iterator& other) const {
      return !(*this == other);
    }

   private:
    friend class RelationView;
    const_iterator(const RelationView* view, size_t bi, size_t ai);
    void SkipDeleted();

    const RelationView* view_ = nullptr;
    size_t bi_ = 0;  // cursor into base tuples
    size_t di_ = 0;  // cursor into dels
    size_t ai_ = 0;  // cursor into adds
  };

  const_iterator begin() const { return const_iterator(this, 0, 0); }
  const_iterator end() const {
    return const_iterator(this, base_->size(), adds_.size());
  }

 private:
  struct FlatCache {
    std::mutex mu;
    RelationPtr flat;
  };

  RelationView(size_t arity, RelationPtr base, std::vector<Tuple> adds,
               std::vector<Tuple> dels);

  size_t arity_;
  RelationPtr base_;          // never null
  std::vector<Tuple> adds_;   // sorted, unique, disjoint from base
  std::vector<Tuple> dels_;   // sorted, unique, subset of base

  // Lazily consolidated flat form; allocated only for overlays and shared
  // across copies so one consolidation serves every copy of the view. The
  // installed relation is never replaced (install-once), so references
  // handed out by Flat() stay valid for the cache's lifetime.
  std::shared_ptr<FlatCache> flat_cache_;
};

/// The set difference between two relation states: applying the edit to the
/// first state yields the second, (from ∖ dels) ∪ adds = to. Canonical with
/// respect to the *content* of the first state (dels ⊆ from, adds ∩ from =
/// ∅, adds ∩ dels = ∅), so |adds| + |dels| is the exact number of tuples
/// that changed.
struct RelationEdit {
  std::vector<Tuple> adds;  // sorted, unique, disjoint from `from`'s content
  std::vector<Tuple> dels;  // sorted, unique, subset of `from`'s content

  bool empty() const { return adds.empty() && dels.empty(); }
  size_t size() const { return adds.size() + dels.size(); }
};

/// The delta-of-delta between two canonical overlays sharing the *same*
/// base relation (pointer identity): the edit taking `from`'s content to
/// `to`'s content, computed from the two overlays alone in O(|from.delta| +
/// |to.delta|) — the base is never scanned. Returns nullopt when the views
/// do not share a base (e.g. a consolidation in between produced a fresh
/// base), in which case no cheap edit exists and callers fall back to full
/// evaluation.
std::optional<RelationEdit> OverlayEditBetween(const RelationView& from,
                                               const RelationView& to);

/// Set algebra on views without materializing the operands: streaming merges
/// over both merge iterators. Arities must match (checked).
Relation ViewUnion(const RelationView& a, const RelationView& b);
Relation ViewIntersect(const RelationView& a, const RelationView& b);
Relation ViewDifference(const RelationView& a, const RelationView& b);
Relation ViewProduct(const RelationView& a, const RelationView& b);

}  // namespace hql

#endif  // HQL_STORAGE_VIEW_H_
