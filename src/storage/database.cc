#include "storage/database.h"

#include "common/check.h"
#include "common/strings.h"

namespace hql {

Database::Database(Schema schema) : schema_(std::move(schema)) {
  for (const auto& [name, arity] : schema_.arities()) {
    relations_.emplace(name, Relation(arity));
  }
}

Result<Relation> Database::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("unknown relation: " + name);
  }
  return it->second;
}

const Relation& Database::GetRef(const std::string& name) const {
  auto it = relations_.find(name);
  HQL_CHECK_MSG(it != relations_.end(), name.c_str());
  return it->second;
}

Status Database::Set(const std::string& name, Relation value) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("unknown relation: " + name);
  }
  if (it->second.arity() != value.arity()) {
    return Status::TypeError(StrFormat(
        "arity mismatch assigning %s: schema %zu, value %zu", name.c_str(),
        it->second.arity(), value.arity()));
  }
  it->second = std::move(value);
  return Status::OK();
}

bool Database::operator==(const Database& other) const {
  return relations_ == other.relations_;
}

uint64_t Database::Hash() const {
  uint64_t h = 0x452821E638D01377ULL;
  for (const auto& [name, rel] : relations_) {
    h = HashCombine(h, HashString(name));
    h = HashCombine(h, rel.Hash());
  }
  return h;
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& [name, rel] : relations_) {
    out += name;
    out += " = ";
    out += rel.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace hql
