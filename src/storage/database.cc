#include "storage/database.h"

#include "common/check.h"
#include "common/strings.h"
#include "storage/index.h"

namespace hql {

Database::Database(Schema schema) : schema_(std::move(schema)) {
  for (const auto& [name, arity] : schema_.arities()) {
    relations_.emplace(name, RelationView(arity));
  }
}

Result<Relation> Database::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("unknown relation: " + name);
  }
  return *it->second.Shared();
}

const Relation& Database::GetRef(const std::string& name) const {
  auto it = relations_.find(name);
  HQL_CHECK_MSG(it != relations_.end(), name.c_str());
  // Shared() consolidates overlays once into the view's flat cache, which
  // all copies of the view share — the reference outlives this call.
  return *it->second.Shared();
}

Result<RelationView> Database::GetView(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("unknown relation: " + name);
  }
  return it->second;
}

const RelationView& Database::ViewRef(const std::string& name) const {
  auto it = relations_.find(name);
  HQL_CHECK_MSG(it != relations_.end(), name.c_str());
  return it->second;
}

RelationPtr Database::GetShared(const std::string& name) const {
  auto it = relations_.find(name);
  HQL_CHECK_MSG(it != relations_.end(), name.c_str());
  return it->second.Shared();
}

Status Database::Set(const std::string& name, Relation value) {
  return SetView(name, RelationView(std::move(value)));
}

Result<std::shared_ptr<const RelationIndex>> Database::BuildIndex(
    const std::string& name, const std::vector<size_t>& columns) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("unknown relation: " + name);
  }
  if (columns.empty()) {
    return Status::InvalidArgument("index needs at least one column");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] >= it->second.arity()) {
      return Status::InvalidArgument("index column out of range for " + name);
    }
    if (i > 0 && columns[i - 1] >= columns[i]) {
      return Status::InvalidArgument("index columns must be strictly "
                                     "ascending");
    }
  }
  return it->second.base()->IndexOn(columns);
}

Status Database::SetShared(const std::string& name, RelationPtr value) {
  return SetView(name, RelationView(std::move(value)));
}

Status Database::SetView(const std::string& name, RelationView value) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("unknown relation: " + name);
  }
  if (it->second.arity() != value.arity()) {
    return Status::TypeError(StrFormat(
        "arity mismatch assigning %s: schema %zu, value %zu", name.c_str(),
        it->second.arity(), value.arity()));
  }
  it->second = std::move(value);
  return Status::OK();
}

Database Database::Consolidated() const {
  Database out(schema_);
  for (const auto& [name, view] : relations_) {
    HQL_CHECK(out.Set(name, view.Materialize()).ok());
  }
  return out;
}

bool Database::operator==(const Database& other) const {
  if (relations_.size() != other.relations_.size()) return false;
  auto a = relations_.begin();
  auto b = other.relations_.begin();
  for (; a != relations_.end(); ++a, ++b) {
    if (a->first != b->first) return false;
    if (!a->second.ContentEquals(b->second)) return false;
  }
  return true;
}

uint64_t Database::Hash() const {
  // Content hash: flat views hash as their base relation, so representation
  // differences only show up for overlays (see RelationView::Fingerprint).
  uint64_t h = 0x452821E638D01377ULL;
  for (const auto& [name, view] : relations_) {
    h = HashCombine(h, HashString(name));
    h = HashCombine(h, view.Fingerprint());
  }
  return h;
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& [name, view] : relations_) {
    out += name;
    out += " = ";
    out += view.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace hql
