#ifndef HQL_STORAGE_COLUMN_BATCH_H_
#define HQL_STORAGE_COLUMN_BATCH_H_

// Columnar image of a flat relation base: one contiguous array per column,
// plus typed fast-path arrays when every value in a column shares one
// numeric type. The batch is a read-only cache derived from the sorted
// tuple vector — row order in the batch IS the sorted relation order, so
// position i always refers to base.tuples()[i] and results reassembled
// from positions stay bit-identical to the row-at-a-time kernels.
//
// Batches are built lazily on first request (Relation::ColumnarBatch) and
// cached install-once on the relation, exactly like the secondary-index
// cache: concurrent first requests wait on one transposition and then
// share it; copies drop the cache, moves carry it, Insert/Erase reset it.
// Copy-on-write overlays never get a batch of their own — their base does,
// and the delta stays row-oriented (eval/vector_exec.h patches it in).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "storage/relation.h"
#include "storage/value.h"

namespace hql {

// How vectorized execution is routed, threaded through PlannerOptions the
// same way IndexConfig is.
enum class ColumnarMode {
  kOff,   // never vectorize (the default; row kernels only)
  kAuto,  // vectorize flat bases that clear the thresholds, else fall back
};

/// "off" or "auto".
const char* ColumnarModeName(ColumnarMode mode);

struct ColumnarConfig {
  ColumnarMode mode = ColumnarMode::kOff;
  /// Bases smaller than this stay on the row kernels (batch construction
  /// and morsel dispatch do not amortize on tiny inputs).
  size_t min_rows = 4096;
  /// Rows per morsel task.
  size_t morsel_rows = 65536;
  /// Worker threads for morsel dispatch; 0 means hardware concurrency,
  /// 1 runs morsels inline on the calling thread.
  size_t threads = 1;
  /// An overlay whose delta exceeds this fraction of its base falls back
  /// to the row kernels (patching dominates the vectorized scan).
  double max_delta_fraction = 0.25;

  bool enabled() const { return mode != ColumnarMode::kOff; }
};

enum class ColumnEncoding : uint8_t {
  kInt64,    // every value in the column is an int
  kFloat64,  // every value in the column is a double
  kGeneric,  // mixed or non-numeric: per-row Values
};

/// The transposed, optionally type-specialized image of one relation's
/// tuples. Immutable after construction; shared by pointer.
class ColumnBatch {
 public:
  /// Transposes `base`. Fail-point site "column_batch.build" fires here.
  explicit ColumnBatch(const Relation& base);

  size_t rows() const { return rows_; }
  size_t arity() const { return columns_.size(); }

  ColumnEncoding encoding(size_t c) const { return columns_[c].encoding; }

  /// Typed views; each requires the matching encoding.
  const int64_t* ints(size_t c) const { return columns_[c].i64.data(); }
  const double* doubles(size_t c) const { return columns_[c].f64.data(); }
  /// Boxed view; valid only for kGeneric columns.
  const Value* generic(size_t c) const { return columns_[c].vals.data(); }

  /// Reboxes one cell (any encoding); for residual predicates and tests.
  Value ValueAt(size_t row, size_t c) const;

 private:
  struct Column {
    ColumnEncoding encoding = ColumnEncoding::kGeneric;
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<Value> vals;
  };

  size_t rows_ = 0;
  std::vector<Column> columns_;
};

using ColumnBatchPtr = std::shared_ptr<const ColumnBatch>;

}  // namespace hql

#endif  // HQL_STORAGE_COLUMN_BATCH_H_
