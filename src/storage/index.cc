#include "storage/index.h"

#include <cstdint>
#include <limits>

#include "common/check.h"
#include "common/exec_context.h"
#include "common/failpoint.h"

namespace hql {

namespace {

// Guards lazy allocation of a Relation's index_cache_ pointer. A global
// mutex keeps the hot Relation object one pointer wider instead of one
// mutex wider; contention is bounded by index lookups, which are rare next
// to tuple work.
std::mutex& CacheAllocMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

void AddIndexTuplesSkipped(uint64_t n) {
  AmbientExecContext().AddIndexTuplesSkipped(n);
}

RelationIndex::RelationIndex(const Relation& base,
                             std::vector<size_t> columns)
    : columns_(std::move(columns)) {
  HQL_FAIL_POINT(kFailPointIndexBuild);
  HQL_CHECK_MSG(!columns_.empty(), "index needs at least one column");
  for (size_t i = 0; i < columns_.size(); ++i) {
    HQL_CHECK_MSG(columns_[i] < base.arity(), "index column out of range");
    if (i > 0) {
      HQL_CHECK_MSG(columns_[i - 1] < columns_[i],
                    "index columns must be strictly ascending");
    }
  }
  const std::vector<Tuple>& tuples = base.tuples();
  HQL_CHECK(tuples.size() <=
            static_cast<size_t>(std::numeric_limits<uint32_t>::max()));
  // Group positions by key, then flatten into one contiguous array of
  // per-key runs. Positions within a run are ascending because the scan
  // visits the sorted base in order.
  std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash> groups;
  groups.reserve(tuples.size());
  for (uint32_t i = 0; i < tuples.size(); ++i) {
    groups[KeyOf(tuples[i])].push_back(i);
  }
  positions_.reserve(tuples.size());
  buckets_.reserve(groups.size());
  for (auto& [key, run] : groups) {
    buckets_.emplace(key,
                     std::make_pair(static_cast<uint32_t>(positions_.size()),
                                    static_cast<uint32_t>(run.size())));
    positions_.insert(positions_.end(), run.begin(), run.end());
  }
}

RelationIndex::PosSpan RelationIndex::Probe(const Tuple& key) const {
  AmbientExecContext().AddIndexProbe();
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return PosSpan{};
  return PosSpan{positions_.data() + it->second.first, it->second.second};
}

Tuple RelationIndex::KeyOf(const Tuple& t) const {
  Tuple key;
  key.reserve(columns_.size());
  for (size_t c : columns_) key.push_back(t[c]);
  return key;
}

struct Relation::IndexCache {
  std::mutex mu;
  std::map<std::vector<size_t>, RelationIndexPtr> by_columns;
};

std::shared_ptr<const RelationIndex> Relation::IndexOn(
    const std::vector<size_t>& columns) const {
  std::shared_ptr<IndexCache> cache;
  {
    std::lock_guard<std::mutex> lock(CacheAllocMutex());
    if (index_cache_ == nullptr) index_cache_ = std::make_shared<IndexCache>();
    cache = index_cache_;
  }
  // Build under the per-relation lock: concurrent requests for the same
  // (base, columns) wait on the first build and then share it, so a family
  // of alternatives racing here still funds exactly one construction.
  std::lock_guard<std::mutex> lock(cache->mu);
  auto it = cache->by_columns.find(columns);
  if (it != cache->by_columns.end()) {
    AmbientExecContext().AddIndexShared();
    return it->second;
  }
  auto index = std::make_shared<const RelationIndex>(*this, columns);
  cache->by_columns.emplace(columns, index);
  AmbientExecContext().AddIndexBuilt();
  return index;
}

std::shared_ptr<const RelationIndex> Relation::ExistingIndex(
    const std::vector<size_t>& columns) const {
  std::shared_ptr<IndexCache> cache;
  {
    std::lock_guard<std::mutex> lock(CacheAllocMutex());
    cache = index_cache_;
  }
  if (cache == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(cache->mu);
  auto it = cache->by_columns.find(columns);
  if (it == cache->by_columns.end()) return nullptr;
  AmbientExecContext().AddIndexShared();
  return it->second;
}

const char* IndexModeName(IndexMode mode) {
  switch (mode) {
    case IndexMode::kOff:
      return "off";
    case IndexMode::kManual:
      return "manual";
    case IndexMode::kAdvisor:
      return "advisor";
  }
  return "?";
}

RelationIndexPtr IndexAdvisor::Advise(const RelationPtr& base,
                                      const std::vector<size_t>& columns) {
  if (base == nullptr) return nullptr;
  bool build = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++accesses_;
    size_t& count = counts_[{static_cast<const void*>(base.get()), columns}];
    ++count;
    if (count == threshold_) {
      build = true;
      ++builds_;
    } else {
      build = count > threshold_;
    }
  }
  // IndexOn outside the advisor lock: the build may be slow, and the
  // relation cache's own locking already serializes duplicate builds.
  if (build) return base->IndexOn(columns);
  return base->ExistingIndex(columns);
}

IndexAdvisor::Stats IndexAdvisor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{accesses_, builds_};
}

}  // namespace hql
