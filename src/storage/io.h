#ifndef HQL_STORAGE_IO_H_
#define HQL_STORAGE_IO_H_

// Plain-text serialization of database states. The format is line based
// and human editable:
//
//   # optional comments
//   relation emp 2
//   (1, 'ann')
//   (2, 'bob')
//   end
//   relation dept 2
//   end
//
// Tuple lines reuse the literal-tuple syntax of the query language, so
// anything `TupleToString` prints reads back exactly.

#include <string>

#include "common/result.h"
#include "storage/database.h"

namespace hql {

/// Serializes `db` (schema and contents) to text.
std::string DatabaseToText(const Database& db);

/// Parses a database (schema inferred from the `relation` headers).
Result<Database> DatabaseFromText(const std::string& text);

/// Convenience file wrappers.
Status SaveDatabase(const Database& db, const std::string& path);
Result<Database> LoadDatabase(const std::string& path);

}  // namespace hql

#endif  // HQL_STORAGE_IO_H_
