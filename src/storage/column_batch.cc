#include "storage/column_batch.h"

#include <mutex>

#include "common/exec_context.h"
#include "common/failpoint.h"

namespace hql {

namespace {

// Guards lazy allocation of a Relation's batch_cache_ pointer; same
// rationale as the index cache's global allocation mutex (index.cc).
std::mutex& BatchCacheAllocMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

const char* ColumnarModeName(ColumnarMode mode) {
  switch (mode) {
    case ColumnarMode::kOff:
      return "off";
    case ColumnarMode::kAuto:
      return "auto";
  }
  return "?";
}

ColumnBatch::ColumnBatch(const Relation& base) {
  HQL_FAIL_POINT(kFailPointColumnBatchBuild);
  rows_ = base.size();
  columns_.resize(base.arity());
  const std::vector<Tuple>& tuples = base.tuples();
  for (size_t c = 0; c < columns_.size(); ++c) {
    Column& col = columns_[c];
    // One type-discovery pass: a column is typed iff every value shares
    // one numeric type. The common case (machine-generated int keys) hits
    // the first branch for the whole column.
    bool all_int = true;
    bool all_double = true;
    for (const Tuple& t : tuples) {
      const ValueType vt = t[c].type();
      all_int = all_int && vt == ValueType::kInt;
      all_double = all_double && vt == ValueType::kDouble;
      if (!all_int && !all_double) break;
    }
    if (rows_ > 0 && all_int) {
      col.encoding = ColumnEncoding::kInt64;
      col.i64.reserve(rows_);
      for (const Tuple& t : tuples) col.i64.push_back(t[c].AsInt());
    } else if (rows_ > 0 && all_double) {
      col.encoding = ColumnEncoding::kFloat64;
      col.f64.reserve(rows_);
      for (const Tuple& t : tuples) col.f64.push_back(t[c].AsDouble());
    } else {
      col.encoding = ColumnEncoding::kGeneric;
      col.vals.reserve(rows_);
      for (const Tuple& t : tuples) col.vals.push_back(t[c]);
    }
  }
}

Value ColumnBatch::ValueAt(size_t row, size_t c) const {
  const Column& col = columns_[c];
  switch (col.encoding) {
    case ColumnEncoding::kInt64:
      return Value::Int(col.i64[row]);
    case ColumnEncoding::kFloat64:
      return Value::Double(col.f64[row]);
    case ColumnEncoding::kGeneric:
      return col.vals[row];
  }
  return Value::Nul();
}

struct Relation::BatchCache {
  std::mutex mu;
  ColumnBatchPtr batch;
};

std::shared_ptr<const ColumnBatch> Relation::ColumnarBatch() const {
  std::shared_ptr<BatchCache> cache;
  {
    std::lock_guard<std::mutex> lock(BatchCacheAllocMutex());
    if (batch_cache_ == nullptr) batch_cache_ = std::make_shared<BatchCache>();
    cache = batch_cache_;
  }
  // Build under the per-relation lock: concurrent first requests wait on
  // one transposition and then share it.
  std::lock_guard<std::mutex> lock(cache->mu);
  if (cache->batch != nullptr) {
    AmbientExecContext().AddColumnarBatchReused();
    return cache->batch;
  }
  cache->batch = std::make_shared<const ColumnBatch>(*this);
  AmbientExecContext().AddColumnarBatchBuilt();
  return cache->batch;
}

std::shared_ptr<const ColumnBatch> Relation::ExistingColumnarBatch() const {
  std::shared_ptr<BatchCache> cache;
  {
    std::lock_guard<std::mutex> lock(BatchCacheAllocMutex());
    cache = batch_cache_;
  }
  if (cache == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(cache->mu);
  if (cache->batch != nullptr) AmbientExecContext().AddColumnarBatchReused();
  return cache->batch;
}

}  // namespace hql
