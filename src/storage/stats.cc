#include "storage/stats.h"

namespace hql {

StatsCatalog StatsCatalog::FromDatabase(const Database& db) {
  StatsCatalog catalog;
  for (const auto& [name, rel] : db.relations()) {
    catalog.SetViewStats(
        name, RelationStats{rel.size(), rel.arity(), rel.base()->size(),
                            rel.delta_size()});
  }
  return catalog;
}

void StatsCatalog::SetCardinality(const std::string& name, uint64_t card,
                                  size_t arity) {
  stats_[name] = RelationStats{card, arity, card, 0};
}

void StatsCatalog::SetViewStats(const std::string& name,
                                RelationStats stats) {
  stats_[name] = stats;
}

uint64_t StatsCatalog::CardinalityOf(const std::string& name,
                                     uint64_t fallback) const {
  auto it = stats_.find(name);
  return it == stats_.end() ? fallback : it->second.cardinality;
}

uint64_t StatsCatalog::DeltaSizeOf(const std::string& name) const {
  auto it = stats_.find(name);
  return it == stats_.end() ? 0 : it->second.delta_size;
}

uint64_t StatsCatalog::LowerBoundOf(const std::string& name,
                                    uint64_t fallback) const {
  auto it = stats_.find(name);
  if (it == stats_.end()) return fallback;
  const RelationStats& s = it->second;
  return s.base_cardinality > s.delta_size
             ? s.base_cardinality - s.delta_size
             : 0;
}

uint64_t StatsCatalog::UpperBoundOf(const std::string& name,
                                    uint64_t fallback) const {
  auto it = stats_.find(name);
  if (it == stats_.end()) return fallback;
  const RelationStats& s = it->second;
  return s.base_cardinality + s.delta_size;
}

}  // namespace hql
