#include "storage/stats.h"

#include <unordered_set>

#include "storage/tuple.h"

namespace hql {

namespace {

// Distinct values per column of the view's base, one pass per column.
std::vector<uint64_t> CollectDistinct(const Relation& base) {
  std::vector<uint64_t> counts(base.arity(), 0);
  for (size_t col = 0; col < base.arity(); ++col) {
    std::unordered_set<Value, ValueHash> seen;
    for (const Tuple& t : base.tuples()) seen.insert(t[col]);
    counts[col] = seen.size();
  }
  return counts;
}

}  // namespace

StatsCatalog StatsCatalog::FromDatabase(const Database& db,
                                        bool collect_distinct) {
  StatsCatalog catalog;
  for (const auto& [name, rel] : db.relations()) {
    RelationStats stats{rel.size(), rel.arity(), rel.base()->size(),
                        rel.delta_size()};
    if (collect_distinct) {
      stats.distinct_counts = CollectDistinct(*rel.base());
    }
    catalog.SetViewStats(name, std::move(stats));
  }
  return catalog;
}

void StatsCatalog::SetCardinality(const std::string& name, uint64_t card,
                                  size_t arity) {
  stats_[name] = RelationStats{card, arity, card, 0};
}

void StatsCatalog::SetViewStats(const std::string& name,
                                RelationStats stats) {
  stats_[name] = stats;
}

uint64_t StatsCatalog::CardinalityOf(const std::string& name,
                                     uint64_t fallback) const {
  auto it = stats_.find(name);
  return it == stats_.end() ? fallback : it->second.cardinality;
}

uint64_t StatsCatalog::DeltaSizeOf(const std::string& name) const {
  auto it = stats_.find(name);
  return it == stats_.end() ? 0 : it->second.delta_size;
}

void StatsCatalog::SetDistinctCounts(const std::string& name,
                                     std::vector<uint64_t> counts) {
  auto it = stats_.find(name);
  if (it != stats_.end()) it->second.distinct_counts = std::move(counts);
}

uint64_t StatsCatalog::DistinctCountOf(const std::string& name, size_t column,
                                       uint64_t fallback) const {
  auto it = stats_.find(name);
  if (it == stats_.end() || column >= it->second.distinct_counts.size()) {
    return fallback;
  }
  return it->second.distinct_counts[column];
}

uint64_t StatsCatalog::LowerBoundOf(const std::string& name,
                                    uint64_t fallback) const {
  auto it = stats_.find(name);
  if (it == stats_.end()) return fallback;
  const RelationStats& s = it->second;
  return s.base_cardinality > s.delta_size
             ? s.base_cardinality - s.delta_size
             : 0;
}

uint64_t StatsCatalog::UpperBoundOf(const std::string& name,
                                    uint64_t fallback) const {
  auto it = stats_.find(name);
  if (it == stats_.end()) return fallback;
  const RelationStats& s = it->second;
  return s.base_cardinality + s.delta_size;
}

}  // namespace hql
