#include "storage/stats.h"

namespace hql {

StatsCatalog StatsCatalog::FromDatabase(const Database& db) {
  StatsCatalog catalog;
  for (const auto& [name, rel] : db.relations()) {
    catalog.SetCardinality(name, rel.size(), rel.arity());
  }
  return catalog;
}

void StatsCatalog::SetCardinality(const std::string& name, uint64_t card,
                                  size_t arity) {
  stats_[name] = RelationStats{card, arity};
}

uint64_t StatsCatalog::CardinalityOf(const std::string& name,
                                     uint64_t fallback) const {
  auto it = stats_.find(name);
  return it == stats_.end() ? fallback : it->second.cardinality;
}

}  // namespace hql
