#include "storage/relation.h"

#include <algorithm>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/strings.h"

namespace hql {

Relation Relation::FromTuples(size_t arity, std::vector<Tuple> tuples) {
  HQL_FAIL_POINT(kFailPointTupleAppend);
  for (const Tuple& t : tuples) {
    HQL_CHECK_MSG(t.size() == arity, "tuple arity mismatch");
  }
  std::sort(tuples.begin(), tuples.end(), TupleLess());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  Relation r(arity);
  r.tuples_ = std::move(tuples);
  return r;
}

Relation Relation::FromSortedUnique(size_t arity, std::vector<Tuple> tuples) {
  HQL_FAIL_POINT(kFailPointTupleAppend);
#ifndef NDEBUG
  for (size_t i = 0; i < tuples.size(); ++i) {
    HQL_CHECK(tuples[i].size() == arity);
    if (i > 0) HQL_CHECK(CompareTuples(tuples[i - 1], tuples[i]) < 0);
  }
#endif
  Relation r(arity);
  r.tuples_ = std::move(tuples);
  return r;
}

bool Relation::Contains(const Tuple& t) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), t, TupleLess());
}

void Relation::Insert(const Tuple& t) {
  HQL_CHECK_MSG(t.size() == arity_, "tuple arity mismatch");
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t, TupleLess());
  if (it != tuples_.end() && CompareTuples(*it, t) == 0) return;
  tuples_.insert(it, t);
  cached_hash_.store(0, std::memory_order_relaxed);
  index_cache_.reset();
  batch_cache_.reset();
}

void Relation::Erase(const Tuple& t) {
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t, TupleLess());
  if (it != tuples_.end() && CompareTuples(*it, t) == 0) {
    tuples_.erase(it);
    cached_hash_.store(0, std::memory_order_relaxed);
    index_cache_.reset();
    batch_cache_.reset();
  }
}

Relation Relation::ApplyTuples(const std::vector<Tuple>& adds,
                               const std::vector<Tuple>& dels) const {
#ifndef NDEBUG
  for (size_t i = 0; i < adds.size(); ++i) {
    HQL_CHECK(adds[i].size() == arity_);
    if (i > 0) HQL_CHECK(CompareTuples(adds[i - 1], adds[i]) < 0);
  }
  for (size_t i = 0; i < dels.size(); ++i) {
    HQL_CHECK(dels[i].size() == arity_);
    if (i > 0) HQL_CHECK(CompareTuples(dels[i - 1], dels[i]) < 0);
  }
  {
    std::vector<Tuple> both;
    std::set_intersection(adds.begin(), adds.end(), dels.begin(), dels.end(),
                          std::back_inserter(both), TupleLess());
    HQL_CHECK_MSG(both.empty(), "add/del sets must stay disjoint");
  }
#endif
  std::vector<Tuple> out;
  out.reserve(tuples_.size() + adds.size());
  size_t bi = 0, ai = 0, di = 0;
  while (bi < tuples_.size() || ai < adds.size()) {
    // Drop base tuples matched by the deletion cursor.
    if (bi < tuples_.size() && di < dels.size()) {
      int cmp = CompareTuples(dels[di], tuples_[bi]);
      if (cmp < 0) {
        ++di;
        continue;
      }
      if (cmp == 0) {
        ++bi;
        ++di;
        continue;
      }
    }
    if (bi >= tuples_.size()) {
      out.push_back(adds[ai++]);
    } else if (ai >= adds.size()) {
      out.push_back(tuples_[bi++]);
    } else {
      int cmp = CompareTuples(tuples_[bi], adds[ai]);
      if (cmp < 0) {
        out.push_back(tuples_[bi++]);
      } else if (cmp > 0) {
        out.push_back(adds[ai++]);
      } else {
        out.push_back(tuples_[bi++]);
        ++ai;  // add already present: keep one copy
      }
    }
  }
  return FromSortedUnique(arity_, std::move(out));
}

Relation Relation::UnionWith(const Relation& other) const {
  HQL_CHECK_MSG(arity_ == other.arity_, "union arity mismatch");
  std::vector<Tuple> out;
  out.reserve(tuples_.size() + other.tuples_.size());
  std::set_union(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                 other.tuples_.end(), std::back_inserter(out), TupleLess());
  return FromSortedUnique(arity_, std::move(out));
}

Relation Relation::IntersectWith(const Relation& other) const {
  HQL_CHECK_MSG(arity_ == other.arity_, "intersect arity mismatch");
  std::vector<Tuple> out;
  std::set_intersection(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                        other.tuples_.end(), std::back_inserter(out),
                        TupleLess());
  return FromSortedUnique(arity_, std::move(out));
}

Relation Relation::DifferenceWith(const Relation& other) const {
  HQL_CHECK_MSG(arity_ == other.arity_, "difference arity mismatch");
  std::vector<Tuple> out;
  std::set_difference(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                      other.tuples_.end(), std::back_inserter(out),
                      TupleLess());
  return FromSortedUnique(arity_, std::move(out));
}

Relation Relation::ProductWith(const Relation& other) const {
  std::vector<Tuple> out;
  out.reserve(tuples_.size() * other.tuples_.size());
  // Lexicographic order of the concatenation follows from iterating both
  // sorted inputs in order, so the result is already sorted and unique.
  for (const Tuple& a : tuples_) {
    for (const Tuple& b : other.tuples_) {
      out.push_back(ConcatTuples(a, b));
    }
  }
  return FromSortedUnique(arity_ + other.arity_, std::move(out));
}

bool Relation::operator==(const Relation& other) const {
  return arity_ == other.arity_ && tuples_ == other.tuples_;
}

uint64_t Relation::Hash() const {
  uint64_t cached = cached_hash_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  uint64_t h = HashCombine(0x243F6A8885A308D3ULL, arity_);
  for (const Tuple& t : tuples_) h = HashCombine(h, HashTuple(t));
  if (h == 0) h = 1;
  cached_hash_.store(h, std::memory_order_relaxed);
  return h;
}

std::string Relation::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(tuples_.size());
  for (const Tuple& t : tuples_) parts.push_back(TupleToString(t));
  return "{" + Join(parts, ", ") + "}";
}

}  // namespace hql
