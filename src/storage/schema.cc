#include "storage/schema.h"

namespace hql {

Status Schema::AddRelation(const std::string& name, size_t arity) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (arity == 0) {
    return Status::InvalidArgument("relation arity must be positive: " + name);
  }
  auto [it, inserted] = arities_.emplace(name, arity);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("relation already declared: " + name);
  }
  return Status::OK();
}

bool Schema::HasRelation(const std::string& name) const {
  return arities_.count(name) > 0;
}

Result<size_t> Schema::ArityOf(const std::string& name) const {
  auto it = arities_.find(name);
  if (it == arities_.end()) {
    return Status::NotFound("unknown relation: " + name);
  }
  return it->second;
}

std::vector<std::string> Schema::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(arities_.size());
  for (const auto& [name, arity] : arities_) {
    (void)arity;
    names.push_back(name);
  }
  return names;
}

}  // namespace hql
