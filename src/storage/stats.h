#ifndef HQL_STORAGE_STATS_H_
#define HQL_STORAGE_STATS_H_

// Per-relation statistics used by the cost model (Section 6 of the paper
// leaves cost estimation as future work; we provide the standard
// cardinality-based model so the hybrid planner of Examples 2.1(c)/2.2(b)
// can be driven by data rather than hand annotations).

#include <cstdint>
#include <map>
#include <string>

#include "storage/database.h"

namespace hql {

struct RelationStats {
  uint64_t cardinality = 0;
  size_t arity = 0;
};

class StatsCatalog {
 public:
  StatsCatalog() = default;

  /// Collects exact cardinalities from a database state.
  static StatsCatalog FromDatabase(const Database& db);

  void SetCardinality(const std::string& name, uint64_t card, size_t arity);

  /// Cardinality of `name`, or `fallback` if unknown.
  uint64_t CardinalityOf(const std::string& name, uint64_t fallback) const;

  bool Has(const std::string& name) const { return stats_.count(name) > 0; }

  const std::map<std::string, RelationStats>& stats() const { return stats_; }

 private:
  std::map<std::string, RelationStats> stats_;
};

}  // namespace hql

#endif  // HQL_STORAGE_STATS_H_
