#ifndef HQL_STORAGE_STATS_H_
#define HQL_STORAGE_STATS_H_

// Per-relation statistics used by the cost model (Section 6 of the paper
// leaves cost estimation as future work; we provide the standard
// cardinality-based model so the hybrid planner of Examples 2.1(c)/2.2(b)
// can be driven by data rather than hand annotations).
//
// The catalog is view-aware: for an overlay-backed relation it records the
// shared base cardinality and the overlay size separately, so consumers can
// reason about the |base| ± |delta| band a hypothetical relation lives in
// without consolidating it.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "storage/database.h"

namespace hql {

struct RelationStats {
  uint64_t cardinality = 0;       // exact: |base| - |dels| + |adds|
  size_t arity = 0;
  uint64_t base_cardinality = 0;  // |base| of the backing view
  uint64_t delta_size = 0;        // |adds| + |dels| of the overlay
  // Per-column distinct counts over the *base* relation (empty unless
  // collected — FromDatabase(db, /*collect_distinct=*/true) or
  // SetDistinctCounts). Drives equality selectivity and the probe-vs-scan
  // cost comparison.
  std::vector<uint64_t> distinct_counts;
};

class StatsCatalog {
 public:
  StatsCatalog() = default;

  /// Collects exact cardinalities from a database state. Overlay-backed
  /// relations report their base/delta split; flat relations have
  /// base_cardinality == cardinality and delta_size == 0. Per-column
  /// distinct counts cost a pass over every base relation, so they are
  /// opt-in: the hybrid executor's per-query catalog stays O(#relations).
  static StatsCatalog FromDatabase(const Database& db,
                                   bool collect_distinct = false);

  void SetCardinality(const std::string& name, uint64_t card, size_t arity);
  void SetViewStats(const std::string& name, RelationStats stats);

  /// Cardinality of `name`, or `fallback` if unknown.
  uint64_t CardinalityOf(const std::string& name, uint64_t fallback) const;

  /// Overlay size of `name` (0 if unknown or flat).
  uint64_t DeltaSizeOf(const std::string& name) const;

  /// Records per-column distinct counts for `name` (no-op if unknown).
  void SetDistinctCounts(const std::string& name,
                         std::vector<uint64_t> counts);

  /// Distinct values in column `column` of `name`'s base, or `fallback`
  /// when not collected / out of range.
  uint64_t DistinctCountOf(const std::string& name, size_t column,
                           uint64_t fallback) const;

  /// Cardinality bounds derived from the base/delta split: any state whose
  /// overlay rewrites at most the recorded delta lies within
  /// [base - delta, base + delta]. `fallback` is used for unknown names.
  uint64_t LowerBoundOf(const std::string& name, uint64_t fallback) const;
  uint64_t UpperBoundOf(const std::string& name, uint64_t fallback) const;

  bool Has(const std::string& name) const { return stats_.count(name) > 0; }

  const std::map<std::string, RelationStats>& stats() const { return stats_; }

 private:
  std::map<std::string, RelationStats> stats_;
};

}  // namespace hql

#endif  // HQL_STORAGE_STATS_H_
