#ifndef HQL_STORAGE_RELATION_H_
#define HQL_STORAGE_RELATION_H_

// A relation is a set of tuples of a fixed arity, stored as a sorted,
// duplicate-free vector. The sorted representation gives deterministic
// iteration, O(log n) membership, linear-time set algebra, and feeds the
// sort-merge join-when operator of Section 5.5 directly.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "storage/tuple.h"

namespace hql {

class Relation {
 public:
  /// An empty relation of the given arity.
  explicit Relation(size_t arity) : arity_(arity) {}

  // The cached hash makes the class non-trivially copyable: copies and
  // moves carry the cache along (it depends only on the tuple contents).
  Relation(const Relation& other)
      : arity_(other.arity_),
        tuples_(other.tuples_),
        cached_hash_(other.cached_hash_.load(std::memory_order_relaxed)) {}
  Relation(Relation&& other) noexcept
      : arity_(other.arity_),
        tuples_(std::move(other.tuples_)),
        cached_hash_(other.cached_hash_.load(std::memory_order_relaxed)) {}
  Relation& operator=(const Relation& other) {
    if (this != &other) {
      arity_ = other.arity_;
      tuples_ = other.tuples_;
      cached_hash_.store(other.cached_hash_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    }
    return *this;
  }
  Relation& operator=(Relation&& other) noexcept {
    arity_ = other.arity_;
    tuples_ = std::move(other.tuples_);
    cached_hash_.store(other.cached_hash_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }

  /// Builds from arbitrary tuples (sorted and deduplicated). All tuples must
  /// have the given arity.
  static Relation FromTuples(size_t arity, std::vector<Tuple> tuples);

  /// Builds from tuples already sorted and duplicate-free (checked in debug).
  static Relation FromSortedUnique(size_t arity, std::vector<Tuple> tuples);

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>::const_iterator begin() const { return tuples_.begin(); }
  std::vector<Tuple>::const_iterator end() const { return tuples_.end(); }

  bool Contains(const Tuple& t) const;

  /// Inserts one tuple, keeping the sorted invariant. O(n); intended for
  /// construction and small updates, bulk paths should use FromTuples.
  void Insert(const Tuple& t);

  /// Removes one tuple if present. O(n).
  void Erase(const Tuple& t);

  /// Applies a batch delta in one sorted three-way merge:
  /// (this ∖ dels) ∪ adds. Both inputs must be sorted and duplicate-free,
  /// and mutually disjoint (checked in debug builds) — the canonical-overlay
  /// contract of RelationView. O(n + |adds| + |dels|), replacing the
  /// per-tuple Insert/Erase loops (O(n) each) in update application.
  Relation ApplyTuples(const std::vector<Tuple>& adds,
                       const std::vector<Tuple>& dels) const;

  /// Set algebra. Arities must match (checked).
  Relation UnionWith(const Relation& other) const;
  Relation IntersectWith(const Relation& other) const;
  Relation DifferenceWith(const Relation& other) const;

  /// Cartesian product (arity = sum of arities).
  Relation ProductWith(const Relation& other) const;

  bool operator==(const Relation& other) const;
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// Content hash, O(data) on first call and O(1) afterwards: the result is
  /// cached (relations are semantically immutable between mutations; Insert
  /// and Erase invalidate the cache). Safe to call concurrently.
  uint64_t Hash() const;

  /// "{(1, 'a'), (2, 'b')}".
  std::string ToString() const;

 private:
  size_t arity_;
  std::vector<Tuple> tuples_;  // sorted, unique

  // 0 = not yet computed (a computed hash of 0 is stored as 1; the single
  // collision costs one recomputation, never a wrong answer).
  mutable std::atomic<uint64_t> cached_hash_{0};
};

}  // namespace hql

#endif  // HQL_STORAGE_RELATION_H_
