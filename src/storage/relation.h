#ifndef HQL_STORAGE_RELATION_H_
#define HQL_STORAGE_RELATION_H_

// A relation is a set of tuples of a fixed arity, stored as a sorted,
// duplicate-free vector. The sorted representation gives deterministic
// iteration, O(log n) membership, linear-time set algebra, and feeds the
// sort-merge join-when operator of Section 5.5 directly.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/tuple.h"

namespace hql {

class ColumnBatch;
class RelationIndex;

class Relation {
 public:
  /// An empty relation of the given arity.
  explicit Relation(size_t arity) : arity_(arity) {}

  // The cached hash makes the class non-trivially copyable: copies and
  // moves carry the cache along (it depends only on the tuple contents).
  // The secondary-index cache rides only on moves: a copy is a fresh
  // mutable relation, and shared bases are passed around as
  // shared_ptr<const Relation> (never copied), so copies dropping indexes
  // costs nothing on the sharing path while keeping copy-then-mutate
  // callers trivially safe.
  Relation(const Relation& other)
      : arity_(other.arity_),
        tuples_(other.tuples_),
        cached_hash_(other.cached_hash_.load(std::memory_order_relaxed)) {}
  Relation(Relation&& other) noexcept
      : arity_(other.arity_),
        tuples_(std::move(other.tuples_)),
        cached_hash_(other.cached_hash_.load(std::memory_order_relaxed)),
        index_cache_(std::move(other.index_cache_)),
        batch_cache_(std::move(other.batch_cache_)) {}
  Relation& operator=(const Relation& other) {
    if (this != &other) {
      arity_ = other.arity_;
      tuples_ = other.tuples_;
      cached_hash_.store(other.cached_hash_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      index_cache_.reset();
      batch_cache_.reset();
    }
    return *this;
  }
  Relation& operator=(Relation&& other) noexcept {
    arity_ = other.arity_;
    tuples_ = std::move(other.tuples_);
    cached_hash_.store(other.cached_hash_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    index_cache_ = std::move(other.index_cache_);
    batch_cache_ = std::move(other.batch_cache_);
    return *this;
  }

  /// Builds from arbitrary tuples (sorted and deduplicated). All tuples must
  /// have the given arity.
  static Relation FromTuples(size_t arity, std::vector<Tuple> tuples);

  /// Builds from tuples already sorted and duplicate-free (checked in debug).
  static Relation FromSortedUnique(size_t arity, std::vector<Tuple> tuples);

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>::const_iterator begin() const { return tuples_.begin(); }
  std::vector<Tuple>::const_iterator end() const { return tuples_.end(); }

  bool Contains(const Tuple& t) const;

  /// Inserts one tuple, keeping the sorted invariant. O(n); intended for
  /// construction and small updates, bulk paths should use FromTuples.
  void Insert(const Tuple& t);

  /// Removes one tuple if present. O(n).
  void Erase(const Tuple& t);

  /// Applies a batch delta in one sorted three-way merge:
  /// (this ∖ dels) ∪ adds. Both inputs must be sorted and duplicate-free,
  /// and mutually disjoint (checked in debug builds) — the canonical-overlay
  /// contract of RelationView. O(n + |adds| + |dels|), replacing the
  /// per-tuple Insert/Erase loops (O(n) each) in update application.
  Relation ApplyTuples(const std::vector<Tuple>& adds,
                       const std::vector<Tuple>& dels) const;

  /// Set algebra. Arities must match (checked).
  Relation UnionWith(const Relation& other) const;
  Relation IntersectWith(const Relation& other) const;
  Relation DifferenceWith(const Relation& other) const;

  /// Cartesian product (arity = sum of arities).
  Relation ProductWith(const Relation& other) const;

  bool operator==(const Relation& other) const;
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// Content hash, O(data) on first call and O(1) afterwards: the result is
  /// cached (relations are semantically immutable between mutations; Insert
  /// and Erase invalidate the cache). Safe to call concurrently.
  uint64_t Hash() const;

  /// "{(1, 'a'), (2, 'b')}".
  std::string ToString() const;

  /// The hash index over `columns` (non-empty, strictly ascending, within
  /// the arity), built on first request and cached on this relation —
  /// install-once and thread-safe, like the view layer's flat cache:
  /// concurrent first requests wait on one build and then share it. All
  /// copy-on-write descendants holding this base by shared_ptr see the
  /// same cache. Defined in storage/index.cc.
  std::shared_ptr<const RelationIndex> IndexOn(
      const std::vector<size_t>& columns) const;

  /// The cached index over `columns` if one was built, else null. Never
  /// builds.
  std::shared_ptr<const RelationIndex> ExistingIndex(
      const std::vector<size_t>& columns) const;

  /// The columnar batch of this relation's tuples (per-column contiguous
  /// arrays), built on first request and cached install-once exactly like
  /// IndexOn: concurrent first requests wait on one transposition and then
  /// share it. Defined in storage/column_batch.cc.
  std::shared_ptr<const ColumnBatch> ColumnarBatch() const;

  /// The cached batch if one was built, else null. Never builds.
  std::shared_ptr<const ColumnBatch> ExistingColumnarBatch() const;

 private:
  struct IndexCache;
  struct BatchCache;

  size_t arity_;
  std::vector<Tuple> tuples_;  // sorted, unique

  // 0 = not yet computed (a computed hash of 0 is stored as 1; the single
  // collision costs one recomputation, never a wrong answer).
  mutable std::atomic<uint64_t> cached_hash_{0};

  // Lazily allocated map of column set -> shared index; positions stored in
  // an index point into tuples_, so Insert/Erase drop the cache. Allocated
  // and accessed only in storage/index.cc (under locks); mutators may
  // reset it directly because mutation already requires exclusive access.
  mutable std::shared_ptr<IndexCache> index_cache_;

  // Lazily allocated columnar image of tuples_; same lifecycle as
  // index_cache_ (dropped on copy, carried on move, reset by mutators).
  // Allocated and accessed only in storage/column_batch.cc.
  mutable std::shared_ptr<BatchCache> batch_cache_;
};

}  // namespace hql

#endif  // HQL_STORAGE_RELATION_H_
