#ifndef HQL_STORAGE_RELATION_H_
#define HQL_STORAGE_RELATION_H_

// A relation is a set of tuples of a fixed arity, stored as a sorted,
// duplicate-free vector. The sorted representation gives deterministic
// iteration, O(log n) membership, linear-time set algebra, and feeds the
// sort-merge join-when operator of Section 5.5 directly.

#include <cstdint>
#include <string>
#include <vector>

#include "storage/tuple.h"

namespace hql {

class Relation {
 public:
  /// An empty relation of the given arity.
  explicit Relation(size_t arity) : arity_(arity) {}

  /// Builds from arbitrary tuples (sorted and deduplicated). All tuples must
  /// have the given arity.
  static Relation FromTuples(size_t arity, std::vector<Tuple> tuples);

  /// Builds from tuples already sorted and duplicate-free (checked in debug).
  static Relation FromSortedUnique(size_t arity, std::vector<Tuple> tuples);

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>::const_iterator begin() const { return tuples_.begin(); }
  std::vector<Tuple>::const_iterator end() const { return tuples_.end(); }

  bool Contains(const Tuple& t) const;

  /// Inserts one tuple, keeping the sorted invariant. O(n); intended for
  /// construction and small updates, bulk paths should use FromTuples.
  void Insert(const Tuple& t);

  /// Removes one tuple if present. O(n).
  void Erase(const Tuple& t);

  /// Set algebra. Arities must match (checked).
  Relation UnionWith(const Relation& other) const;
  Relation IntersectWith(const Relation& other) const;
  Relation DifferenceWith(const Relation& other) const;

  /// Cartesian product (arity = sum of arities).
  Relation ProductWith(const Relation& other) const;

  bool operator==(const Relation& other) const;
  bool operator!=(const Relation& other) const { return !(*this == other); }

  uint64_t Hash() const;

  /// "{(1, 'a'), (2, 'b')}".
  std::string ToString() const;

 private:
  size_t arity_;
  std::vector<Tuple> tuples_;  // sorted, unique
};

}  // namespace hql

#endif  // HQL_STORAGE_RELATION_H_
