#include "eval/filter3.h"

#include <map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/governor.h"
#include "eval/delta_ops.h"
#include "hql/enf.h"
#include "hql/ra_rewrite.h"

namespace hql {

namespace {

Result<RelationView> F3(const CollapsedPtr& node, const Database& db,
                        const DeltaValue& env, const IndexConfig& config,
                        const ColumnarConfig& columnar) {
  HQL_RETURN_IF_ERROR(GovernorCheck());
  if (node->kind == CollapsedKind::kBlock) {
    std::map<std::string, RelationView> temps;
    for (size_t i = 0; i < node->holes.size(); ++i) {
      HQL_ASSIGN_OR_RETURN(RelationView hole,
                           F3(node->holes[i], db, env, config, columnar));
      temps.emplace(PlaceholderName(i), std::move(hole));
    }
    return EvalFilterDView(node->block, db, env, &temps, config, columnar);
  }
  // kWhen.
  if (!node->state_is_update) {
    // Explicit substitution: build the *precise* delta of Section 5.5 that
    // captures the substitution's xsub-value in the current hypothetical
    // state — R_D = base - V, R_I = V - base — and smash it on. Parallel
    // assignment: all binding values evaluate under the incoming delta.
    std::vector<std::pair<std::string, RelationView>> values;
    values.reserve(node->bindings.size());
    for (const CollapsedBinding& b : node->bindings) {
      HQL_ASSIGN_OR_RETURN(RelationView v,
                           F3(b.value, db, env, config, columnar));
      values.emplace_back(b.rel_name, std::move(v));
    }
    DeltaValue precise;
    for (auto& [name, value] : values) {
      // The current hypothetical content of `name` as an overlay view —
      // the base is only probed, never copied.
      HQL_ASSIGN_OR_RETURN(RelationView stored, db.GetView(name));
      const DeltaPair* p = env.Get(name);
      RelationView cur = p == nullptr
                             ? stored
                             : stored.ApplyDelta(p->ins.tuples(),
                                                 p->del.tuples());
      precise.Bind(name, DeltaPair(ViewDifference(cur, value),
                                   ViewDifference(value, cur)));
    }
    return F3(node->input, db, env.SmashWith(precise), config, columnar);
  }
  // Accumulate the atoms' delta left to right (Figure 4's smash chain).
  DeltaValue acc;
  for (const CollapsedAtom& atom : node->atoms) {
    DeltaValue current = env.SmashWith(acc);
    HQL_ASSIGN_OR_RETURN(RelationView value_view,
                         F3(atom.arg, db, current, config, columnar));
    Relation value = value_view.Materialize();
    size_t arity = value.arity();
    DeltaValue atom_delta;
    if (atom.is_insert) {
      atom_delta.Bind(atom.rel_name,
                      DeltaPair(Relation(arity), std::move(value)));
    } else {
      atom_delta.Bind(atom.rel_name,
                      DeltaPair(std::move(value), Relation(arity)));
    }
    acc = acc.SmashWith(atom_delta);
  }
  return F3(node->input, db, env.SmashWith(acc), config, columnar);
}

}  // namespace

Result<Relation> RunFilter3(const QueryPtr& query, const Database& db,
                            const Schema& schema,
                            const Filter3Options& options) {
  CollapsedPtr tree = options.collapsed;
  if (tree == nullptr) {
    if (query == nullptr) {
      return Status::InvalidArgument("Filter3: query must not be null");
    }
    // Prefer mod-ENF (states stay as atomic chains whose deltas are exactly
    // the inserted/deleted sets); fall back to ENF with precise deltas when
    // the query contains explicit substitutions or conditionals.
    QueryPtr normalized;
    auto mod = ToModEnf(query, schema);
    if (mod.ok()) {
      normalized = std::move(mod).value();
    } else if (mod.status().code() == StatusCode::kUnimplemented) {
      HQL_ASSIGN_OR_RETURN(normalized, ToEnf(query, schema));
    } else {
      return mod.status();
    }
    // Give the equational theory a shot at every pure region before
    // collapsing — in particular sigma[$i = $j](R x S) inside a block
    // becomes a join, so the delta kernels never materialize the cross
    // product (the same rewrite the lazy and hybrid routes already get).
    HQL_ASSIGN_OR_RETURN(normalized, SimplifyMixed(normalized, schema));
    HQL_ASSIGN_OR_RETURN(tree, Collapse(normalized, schema));
  }
  const DeltaValue empty;
  HQL_ASSIGN_OR_RETURN(
      RelationView out,
      F3(tree, db, options.env != nullptr ? *options.env : empty,
         options.indexes, options.columnar));
  HQL_RETURN_IF_ERROR(GovernorCheck());
  return out.Materialize();
}

}  // namespace hql
