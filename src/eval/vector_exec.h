#ifndef HQL_EVAL_VECTOR_EXEC_H_
#define HQL_EVAL_VECTOR_EXEC_H_

// Vectorized columnar kernels with morsel-driven parallelism: selection and
// hash-join operators that run over a flat base's ColumnBatch (per-column
// contiguous arrays, storage/column_batch.h) in tight type-specialized
// loops instead of per-tuple expression-tree interpretation, splitting
// large scans into fixed-size morsels dispatched across a thread pool.
//
// Overlays stay row-oriented: the kernels vectorize the shared base and
// patch the answer with the delta exactly like the index kernels — base
// matches minus dels, merged with a row-wise filter of adds — so a
// hypothetical state scans the batch its base state built.
//
// All kernels are exact: they return nullopt (callers fall back to the row
// kernels) whenever the input is too small, the overlay too large, or the
// predicate not compilable to the conjunct-per-column form, and otherwise
// produce byte-identical results to the scan. ColumnarConfig{} (mode off)
// disables them entirely.

#include <cstdint>
#include <optional>
#include <vector>

#include "ast/query.h"
#include "ast/scalar_expr.h"
#include "storage/column_batch.h"
#include "storage/index.h"
#include "storage/relation.h"
#include "storage/view.h"

namespace hql {

// One compiled conjunct: a comparison of a column against a literal,
// lowered onto the batch's encoding for that column. Replicates
// ScalarExpr::Evaluate + Value::Compare semantics exactly, including the
// int-before-double tie-break on numerically equal cross-type operands.
struct VectorConjunct {
  enum class Kind : uint8_t {
    kConstTrue,   // conjunct holds for every row (e.g. literal true)
    kConstFalse,  // conjunct holds for no row (e.g. family mismatch)
    kIntInt,      // int64 column OP int literal, pure integer loop
    kNumDouble,   // numeric column OP numeric literal via double compare
    kGeneric,     // per-row Value::Compare against the literal
  };

  Kind kind = Kind::kConstTrue;
  ScalarOp op = ScalarOp::kEq;  // kEq..kGe, column on the left
  size_t column = 0;
  int64_t int_lit = 0;   // kIntInt
  double dbl_lit = 0.0;  // kNumDouble
  // Value::Compare's type tie-break when the doubles compare equal:
  // -1 int column vs double literal, +1 double column vs int literal,
  // 0 same types.
  int tie_cmp = 0;
  Value lit;  // kGeneric
};

/// A predicate compiled for one batch: an AND of per-column conjuncts.
struct VectorPredicate {
  std::vector<VectorConjunct> conjuncts;
};

/// Compiles `pred` for a batch of the given shape, or nullopt when any
/// conjunct is not a binary comparison of one column against one literal
/// (boolean literals pass as constants). `batch` supplies per-column
/// encodings; `arity` folds out-of-range columns into constants the way
/// row evaluation folds them to null.
std::optional<VectorPredicate> CompileVectorPredicate(
    const ScalarExprPtr& pred, const ColumnBatch& batch);

/// Appends to `sel` the row positions in [begin, end) satisfying every
/// conjunct, ascending. `sel` is cleared first.
void EvalPredicateBatch(const ColumnBatch& batch, const VectorPredicate& pred,
                        size_t begin, size_t end, std::vector<uint32_t>* sel);

/// sigma_pred(input) over the base's column batch, morsel-parallel, with
/// the overlay patched in row-wise. Returns nullopt when the config, base
/// size, overlay size, or predicate shape rules vectorization out (callers
/// fall back to the row scan).
std::optional<Relation> TryColumnarFilter(const RelationView& input,
                                          const ScalarExprPtr& pred,
                                          const ColumnarConfig& config);

/// lhs join_pred rhs as a vectorized hash join: builds on the smaller
/// side, probes the larger side's column batch morsel-parallel. Returns
/// nullopt when no equality conjunct crosses the split or the probe side
/// does not qualify for vectorization.
std::optional<Relation> TryColumnarJoin(const RelationView& lhs,
                                        const RelationView& rhs,
                                        const ScalarExprPtr& pred,
                                        const ColumnarConfig& config);

/// gamma_{group_columns; func(agg_column)}(input) over the base's column
/// batch: group keys are extracted from the typed arrays into a flat
/// open-addressing table on int64/packed-int64 keys (generic tuple-keyed
/// fallback), with type-specialized count/sum/min/max accumulation loops,
/// morsel-driven partial aggregation, and a merge phase; overlay adds are
/// folded in row-wise after the base merge. Returns nullopt when the
/// config, base size, or overlay size rules vectorization out, and also
/// when exactness would be at risk: float sums are order-sensitive, so
/// kSum only vectorizes int64-encoded columns whose overlay adds are all
/// ints (the row kernel's accumulation is then reproduced bit-for-bit),
/// and min/max over mixed-type columns (or off-family adds) falls back
/// whenever adds exist, because the row kernel's sorted interleaving can
/// seed a different Compare-equal representative (Int(2) vs Double(2.0)).
/// An empty group-column list is the global-aggregate fast path, reduced
/// with the SIMD kernels from eval/simd.h.
std::optional<Relation> TryColumnarAggregate(
    const RelationView& input, const std::vector<size_t>& group_columns,
    AggFunc func, size_t agg_column, const ColumnarConfig& config);

/// The routed aggregation kernel: columnar when it qualifies, then the row
/// kernel; always equals AggregateRelation(input, group_columns, func,
/// agg_column).
Relation VectorizedAggregate(const RelationView& input,
                             const std::vector<size_t>& group_columns,
                             AggFunc func, size_t agg_column,
                             const ColumnarConfig& columnar);

/// The routed selection kernel: index probe, then columnar scan, then the
/// row scan — first taker wins; always equals FilterRelation(input, *pred).
/// `pred` must be non-null.
Relation VectorizedFilter(const RelationView& input, const ScalarExprPtr& pred,
                          const IndexConfig& indexes,
                          const ColumnarConfig& columnar);

/// The routed join kernel: index-nested-loop, then columnar hash join,
/// then the row hash join; always equals JoinRelations(lhs, rhs, pred).
Relation VectorizedJoin(const RelationView& lhs, const RelationView& rhs,
                        const ScalarExprPtr& pred, const IndexConfig& indexes,
                        const ColumnarConfig& columnar);

}  // namespace hql

#endif  // HQL_EVAL_VECTOR_EXEC_H_
