#ifndef HQL_EVAL_MATERIALIZE_H_
#define HQL_EVAL_MATERIALIZE_H_

// Materialization of hypothetical states for reuse across query families
// (Examples 2.2(a)/(b)): turn any hypothetical-state expression into a
// physical xsub-value or delta value once, then filter arbitrarily many
// queries through it with RunFilter1/2/3 and an explicit options env.
// This is the library-level form of what the E1/E2
// benchmarks and the version-tree example do by hand.

#include "ast/forward.h"
#include "common/result.h"
#include "eval/delta.h"
#include "eval/memo.h"
#include "eval/xsub.h"
#include "storage/database.h"
#include "storage/schema.h"

namespace hql {

/// [eta]xval(DB): the xsub-value of `state` in `db` — one relation value
/// per name in dom(eta). Arbitrary states (updates, substitutions,
/// compositions, state-level when) are supported. A non-null `memo` caches
/// the written relations of every sub-state along composition chains, so
/// sibling alternatives of a version tree (state = shared-prefix #
/// leaf-edge) materialize the shared prefix once.
Result<XsubValue> MaterializeXsub(const HypoExprPtr& state,
                                  const Database& db, const Schema& schema,
                                  MemoCache* memo = nullptr);

/// The precise delta (Section 5.5) capturing `state` in `db`:
/// R_D = DB(R) − V, R_I = V − DB(R) for each written name. Satisfies
/// apply(DB, delta) == apply(DB, xsub) and is small when the state changes
/// little. `memo` as in MaterializeXsub.
Result<DeltaValue> MaterializeDelta(const HypoExprPtr& state,
                                    const Database& db,
                                    const Schema& schema,
                                    MemoCache* memo = nullptr);

/// [eta](DB) with per-sub-state memoization: composition chains evaluate
/// left to right (Lemma 3.6), and each non-compose sub-state's written
/// relations are cached under (sub-state hash, database fingerprint). With
/// a null `memo` this is exactly EvalState (eval/direct.h).
Result<Database> EvalStateMemo(const HypoExprPtr& state, const Database& db,
                               MemoCache* memo);

}  // namespace hql

#endif  // HQL_EVAL_MATERIALIZE_H_
