#include "eval/delta_ops.h"

#include <limits>
#include <optional>
#include <unordered_map>

#include "common/check.h"
#include "common/exec_context.h"
#include "common/governor.h"
#include "eval/index_exec.h"
#include "eval/ra_eval.h"
#include "eval/vector_exec.h"

namespace hql {

namespace {

const std::vector<Tuple> kNoTuples;

}  // namespace

DeltaScan::DeltaScan(const Relation& base, const DeltaPair* pair)
    : base_(&base.tuples()),
      del_(pair != nullptr ? &pair->del.tuples() : &kNoTuples),
      ins_(pair != nullptr ? &pair->ins.tuples() : &kNoTuples) {
  Settle();
}

const Tuple& DeltaScan::Current() const {
  HQL_CHECK(!Done());
  return source_ == 0 ? (*base_)[bi_] : (*ins_)[ii_];
}

bool DeltaScan::Done() const { return source_ == 2; }

void DeltaScan::Advance() {
  HQL_CHECK(!Done());
  if (source_ == 0) {
    ++bi_;
  } else {
    ++ii_;
  }
  Settle();
}

void DeltaScan::Settle() {
  // Skip base tuples that are deleted (and not re-inserted later in the
  // stream — re-insertions come from ins_, merged below).
  for (;;) {
    bool have_base = bi_ < base_->size();
    if (have_base) {
      // Advance the delete cursor to the first tuple >= base[bi_].
      while (di_ < del_->size() &&
             CompareTuples((*del_)[di_], (*base_)[bi_]) < 0) {
        ++di_;
      }
      if (di_ < del_->size() &&
          CompareTuples((*del_)[di_], (*base_)[bi_]) == 0) {
        // Deleted, unless the same tuple is also inserted; the insert
        // stream will still produce it, so just drop the base copy.
        ++bi_;
        continue;
      }
    }
    bool have_ins = ii_ < ins_->size();
    if (!have_base && !have_ins) {
      source_ = 2;
      return;
    }
    if (!have_ins) {
      source_ = 0;
      return;
    }
    if (!have_base) {
      source_ = 1;
      return;
    }
    int c = CompareTuples((*base_)[bi_], (*ins_)[ii_]);
    if (c < 0) {
      source_ = 0;
    } else if (c > 0) {
      source_ = 1;
    } else {
      // Same tuple present in base and inserts: emit once (from the insert
      // stream) and skip the base copy.
      ++bi_;
      continue;
    }
    return;
  }
}

Relation SelectWhen(const Relation& base, const DeltaPair* delta,
                    const ScalarExpr& predicate) {
  TraceSpan span("select-when",
                 base.size() + (delta != nullptr ? delta->del.size() +
                                                       delta->ins.size()
                                                 : 0));
  ExecGovernor* gov = CurrentGovernor();
  std::vector<Tuple> out;
  for (DeltaScan scan(base, delta); !scan.Done(); scan.Advance()) {
    if (gov != nullptr && !gov->Tick()) break;
    if (predicate.EvaluatesTrue(scan.Current())) {
      out.push_back(scan.Current());
      if (gov != nullptr && !gov->ChargeTuples(1)) break;
    }
  }
  span.set_rows_out(out.size());
  return Relation::FromSortedUnique(base.arity(), std::move(out));
}

namespace {

// Collects the run of tuples whose `col` value equals that of the current
// tuple; leaves the scan positioned at the first tuple past the run.
void CollectRun(DeltaScan* scan, size_t col, std::vector<Tuple>* run) {
  run->clear();
  run->push_back(scan->Current());
  const Value key = scan->Current()[col];
  scan->Advance();
  while (!scan->Done() && scan->Current()[col].Compare(key) == 0) {
    run->push_back(scan->Current());
    scan->Advance();
  }
}

}  // namespace

Relation JoinWhen(const Relation& base_l, const DeltaPair* delta_l,
                  const Relation& base_r, const DeltaPair* delta_r,
                  size_t lcol, size_t rcol, const ScalarExprPtr& residual) {
  TraceSpan span("join-when", base_l.size() + base_r.size());
  ExecGovernor* gov = CurrentGovernor();
  const size_t out_arity = base_l.arity() + base_r.arity();
  std::vector<Tuple> out;

  auto residual_ok = [&](const Tuple& combined) {
    return residual == nullptr || residual->EvaluatesTrue(combined);
  };

  if (lcol == 0 && rcol == 0) {
    // Pure sort-merge over the two delta streams: the sorted order of the
    // streams coincides with the join-key order.
    DeltaScan ls(base_l, delta_l);
    DeltaScan rs(base_r, delta_r);
    std::vector<Tuple> lrun, rrun;
    bool stop = false;
    while (!stop && !ls.Done() && !rs.Done()) {
      if (gov != nullptr && !gov->Tick()) break;
      int c = ls.Current()[0].Compare(rs.Current()[0]);
      if (c < 0) {
        ls.Advance();
      } else if (c > 0) {
        rs.Advance();
      } else {
        CollectRun(&ls, 0, &lrun);
        CollectRun(&rs, 0, &rrun);
        for (const Tuple& l : lrun) {
          if (stop) break;
          for (const Tuple& r : rrun) {
            Tuple combined = ConcatTuples(l, r);
            if (residual_ok(combined)) {
              out.push_back(std::move(combined));
              if (gov != nullptr && !gov->ChargeTuples(1)) {
                stop = true;
                break;
              }
            }
          }
        }
      }
    }
    span.set_rows_out(out.size());
    return Relation::FromTuples(out_arity, std::move(out));
  }

  // General columns: stream the right side into a hash table, probe with
  // the left stream. Still avoids materializing the hypothetical relations.
  std::unordered_map<Value, std::vector<Tuple>, ValueHash> table;
  table.reserve(base_r.size());
  for (DeltaScan rs(base_r, delta_r); !rs.Done(); rs.Advance()) {
    if (gov != nullptr && !gov->Tick()) break;
    table[rs.Current()[rcol]].push_back(rs.Current());
  }
  bool stop = false;
  for (DeltaScan ls(base_l, delta_l); !stop && !ls.Done(); ls.Advance()) {
    if (gov != nullptr && !gov->Tick()) break;
    auto it = table.find(ls.Current()[lcol]);
    if (it == table.end()) continue;
    for (const Tuple& r : it->second) {
      Tuple combined = ConcatTuples(ls.Current(), r);
      if (residual_ok(combined)) {
        out.push_back(std::move(combined));
        if (gov != nullptr && !gov->ChargeTuples(1)) {
          stop = true;
          break;
        }
      }
    }
  }
  span.set_rows_out(out.size());
  return Relation::FromTuples(out_arity, std::move(out));
}

namespace {

// Finds one `$i = $j` equi conjunct crossing the split (the first, by the
// shared conjunct splitter's left-to-right order); returns false if none
// exists.
bool FindEquiConjunct(const ScalarExprPtr& pred, size_t split, size_t* lcol,
                      size_t* rcol) {
  std::vector<std::pair<size_t, size_t>> equi;
  std::vector<ScalarExprPtr> residual;
  SplitJoinPredicate(pred, split, &equi, &residual);
  if (equi.empty()) return false;
  *lcol = equi.front().first;
  *rcol = equi.front().second;
  return true;
}

}  // namespace

namespace {

/// True when `q` is a stored-relation leaf the delta route can resolve
/// directly: a kRel naming a schema relation with no temp binding shadowing
/// it (temp bindings never take deltas; they go through the generic path).
bool IsStoredLeaf(const QueryPtr& q, const Database& db,
                  const std::map<std::string, RelationView>* temps) {
  if (q->kind() != QueryKind::kRel) return false;
  if (temps != nullptr && temps->find(q->rel_name()) != temps->end()) {
    return false;
  }
  return db.schema().HasRelation(q->rel_name());
}

/// The leaf's hypothetical state as an overlay that never consolidates
/// (infinite fraction forces stacking), so the stored base keeps its
/// identity and its cached column batch / index serve every hypothetical
/// state in the family. A delta that canonicalizes to nothing (inserts
/// already present, deletes already absent) leaves the view flat — the
/// caller can then take the same fast path as the no-delta case.
RelationView OverlayLeaf(const RelationView& stored, const DeltaPair* p) {
  if (p == nullptr) return stored;
  return stored.ApplyDelta(p->ins.tuples(), p->del.tuples(),
                           std::numeric_limits<double>::infinity());
}

Result<RelationView> EvalFilterDNode(
    const QueryPtr& query, const Database& db, const DeltaValue& delta,
    const std::map<std::string, RelationView>* temps,
    const IndexConfig& config, const ColumnarConfig& columnar) {
  if (query == nullptr) {
    return Status::InvalidArgument("EvalFilterD: query must not be null");
  }
  HQL_RETURN_IF_ERROR(GovernorCheck());
  switch (query->kind()) {
    case QueryKind::kRel: {
      if (temps != nullptr) {
        auto it = temps->find(query->rel_name());
        if (it != temps->end()) return it->second;
      }
      // The hypothetical relation (DB(R) - R_D) u R_I is an overlay on the
      // shared base: O(|delta|), and free when the delta leaves R alone.
      HQL_ASSIGN_OR_RETURN(RelationView base, db.GetView(query->rel_name()));
      const DeltaPair* p = delta.Get(query->rel_name());
      if (p == nullptr) return base;
      return base.ApplyDelta(p->ins.tuples(), p->del.tuples());
    }
    case QueryKind::kEmpty:
      return RelationView(query->empty_arity());
    case QueryKind::kSingleton:
      return RelationView(
          Relation::FromTuples(query->tuple().size(), {query->tuple()}));
    case QueryKind::kSelect: {
      // A selection over a stored leaf resolves the hypothetical state as
      // a never-consolidated overlay on the shared base, then routes index
      // probe -> vectorized batch scan (with the overlay patched in
      // row-wise) -> select-when row streaming. One index or batch built
      // on the base state serves every hypothetical state in the family;
      // only past the delta-fraction gate does the scan degrade to the
      // streaming when-kernel, which never materializes either.
      if (IsStoredLeaf(query->left(), db, temps)) {
        const std::string& name = query->left()->rel_name();
        HQL_ASSIGN_OR_RETURN(RelationView stored, db.GetView(name));
        const DeltaPair* p = delta.Get(name);
        RelationView in = OverlayLeaf(stored, p);
        std::optional<Relation> fast =
            TryIndexedFilter(in, query->predicate(), config);
        if (fast.has_value()) return RelationView(*std::move(fast));
        std::optional<Relation> col =
            TryColumnarFilter(in, query->predicate(), columnar);
        if (col.has_value()) {
          if (p != nullptr) AmbientExecContext().AddColumnarWhenRouted();
          return RelationView(*std::move(col));
        }
        if (columnar.enabled()) {
          AmbientExecContext().AddColumnarRowsFallback(in.size());
        }
        if (stored.is_flat()) {
          // A delta that canonicalized to nothing streams the flat base
          // (nullptr delta), not the stale delta pair.
          return RelationView(SelectWhen(*stored.base(),
                                         in.is_flat() ? nullptr : p,
                                         *query->predicate()));
        }
        return RelationView(FilterRelation(in, *query->predicate()));
      }
      HQL_ASSIGN_OR_RETURN(
          RelationView in,
          EvalFilterDNode(query->left(), db, delta, temps, config, columnar));
      return RelationView(
          VectorizedFilter(in, query->predicate(), config, columnar));
    }
    case QueryKind::kProject: {
      HQL_ASSIGN_OR_RETURN(
          RelationView in,
          EvalFilterDNode(query->left(), db, delta, temps, config, columnar));
      return RelationView(ProjectRelation(in, query->columns()));
    }
    case QueryKind::kAggregate: {
      HQL_ASSIGN_OR_RETURN(
          RelationView in,
          EvalFilterDNode(query->left(), db, delta, temps, config, columnar));
      return RelationView(VectorizedAggregate(in, query->columns(),
                                              query->agg_func(),
                                              query->agg_column(), columnar));
    }
    case QueryKind::kUnion: {
      HQL_ASSIGN_OR_RETURN(
          RelationView l,
          EvalFilterDNode(query->left(), db, delta, temps, config, columnar));
      HQL_ASSIGN_OR_RETURN(
          RelationView r,
          EvalFilterDNode(query->right(), db, delta, temps, config, columnar));
      return RelationView(ViewUnion(l, r));
    }
    case QueryKind::kIntersect: {
      HQL_ASSIGN_OR_RETURN(
          RelationView l,
          EvalFilterDNode(query->left(), db, delta, temps, config, columnar));
      HQL_ASSIGN_OR_RETURN(
          RelationView r,
          EvalFilterDNode(query->right(), db, delta, temps, config, columnar));
      return RelationView(ViewIntersect(l, r));
    }
    case QueryKind::kProduct: {
      HQL_ASSIGN_OR_RETURN(
          RelationView l,
          EvalFilterDNode(query->left(), db, delta, temps, config, columnar));
      HQL_ASSIGN_OR_RETURN(
          RelationView r,
          EvalFilterDNode(query->right(), db, delta, temps, config, columnar));
      return RelationView(ViewProduct(l, r));
    }
    case QueryKind::kJoin: {
      // An equi-join of two stored leaves resolves both hypothetical
      // states as never-consolidated overlays, probes the larger side's
      // base index when the policy grants one, then tries the vectorized
      // hash join over the larger base's batch (overlay patched in
      // row-wise); a miss falls through to the join-when row streaming.
      if (IsStoredLeaf(query->left(), db, temps) &&
          IsStoredLeaf(query->right(), db, temps)) {
        const std::string& lname = query->left()->rel_name();
        const std::string& rname = query->right()->rel_name();
        HQL_ASSIGN_OR_RETURN(RelationView lstored, db.GetView(lname));
        HQL_ASSIGN_OR_RETURN(RelationView rstored, db.GetView(rname));
        const DeltaPair* pl = delta.Get(lname);
        const DeltaPair* pr = delta.Get(rname);
        RelationView l = OverlayLeaf(lstored, pl);
        RelationView r = OverlayLeaf(rstored, pr);
        std::optional<Relation> fast =
            TryIndexedJoin(l, r, query->predicate(), config);
        if (fast.has_value()) return RelationView(*std::move(fast));
        std::optional<Relation> col =
            TryColumnarJoin(l, r, query->predicate(), columnar);
        if (col.has_value()) {
          if (pl != nullptr || pr != nullptr) {
            AmbientExecContext().AddColumnarWhenRouted();
          }
          return RelationView(*std::move(col));
        }
        if (columnar.enabled()) {
          AmbientExecContext().AddColumnarRowsFallback(l.size() + r.size());
        }
        if (lstored.is_flat() && rstored.is_flat()) {
          size_t lcol = 0, rcol = 0;
          if (FindEquiConjunct(query->predicate(), lstored.arity(), &lcol,
                               &rcol)) {
            // Deltas that canonicalized to nothing stream the flat bases.
            return RelationView(JoinWhen(*lstored.base(),
                                         l.is_flat() ? nullptr : pl,
                                         *rstored.base(),
                                         r.is_flat() ? nullptr : pr, lcol,
                                         rcol, query->predicate()));
          }
        }
        return RelationView(JoinRelations(l, r, query->predicate()));
      }
      HQL_ASSIGN_OR_RETURN(
          RelationView l,
          EvalFilterDNode(query->left(), db, delta, temps, config, columnar));
      HQL_ASSIGN_OR_RETURN(
          RelationView r,
          EvalFilterDNode(query->right(), db, delta, temps, config, columnar));
      return RelationView(
          VectorizedJoin(l, r, query->predicate(), config, columnar));
    }
    case QueryKind::kDifference: {
      HQL_ASSIGN_OR_RETURN(
          RelationView l,
          EvalFilterDNode(query->left(), db, delta, temps, config, columnar));
      HQL_ASSIGN_OR_RETURN(
          RelationView r,
          EvalFilterDNode(query->right(), db, delta, temps, config, columnar));
      return RelationView(ViewDifference(l, r));
    }
    case QueryKind::kWhen:
      return Status::InvalidArgument(
          "EvalFilterD evaluates pure RA queries; use RunFilter3 for "
          "hypothetical queries");
  }
  return Status::Internal("unknown query kind in EvalFilterD");
}

}  // namespace

Result<RelationView> EvalFilterDView(
    const QueryPtr& query, const Database& db, const DeltaValue& delta,
    const std::map<std::string, RelationView>* temps,
    const IndexConfig& config, const ColumnarConfig& columnar) {
  HQL_ASSIGN_OR_RETURN(
      RelationView out,
      EvalFilterDNode(query, db, delta, temps, config, columnar));
  // Discard a root-operator kernel's truncated output on trip.
  HQL_RETURN_IF_ERROR(GovernorCheck());
  return out;
}

Result<Relation> EvalFilterD(const QueryPtr& query, const Database& db,
                             const DeltaValue& delta,
                             const std::map<std::string, RelationView>* temps,
                             const IndexConfig& config,
                             const ColumnarConfig& columnar) {
  HQL_ASSIGN_OR_RETURN(
      RelationView out,
      EvalFilterDNode(query, db, delta, temps, config, columnar));
  HQL_RETURN_IF_ERROR(GovernorCheck());
  return out.Materialize();
}

}  // namespace hql
