#ifndef HQL_EVAL_DELTA_OPS_H_
#define HQL_EVAL_DELTA_OPS_H_

// Heraclitus-style "*-when" physical operators (paper Section 5.5): they
// combine delta application with relational algebra operators so that a
// query under a small delta costs only marginally more than the same query
// against the base state — the paper's rule of thumb is ~11% extra time per
// 1% of delta for the sort-merge join-when.
//
// The core piece is DeltaScan, a streaming merge of the three sorted inputs
// base / D / I that yields (base - D) u I in sorted order without
// materializing it. join-when then runs a sort-merge equi-join directly on
// two such streams (six physical operands in total, exactly the paper's
// join-when(DB(R), DB(S), R_D, R_I, S_D, S_I)).

#include <map>
#include <string>

#include "ast/query.h"
#include "common/result.h"
#include "eval/delta.h"
#include "storage/column_batch.h"
#include "storage/database.h"
#include "storage/index.h"

namespace hql {

/// Streaming iterator over (base - D) u I in tuple order. The three inputs
/// must share an arity; `pair` may be null (no delta for this relation).
class DeltaScan {
 public:
  DeltaScan(const Relation& base, const DeltaPair* pair);

  /// The current tuple; requires !Done().
  const Tuple& Current() const;
  bool Done() const;
  void Advance();

 private:
  void Settle();  // moves to the next tuple that survives D / merges I

  const std::vector<Tuple>* base_;
  const std::vector<Tuple>* del_;
  const std::vector<Tuple>* ins_;
  size_t bi_ = 0;
  size_t di_ = 0;
  size_t ii_ = 0;
  // Which stream provides Current(): 0 = base, 1 = ins, 2 = done.
  int source_ = 2;
};

/// join-when: [(baseL - D_L) u I_L] join_pred [(baseR - D_R) u I_R], merged
/// on the equality `$lcol = $(larity + rcol)`. When lcol == rcol == 0 the
/// join runs as a pure sort-merge over the delta streams; otherwise the
/// operands are streamed into a hash join (still without materializing the
/// hypothetical relations). `residual` (nullable) filters the concatenated
/// tuple.
Relation JoinWhen(const Relation& base_l, const DeltaPair* delta_l,
                  const Relation& base_r, const DeltaPair* delta_r,
                  size_t lcol, size_t rcol,
                  const ScalarExprPtr& residual);

/// select-when: sigma_p((base - D) u I), streamed.
Relation SelectWhen(const Relation& base, const DeltaPair* delta,
                    const ScalarExpr& predicate);

/// eval_filter_d: evaluates a pure RA query where every base relation R is
/// read as (DB(R) - R_D) u R_I. Leaf scans become delta overlays on the
/// shared base relation (never copied), selections and top-level equi-joins
/// of flat base relations use the streaming *-when operators, and every
/// other shape consumes copy-on-write views through the merge-aware
/// relational operators. `temps` (nullable) resolves collapse placeholders
/// ("#i") to already-computed views, which the delta does not filter.
/// `config` (default off) lets equality selections and equi-joins probe
/// base-relation indexes, patched with the delta at probe time.
/// `columnar` (default off) lets large flat-base selections and equi-joins
/// run the vectorized morsel kernels (eval/vector_exec.h), with the delta
/// patched in row-wise.
Result<Relation> EvalFilterD(const QueryPtr& query, const Database& db,
                             const DeltaValue& delta,
                             const std::map<std::string, RelationView>* temps =
                                 nullptr,
                             const IndexConfig& config = IndexConfig(),
                             const ColumnarConfig& columnar = ColumnarConfig());

/// EvalFilterD returning the result as a view: an untouched leaf scan is a
/// refcount bump and a delta'd leaf is an O(|delta|) overlay.
Result<RelationView> EvalFilterDView(
    const QueryPtr& query, const Database& db, const DeltaValue& delta,
    const std::map<std::string, RelationView>* temps = nullptr,
    const IndexConfig& config = IndexConfig(),
    const ColumnarConfig& columnar = ColumnarConfig());

}  // namespace hql

#endif  // HQL_EVAL_DELTA_OPS_H_
