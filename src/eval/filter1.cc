#include "eval/filter1.h"

#include "ast/hypo.h"
#include "ast/query.h"
#include "common/check.h"
#include "common/governor.h"
#include "eval/ra_eval.h"
#include "hql/enf.h"

namespace hql {

namespace {

// Results flow through the recursion as copy-on-write views: leaf scans and
// environment lookups are refcount bumps, only operator outputs allocate.
Result<RelationView> F1(const QueryPtr& q, const Database& db,
                        const XsubValue& env) {
  HQL_RETURN_IF_ERROR(GovernorCheck());
  switch (q->kind()) {
    case QueryKind::kRel: {
      RelationPtr bound = env.GetShared(q->rel_name());
      if (bound != nullptr) return RelationView(std::move(bound));
      return db.GetView(q->rel_name());
    }
    case QueryKind::kEmpty:
      return RelationView(q->empty_arity());
    case QueryKind::kSingleton:
      return RelationView(
          Relation::FromTuples(q->tuple().size(), {q->tuple()}));
    case QueryKind::kSelect: {
      HQL_ASSIGN_OR_RETURN(RelationView in, F1(q->left(), db, env));
      return RelationView(FilterRelation(in, *q->predicate()));
    }
    case QueryKind::kProject: {
      HQL_ASSIGN_OR_RETURN(RelationView in, F1(q->left(), db, env));
      return RelationView(ProjectRelation(in, q->columns()));
    }
    case QueryKind::kAggregate: {
      HQL_ASSIGN_OR_RETURN(RelationView in, F1(q->left(), db, env));
      return RelationView(
          AggregateRelation(in, q->columns(), q->agg_func(), q->agg_column()));
    }
    case QueryKind::kUnion: {
      HQL_ASSIGN_OR_RETURN(RelationView l, F1(q->left(), db, env));
      HQL_ASSIGN_OR_RETURN(RelationView r, F1(q->right(), db, env));
      return RelationView(ViewUnion(l, r));
    }
    case QueryKind::kIntersect: {
      HQL_ASSIGN_OR_RETURN(RelationView l, F1(q->left(), db, env));
      HQL_ASSIGN_OR_RETURN(RelationView r, F1(q->right(), db, env));
      return RelationView(ViewIntersect(l, r));
    }
    case QueryKind::kProduct: {
      // HQL-1 materializes the full product — deliberately no clustering.
      HQL_ASSIGN_OR_RETURN(RelationView l, F1(q->left(), db, env));
      HQL_ASSIGN_OR_RETURN(RelationView r, F1(q->right(), db, env));
      return RelationView(ViewProduct(l, r));
    }
    case QueryKind::kJoin: {
      HQL_ASSIGN_OR_RETURN(RelationView l, F1(q->left(), db, env));
      HQL_ASSIGN_OR_RETURN(RelationView r, F1(q->right(), db, env));
      // One node = one operation: the join itself is a single algebraic
      // operator, so evaluating it as such is within HQL-1's discipline.
      return RelationView(JoinRelations(l, r, q->predicate()));
    }
    case QueryKind::kDifference: {
      HQL_ASSIGN_OR_RETURN(RelationView l, F1(q->left(), db, env));
      HQL_ASSIGN_OR_RETURN(RelationView r, F1(q->right(), db, env));
      return RelationView(ViewDifference(l, r));
    }
    case QueryKind::kWhen: {
      const HypoExprPtr& state = q->state();
      if (state->kind() != HypoKind::kSubst) {
        return Status::InvalidArgument(
            "Filter1 requires an ENF query: " + q->ToString());
      }
      // filter1(e, E): materialize the substitution under the current env.
      XsubValue e_val;
      for (const Binding& b : state->bindings()) {
        HQL_ASSIGN_OR_RETURN(RelationView v, F1(b.query, db, env));
        e_val.Bind(b.rel_name, v.Shared());
      }
      return F1(q->left(), db, env.SmashWith(e_val));
    }
  }
  return Status::Internal("unknown query kind in Filter1");
}

}  // namespace

Result<Relation> RunFilter1(const QueryPtr& query, const Database& db,
                            const Filter1Options& options) {
  if (query == nullptr) {
    return Status::InvalidArgument("Filter1: query must not be null");
  }
  // An explicit env is a worker invocation over a subtree; only the
  // top-level no-env form demands the full ENF shape.
  if (options.env == nullptr && !IsEnf(query)) {
    return Status::InvalidArgument("Filter1 requires an ENF query");
  }
  const XsubValue empty;
  HQL_ASSIGN_OR_RETURN(
      RelationView out,
      F1(query, db, options.env != nullptr ? *options.env : empty));
  HQL_RETURN_IF_ERROR(GovernorCheck());
  return out.Materialize();
}

}  // namespace hql
