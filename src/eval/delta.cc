#include "eval/delta.h"

#include "common/check.h"
#include "common/strings.h"

namespace hql {

const DeltaPair* DeltaValue::Get(const std::string& name) const {
  auto it = pairs_.find(name);
  return it == pairs_.end() ? nullptr : &it->second;
}

void DeltaValue::Bind(const std::string& name, DeltaPair pair) {
  HQL_CHECK(pair.del.arity() == pair.ins.arity());
  pairs_.insert_or_assign(name, std::move(pair));
}

DeltaValue DeltaValue::SmashWith(const DeltaValue& later) const {
  DeltaValue out = *this;
  for (const auto& [name, p2] : later.pairs_) {
    auto it = out.pairs_.find(name);
    if (it == out.pairs_.end()) {
      out.pairs_.emplace(name, p2);
      continue;
    }
    const DeltaPair& p1 = it->second;
    Relation d = p1.del.DifferenceWith(p2.ins).UnionWith(p2.del);
    Relation i = p1.ins.DifferenceWith(p2.del).UnionWith(p2.ins);
    it->second = DeltaPair(std::move(d), std::move(i));
  }
  return out;
}

Relation DeltaValue::ApplyToRelation(const Relation& base,
                                     const std::string& name) const {
  const DeltaPair* p = Get(name);
  if (p == nullptr) return base;
  // D and I may overlap (inserts win); ApplyTuples wants disjoint sets, so
  // drop the overlap from D first, then merge in a single pass.
  return base.ApplyTuples(p->ins.tuples(),
                          p->del.DifferenceWith(p->ins).tuples());
}

Result<Database> DeltaValue::ApplyTo(const Database& db) const {
  Database out = db;
  for (const auto& [name, pair] : pairs_) {
    // Each touched relation becomes an overlay on the shared base:
    // O(|delta|) per name (ApplyDelta consolidates only past the
    // break-even fraction).
    HQL_ASSIGN_OR_RETURN(RelationView base, db.GetView(name));
    HQL_RETURN_IF_ERROR(out.SetView(
        name, base.ApplyDelta(pair.ins.tuples(), pair.del.tuples())));
  }
  return out;
}

uint64_t DeltaValue::TotalTuples() const {
  uint64_t n = 0;
  for (const auto& [name, pair] : pairs_) {
    (void)name;
    n += pair.del.size() + pair.ins.size();
  }
  return n;
}

std::string DeltaValue::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(pairs_.size());
  for (const auto& [name, pair] : pairs_) {
    parts.push_back("(" + pair.del.ToString() + ", " + pair.ins.ToString() +
                    ")/" + name);
  }
  return "{" + Join(parts, ", ") + "}";
}

}  // namespace hql
