#include "eval/incremental.h"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/governor.h"
#include "eval/index_exec.h"
#include "storage/index.h"
#include "storage/tuple.h"

namespace hql {

const char* IncrementalModeName(IncrementalMode mode) {
  switch (mode) {
    case IncrementalMode::kOff:
      return "off";
    case IncrementalMode::kAuto:
      return "auto";
  }
  return "off";
}

std::shared_ptr<const IncrementalEntry> IncrementalRecorder::TakeEntry(
    RelationView result, uint64_t state_fingerprint) {
  auto entry = std::make_shared<IncrementalEntry>(std::move(entry_));
  entry->result = std::move(result);
  entry->state_fingerprint = state_fingerprint;
  entry_ = IncrementalEntry{};
  return entry;
}

namespace {

// Collects the base-relation names of a pure RA query; false when the tree
// contains a node outside pure RA (a residual `when`), which the patcher
// cannot reason about.
bool CollectLeafNames(const QueryPtr& q, std::set<std::string>* names) {
  if (q == nullptr) return true;
  switch (q->kind()) {
    case QueryKind::kRel:
      names->insert(q->rel_name());
      return true;
    case QueryKind::kEmpty:
    case QueryKind::kSingleton:
      return true;
    case QueryKind::kSelect:
    case QueryKind::kProject:
    case QueryKind::kAggregate:
      return CollectLeafNames(q->left(), names);
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kJoin:
    case QueryKind::kDifference:
      return CollectLeafNames(q->left(), names) &&
             CollectLeafNames(q->right(), names);
    case QueryKind::kWhen:
      return false;
  }
  return false;
}

void SortUniqueTuples(std::vector<Tuple>* v) {
  std::sort(v->begin(), v->end(), TupleLess{});
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

Tuple ProjectTuple(const Tuple& t, const std::vector<size_t>& columns) {
  Tuple out;
  out.reserve(columns.size());
  for (size_t c : columns) out.push_back(t[c]);
  return out;
}

Status TickGovernor(uint64_t n = 1) {
  if (ExecGovernor* gov = CurrentGovernor()) {
    if (!gov->Tick(n)) return gov->status();
  }
  return Status::OK();
}

/// One node's transition: cached output, patched output, and the canonical
/// edit between them (dels subset of old content, adds disjoint from it).
struct NodeDelta {
  RelationView old_view{0};
  RelationView new_view{0};
  std::vector<Tuple> adds;
  std::vector<Tuple> dels;
};

// Propagates the leaf edits of an IncrementalAttempt bottom-up through the
// plan, computing each node's edit from its children's edits plus the
// cached inputs/outputs — never from scratch. Shared DAG subtrees propagate
// once (memoized by structural fingerprint). Any shape the rules do not
// cover surfaces kUnimplemented, which the caller turns into a full
// re-evaluation.
class DeltaPropagator {
 public:
  explicit DeltaPropagator(const IncrementalAttempt& attempt)
      : attempt_(attempt) {}

  Result<NodeDelta> Propagate(const QueryPtr& node);

  uint64_t edits_propagated() const { return edits_propagated_; }
  std::unordered_map<uint64_t, RelationView> TakeNodeValues() {
    return std::move(new_node_values_);
  }

 private:
  Result<NodeDelta> Compute(const QueryPtr& node);
  Result<NodeDelta> PropagateJoin(const QueryPtr& node, const QueryPtr& lhs,
                                  const QueryPtr& rhs,
                                  const ScalarExprPtr& pred);

  /// Joins the (small) edit side against the cached other side: index probe
  /// when the other side is flat and its base already carries a matching
  /// index, one hash-keyed scan when an equality conjunct exists, nested
  /// loop otherwise. Returns combined tuples passing the full predicate.
  Result<std::vector<Tuple>> JoinEditAgainst(const std::vector<Tuple>& edit,
                                             const RelationView& other,
                                             const ScalarExprPtr& pred,
                                             bool edit_on_left,
                                             size_t lhs_arity);

  /// The node's output recorded by the previous execution; kUnimplemented
  /// when the recording does not cover it.
  Result<RelationView> OldOf(const QueryPtr& node);

  /// Accounts a finished node: the edit counts as propagated work and its
  /// tuples are charged to the governor like produced tuples.
  Status ChargeNode(const NodeDelta& d) {
    edits_propagated_ += d.adds.size() + d.dels.size();
    if (ExecGovernor* gov = CurrentGovernor()) {
      if (!gov->ChargeTuples(d.adds.size() + d.dels.size())) {
        return gov->status();
      }
    }
    return Status::OK();
  }

  const IncrementalAttempt& attempt_;
  std::unordered_map<uint64_t, NodeDelta> done_;
  std::unordered_map<uint64_t, RelationView> new_node_values_;
  uint64_t edits_propagated_ = 0;
};

Result<NodeDelta> DeltaPropagator::Propagate(const QueryPtr& node) {
  uint64_t fp = node->Fingerprint();
  auto it = done_.find(fp);
  if (it != done_.end()) return it->second;
  HQL_RETURN_IF_ERROR(GovernorCheck());
  Result<NodeDelta> computed = Compute(node);
  if (!computed.ok()) return computed.status();
  HQL_RETURN_IF_ERROR(ChargeNode(*computed));
  bool is_leaf = node->kind() == QueryKind::kRel ||
                 node->kind() == QueryKind::kEmpty ||
                 node->kind() == QueryKind::kSingleton;
  if (!is_leaf) new_node_values_.insert_or_assign(fp, computed->new_view);
  done_.insert_or_assign(fp, *computed);
  return computed;
}

Result<NodeDelta> DeltaPropagator::Compute(const QueryPtr& node) {
  switch (node->kind()) {
    case QueryKind::kRel: {
      const std::string& name = node->rel_name();
      auto nit = attempt_.inputs.find(name);
      auto oit = attempt_.entry->inputs.find(name);
      if (nit == attempt_.inputs.end() || oit == attempt_.entry->inputs.end()) {
        return Status::Unimplemented("incremental: leaf '" + name +
                                     "' not covered by the cached execution");
      }
      NodeDelta d;
      d.old_view = oit->second;
      d.new_view = nit->second;
      auto eit = attempt_.edits.find(name);
      if (eit != attempt_.edits.end()) {
        d.adds = eit->second.adds;
        d.dels = eit->second.dels;
      }
      return d;
    }

    case QueryKind::kEmpty: {
      NodeDelta d;
      d.old_view = RelationView(node->empty_arity());
      d.new_view = d.old_view;
      return d;
    }

    case QueryKind::kSingleton: {
      NodeDelta d;
      d.old_view = RelationView(Relation::FromSortedUnique(
          node->tuple().size(), {node->tuple()}));
      d.new_view = d.old_view;
      return d;
    }

    case QueryKind::kSelect: {
      // Mirror the evaluator's clustering: a selection over a product or a
      // theta join runs as one join node, and the cached output lives under
      // the *selection*'s fingerprint — the child was never evaluated
      // separately.
      const QueryPtr& child = node->left();
      if (child->kind() == QueryKind::kProduct) {
        return PropagateJoin(node, child->left(), child->right(),
                             node->predicate());
      }
      if (child->kind() == QueryKind::kJoin) {
        ScalarExprPtr combined = ScalarExpr::Binary(
            ScalarOp::kAnd, node->predicate(), child->predicate());
        return PropagateJoin(node, child->left(), child->right(), combined);
      }
      HQL_ASSIGN_OR_RETURN(NodeDelta c, Propagate(child));
      HQL_ASSIGN_OR_RETURN(RelationView old_out, OldOf(node));
      const ScalarExpr& pred = *node->predicate();
      NodeDelta d;
      d.old_view = old_out;
      for (const Tuple& t : c.adds) {
        HQL_RETURN_IF_ERROR(TickGovernor());
        if (pred.EvaluatesTrue(t)) d.adds.push_back(t);
      }
      for (const Tuple& t : c.dels) {
        HQL_RETURN_IF_ERROR(TickGovernor());
        if (pred.EvaluatesTrue(t)) d.dels.push_back(t);
      }
      d.new_view = old_out.ApplyDelta(d.adds, d.dels);
      return d;
    }

    case QueryKind::kProject: {
      HQL_ASSIGN_OR_RETURN(NodeDelta c, Propagate(node->left()));
      HQL_ASSIGN_OR_RETURN(RelationView old_out, OldOf(node));
      const std::vector<size_t>& cols = node->columns();
      NodeDelta d;
      d.old_view = old_out;
      // Projection is the one operator where a deletion needs support
      // counting: pi(dels) tuples stay in the output while any other child
      // tuple still projects onto them.
      for (const Tuple& t : c.adds) {
        HQL_RETURN_IF_ERROR(TickGovernor());
        Tuple p = ProjectTuple(t, cols);
        if (!old_out.Contains(p)) d.adds.push_back(std::move(p));
      }
      SortUniqueTuples(&d.adds);
      if (!c.dels.empty()) {
        std::vector<Tuple> cand;
        for (const Tuple& t : c.dels) {
          HQL_RETURN_IF_ERROR(TickGovernor());
          Tuple p = ProjectTuple(t, cols);
          if (old_out.Contains(p)) cand.push_back(std::move(p));
        }
        SortUniqueTuples(&cand);
        if (!cand.empty()) {
          // One scan of the new child content strikes out every candidate
          // that still has support; survivors are true deletions.
          std::vector<char> supported(cand.size(), 0);
          for (const Tuple& t : c.new_view) {
            HQL_RETURN_IF_ERROR(TickGovernor());
            Tuple p = ProjectTuple(t, cols);
            auto it = std::lower_bound(cand.begin(), cand.end(), p,
                                       TupleLess{});
            if (it != cand.end() && *it == p) {
              supported[static_cast<size_t>(it - cand.begin())] = 1;
            }
          }
          for (size_t i = 0; i < cand.size(); ++i) {
            if (!supported[i]) d.dels.push_back(std::move(cand[i]));
          }
        }
      }
      d.new_view = old_out.ApplyDelta(d.adds, d.dels);
      return d;
    }

    case QueryKind::kUnion: {
      HQL_ASSIGN_OR_RETURN(NodeDelta l, Propagate(node->left()));
      HQL_ASSIGN_OR_RETURN(NodeDelta r, Propagate(node->right()));
      HQL_ASSIGN_OR_RETURN(RelationView old_out, OldOf(node));
      NodeDelta d;
      d.old_view = old_out;
      for (const std::vector<Tuple>* adds : {&l.adds, &r.adds}) {
        for (const Tuple& t : *adds) {
          HQL_RETURN_IF_ERROR(TickGovernor());
          if (!old_out.Contains(t)) d.adds.push_back(t);
        }
      }
      for (const Tuple& t : l.dels) {
        HQL_RETURN_IF_ERROR(TickGovernor());
        if (!r.new_view.Contains(t)) d.dels.push_back(t);
      }
      for (const Tuple& t : r.dels) {
        HQL_RETURN_IF_ERROR(TickGovernor());
        if (!l.new_view.Contains(t)) d.dels.push_back(t);
      }
      SortUniqueTuples(&d.adds);
      SortUniqueTuples(&d.dels);
      d.new_view = old_out.ApplyDelta(d.adds, d.dels);
      return d;
    }

    case QueryKind::kIntersect: {
      HQL_ASSIGN_OR_RETURN(NodeDelta l, Propagate(node->left()));
      HQL_ASSIGN_OR_RETURN(NodeDelta r, Propagate(node->right()));
      HQL_ASSIGN_OR_RETURN(RelationView old_out, OldOf(node));
      NodeDelta d;
      d.old_view = old_out;
      for (const Tuple& t : l.adds) {
        HQL_RETURN_IF_ERROR(TickGovernor());
        if (r.new_view.Contains(t)) d.adds.push_back(t);
      }
      for (const Tuple& t : r.adds) {
        HQL_RETURN_IF_ERROR(TickGovernor());
        if (l.new_view.Contains(t)) d.adds.push_back(t);
      }
      for (const std::vector<Tuple>* dels : {&l.dels, &r.dels}) {
        for (const Tuple& t : *dels) {
          HQL_RETURN_IF_ERROR(TickGovernor());
          if (old_out.Contains(t)) d.dels.push_back(t);
        }
      }
      SortUniqueTuples(&d.adds);
      SortUniqueTuples(&d.dels);
      d.new_view = old_out.ApplyDelta(d.adds, d.dels);
      return d;
    }

    case QueryKind::kDifference: {
      HQL_ASSIGN_OR_RETURN(NodeDelta l, Propagate(node->left()));
      HQL_ASSIGN_OR_RETURN(NodeDelta r, Propagate(node->right()));
      HQL_ASSIGN_OR_RETURN(RelationView old_out, OldOf(node));
      NodeDelta d;
      d.old_view = old_out;
      for (const Tuple& t : l.adds) {
        HQL_RETURN_IF_ERROR(TickGovernor());
        if (!r.new_view.Contains(t)) d.adds.push_back(t);
      }
      for (const Tuple& t : r.dels) {
        HQL_RETURN_IF_ERROR(TickGovernor());
        if (l.new_view.Contains(t) && !old_out.Contains(t)) {
          d.adds.push_back(t);
        }
      }
      for (const std::vector<Tuple>* side : {&l.dels, &r.adds}) {
        for (const Tuple& t : *side) {
          HQL_RETURN_IF_ERROR(TickGovernor());
          if (old_out.Contains(t)) d.dels.push_back(t);
        }
      }
      SortUniqueTuples(&d.adds);
      SortUniqueTuples(&d.dels);
      d.new_view = old_out.ApplyDelta(d.adds, d.dels);
      return d;
    }

    case QueryKind::kProduct:
      return PropagateJoin(node, node->left(), node->right(), nullptr);

    case QueryKind::kJoin:
      return PropagateJoin(node, node->left(), node->right(),
                           node->predicate());

    case QueryKind::kAggregate: {
      // Sum and count patch group-wise: the edit's group keys name the
      // affected groups, and one governed pass over the new child content
      // re-accumulates exactly those. Min and max would need evidence the
      // old extremum survives a deletion — per-group state the recording
      // does not keep — so they stay recompute-only.
      if (node->agg_func() == AggFunc::kMin ||
          node->agg_func() == AggFunc::kMax) {
        return Status::Unimplemented(
            "incremental: min/max aggregates are not incrementally "
            "maintainable (a deleted extremum needs a rescan)");
      }
      HQL_ASSIGN_OR_RETURN(NodeDelta c, Propagate(node->left()));
      HQL_ASSIGN_OR_RETURN(RelationView old_out, OldOf(node));
      const std::vector<size_t>& cols = node->columns();
      size_t agg_column = node->agg_column();
      NodeDelta d;
      d.old_view = old_out;
      std::vector<Tuple> affected;
      for (const std::vector<Tuple>* edit : {&c.adds, &c.dels}) {
        for (const Tuple& t : *edit) {
          HQL_RETURN_IF_ERROR(TickGovernor());
          affected.push_back(ProjectTuple(t, cols));
        }
      }
      SortUniqueTuples(&affected);
      if (affected.empty()) {
        d.new_view = old_out;
        return d;
      }
      struct Acc {
        int64_t count = 0;
        int64_t int_sum = 0;
        double dbl_sum = 0;
        bool any_double = false;
        bool any_number = false;
      };
      // The sorted new child visits each affected group's tuples in the
      // same order a full re-evaluation would, so double sums come out
      // bit-identical to the recompute alternative.
      std::vector<Acc> accs(affected.size());
      for (const Tuple& t : c.new_view) {
        HQL_RETURN_IF_ERROR(TickGovernor());
        Tuple key = ProjectTuple(t, cols);
        auto it = std::lower_bound(affected.begin(), affected.end(), key,
                                   TupleLess{});
        if (it == affected.end() || !(*it == key)) continue;
        Acc& acc = accs[static_cast<size_t>(it - affected.begin())];
        ++acc.count;
        const Value& v = t[agg_column];
        if (v.is_int()) {
          acc.int_sum += v.AsInt();
          acc.dbl_sum += static_cast<double>(v.AsInt());
          acc.any_number = true;
        } else if (v.is_double()) {
          acc.dbl_sum += v.AsDouble();
          acc.any_double = true;
          acc.any_number = true;
        }
      }
      // The group key is the output tuple's prefix, so one scan of the
      // cached output recovers the affected groups' old rows to diff
      // against the re-accumulated ones.
      std::vector<Tuple> old_rows(affected.size());
      std::vector<char> had_old(affected.size(), 0);
      for (const Tuple& t : old_out) {
        HQL_RETURN_IF_ERROR(TickGovernor());
        Tuple key(t.begin(), t.begin() + static_cast<ptrdiff_t>(cols.size()));
        auto it = std::lower_bound(affected.begin(), affected.end(), key,
                                   TupleLess{});
        if (it == affected.end() || !(*it == key)) continue;
        size_t i = static_cast<size_t>(it - affected.begin());
        old_rows[i] = t;
        had_old[i] = 1;
      }
      for (size_t i = 0; i < affected.size(); ++i) {
        std::optional<Tuple> fresh;
        if (accs[i].count > 0) {
          Value agg;
          if (node->agg_func() == AggFunc::kCount) {
            agg = Value::Int(accs[i].count);
          } else if (!accs[i].any_number) {
            agg = Value::Nul();
          } else if (accs[i].any_double) {
            agg = Value::Double(accs[i].dbl_sum);
          } else {
            agg = Value::Int(accs[i].int_sum);
          }
          Tuple row = affected[i];
          row.push_back(std::move(agg));
          fresh = std::move(row);
        }
        if (had_old[i] && fresh.has_value() && *fresh == old_rows[i]) {
          continue;  // the edit cancelled out for this group
        }
        if (had_old[i]) d.dels.push_back(std::move(old_rows[i]));
        if (fresh.has_value()) d.adds.push_back(std::move(*fresh));
      }
      SortUniqueTuples(&d.adds);
      SortUniqueTuples(&d.dels);
      d.new_view = old_out.ApplyDelta(d.adds, d.dels);
      return d;
    }

    case QueryKind::kWhen:
      return Status::Unimplemented(
          "incremental: residual `when` node in a pure RA plan");
  }
  return Status::Unimplemented("incremental: unknown node kind");
}

Result<NodeDelta> DeltaPropagator::PropagateJoin(const QueryPtr& node,
                                                 const QueryPtr& lhs,
                                                 const QueryPtr& rhs,
                                                 const ScalarExprPtr& pred) {
  HQL_ASSIGN_OR_RETURN(NodeDelta l, Propagate(lhs));
  HQL_ASSIGN_OR_RETURN(NodeDelta r, Propagate(rhs));
  HQL_ASSIGN_OR_RETURN(RelationView old_out, OldOf(node));
  size_t lhs_arity = l.old_view.arity();
  NodeDelta d;
  d.old_view = old_out;
  // Deletions pair against the *old* other side (the tuples the cached
  // output was built from); additions pair against the *new* other side so
  // add x add combinations appear exactly once each... and twice across the
  // two calls, which the sort-unique collapses. Concatenated tuples split
  // uniquely at the fixed arity boundary, so no support counting is needed.
  HQL_ASSIGN_OR_RETURN(
      std::vector<Tuple> del_left,
      JoinEditAgainst(l.dels, r.old_view, pred, true, lhs_arity));
  HQL_ASSIGN_OR_RETURN(
      std::vector<Tuple> del_right,
      JoinEditAgainst(r.dels, l.old_view, pred, false, lhs_arity));
  d.dels = std::move(del_left);
  d.dels.insert(d.dels.end(), std::make_move_iterator(del_right.begin()),
                std::make_move_iterator(del_right.end()));
  SortUniqueTuples(&d.dels);
  HQL_ASSIGN_OR_RETURN(
      std::vector<Tuple> add_left,
      JoinEditAgainst(l.adds, r.new_view, pred, true, lhs_arity));
  HQL_ASSIGN_OR_RETURN(
      std::vector<Tuple> add_right,
      JoinEditAgainst(r.adds, l.new_view, pred, false, lhs_arity));
  d.adds = std::move(add_left);
  d.adds.insert(d.adds.end(), std::make_move_iterator(add_right.begin()),
                std::make_move_iterator(add_right.end()));
  SortUniqueTuples(&d.adds);
  d.new_view = old_out.ApplyDelta(d.adds, d.dels);
  return d;
}

Result<std::vector<Tuple>> DeltaPropagator::JoinEditAgainst(
    const std::vector<Tuple>& edit, const RelationView& other,
    const ScalarExprPtr& pred, bool edit_on_left, size_t lhs_arity) {
  std::vector<Tuple> out;
  if (edit.empty() || other.empty()) return out;

  std::vector<std::pair<size_t, size_t>> equi;
  std::vector<ScalarExprPtr> residual;
  SplitJoinPredicate(pred, lhs_arity, &equi, &residual);

  // (other-side column, edit-side column) per equality conjunct;
  // SplitJoinPredicate already rebased the right column onto the rhs tuple.
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(equi.size());
  for (const auto& [lc, rc] : equi) {
    pairs.push_back(edit_on_left ? std::make_pair(rc, lc)
                                 : std::make_pair(lc, rc));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end(),
                          [](const auto& a, const auto& b) {
                            return a.first == b.first;
                          }),
              pairs.end());

  auto emit = [&](const Tuple& e, const Tuple& o) {
    Tuple combined = edit_on_left ? ConcatTuples(e, o) : ConcatTuples(o, e);
    if (pred == nullptr || pred->EvaluatesTrue(combined)) {
      out.push_back(std::move(combined));
    }
  };

  if (!pairs.empty()) {
    std::vector<size_t> other_cols;
    other_cols.reserve(pairs.size());
    for (const auto& [oc, ec] : pairs) other_cols.push_back(oc);
    auto edit_key = [&](const Tuple& e) {
      Tuple key;
      key.reserve(pairs.size());
      for (const auto& [oc, ec] : pairs) key.push_back(e[ec]);
      return key;
    };

    // Index-probe path: a flat other side whose base already carries an
    // index on exactly the equated columns answers each edit tuple in
    // ~O(matches) — the RelationIndex probe the point lookups share.
    if (other.is_flat()) {
      if (RelationIndexPtr index = other.base()->ExistingIndex(other_cols)) {
        const std::vector<Tuple>& base_tuples = other.base()->tuples();
        for (const Tuple& e : edit) {
          RelationIndex::PosSpan span = index->Probe(edit_key(e));
          AddIndexTuplesSkipped(base_tuples.size() - span.size());
          for (uint32_t pos : span) {
            HQL_RETURN_IF_ERROR(TickGovernor());
            emit(e, base_tuples[pos]);
          }
        }
        return out;
      }
    }

    // Hash path: key the (small) edit, scan the other side once.
    std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> buckets;
    for (const Tuple& e : edit) buckets[edit_key(e)].push_back(&e);
    for (const Tuple& o : other) {
      HQL_RETURN_IF_ERROR(TickGovernor());
      Tuple key;
      key.reserve(other_cols.size());
      for (size_t c : other_cols) key.push_back(o[c]);
      auto it = buckets.find(key);
      if (it == buckets.end()) continue;
      for (const Tuple* e : it->second) emit(*e, o);
    }
    return out;
  }

  // No equality conjunct: nested loop, still bounded by |edit| x |other|.
  for (const Tuple& e : edit) {
    for (const Tuple& o : other) {
      HQL_RETURN_IF_ERROR(TickGovernor());
      emit(e, o);
    }
  }
  return out;
}

Result<RelationView> DeltaPropagator::OldOf(const QueryPtr& node) {
  auto it = attempt_.entry->node_values.find(node->Fingerprint());
  if (it == attempt_.entry->node_values.end()) {
    return Status::Unimplemented(
        "incremental: node output not covered by the cached execution");
  }
  return it->second;
}

}  // namespace

Result<IncrementalAttempt> ComputeIncrementalEdits(const QueryPtr& query,
                                                   const Database& db,
                                                   IncrementalCache* cache) {
  IncrementalAttempt attempt;
  if (query == nullptr || cache == nullptr) return attempt;
  std::set<std::string> names;
  bool pure = CollectLeafNames(query, &names);
  for (const std::string& name : names) {
    HQL_ASSIGN_OR_RETURN(RelationView view, db.GetView(name));
    attempt.inputs.insert_or_assign(name, std::move(view));
  }
  attempt.entry = cache->Lookup(query->Fingerprint());
  if (attempt.entry == nullptr || !pure) return attempt;
  bool patchable = true;
  for (const auto& [name, view] : attempt.inputs) {
    auto it = attempt.entry->inputs.find(name);
    if (it == attempt.entry->inputs.end()) {
      patchable = false;
      break;
    }
    std::optional<RelationEdit> edit = OverlayEditBetween(it->second, view);
    if (!edit.has_value()) {
      // A consolidation (or a relation swap) replaced the shared base in
      // between: no O(|edit|) difference exists.
      patchable = false;
      break;
    }
    if (edit->empty()) continue;
    attempt.edit_tuples += edit->size();
    attempt.changed_relation_tuples += view.size();
    attempt.edits.insert_or_assign(name, std::move(*edit));
  }
  attempt.patchable = patchable;
  return attempt;
}

Result<RelationView> ApplyIncrementalPatch(const QueryPtr& query,
                                           const IncrementalAttempt& attempt,
                                           uint64_t new_state_fingerprint,
                                           IncrementalCache* cache) {
  if (!attempt.patchable || attempt.entry == nullptr) {
    return Status::Internal(
        "ApplyIncrementalPatch requires a patchable attempt");
  }
  HQL_FAIL_POINT(kFailPointMemoPatch);
  // An armed failpoint trips the ambient governor; surface it here before
  // touching the cached result. Without a governor the fire is only
  // counted and the patch proceeds — exactly what a production build does.
  HQL_RETURN_IF_ERROR(GovernorCheck());
  TraceSpan span("incremental-patch", attempt.edit_tuples);
  DeltaPropagator propagator(attempt);
  Result<NodeDelta> root = propagator.Propagate(query);
  if (!root.ok()) return root.status();

  auto entry = std::make_shared<IncrementalEntry>();
  entry->inputs = attempt.inputs;
  entry->node_values = propagator.TakeNodeValues();
  entry->result = root->new_view;
  entry->state_fingerprint = new_state_fingerprint;
  if (cache != nullptr) cache->Insert(query->Fingerprint(), std::move(entry));

  ExecContext& ctx = AmbientExecContext();
  ctx.AddIncrementalResultPatched();
  ctx.AddIncrementalEditsPropagated(propagator.edits_propagated());
  span.set_rows_out(root->new_view.size());
  return root->new_view;
}

}  // namespace hql
