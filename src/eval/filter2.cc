#include "eval/filter2.h"

#include "common/check.h"
#include "common/governor.h"
#include "eval/ra_eval.h"
#include "hql/enf.h"

namespace hql {

namespace {

// Resolves base names through the xsub environment, falling back to the
// database (the "filtering" of eval_filter_x).
class XsubResolver : public RelResolver {
 public:
  XsubResolver(const Database& db, const XsubValue& env)
      : db_(&db), env_(&env) {}

  Result<RelationView> Resolve(const std::string& name) const override {
    RelationPtr bound = env_->GetShared(name);
    if (bound != nullptr) return RelationView(std::move(bound));
    return db_->GetView(name);
  }

 private:
  const Database* db_;
  const XsubValue* env_;
};

Result<RelationView> F2(const CollapsedPtr& node, const Database& db,
                        const XsubValue& env) {
  HQL_RETURN_IF_ERROR(GovernorCheck());
  if (node->kind == CollapsedKind::kBlock) {
    XsubResolver base(db, env);
    OverlayResolver resolver(base);
    for (size_t i = 0; i < node->holes.size(); ++i) {
      HQL_ASSIGN_OR_RETURN(RelationView hole, F2(node->holes[i], db, env));
      resolver.Bind(PlaceholderName(i), std::move(hole));
    }
    return EvalRaView(node->block, resolver, EvalMemo{});
  }
  // kWhen.
  if (node->state_is_update) {
    return Status::InvalidArgument(
        "Filter2 evaluates ENF trees; update states (mod-ENF) are the "
        "domain of Filter3");
  }
  XsubValue e_val;
  for (const CollapsedBinding& b : node->bindings) {
    HQL_ASSIGN_OR_RETURN(RelationView v, F2(b.value, db, env));
    e_val.Bind(b.rel_name, v.Shared());
  }
  return F2(node->input, db, env.SmashWith(e_val));
}

}  // namespace

Result<Relation> RunFilter2(const QueryPtr& query, const Database& db,
                            const Schema& schema,
                            const Filter2Options& options) {
  CollapsedPtr tree = options.collapsed;
  if (tree == nullptr) {
    if (query == nullptr) {
      return Status::InvalidArgument("Filter2: query must not be null");
    }
    if (!IsEnf(query)) {
      return Status::InvalidArgument("Filter2 requires an ENF query");
    }
    HQL_ASSIGN_OR_RETURN(tree, Collapse(query, schema));
  }
  const XsubValue empty;
  HQL_ASSIGN_OR_RETURN(
      RelationView out,
      F2(tree, db, options.env != nullptr ? *options.env : empty));
  HQL_RETURN_IF_ERROR(GovernorCheck());
  return out.Materialize();
}

}  // namespace hql
