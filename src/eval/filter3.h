#ifndef HQL_EVAL_FILTER3_H_
#define HQL_EVAL_FILTER3_H_

// Algorithm HQL-3 (paper Section 5.5, Figure 4): evaluates a collapsed
// mod-ENF tree using delta values instead of xsub-values. Hypothetical
// states appear as chains of atomic inserts/deletes; each atom's argument
// is evaluated under the accumulated delta and contributes an (I, D)
// fragment, smashed left to right:
//
//   filter3({del(R,Q)}, D)  = {(filter3(Q, D), 0)/R}
//   filter3({ins(R,Q)}, D)  = {(0, filter3(Q, D))/R}
//   filter3({U; A}, D)      = filter3({U}, D) !
//                             filter3({A}, D ! filter3({U}, D))
//   filter3(Q when {U}, D)  = filter3(Q, D ! filter3({U}, D))
//
// Pure-RA blocks are evaluated with eval_filter_d, whose join-when /
// select-when operators stream the deltas instead of materializing
// hypothetical relations — the source of the Section 5.5 performance gain
// for small updates.

#include "ast/forward.h"
#include "common/result.h"
#include "eval/delta.h"
#include "hql/collapse.h"
#include "storage/database.h"
#include "storage/index.h"

namespace hql {

/// Convenience entry point: converts `query` to mod-ENF (preferred: atom
/// arguments become the delta sets directly) or, when the query contains
/// explicit substitutions, to ENF — whose substitutions are then captured
/// by the *precise* deltas of Section 5.5 (R_D = base - V, R_I = V - base);
/// collapses and evaluates. Total over all of HQL. `config` (default off)
/// lets the RA blocks probe base-relation indexes through eval_filter_d.
Result<Relation> Filter3(const QueryPtr& query, const Database& db,
                         const Schema& schema,
                         const IndexConfig& config = IndexConfig());

/// Evaluates an already collapsed mod-ENF tree.
Result<Relation> Filter3Collapsed(const CollapsedPtr& tree, const Database& db,
                                  const IndexConfig& config = IndexConfig());

/// Worker with an explicit delta environment, exposed for tests.
Result<Relation> Filter3WithEnv(const CollapsedPtr& tree, const Database& db,
                                const DeltaValue& env,
                                const IndexConfig& config = IndexConfig());

}  // namespace hql

#endif  // HQL_EVAL_FILTER3_H_
