#ifndef HQL_EVAL_FILTER3_H_
#define HQL_EVAL_FILTER3_H_

// Algorithm HQL-3 (paper Section 5.5, Figure 4): evaluates a collapsed
// mod-ENF tree using delta values instead of xsub-values. Hypothetical
// states appear as chains of atomic inserts/deletes; each atom's argument
// is evaluated under the accumulated delta and contributes an (I, D)
// fragment, smashed left to right:
//
//   filter3({del(R,Q)}, D)  = {(filter3(Q, D), 0)/R}
//   filter3({ins(R,Q)}, D)  = {(0, filter3(Q, D))/R}
//   filter3({U; A}, D)      = filter3({U}, D) !
//                             filter3({A}, D ! filter3({U}, D))
//   filter3(Q when {U}, D)  = filter3(Q, D ! filter3({U}, D))
//
// Pure-RA blocks are evaluated with eval_filter_d, whose join-when /
// select-when operators stream the deltas instead of materializing
// hypothetical relations — the source of the Section 5.5 performance gain
// for small updates.

#include "ast/forward.h"
#include "common/result.h"
#include "eval/delta.h"
#include "hql/collapse.h"
#include "storage/column_batch.h"
#include "storage/database.h"
#include "storage/index.h"

namespace hql {

/// Options for RunFilter3 — the single HQL-3 entry point.
struct Filter3Options {
  /// Explicit delta environment (tests / recursive callers); null = empty.
  /// Caller-owned; must outlive the call.
  const DeltaValue* env = nullptr;
  /// Already collapsed mod-ENF tree. When set, `query` is ignored and the
  /// normalize + Collapse step is skipped.
  CollapsedPtr collapsed;
  /// Index policy for the RA blocks (default off).
  IndexConfig indexes;
  /// Columnar/vectorized execution policy for the RA blocks (default off).
  ColumnarConfig columnar;
};

/// Evaluates `query` in `db` with algorithm HQL-3: converts to mod-ENF
/// (preferred: atom arguments become the delta sets directly) or, when the
/// query contains explicit substitutions, to ENF — whose substitutions are
/// then captured by the *precise* deltas of Section 5.5 (R_D = base - V,
/// R_I = V - base); collapses and evaluates with delta-streaming operators.
/// Total over all of HQL.
Result<Relation> RunFilter3(const QueryPtr& query, const Database& db,
                            const Schema& schema,
                            const Filter3Options& options = {});

}  // namespace hql

#endif  // HQL_EVAL_FILTER3_H_
