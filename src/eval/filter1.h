#ifndef HQL_EVAL_FILTER1_H_
#define HQL_EVAL_FILTER1_H_

// Algorithm HQL-1 (paper Section 5.4, Figure 3): evaluates an ENF query by
// a depth-first traversal that filters every base-relation access through
// an xsub-value environment:
//
//   filter1(R, E)           = E(R) if bound, DB(R) otherwise
//   filter1(u_op(Q), E)     = u_op(filter1(Q, E))
//   filter1(Q1 b_op Q2, E)  = filter1(Q1, E) b_op filter1(Q2, E)
//   filter1(Q when e, E)    = filter1(Q, E ! filter1(e, E))
//
// where filter1(e, E) materializes each binding of the explicit
// substitution e under E. The `when` case smashes together all xsub-values
// in scope — the behavior of the Heraclitus run-time when stack.
//
// HQL-1 evaluates strictly one algebra node at a time (no operator
// clustering); Algorithm HQL-2 (filter2.h) improves on exactly that.

#include "ast/forward.h"
#include "common/result.h"
#include "eval/xsub.h"
#include "storage/database.h"

namespace hql {

/// Options for RunFilter1 — the single HQL-1 entry point.
struct Filter1Options {
  /// Explicit xsub environment to filter through (worker invocation: the
  /// ENF shape check is skipped, matching the recursive case where subtrees
  /// are evaluated under accumulated bindings). Null = empty environment
  /// with the ENF check enforced. Caller-owned; must outlive the call.
  const XsubValue* env = nullptr;
};

/// Evaluates `query` in `db` with algorithm HQL-1. Without an env the query
/// must be ENF (InvalidArgument otherwise).
Result<Relation> RunFilter1(const QueryPtr& query, const Database& db,
                            const Filter1Options& options = {});

}  // namespace hql

#endif  // HQL_EVAL_FILTER1_H_
