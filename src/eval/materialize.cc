#include "eval/materialize.h"

#include <memory>
#include <utility>

#include "ast/hypo.h"
#include "common/strings.h"
#include "eval/direct.h"
#include "hql/free_dom.h"

namespace hql {

namespace {

// Tag separating state-materialization entries from query-subplan entries
// in a shared MemoCache.
constexpr uint64_t kStateEntryTag = 0x1BD11BDAA9FC1A22ULL;

uint64_t StateEntryKey(uint64_t state_hash, uint64_t db_fingerprint,
                       const std::string& name) {
  return MemoKey(HashCombine(HashCombine(kStateEntryTag, state_hash),
                             HashString(name)),
                 db_fingerprint);
}

// Evaluates one non-compose state against `db`, serving the written
// relations from `memo` when the same (state, database-content) pair was
// evaluated before. Updates only write names in dom(state), so a database
// copy with the cached dom relations re-bound reconstructs the full result.
Result<Database> EvalAtomicStateMemo(const HypoExprPtr& state,
                                     const Database& db, MemoCache* memo) {
  const NameSet dom = DomNames(state);
  const uint64_t state_hash = state->Hash();
  const uint64_t db_fp = FingerprintState(db);

  Database out = db;
  bool all_cached = !dom.empty();
  for (const std::string& name : dom) {
    std::shared_ptr<const Relation> hit =
        memo->Lookup(StateEntryKey(state_hash, db_fp, name));
    if (hit == nullptr) {
      all_cached = false;
      break;
    }
    HQL_RETURN_IF_ERROR(out.Set(name, *hit));
  }
  if (all_cached) return out;

  HQL_ASSIGN_OR_RETURN(Database moved, EvalState(state, db));
  for (const std::string& name : dom) {
    HQL_ASSIGN_OR_RETURN(Relation value, moved.Get(name));
    memo->Insert(StateEntryKey(state_hash, db_fp, name),
                 std::make_shared<const Relation>(std::move(value)));
  }
  return moved;
}

}  // namespace

Result<Database> EvalStateMemo(const HypoExprPtr& state, const Database& db,
                               MemoCache* memo) {
  if (memo == nullptr) return EvalState(state, db);
  if (state->kind() == HypoKind::kCompose) {
    HQL_ASSIGN_OR_RETURN(Database mid,
                         EvalStateMemo(state->first(), db, memo));
    return EvalStateMemo(state->second(), mid, memo);
  }
  return EvalAtomicStateMemo(state, db, memo);
}

Result<XsubValue> MaterializeXsub(const HypoExprPtr& state,
                                  const Database& db, const Schema& schema,
                                  MemoCache* memo) {
  (void)schema;  // names are validated by evaluation itself
  HQL_ASSIGN_OR_RETURN(Database moved, EvalStateMemo(state, db, memo));
  XsubValue out;
  for (const std::string& name : DomNames(state)) {
    HQL_ASSIGN_OR_RETURN(Relation value, moved.Get(name));
    out.Bind(name, std::move(value));
  }
  return out;
}

Result<DeltaValue> MaterializeDelta(const HypoExprPtr& state,
                                    const Database& db,
                                    const Schema& schema,
                                    MemoCache* memo) {
  HQL_ASSIGN_OR_RETURN(XsubValue xsub,
                       MaterializeXsub(state, db, schema, memo));
  DeltaValue out;
  for (const auto& [name, value] : xsub.values()) {
    HQL_ASSIGN_OR_RETURN(Relation base, db.Get(name));
    out.Bind(name, DeltaPair(base.DifferenceWith(value),
                             value.DifferenceWith(base)));
  }
  return out;
}

}  // namespace hql
