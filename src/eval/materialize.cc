#include "eval/materialize.h"

#include "ast/hypo.h"
#include "eval/direct.h"
#include "hql/free_dom.h"

namespace hql {

Result<XsubValue> MaterializeXsub(const HypoExprPtr& state,
                                  const Database& db, const Schema& schema) {
  (void)schema;  // names are validated by evaluation itself
  HQL_ASSIGN_OR_RETURN(Database moved, EvalState(state, db));
  XsubValue out;
  for (const std::string& name : DomNames(state)) {
    HQL_ASSIGN_OR_RETURN(Relation value, moved.Get(name));
    out.Bind(name, std::move(value));
  }
  return out;
}

Result<DeltaValue> MaterializeDelta(const HypoExprPtr& state,
                                    const Database& db,
                                    const Schema& schema) {
  HQL_ASSIGN_OR_RETURN(XsubValue xsub, MaterializeXsub(state, db, schema));
  DeltaValue out;
  for (const auto& [name, value] : xsub.values()) {
    HQL_ASSIGN_OR_RETURN(Relation base, db.Get(name));
    out.Bind(name, DeltaPair(base.DifferenceWith(value),
                             value.DifferenceWith(base)));
  }
  return out;
}

}  // namespace hql
