#include "eval/materialize.h"

#include <memory>
#include <utility>

#include "ast/hypo.h"
#include "common/governor.h"
#include "common/strings.h"
#include "eval/direct.h"
#include "hql/free_dom.h"

namespace hql {

namespace {

// Tag separating state-materialization entries from query-subplan entries
// in a shared MemoCache.
constexpr uint64_t kStateEntryTag = 0x1BD11BDAA9FC1A22ULL;

uint64_t StateEntryKey(uint64_t state_hash, uint64_t db_fingerprint,
                       const std::string& name) {
  return MemoKey(HashCombine(HashCombine(kStateEntryTag, state_hash),
                             HashString(name)),
                 db_fingerprint);
}

// Evaluates one non-compose state against `db`, serving the written
// relations from `memo` when the same (state, database-content) pair was
// evaluated before. Updates only write names in dom(state), so a database
// copy with the cached dom relations re-bound reconstructs the full result.
Result<Database> EvalAtomicStateMemo(const HypoExprPtr& state,
                                     const Database& db, MemoCache* memo) {
  const NameSet dom = DomNames(state);
  const uint64_t state_hash = state->Hash();
  const uint64_t db_fp = FingerprintState(db);

  Database out = db;
  bool all_cached = !dom.empty();
  for (const std::string& name : dom) {
    std::shared_ptr<const Relation> hit =
        memo->Lookup(StateEntryKey(state_hash, db_fp, name));
    if (hit == nullptr) {
      all_cached = false;
      break;
    }
    // A hit re-binds the cached relation by reference — no tuple copies.
    HQL_RETURN_IF_ERROR(out.SetShared(name, std::move(hit)));
  }
  if (all_cached) return out;

  HQL_ASSIGN_OR_RETURN(Database moved, EvalState(state, db));
  for (const std::string& name : dom) {
    // Shared() consolidates an overlay once into the view's flat cache (the
    // memo stores flat relations); the cache entry and `moved` share it.
    HQL_ASSIGN_OR_RETURN(RelationView value, moved.GetView(name));
    memo->Insert(StateEntryKey(state_hash, db_fp, name), value.Shared());
  }
  return moved;
}

}  // namespace

Result<Database> EvalStateMemo(const HypoExprPtr& state, const Database& db,
                               MemoCache* memo) {
  HQL_RETURN_IF_ERROR(GovernorCheck());
  if (memo == nullptr) return EvalState(state, db);
  if (state->kind() == HypoKind::kCompose) {
    HQL_ASSIGN_OR_RETURN(Database mid,
                         EvalStateMemo(state->first(), db, memo));
    return EvalStateMemo(state->second(), mid, memo);
  }
  return EvalAtomicStateMemo(state, db, memo);
}

Result<XsubValue> MaterializeXsub(const HypoExprPtr& state,
                                  const Database& db, const Schema& schema,
                                  MemoCache* memo) {
  (void)schema;  // names are validated by evaluation itself
  HQL_ASSIGN_OR_RETURN(Database moved, EvalStateMemo(state, db, memo));
  XsubValue out;
  for (const std::string& name : DomNames(state)) {
    // Flat results bind by refcount bump; overlays consolidate once into
    // the view's shared flat cache.
    HQL_ASSIGN_OR_RETURN(RelationView value, moved.GetView(name));
    out.Bind(name, value.Shared());
  }
  return out;
}

Result<DeltaValue> MaterializeDelta(const HypoExprPtr& state,
                                    const Database& db,
                                    const Schema& schema,
                                    MemoCache* memo) {
  (void)schema;
  HQL_ASSIGN_OR_RETURN(Database moved, EvalStateMemo(state, db, memo));
  DeltaValue out;
  for (const std::string& name : DomNames(state)) {
    HQL_ASSIGN_OR_RETURN(RelationView after, moved.GetView(name));
    HQL_ASSIGN_OR_RETURN(RelationView before, db.GetView(name));
    if (before.is_flat() && after.base() == before.base()) {
      // The written relation is an overlay on the unchanged base, so its
      // canonical add/del vectors *are* the paper's precise deltas
      // R_D = DB(R) − V and R_I = V − DB(R) — extracted in O(|edge delta|)
      // without touching the base (even when the overlay is empty: the
      // state wrote the relation back unchanged).
      out.Bind(name,
               DeltaPair(Relation::FromSortedUnique(after.arity(),
                                                    after.dels()),
                         Relation::FromSortedUnique(after.arity(),
                                                    after.adds())));
    } else {
      // Representations diverged (consolidation, memo hit, substitution):
      // fall back to a streaming two-sided difference.
      out.Bind(name, DeltaPair(ViewDifference(before, after),
                               ViewDifference(after, before)));
    }
  }
  return out;
}

}  // namespace hql
