#ifndef HQL_EVAL_DELTA_H_
#define HQL_EVAL_DELTA_H_

// Delta values in the sense of Heraclitus (paper Section 5.5): partial maps
// from relation names to pairs (D, I) of relations of the relation's arity,
// with
//
//   apply(DB, Delta)(R) = (DB(R) - R_D) u R_I
//
// and smash
//
//   (Delta1 ! Delta2): R_D = (R_D1 - R_I2) u R_D2
//                      R_I = (R_I1 - R_D2) u R_I2.
//
// Unlike Heraclitus we do not require R_D and R_I to be disjoint (the paper
// makes the same relaxation). When the hypothetical update touches a small
// fraction of the data, deltas are far cheaper than xsub-values, which
// materialize entire new relation values.

#include <cstdint>
#include <map>
#include <string>

#include "storage/database.h"
#include "storage/relation.h"

namespace hql {

/// The (deletes, inserts) pair for one relation.
struct DeltaPair {
  Relation del;
  Relation ins;

  explicit DeltaPair(size_t arity) : del(arity), ins(arity) {}
  DeltaPair(Relation d, Relation i) : del(std::move(d)), ins(std::move(i)) {}
};

class DeltaValue {
 public:
  DeltaValue() = default;

  bool empty() const { return pairs_.empty(); }
  size_t size() const { return pairs_.size(); }

  bool Has(const std::string& name) const { return pairs_.count(name) > 0; }

  /// The delta pair for `name`, or nullptr when the delta leaves it alone.
  const DeltaPair* Get(const std::string& name) const;

  /// Binds (smash-assigns would be SmashWith) a delta pair for `name`;
  /// replaces any existing pair.
  void Bind(const std::string& name, DeltaPair pair);

  /// this ! later.
  DeltaValue SmashWith(const DeltaValue& later) const;

  /// apply(base, this-pair-for-name): (base - D) u I.
  Relation ApplyToRelation(const Relation& base,
                           const std::string& name) const;

  /// apply(DB, Delta).
  Result<Database> ApplyTo(const Database& db) const;

  /// Total tuples across all D and I relations (cost accounting).
  uint64_t TotalTuples() const;

  const std::map<std::string, DeltaPair>& pairs() const { return pairs_; }

  std::string ToString() const;

 private:
  std::map<std::string, DeltaPair> pairs_;
};

}  // namespace hql

#endif  // HQL_EVAL_DELTA_H_
