#include "eval/direct.h"

#include <utility>
#include <vector>

#include "ast/hypo.h"
#include "ast/query.h"
#include "ast/update.h"
#include "common/check.h"
#include "common/governor.h"
#include "eval/ra_eval.h"
#include "hql/free_dom.h"

namespace hql {

Result<Relation> EvalDirect(const QueryPtr& query, const Database& db) {
  if (query == nullptr) {
    return Status::InvalidArgument("EvalDirect: query must not be null");
  }
  HQL_RETURN_IF_ERROR(GovernorCheck());
  switch (query->kind()) {
    case QueryKind::kRel:
      return db.Get(query->rel_name());
    case QueryKind::kEmpty:
      return Relation(query->empty_arity());
    case QueryKind::kSingleton:
      return Relation::FromTuples(query->tuple().size(), {query->tuple()});
    case QueryKind::kSelect: {
      HQL_ASSIGN_OR_RETURN(Relation in, EvalDirect(query->left(), db));
      return FilterRelation(in, *query->predicate());
    }
    case QueryKind::kProject: {
      HQL_ASSIGN_OR_RETURN(Relation in, EvalDirect(query->left(), db));
      return ProjectRelation(in, query->columns());
    }
    case QueryKind::kAggregate: {
      HQL_ASSIGN_OR_RETURN(Relation in, EvalDirect(query->left(), db));
      return AggregateRelation(in, query->columns(), query->agg_func(),
                               query->agg_column());
    }
    case QueryKind::kUnion: {
      HQL_ASSIGN_OR_RETURN(Relation l, EvalDirect(query->left(), db));
      HQL_ASSIGN_OR_RETURN(Relation r, EvalDirect(query->right(), db));
      return l.UnionWith(r);
    }
    case QueryKind::kIntersect: {
      HQL_ASSIGN_OR_RETURN(Relation l, EvalDirect(query->left(), db));
      HQL_ASSIGN_OR_RETURN(Relation r, EvalDirect(query->right(), db));
      return l.IntersectWith(r);
    }
    case QueryKind::kProduct: {
      HQL_ASSIGN_OR_RETURN(Relation l, EvalDirect(query->left(), db));
      HQL_ASSIGN_OR_RETURN(Relation r, EvalDirect(query->right(), db));
      return l.ProductWith(r);
    }
    case QueryKind::kJoin: {
      HQL_ASSIGN_OR_RETURN(Relation l, EvalDirect(query->left(), db));
      HQL_ASSIGN_OR_RETURN(Relation r, EvalDirect(query->right(), db));
      return JoinRelations(l, r, query->predicate());
    }
    case QueryKind::kDifference: {
      HQL_ASSIGN_OR_RETURN(Relation l, EvalDirect(query->left(), db));
      HQL_ASSIGN_OR_RETURN(Relation r, EvalDirect(query->right(), db));
      return l.DifferenceWith(r);
    }
    case QueryKind::kWhen: {
      HQL_ASSIGN_OR_RETURN(Database hypo, EvalState(query->state(), db));
      return EvalDirect(query->left(), hypo);
    }
  }
  return Status::Internal("unknown query kind in EvalDirect");
}

Result<Database> ExecUpdate(const UpdatePtr& update, const Database& db) {
  if (update == nullptr) {
    return Status::InvalidArgument("ExecUpdate: update must not be null");
  }
  HQL_RETURN_IF_ERROR(GovernorCheck());
  switch (update->kind()) {
    case UpdateKind::kInsert: {
      // DB[R <- R u Q]: the update argument becomes an add-overlay on the
      // shared base — O(|arg|), never a copy of R.
      HQL_ASSIGN_OR_RETURN(Relation arg, EvalDirect(update->query(), db));
      HQL_ASSIGN_OR_RETURN(RelationView base, db.GetView(update->rel_name()));
      Database out = db;
      HQL_RETURN_IF_ERROR(
          out.SetView(update->rel_name(), base.ApplyDelta(arg.tuples(), {})));
      return out;
    }
    case UpdateKind::kDelete: {
      // DB[R <- R - Q]: a del-overlay on the shared base.
      HQL_ASSIGN_OR_RETURN(Relation arg, EvalDirect(update->query(), db));
      HQL_ASSIGN_OR_RETURN(RelationView base, db.GetView(update->rel_name()));
      Database out = db;
      HQL_RETURN_IF_ERROR(
          out.SetView(update->rel_name(), base.ApplyDelta({}, arg.tuples())));
      return out;
    }
    case UpdateKind::kSeq: {
      HQL_ASSIGN_OR_RETURN(Database mid, ExecUpdate(update->first(), db));
      return ExecUpdate(update->second(), mid);
    }
    case UpdateKind::kCond: {
      HQL_ASSIGN_OR_RETURN(Relation guard, EvalDirect(update->guard(), db));
      return ExecUpdate(
          guard.empty() ? update->else_branch() : update->then_branch(), db);
    }
  }
  return Status::Internal("unknown update kind in ExecUpdate");
}

Result<Database> EvalState(const HypoExprPtr& state, const Database& db) {
  if (state == nullptr) {
    return Status::InvalidArgument("EvalState: state must not be null");
  }
  HQL_RETURN_IF_ERROR(GovernorCheck());
  switch (state->kind()) {
    case HypoKind::kUpdateState:
      return ExecUpdate(state->update(), db);
    case HypoKind::kSubst: {
      // Parallel assignment: all bindings evaluate in the original state.
      std::vector<std::pair<std::string, Relation>> values;
      values.reserve(state->bindings().size());
      for (const Binding& b : state->bindings()) {
        HQL_ASSIGN_OR_RETURN(Relation v, EvalDirect(b.query, db));
        values.emplace_back(b.rel_name, std::move(v));
      }
      Database out = db;
      for (auto& [name, value] : values) {
        HQL_RETURN_IF_ERROR(out.Set(name, std::move(value)));
      }
      return out;
    }
    case HypoKind::kCompose: {
      HQL_ASSIGN_OR_RETURN(Database mid, EvalState(state->first(), db));
      return EvalState(state->second(), mid);
    }
    case HypoKind::kStateWhen: {
      // eta1's writes, computed in eta2's world, applied to the current
      // state: [eta1 when eta2](DB) = apply(DB, [eta1]xval([eta2](DB))).
      HQL_ASSIGN_OR_RETURN(Database context, EvalState(state->second(), db));
      HQL_ASSIGN_OR_RETURN(Database moved, EvalState(state->first(), context));
      Database out = db;
      for (const std::string& name : DomNames(state->first())) {
        // Move the written view across, preserving its overlay structure.
        HQL_ASSIGN_OR_RETURN(RelationView value, moved.GetView(name));
        HQL_RETURN_IF_ERROR(out.SetView(name, std::move(value)));
      }
      return out;
    }
  }
  return Status::Internal("unknown hypothetical-state kind in EvalState");
}

Result<Database> ApplySubstitution(const Substitution& subst,
                                   const Database& db) {
  std::vector<std::pair<std::string, Relation>> values;
  for (const auto& [name, query] : subst.bindings()) {
    HQL_ASSIGN_OR_RETURN(Relation v, EvalDirect(query, db));
    values.emplace_back(name, std::move(v));
  }
  Database out = db;
  for (auto& [name, value] : values) {
    HQL_RETURN_IF_ERROR(out.Set(name, std::move(value)));
  }
  return out;
}

}  // namespace hql
