#ifndef HQL_EVAL_FILTER2_H_
#define HQL_EVAL_FILTER2_H_

// Algorithm HQL-2 (paper Section 5.4): like HQL-1, but the ENF syntax tree
// is first collapsed (hql/collapse.h) so that maximal pure-RA regions are
// handed to an optimized relational evaluator (eval_filter_x, realized by
// EvalRa) that may cluster several algebraic operators into one physical
// operation — e.g. a selection over a product runs as a theta join instead
// of materializing the product.
//
//   filter2(Q[S1..Sm, R1..Rk], E) = let Si = filter2(Ti, E) in
//                                   eval_filter_x(Q[S..], E)
//   filter2(when-node, E)         = as filter1, with collapsed bindings.

#include "ast/forward.h"
#include "common/result.h"
#include "eval/xsub.h"
#include "hql/collapse.h"
#include "storage/database.h"

namespace hql {

/// Convenience entry point: collapses `query` (must be ENF) and evaluates.
Result<Relation> Filter2(const QueryPtr& query, const Database& db,
                         const Schema& schema);

/// Evaluates an already collapsed tree.
Result<Relation> Filter2Collapsed(const CollapsedPtr& tree,
                                  const Database& db);

/// Worker with an explicit environment, exposed for tests.
Result<Relation> Filter2WithEnv(const CollapsedPtr& tree, const Database& db,
                                const XsubValue& env);

}  // namespace hql

#endif  // HQL_EVAL_FILTER2_H_
