#ifndef HQL_EVAL_FILTER2_H_
#define HQL_EVAL_FILTER2_H_

// Algorithm HQL-2 (paper Section 5.4): like HQL-1, but the ENF syntax tree
// is first collapsed (hql/collapse.h) so that maximal pure-RA regions are
// handed to an optimized relational evaluator (eval_filter_x, realized by
// EvalRa) that may cluster several algebraic operators into one physical
// operation — e.g. a selection over a product runs as a theta join instead
// of materializing the product.
//
//   filter2(Q[S1..Sm, R1..Rk], E) = let Si = filter2(Ti, E) in
//                                   eval_filter_x(Q[S..], E)
//   filter2(when-node, E)         = as filter1, with collapsed bindings.

#include "ast/forward.h"
#include "common/result.h"
#include "eval/xsub.h"
#include "hql/collapse.h"
#include "storage/database.h"

namespace hql {

/// Options for RunFilter2 — the single HQL-2 entry point.
struct Filter2Options {
  /// Explicit xsub environment to filter through (tests / recursive
  /// callers); null = empty. Caller-owned; must outlive the call.
  const XsubValue* env = nullptr;
  /// Already collapsed tree. When set, `query` is ignored and the
  /// ENF-check + Collapse step is skipped.
  CollapsedPtr collapsed;
};

/// Evaluates `query` in `db` with algorithm HQL-2: collapses the ENF tree
/// (unless options.collapsed supplies one) and evaluates maximal pure-RA
/// blocks through the optimized relational evaluator.
Result<Relation> RunFilter2(const QueryPtr& query, const Database& db,
                            const Schema& schema,
                            const Filter2Options& options = {});

}  // namespace hql

#endif  // HQL_EVAL_FILTER2_H_
