#ifndef HQL_EVAL_FILTER2_H_
#define HQL_EVAL_FILTER2_H_

// Algorithm HQL-2 (paper Section 5.4): like HQL-1, but the ENF syntax tree
// is first collapsed (hql/collapse.h) so that maximal pure-RA regions are
// handed to an optimized relational evaluator (eval_filter_x, realized by
// EvalRa) that may cluster several algebraic operators into one physical
// operation — e.g. a selection over a product runs as a theta join instead
// of materializing the product.
//
//   filter2(Q[S1..Sm, R1..Rk], E) = let Si = filter2(Ti, E) in
//                                   eval_filter_x(Q[S..], E)
//   filter2(when-node, E)         = as filter1, with collapsed bindings.

#include "ast/forward.h"
#include "common/result.h"
#include "eval/xsub.h"
#include "hql/collapse.h"
#include "storage/database.h"

namespace hql {

/// Options for RunFilter2 — the single HQL-2 entry point.
struct Filter2Options {
  /// Explicit xsub environment to filter through (tests / recursive
  /// callers); null = empty. Caller-owned; must outlive the call.
  const XsubValue* env = nullptr;
  /// Already collapsed tree. When set, `query` is ignored and the
  /// ENF-check + Collapse step is skipped.
  CollapsedPtr collapsed;
};

/// Evaluates `query` in `db` with algorithm HQL-2: collapses the ENF tree
/// (unless options.collapsed supplies one) and evaluates maximal pure-RA
/// blocks through the optimized relational evaluator.
Result<Relation> RunFilter2(const QueryPtr& query, const Database& db,
                            const Schema& schema,
                            const Filter2Options& options = {});

// -- legacy entry points, forwarding into RunFilter2 --

/// DEPRECATED: use RunFilter2(query, db, schema).
inline Result<Relation> Filter2(const QueryPtr& query, const Database& db,
                                const Schema& schema) {
  return RunFilter2(query, db, schema);
}

/// DEPRECATED: use RunFilter2 with Filter2Options::collapsed.
inline Result<Relation> Filter2Collapsed(const CollapsedPtr& tree,
                                         const Database& db) {
  Filter2Options options;
  options.collapsed = tree;
  return RunFilter2(nullptr, db, db.schema(), options);
}

/// DEPRECATED: use RunFilter2 with Filter2Options::{collapsed, env}.
inline Result<Relation> Filter2WithEnv(const CollapsedPtr& tree,
                                       const Database& db,
                                       const XsubValue& env) {
  Filter2Options options;
  options.collapsed = tree;
  options.env = &env;
  return RunFilter2(nullptr, db, db.schema(), options);
}

}  // namespace hql

#endif  // HQL_EVAL_FILTER2_H_
