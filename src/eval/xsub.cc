#include "eval/xsub.h"

#include "common/check.h"
#include "common/strings.h"

namespace hql {

const Relation* XsubValue::Get(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? nullptr : it->second.get();
}

RelationPtr XsubValue::GetShared(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? nullptr : it->second;
}

void XsubValue::Bind(const std::string& name, Relation value) {
  Bind(name, std::make_shared<const Relation>(std::move(value)));
}

void XsubValue::Bind(const std::string& name, RelationPtr value) {
  HQL_CHECK(value != nullptr);
  values_.insert_or_assign(name, std::move(value));
}

XsubValue XsubValue::SmashWith(const XsubValue& later) const {
  XsubValue out = *this;
  for (const auto& [name, value] : later.values_) {
    out.values_.insert_or_assign(name, value);
  }
  return out;
}

Result<Database> XsubValue::ApplyTo(const Database& db) const {
  Database out = db;
  for (const auto& [name, value] : values_) {
    HQL_RETURN_IF_ERROR(out.SetShared(name, value));
  }
  return out;
}

uint64_t XsubValue::TotalTuples() const {
  uint64_t n = 0;
  for (const auto& [name, value] : values_) {
    (void)name;
    n += value->size();
  }
  return n;
}

std::string XsubValue::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const auto& [name, value] : values_) {
    parts.push_back(value->ToString() + "/" + name);
  }
  return "{" + Join(parts, ", ") + "}";
}

}  // namespace hql
