#include "eval/memo.h"

#include <utility>

#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/strings.h"

namespace hql {

uint64_t MemoKey(uint64_t query_fingerprint, uint64_t state_fingerprint) {
  return HashCombine(HashCombine(0x452821E638D01377ULL, query_fingerprint),
                     state_fingerprint);
}

// Relations are fingerprinted through RelationView::Fingerprint: flat views
// hash as their base relation (O(1) once cached), overlays combine the base
// hash with the add/del overlay hashes in O(|delta|) — the full state never
// has to be consolidated just to key the cache. Representation differences
// (the same content reached through different base/delta splits) can only
// cause a false miss, never a wrong hit.

uint64_t FingerprintState(const Database& db) {
  uint64_t h = 0xB7E151628AED2A6BULL;
  for (const auto& [name, rel] : db.relations()) {
    h = HashCombine(h, HashString(name));
    h = HashCombine(h, rel.Fingerprint());
  }
  return h;
}

uint64_t FingerprintState(const Database& db, const XsubValue& env) {
  uint64_t h = 0x9216D5D98979FB1BULL;
  for (const auto& [name, rel] : db.relations()) {
    h = HashCombine(h, HashString(name));
    const Relation* bound = env.Get(name);
    h = HashCombine(h, bound != nullptr ? bound->Hash() : rel.Fingerprint());
  }
  // Bindings outside the schema cannot exist (xsubs bind schema names), so
  // the loop above covers the whole environment.
  return h;
}

uint64_t FingerprintState(const Database& db, const DeltaValue& env) {
  uint64_t h = 0x3F84D5B5B5470917ULL;
  for (const auto& [name, rel] : db.relations()) {
    h = HashCombine(h, HashString(name));
    h = HashCombine(h, rel.Fingerprint());
    const DeltaPair* pair = env.Get(name);
    if (pair != nullptr) {
      h = HashCombine(h, pair->del.Hash());
      h = HashCombine(h, pair->ins.Hash());
    }
  }
  return h;
}

MemoCache::MemoCache(size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const Relation> MemoCache::Lookup(uint64_t key) {
  // The cache keeps its own cumulative stats (it outlives executions); the
  // ambient ExecContext additionally attributes each hit/miss to the
  // execution that caused it.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    AmbientExecContext().AddMemoMiss();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  AmbientExecContext().AddMemoHit();
  return it->second->value;
}

void MemoCache::Insert(uint64_t key, std::shared_ptr<const Relation> value) {
  HQL_FAIL_POINT(kFailPointMemoInsert);
  if (capacity_ == 0 || value == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    stats_.cached_tuples -= it->second->value->size();
    stats_.cached_tuples += value->size();
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    const Entry& victim = lru_.back();
    stats_.cached_tuples -= victim.value->size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.cached_tuples += value->size();
  lru_.push_front(Entry{key, std::move(value)});
  index_[key] = lru_.begin();
  ++stats_.insertions;
  stats_.entries = lru_.size();
}

void MemoCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
  stats_.cached_tuples = 0;
}

void MemoCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  Stats fresh;
  fresh.entries = lru_.size();
  for (const Entry& e : lru_) fresh.cached_tuples += e.value->size();
  stats_ = fresh;
}

MemoCache::Stats MemoCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = lru_.size();
  return s;
}

IncrementalCache::IncrementalCache(size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const IncrementalEntry> IncrementalCache::Lookup(
    uint64_t query_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(query_fingerprint);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void IncrementalCache::Insert(uint64_t query_fingerprint,
                              std::shared_ptr<const IncrementalEntry> entry) {
  if (capacity_ == 0 || entry == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(query_fingerprint);
  if (it != index_.end()) {
    it->second->value = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(Entry{query_fingerprint, std::move(entry)});
  index_[query_fingerprint] = lru_.begin();
}

void IncrementalCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t IncrementalCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace hql
