#ifndef HQL_EVAL_XSUB_H_
#define HQL_EVAL_XSUB_H_

// Explicit substitution values, or xsub-values (paper Section 5.3): the
// physical counterparts of explicit substitutions. An xsub-value is a
// partial map from relation names to (materialized) relations, with
//
//   apply(DB, E)(R) = E(R) if bound, DB(R) otherwise
//   (E1 ! E2)(R)    = E2(R) if bound in E2, else E1(R)      ("smash")
//
// The smash equation that drives nested-when evaluation is
//   [(Q when e2) when e1](DB)
//     = [Q](apply(DB, [e1]xval(DB) ! [e2]xval(apply(DB, [e1]xval(DB))))).
//
// Bindings are held as shared immutable relations, so smashing two
// xsub-values or applying one to a database copies pointers, never tuples.

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "storage/database.h"
#include "storage/relation.h"
#include "storage/view.h"

namespace hql {

class XsubValue {
 public:
  XsubValue() = default;

  bool empty() const { return values_.empty(); }
  size_t size() const { return values_.size(); }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  /// The bound relation, or nullptr.
  const Relation* Get(const std::string& name) const;

  /// The bound relation as a shared pointer, or nullptr.
  RelationPtr GetShared(const std::string& name) const;

  void Bind(const std::string& name, Relation value);
  void Bind(const std::string& name, RelationPtr value);

  /// this ! later: later's bindings win. O(bindings) pointer copies.
  XsubValue SmashWith(const XsubValue& later) const;

  /// apply(DB, E); each binding is installed as a shared flat view
  /// (refcount bump, no tuple copies).
  Result<Database> ApplyTo(const Database& db) const;

  /// Total number of materialized tuples (cost accounting in benchmarks).
  uint64_t TotalTuples() const;

  const std::map<std::string, RelationPtr>& values() const { return values_; }

  std::string ToString() const;

 private:
  std::map<std::string, RelationPtr> values_;
};

}  // namespace hql

#endif  // HQL_EVAL_XSUB_H_
