#ifndef HQL_EVAL_SIMD_H_
#define HQL_EVAL_SIMD_H_

// Explicit SIMD kernels for the typed inner loops of the columnar
// executor: selection scans over int64/float64 column arrays and the
// reductions backing global aggregates. Three compile-time tiers, chosen
// once per build:
//
//   AVX2  (4-wide)  — default on x86-64 hosts whose compiler takes -mavx2
//   SSE4  (2-wide)  — x86-64 without AVX2
//   scalar          — everything else, or any build with -DHQL_NO_SIMD
//
// The cmake option HQL_NO_SIMD=ON forces the scalar tier so the fallback
// loops stay covered by the same test suite (CI runs a forced-scalar
// Release gate); SimdIsaName() reports the compiled tier for \analyze and
// the benches.
//
// Exactness contract: every kernel is bit-identical to its scalar loop.
// The comparison scans take a CmpRel that the caller has already resolved
// from (ScalarOp, Value::Compare tie-break) — see ResolveRel in
// vector_exec.cc — so cross-type int/double tie semantics are decided
// before any lane math. Double compares use the *unordered-quiet*
// predicate family (NEQ_UQ, NLE_UQ, NLT_UQ ...), which reproduces the row
// kernel's "NaN compares greater" convention; NaN otherwise cannot occur
// in relation storage at all, because Value::Compare over NaN would break
// the strict weak ordering Relation's sorted-set representation relies
// on. Integer sums accumulate in uint64 (defined wrap) and cast back,
// matching the scalar kernel on every input.

#include <cstddef>
#include <cstdint>
#include <vector>

#if !defined(HQL_NO_SIMD) && defined(__AVX2__)
#define HQL_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(HQL_NO_SIMD) && defined(__SSE4_2__)
#define HQL_SIMD_SSE4 1
#include <nmmintrin.h>
#include <smmintrin.h>
#endif

namespace hql {

/// A comparison relation with any type tie-break already folded in.
/// kAlways/kNever absorb the cases where the tie-break decides the
/// conjunct outright (e.g. int column == non-integral double literal).
enum class CmpRel : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe, kAlways, kNever };

/// The SIMD tier this binary was compiled with.
inline const char* SimdIsaName() {
#if defined(HQL_SIMD_AVX2)
  return "avx2";
#elif defined(HQL_SIMD_SSE4)
  return "sse4";
#else
  return "scalar";
#endif
}

/// Scalar semantics of CmpRel on int64 operands.
inline bool RelHoldsInt64(CmpRel rel, int64_t a, int64_t k) {
  switch (rel) {
    case CmpRel::kEq:
      return a == k;
    case CmpRel::kNe:
      return a != k;
    case CmpRel::kLt:
      return a < k;
    case CmpRel::kLe:
      return a <= k;
    case CmpRel::kGt:
      return a > k;
    case CmpRel::kGe:
      return a >= k;
    case CmpRel::kAlways:
      return true;
    case CmpRel::kNever:
      return false;
  }
  return false;
}

/// Scalar semantics of CmpRel on doubles. kGt/kGe are written as negated
/// kLe/kLt so a NaN operand lands on the "greater" side, exactly like the
/// unordered-quiet SIMD predicates and the row kernel's three-way compare.
inline bool RelHoldsFloat64(CmpRel rel, double a, double d) {
  switch (rel) {
    case CmpRel::kEq:
      return a == d;
    case CmpRel::kNe:
      return a != d;
    case CmpRel::kLt:
      return a < d;
    case CmpRel::kLe:
      return a <= d;
    case CmpRel::kGt:
      return !(a <= d);
    case CmpRel::kGe:
      return !(a < d);
    case CmpRel::kAlways:
      return true;
    case CmpRel::kNever:
      return false;
  }
  return false;
}

namespace simd_internal {

inline void AppendAll(size_t begin, size_t end, std::vector<uint32_t>* sel) {
  for (size_t i = begin; i < end; ++i) {
    sel->push_back(static_cast<uint32_t>(i));
  }
}

inline void EmitMask(unsigned mask, size_t base, std::vector<uint32_t>* sel) {
  while (mask != 0) {
    const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
    sel->push_back(static_cast<uint32_t>(base + bit));
    mask &= mask - 1;
  }
}

}  // namespace simd_internal

#if defined(HQL_SIMD_AVX2)

/// Appends to `sel` (ascending) every i in [begin, end) with v[i] REL k.
inline void SimdScanInt64(const int64_t* v, size_t begin, size_t end,
                          CmpRel rel, int64_t k, std::vector<uint32_t>* sel) {
  if (rel == CmpRel::kAlways) return simd_internal::AppendAll(begin, end, sel);
  if (rel == CmpRel::kNever) return;
  const __m256i kv = _mm256_set1_epi64x(k);
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    unsigned m = 0;
    switch (rel) {
      case CmpRel::kEq:
        m = static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(av, kv))));
        break;
      case CmpRel::kNe:
        m = static_cast<unsigned>(_mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpeq_epi64(av, kv)))) ^
            0xFu;
        break;
      case CmpRel::kGt:
        m = static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpgt_epi64(av, kv))));
        break;
      case CmpRel::kLe:
        m = static_cast<unsigned>(_mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpgt_epi64(av, kv)))) ^
            0xFu;
        break;
      case CmpRel::kLt:
        m = static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpgt_epi64(kv, av))));
        break;
      case CmpRel::kGe:
        m = static_cast<unsigned>(_mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpgt_epi64(kv, av)))) ^
            0xFu;
        break;
      default:
        break;
    }
    simd_internal::EmitMask(m, i, sel);
  }
  for (; i < end; ++i) {
    if (RelHoldsInt64(rel, v[i], k)) sel->push_back(static_cast<uint32_t>(i));
  }
}

/// Appends to `sel` (ascending) every i in [begin, end) with v[i] REL d,
/// NaN treated as greater than everything (unordered-quiet predicates).
inline void SimdScanFloat64(const double* v, size_t begin, size_t end,
                            CmpRel rel, double d, std::vector<uint32_t>* sel) {
  if (rel == CmpRel::kAlways) return simd_internal::AppendAll(begin, end, sel);
  if (rel == CmpRel::kNever) return;
  const __m256d dv = _mm256_set1_pd(d);
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256d av = _mm256_loadu_pd(v + i);
    __m256d c;
    switch (rel) {
      case CmpRel::kEq:
        c = _mm256_cmp_pd(av, dv, _CMP_EQ_OQ);
        break;
      case CmpRel::kNe:
        c = _mm256_cmp_pd(av, dv, _CMP_NEQ_UQ);
        break;
      case CmpRel::kLt:
        c = _mm256_cmp_pd(av, dv, _CMP_LT_OQ);
        break;
      case CmpRel::kLe:
        c = _mm256_cmp_pd(av, dv, _CMP_LE_OQ);
        break;
      case CmpRel::kGt:
        c = _mm256_cmp_pd(av, dv, _CMP_NLE_UQ);
        break;
      case CmpRel::kGe:
        c = _mm256_cmp_pd(av, dv, _CMP_NLT_UQ);
        break;
      default:
        c = _mm256_setzero_pd();
        break;
    }
    simd_internal::EmitMask(static_cast<unsigned>(_mm256_movemask_pd(c)), i,
                            sel);
  }
  for (; i < end; ++i) {
    if (RelHoldsFloat64(rel, v[i], d)) {
      sel->push_back(static_cast<uint32_t>(i));
    }
  }
}

/// Wrapping (mod 2^64) sum of v[0..n), cast back to int64 — identical to
/// the scalar kernel's uint64 accumulation on every input.
inline int64_t SimdSumInt64(const int64_t* v, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += static_cast<uint64_t>(v[i]);
  return static_cast<int64_t>(sum);
}

/// Folds min/max of v[0..n) into *mn / *mx (caller seeds both).
inline void SimdMinMaxInt64(const int64_t* v, size_t n, int64_t* mn,
                            int64_t* mx) {
  size_t i = 0;
  if (n >= 4) {
    __m256i vmn = _mm256_set1_epi64x(*mn);
    __m256i vmx = _mm256_set1_epi64x(*mx);
    for (; i + 4 <= n; i += 4) {
      const __m256i av =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
      vmn = _mm256_blendv_epi8(vmn, av, _mm256_cmpgt_epi64(vmn, av));
      vmx = _mm256_blendv_epi8(vmx, av, _mm256_cmpgt_epi64(av, vmx));
    }
    alignas(32) int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmn);
    for (int64_t lane : lanes) {
      if (lane < *mn) *mn = lane;
    }
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmx);
    for (int64_t lane : lanes) {
      if (lane > *mx) *mx = lane;
    }
  }
  for (; i < n; ++i) {
    if (v[i] < *mn) *mn = v[i];
    if (v[i] > *mx) *mx = v[i];
  }
}

/// Folds min/max of v[0..n) into *mn / *mx (caller seeds both). Assumes
/// no NaN, which relation storage already guarantees (see header note).
inline void SimdMinMaxFloat64(const double* v, size_t n, double* mn,
                              double* mx) {
  size_t i = 0;
  if (n >= 4) {
    __m256d vmn = _mm256_set1_pd(*mn);
    __m256d vmx = _mm256_set1_pd(*mx);
    for (; i + 4 <= n; i += 4) {
      const __m256d av = _mm256_loadu_pd(v + i);
      vmn = _mm256_min_pd(vmn, av);
      vmx = _mm256_max_pd(vmx, av);
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, vmn);
    for (double lane : lanes) {
      if (lane < *mn) *mn = lane;
    }
    _mm256_store_pd(lanes, vmx);
    for (double lane : lanes) {
      if (lane > *mx) *mx = lane;
    }
  }
  for (; i < n; ++i) {
    if (v[i] < *mn) *mn = v[i];
    if (v[i] > *mx) *mx = v[i];
  }
}

#elif defined(HQL_SIMD_SSE4)

inline void SimdScanInt64(const int64_t* v, size_t begin, size_t end,
                          CmpRel rel, int64_t k, std::vector<uint32_t>* sel) {
  if (rel == CmpRel::kAlways) return simd_internal::AppendAll(begin, end, sel);
  if (rel == CmpRel::kNever) return;
  const __m128i kv = _mm_set1_epi64x(k);
  size_t i = begin;
  for (; i + 2 <= end; i += 2) {
    const __m128i av = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    unsigned m = 0;
    switch (rel) {
      case CmpRel::kEq:
        m = static_cast<unsigned>(
            _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(av, kv))));
        break;
      case CmpRel::kNe:
        m = static_cast<unsigned>(_mm_movemask_pd(
                _mm_castsi128_pd(_mm_cmpeq_epi64(av, kv)))) ^
            0x3u;
        break;
      case CmpRel::kGt:
        m = static_cast<unsigned>(
            _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(av, kv))));
        break;
      case CmpRel::kLe:
        m = static_cast<unsigned>(_mm_movemask_pd(
                _mm_castsi128_pd(_mm_cmpgt_epi64(av, kv)))) ^
            0x3u;
        break;
      case CmpRel::kLt:
        m = static_cast<unsigned>(
            _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(kv, av))));
        break;
      case CmpRel::kGe:
        m = static_cast<unsigned>(_mm_movemask_pd(
                _mm_castsi128_pd(_mm_cmpgt_epi64(kv, av)))) ^
            0x3u;
        break;
      default:
        break;
    }
    simd_internal::EmitMask(m, i, sel);
  }
  for (; i < end; ++i) {
    if (RelHoldsInt64(rel, v[i], k)) sel->push_back(static_cast<uint32_t>(i));
  }
}

inline void SimdScanFloat64(const double* v, size_t begin, size_t end,
                            CmpRel rel, double d, std::vector<uint32_t>* sel) {
  if (rel == CmpRel::kAlways) return simd_internal::AppendAll(begin, end, sel);
  if (rel == CmpRel::kNever) return;
  const __m128d dv = _mm_set1_pd(d);
  size_t i = begin;
  for (; i + 2 <= end; i += 2) {
    const __m128d av = _mm_loadu_pd(v + i);
    __m128d c;
    switch (rel) {
      case CmpRel::kEq:
        c = _mm_cmpeq_pd(av, dv);
        break;
      case CmpRel::kNe:
        c = _mm_cmpneq_pd(av, dv);
        break;
      case CmpRel::kLt:
        c = _mm_cmplt_pd(av, dv);
        break;
      case CmpRel::kLe:
        c = _mm_cmple_pd(av, dv);
        break;
      case CmpRel::kGt:
        c = _mm_cmpnle_pd(av, dv);
        break;
      case CmpRel::kGe:
        c = _mm_cmpnlt_pd(av, dv);
        break;
      default:
        c = _mm_setzero_pd();
        break;
    }
    simd_internal::EmitMask(static_cast<unsigned>(_mm_movemask_pd(c)), i, sel);
  }
  for (; i < end; ++i) {
    if (RelHoldsFloat64(rel, v[i], d)) {
      sel->push_back(static_cast<uint32_t>(i));
    }
  }
}

inline int64_t SimdSumInt64(const int64_t* v, size_t n) {
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = _mm_add_epi64(
        acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i)));
  }
  alignas(16) uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  uint64_t sum = lanes[0] + lanes[1];
  for (; i < n; ++i) sum += static_cast<uint64_t>(v[i]);
  return static_cast<int64_t>(sum);
}

inline void SimdMinMaxInt64(const int64_t* v, size_t n, int64_t* mn,
                            int64_t* mx) {
  for (size_t i = 0; i < n; ++i) {
    if (v[i] < *mn) *mn = v[i];
    if (v[i] > *mx) *mx = v[i];
  }
}

inline void SimdMinMaxFloat64(const double* v, size_t n, double* mn,
                              double* mx) {
  size_t i = 0;
  if (n >= 2) {
    __m128d vmn = _mm_set1_pd(*mn);
    __m128d vmx = _mm_set1_pd(*mx);
    for (; i + 2 <= n; i += 2) {
      const __m128d av = _mm_loadu_pd(v + i);
      vmn = _mm_min_pd(vmn, av);
      vmx = _mm_max_pd(vmx, av);
    }
    alignas(16) double lanes[2];
    _mm_store_pd(lanes, vmn);
    for (double lane : lanes) {
      if (lane < *mn) *mn = lane;
    }
    _mm_store_pd(lanes, vmx);
    for (double lane : lanes) {
      if (lane > *mx) *mx = lane;
    }
  }
  for (; i < n; ++i) {
    if (v[i] < *mn) *mn = v[i];
    if (v[i] > *mx) *mx = v[i];
  }
}

#else  // scalar tier

inline void SimdScanInt64(const int64_t* v, size_t begin, size_t end,
                          CmpRel rel, int64_t k, std::vector<uint32_t>* sel) {
  if (rel == CmpRel::kAlways) return simd_internal::AppendAll(begin, end, sel);
  if (rel == CmpRel::kNever) return;
  for (size_t i = begin; i < end; ++i) {
    if (RelHoldsInt64(rel, v[i], k)) sel->push_back(static_cast<uint32_t>(i));
  }
}

inline void SimdScanFloat64(const double* v, size_t begin, size_t end,
                            CmpRel rel, double d, std::vector<uint32_t>* sel) {
  if (rel == CmpRel::kAlways) return simd_internal::AppendAll(begin, end, sel);
  if (rel == CmpRel::kNever) return;
  for (size_t i = begin; i < end; ++i) {
    if (RelHoldsFloat64(rel, v[i], d)) {
      sel->push_back(static_cast<uint32_t>(i));
    }
  }
}

inline int64_t SimdSumInt64(const int64_t* v, size_t n) {
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) sum += static_cast<uint64_t>(v[i]);
  return static_cast<int64_t>(sum);
}

inline void SimdMinMaxInt64(const int64_t* v, size_t n, int64_t* mn,
                            int64_t* mx) {
  for (size_t i = 0; i < n; ++i) {
    if (v[i] < *mn) *mn = v[i];
    if (v[i] > *mx) *mx = v[i];
  }
}

inline void SimdMinMaxFloat64(const double* v, size_t n, double* mn,
                              double* mx) {
  for (size_t i = 0; i < n; ++i) {
    if (v[i] < *mn) *mn = v[i];
    if (v[i] > *mx) *mx = v[i];
  }
}

#endif  // SIMD tier

}  // namespace hql

#endif  // HQL_EVAL_SIMD_H_
