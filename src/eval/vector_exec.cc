#include "eval/vector_exec.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <iterator>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/exec_context.h"
#include "common/governor.h"
#include "common/thread_pool.h"
#include "eval/index_exec.h"
#include "eval/ra_eval.h"

namespace hql {

namespace {

// ---------------------------------------------------------------------------
// Predicate compilation
// ---------------------------------------------------------------------------

bool IsComparison(ScalarOp op) {
  switch (op) {
    case ScalarOp::kEq:
    case ScalarOp::kNe:
    case ScalarOp::kLt:
    case ScalarOp::kLe:
    case ScalarOp::kGt:
    case ScalarOp::kGe:
      return true;
    default:
      return false;
  }
}

// `lit OP col` rewritten as `col OP' lit`.
ScalarOp FlipComparison(ScalarOp op) {
  switch (op) {
    case ScalarOp::kLt:
      return ScalarOp::kGt;
    case ScalarOp::kLe:
      return ScalarOp::kGe;
    case ScalarOp::kGt:
      return ScalarOp::kLt;
    case ScalarOp::kGe:
      return ScalarOp::kLe;
    default:
      return op;  // kEq, kNe are symmetric
  }
}

bool OpHolds(ScalarOp op, int cmp) {
  switch (op) {
    case ScalarOp::kEq:
      return cmp == 0;
    case ScalarOp::kNe:
      return cmp != 0;
    case ScalarOp::kLt:
      return cmp < 0;
    case ScalarOp::kLe:
      return cmp <= 0;
    case ScalarOp::kGt:
      return cmp > 0;
    case ScalarOp::kGe:
      return cmp >= 0;
    default:
      return false;
  }
}

bool TruthyLiteral(const Value& v) { return v.is_bool() && v.AsBool(); }

VectorConjunct ConstConjunct(bool holds) {
  VectorConjunct c;
  c.kind = holds ? VectorConjunct::Kind::kConstTrue
                 : VectorConjunct::Kind::kConstFalse;
  return c;
}

/// Structural pre-check mirroring CompileVectorPredicate's acceptance, so
/// callers can rule vectorization out before paying for a batch build.
bool HasCompilableShape(const ScalarExprPtr& pred) {
  std::vector<ScalarExprPtr> conjuncts;
  FlattenConjuncts(pred, &conjuncts);
  if (conjuncts.empty()) return false;
  for (const ScalarExprPtr& c : conjuncts) {
    if (c->kind() == ScalarKind::kLiteral) continue;
    if (c->kind() != ScalarKind::kBinary || !IsComparison(c->op())) {
      return false;
    }
    const bool col_lit = c->lhs()->kind() == ScalarKind::kColumn &&
                         c->rhs()->kind() == ScalarKind::kLiteral;
    const bool lit_col = c->lhs()->kind() == ScalarKind::kLiteral &&
                         c->rhs()->kind() == ScalarKind::kColumn;
    if (!col_lit && !lit_col) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Batch predicate evaluation
// ---------------------------------------------------------------------------

// The typed scan loops are templated on a comparison functor so each
// (encoding, op) pair compiles into one branch-free tight loop the
// optimizer can unroll and vectorize.

template <typename SrcT, typename Pass>
void ScanTyped(const SrcT* v, size_t begin, size_t end, Pass pass,
               std::vector<uint32_t>* sel) {
  for (size_t i = begin; i < end; ++i) {
    if (pass(v[i])) sel->push_back(static_cast<uint32_t>(i));
  }
}

void ScanIntInt(const int64_t* v, size_t begin, size_t end, ScalarOp op,
                int64_t k, std::vector<uint32_t>* sel) {
  switch (op) {
    case ScalarOp::kEq:
      return ScanTyped(v, begin, end, [k](int64_t a) { return a == k; }, sel);
    case ScalarOp::kNe:
      return ScanTyped(v, begin, end, [k](int64_t a) { return a != k; }, sel);
    case ScalarOp::kLt:
      return ScanTyped(v, begin, end, [k](int64_t a) { return a < k; }, sel);
    case ScalarOp::kLe:
      return ScanTyped(v, begin, end, [k](int64_t a) { return a <= k; }, sel);
    case ScalarOp::kGt:
      return ScanTyped(v, begin, end, [k](int64_t a) { return a > k; }, sel);
    case ScalarOp::kGe:
      return ScanTyped(v, begin, end, [k](int64_t a) { return a >= k; }, sel);
    default:
      break;
  }
}

// Cross-type numeric compare replicating Value::Compare exactly: compare
// as doubles, break exact ties by the type index (int before double).
template <typename SrcT>
void ScanNumDouble(const SrcT* v, size_t begin, size_t end, ScalarOp op,
                   double d, int tie, std::vector<uint32_t>* sel) {
  auto cmp_of = [d, tie](SrcT raw) {
    const double a = static_cast<double>(raw);
    return a == d ? tie : (a < d ? -1 : 1);
  };
  switch (op) {
    case ScalarOp::kEq:
      return ScanTyped(
          v, begin, end, [&](SrcT a) { return cmp_of(a) == 0; }, sel);
    case ScalarOp::kNe:
      return ScanTyped(
          v, begin, end, [&](SrcT a) { return cmp_of(a) != 0; }, sel);
    case ScalarOp::kLt:
      return ScanTyped(
          v, begin, end, [&](SrcT a) { return cmp_of(a) < 0; }, sel);
    case ScalarOp::kLe:
      return ScanTyped(
          v, begin, end, [&](SrcT a) { return cmp_of(a) <= 0; }, sel);
    case ScalarOp::kGt:
      return ScanTyped(
          v, begin, end, [&](SrcT a) { return cmp_of(a) > 0; }, sel);
    case ScalarOp::kGe:
      return ScanTyped(
          v, begin, end, [&](SrcT a) { return cmp_of(a) >= 0; }, sel);
    default:
      break;
  }
}

void ScanConjunct(const ColumnBatch& batch, const VectorConjunct& c,
                  size_t begin, size_t end, std::vector<uint32_t>* sel) {
  switch (c.kind) {
    case VectorConjunct::Kind::kIntInt:
      return ScanIntInt(batch.ints(c.column), begin, end, c.op, c.int_lit,
                        sel);
    case VectorConjunct::Kind::kNumDouble:
      if (batch.encoding(c.column) == ColumnEncoding::kInt64) {
        return ScanNumDouble(batch.ints(c.column), begin, end, c.op, c.dbl_lit,
                             c.tie_cmp, sel);
      }
      return ScanNumDouble(batch.doubles(c.column), begin, end, c.op,
                           c.dbl_lit, c.tie_cmp, sel);
    case VectorConjunct::Kind::kGeneric: {
      const Value* v = batch.generic(c.column);
      for (size_t i = begin; i < end; ++i) {
        if (OpHolds(c.op, v[i].Compare(c.lit))) {
          sel->push_back(static_cast<uint32_t>(i));
        }
      }
      return;
    }
    default:
      return;
  }
}

bool RowPasses(const ColumnBatch& batch, const VectorConjunct& c, size_t row) {
  switch (c.kind) {
    case VectorConjunct::Kind::kIntInt:
      return OpHolds(c.op, [&] {
        const int64_t a = batch.ints(c.column)[row];
        return a == c.int_lit ? 0 : (a < c.int_lit ? -1 : 1);
      }());
    case VectorConjunct::Kind::kNumDouble: {
      const double a =
          batch.encoding(c.column) == ColumnEncoding::kInt64
              ? static_cast<double>(batch.ints(c.column)[row])
              : batch.doubles(c.column)[row];
      const int cmp = a == c.dbl_lit ? c.tie_cmp : (a < c.dbl_lit ? -1 : 1);
      return OpHolds(c.op, cmp);
    }
    case VectorConjunct::Kind::kGeneric:
      return OpHolds(c.op, batch.generic(c.column)[row].Compare(c.lit));
    case VectorConjunct::Kind::kConstTrue:
      return true;
    case VectorConjunct::Kind::kConstFalse:
      return false;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Morsel dispatch
// ---------------------------------------------------------------------------

// A dedicated pool for morsel tasks, separate from the alternatives pool
// (opt/session.h): columnar kernels run *inside* tasks of that pool, and
// submitting nested work to it could fill every worker with parents
// waiting on children. The calling thread always participates in its own
// parallel-for, so progress never depends on this pool's availability.
ThreadPool& MorselPool() {
  static ThreadPool* pool = new ThreadPool(ThreadPool::DefaultThreads());
  return *pool;
}

struct MorselRun {
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  size_t total = 0;
  std::function<void(size_t)> body;
  std::mutex mu;
  std::condition_variable cv;
};

void DrainMorsels(const std::shared_ptr<MorselRun>& run) {
  for (;;) {
    const size_t m = run->next.fetch_add(1, std::memory_order_relaxed);
    if (m >= run->total) return;
    run->body(m);
    if (run->done.fetch_add(1, std::memory_order_acq_rel) + 1 == run->total) {
      std::lock_guard<std::mutex> lock(run->mu);
      run->cv.notify_all();
    }
  }
}

/// Runs body(0..num_morsels) with up to `threads` workers (0 = hardware
/// concurrency), the caller participating; returns when every morsel
/// finished. Helpers beyond the morsel count are never enqueued.
void MorselParallelFor(size_t num_morsels, size_t threads,
                       std::function<void(size_t)> body) {
  if (num_morsels == 0) return;
  if (threads == 0) threads = ThreadPool::DefaultThreads();
  if (threads <= 1 || num_morsels <= 1) {
    for (size_t m = 0; m < num_morsels; ++m) body(m);
    return;
  }
  auto run = std::make_shared<MorselRun>();
  run->total = num_morsels;
  run->body = std::move(body);
  const size_t helpers = std::min(threads - 1, num_morsels - 1);
  for (size_t i = 0; i < helpers; ++i) {
    MorselPool().Submit(std::function<void()>([run] { DrainMorsels(run); }));
  }
  DrainMorsels(run);
  std::unique_lock<std::mutex> lock(run->mu);
  run->cv.wait(lock, [&run] {
    return run->done.load(std::memory_order_acquire) >= run->total;
  });
}

// Positions (into the base's tuple vector) of the overlay's deletions,
// ascending. Dels are a subset of the base (canonical overlay), so every
// lower_bound lands exactly on its tuple.
std::vector<uint32_t> DelPositions(const Relation& base,
                                   const std::vector<Tuple>& dels) {
  std::vector<uint32_t> out;
  out.reserve(dels.size());
  const std::vector<Tuple>& tuples = base.tuples();
  for (const Tuple& d : dels) {
    auto it = std::lower_bound(tuples.begin(), tuples.end(), d, TupleLess());
    out.push_back(static_cast<uint32_t>(it - tuples.begin()));
  }
  return out;
}

bool OverlayTooLarge(const RelationView& view, const ColumnarConfig& config) {
  return static_cast<double>(view.delta_size()) >
         config.max_delta_fraction * static_cast<double>(view.base()->size());
}

}  // namespace

std::optional<VectorPredicate> CompileVectorPredicate(const ScalarExprPtr& pred,
                                                      const ColumnBatch& batch) {
  std::vector<ScalarExprPtr> conjuncts;
  FlattenConjuncts(pred, &conjuncts);
  if (conjuncts.empty()) return std::nullopt;
  VectorPredicate out;
  out.conjuncts.reserve(conjuncts.size());
  for (const ScalarExprPtr& e : conjuncts) {
    if (e->kind() == ScalarKind::kLiteral) {
      // A bare literal conjunct contributes Truthy(literal) to the AND.
      out.conjuncts.push_back(ConstConjunct(TruthyLiteral(e->literal())));
      continue;
    }
    if (e->kind() != ScalarKind::kBinary || !IsComparison(e->op())) {
      return std::nullopt;
    }
    const ScalarExpr* col = nullptr;
    const ScalarExpr* lit = nullptr;
    ScalarOp op = e->op();
    if (e->lhs()->kind() == ScalarKind::kColumn &&
        e->rhs()->kind() == ScalarKind::kLiteral) {
      col = e->lhs().get();
      lit = e->rhs().get();
    } else if (e->lhs()->kind() == ScalarKind::kLiteral &&
               e->rhs()->kind() == ScalarKind::kColumn) {
      col = e->rhs().get();
      lit = e->lhs().get();
      op = FlipComparison(op);
    } else {
      return std::nullopt;
    }
    const Value& k = lit->literal();
    if (col->column() >= batch.arity()) {
      // Row evaluation folds an out-of-range column to null; the whole
      // conjunct is a constant comparison of null against the literal.
      out.conjuncts.push_back(
          ConstConjunct(OpHolds(op, Value::Nul().Compare(k))));
      continue;
    }
    VectorConjunct c;
    c.op = op;
    c.column = col->column();
    switch (batch.encoding(c.column)) {
      case ColumnEncoding::kInt64:
        if (k.is_int()) {
          c.kind = VectorConjunct::Kind::kIntInt;
          c.int_lit = k.AsInt();
        } else if (k.is_double()) {
          c.kind = VectorConjunct::Kind::kNumDouble;
          c.dbl_lit = k.AsDouble();
          c.tie_cmp = -1;  // int column sorts before an equal double literal
        } else {
          // Family mismatch: every int compares the same way against the
          // literal, so the conjunct is a constant.
          out.conjuncts.push_back(
              ConstConjunct(OpHolds(op, Value::Int(0).Compare(k))));
          continue;
        }
        break;
      case ColumnEncoding::kFloat64:
        if (k.is_number()) {
          c.kind = VectorConjunct::Kind::kNumDouble;
          c.dbl_lit = k.AsDouble();
          c.tie_cmp = k.is_int() ? 1 : 0;
        } else {
          out.conjuncts.push_back(
              ConstConjunct(OpHolds(op, Value::Double(0).Compare(k))));
          continue;
        }
        break;
      case ColumnEncoding::kGeneric:
        c.kind = VectorConjunct::Kind::kGeneric;
        c.lit = k;
        break;
    }
    out.conjuncts.push_back(std::move(c));
  }
  return out;
}

void EvalPredicateBatch(const ColumnBatch& batch, const VectorPredicate& pred,
                        size_t begin, size_t end, std::vector<uint32_t>* sel) {
  sel->clear();
  bool seeded = false;
  for (const VectorConjunct& c : pred.conjuncts) {
    if (c.kind == VectorConjunct::Kind::kConstTrue) continue;
    if (c.kind == VectorConjunct::Kind::kConstFalse) {
      sel->clear();
      return;
    }
    if (!seeded) {
      ScanConjunct(batch, c, begin, end, sel);
      seeded = true;
    } else {
      size_t w = 0;
      for (uint32_t pos : *sel) {
        if (RowPasses(batch, c, pos)) (*sel)[w++] = pos;
      }
      sel->resize(w);
    }
    if (sel->empty()) return;
  }
  if (!seeded) {
    // Every conjunct was constant-true: the whole range qualifies.
    sel->reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      sel->push_back(static_cast<uint32_t>(i));
    }
  }
}

std::optional<Relation> TryColumnarFilter(const RelationView& input,
                                          const ScalarExprPtr& pred,
                                          const ColumnarConfig& config) {
  if (!config.enabled() || pred == nullptr) return std::nullopt;
  const RelationPtr& base = input.base();
  const size_t base_rows = base->size();
  if (base_rows < config.min_rows) return std::nullopt;
  if (OverlayTooLarge(input, config)) return std::nullopt;
  if (!HasCompilableShape(pred)) return std::nullopt;

  ExecGovernor* gov = CurrentGovernor();
  ColumnBatchPtr batch = base->ColumnarBatch();
  // A failpoint firing inside the batch build trips the governor; degrade
  // to the row scan, whose own cooperative checks surface the error.
  if (gov != nullptr && gov->tripped()) return std::nullopt;
  std::optional<VectorPredicate> vpred = CompileVectorPredicate(pred, *batch);
  if (!vpred.has_value()) return std::nullopt;

  TraceSpan span("columnar-select", input.size());
  const std::vector<Tuple>& tuples = base->tuples();
  const std::vector<uint32_t> del_pos = DelPositions(*base, input.dels());

  const size_t morsel_rows = std::max<size_t>(config.morsel_rows, 1);
  const size_t num_morsels = (base_rows + morsel_rows - 1) / morsel_rows;
  std::vector<std::vector<Tuple>> slots(num_morsels);
  std::atomic<bool> stop{false};
  MorselParallelFor(num_morsels, config.threads, [&](size_t m) {
    if (stop.load(std::memory_order_relaxed)) return;
    const size_t mb = m * morsel_rows;
    const size_t me = std::min(base_rows, mb + morsel_rows);
    if (gov != nullptr && !gov->Tick(me - mb)) {
      stop.store(true, std::memory_order_relaxed);
      return;
    }
    std::vector<uint32_t> sel;
    EvalPredicateBatch(*batch, *vpred, mb, me, &sel);
    auto dp = std::lower_bound(del_pos.begin(), del_pos.end(),
                               static_cast<uint32_t>(mb));
    std::vector<Tuple>& out = slots[m];
    out.reserve(sel.size());
    for (uint32_t pos : sel) {
      while (dp != del_pos.end() && *dp < pos) ++dp;
      if (dp != del_pos.end() && *dp == pos) {
        ++dp;
        continue;
      }
      if (gov != nullptr && !gov->ChargeTuples(1)) {
        stop.store(true, std::memory_order_relaxed);
        return;
      }
      out.push_back(tuples[pos]);
    }
  });

  // Morsels partition the sorted base in order and emit ascending runs, so
  // their concatenation is sorted and unique even when a trip truncated it.
  std::vector<Tuple> matched;
  size_t total = 0;
  for (const std::vector<Tuple>& s : slots) total += s.size();
  matched.reserve(total);
  for (std::vector<Tuple>& s : slots) {
    matched.insert(matched.end(), std::make_move_iterator(s.begin()),
                   std::make_move_iterator(s.end()));
  }
  std::vector<Tuple> added;
  for (const Tuple& a : input.adds()) {
    if (pred->EvaluatesTrue(a)) {
      if (gov != nullptr && !gov->ChargeTuples(1)) break;
      added.push_back(a);
    }
  }
  std::vector<Tuple> out;
  out.reserve(matched.size() + added.size());
  std::set_union(matched.begin(), matched.end(), added.begin(), added.end(),
                 std::back_inserter(out), TupleLess());
  ExecContext& ctx = AmbientExecContext();
  ctx.AddColumnarMorselsDispatched(num_morsels);
  ctx.AddColumnarRowsVectorized(base_rows);
  span.set_rows_out(out.size());
  return Relation::FromSortedUnique(input.arity(), std::move(out));
}

std::optional<Relation> TryColumnarJoin(const RelationView& lhs,
                                        const RelationView& rhs,
                                        const ScalarExprPtr& pred,
                                        const ColumnarConfig& config) {
  if (!config.enabled() || pred == nullptr) return std::nullopt;
  std::vector<std::pair<size_t, size_t>> equi;
  std::vector<ScalarExprPtr> residual;
  SplitJoinPredicate(pred, lhs.arity(), &equi, &residual);
  if (equi.empty()) return std::nullopt;

  // Probe the side with the larger base through its batch; build a hash
  // table over the smaller side's full content.
  const bool probe_lhs = lhs.base()->size() >= rhs.base()->size();
  const RelationView& probe = probe_lhs ? lhs : rhs;
  const RelationView& build = probe_lhs ? rhs : lhs;
  const RelationPtr& probe_base = probe.base();
  const size_t probe_rows = probe_base->size();
  if (probe_rows < config.min_rows) return std::nullopt;
  if (OverlayTooLarge(probe, config)) return std::nullopt;

  std::vector<size_t> probe_cols;
  std::vector<size_t> build_cols;
  probe_cols.reserve(equi.size());
  build_cols.reserve(equi.size());
  for (const auto& [lc, rc] : equi) {
    probe_cols.push_back(probe_lhs ? lc : rc);
    build_cols.push_back(probe_lhs ? rc : lc);
  }
  for (size_t c : probe_cols) {
    if (c >= probe.arity()) return std::nullopt;
  }
  for (size_t c : build_cols) {
    if (c >= build.arity()) return std::nullopt;
  }

  ExecGovernor* gov = CurrentGovernor();
  ColumnBatchPtr batch = probe_base->ColumnarBatch();
  if (gov != nullptr && gov->tripped()) return std::nullopt;

  TraceSpan span("columnar-join", lhs.size() + rhs.size());
  auto key_of = [](const Tuple& t, const std::vector<size_t>& cols) {
    Tuple key;
    key.reserve(cols.size());
    for (size_t c : cols) key.push_back(t[c]);
    return key;
  };
  // View iterators hand out references into base/overlay storage, stable
  // for the view's lifetime, so the table stores plain pointers (the same
  // contract the row hash join relies on).
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> table;
  table.reserve(build.size());
  for (const Tuple& b : build) {
    table[key_of(b, build_cols)].push_back(&b);
  }

  // Int fast path: a single join column, int64-encoded on the probe side.
  // Only integer build keys can match an integer probe column (Value's
  // order keeps int 1 and double 1.0 distinct), so the typed table drops
  // the rest; probe adds go through the generic table.
  const bool int_path =
      probe_cols.size() == 1 &&
      batch->encoding(probe_cols[0]) == ColumnEncoding::kInt64;
  std::unordered_map<int64_t, const std::vector<const Tuple*>*> int_table;
  if (int_path) {
    int_table.reserve(table.size());
    for (const auto& [key, run] : table) {
      if (key[0].is_int()) int_table.emplace(key[0].AsInt(), &run);
    }
  }

  const std::vector<Tuple>& probe_tuples = probe_base->tuples();
  const std::vector<uint32_t> del_pos = DelPositions(*probe_base, probe.dels());
  const size_t morsel_rows = std::max<size_t>(config.morsel_rows, 1);
  const size_t num_morsels = (probe_rows + morsel_rows - 1) / morsel_rows;
  std::vector<std::vector<Tuple>> slots(num_morsels);
  std::atomic<bool> stop{false};

  auto emit = [&](const Tuple& p, const Tuple& b,
                  std::vector<Tuple>* out) -> bool {
    Tuple combined = probe_lhs ? ConcatTuples(p, b) : ConcatTuples(b, p);
    for (const ScalarExprPtr& r : residual) {
      if (!r->EvaluatesTrue(combined)) return true;
    }
    if (gov != nullptr && !gov->ChargeTuples(1)) return false;
    out->push_back(std::move(combined));
    return true;
  };

  MorselParallelFor(num_morsels, config.threads, [&](size_t m) {
    if (stop.load(std::memory_order_relaxed)) return;
    const size_t mb = m * morsel_rows;
    const size_t me = std::min(probe_rows, mb + morsel_rows);
    if (gov != nullptr && !gov->Tick(me - mb)) {
      stop.store(true, std::memory_order_relaxed);
      return;
    }
    auto dp = std::lower_bound(del_pos.begin(), del_pos.end(),
                               static_cast<uint32_t>(mb));
    std::vector<Tuple>& out = slots[m];
    auto deleted = [&dp, &del_pos](size_t i) {
      while (dp != del_pos.end() && *dp < i) ++dp;
      if (dp != del_pos.end() && *dp == i) {
        ++dp;
        return true;
      }
      return false;
    };
    if (int_path) {
      const int64_t* keys = batch->ints(probe_cols[0]);
      for (size_t i = mb; i < me; ++i) {
        if (deleted(i)) continue;
        auto it = int_table.find(keys[i]);
        if (it == int_table.end()) continue;
        const Tuple& p = probe_tuples[i];
        for (const Tuple* b : *it->second) {
          if (!emit(p, *b, &out)) {
            stop.store(true, std::memory_order_relaxed);
            return;
          }
        }
      }
    } else {
      for (size_t i = mb; i < me; ++i) {
        if (deleted(i)) continue;
        const Tuple& p = probe_tuples[i];
        auto it = table.find(key_of(p, probe_cols));
        if (it == table.end()) continue;
        for (const Tuple* b : it->second) {
          if (!emit(p, *b, &out)) {
            stop.store(true, std::memory_order_relaxed);
            return;
          }
        }
      }
    }
  });

  std::vector<Tuple> out;
  size_t total = 0;
  for (const std::vector<Tuple>& s : slots) total += s.size();
  out.reserve(total + probe.adds().size());
  for (std::vector<Tuple>& s : slots) {
    out.insert(out.end(), std::make_move_iterator(s.begin()),
               std::make_move_iterator(s.end()));
  }
  // The probe side's adds are not in its base: patch them in row-wise.
  if (!stop.load(std::memory_order_relaxed)) {
    for (const Tuple& a : probe.adds()) {
      auto it = table.find(key_of(a, probe_cols));
      if (it == table.end()) continue;
      bool keep_going = true;
      for (const Tuple* b : it->second) {
        if (!emit(a, *b, &out)) {
          keep_going = false;
          break;
        }
      }
      if (!keep_going) break;
    }
  }
  ExecContext& ctx = AmbientExecContext();
  ctx.AddColumnarMorselsDispatched(num_morsels);
  ctx.AddColumnarRowsVectorized(probe_rows);
  span.set_rows_out(out.size());
  // FromTuples canonicalizes (sort + dedup), so any production order across
  // morsels yields the same relation the row join builds.
  return Relation::FromTuples(lhs.arity() + rhs.arity(), std::move(out));
}

Relation VectorizedFilter(const RelationView& input, const ScalarExprPtr& pred,
                          const IndexConfig& indexes,
                          const ColumnarConfig& columnar) {
  HQL_CHECK(pred != nullptr);
  std::optional<Relation> fast = TryIndexedFilter(input, pred, indexes);
  if (fast.has_value()) return *std::move(fast);
  std::optional<Relation> col = TryColumnarFilter(input, pred, columnar);
  if (col.has_value()) return *std::move(col);
  if (columnar.enabled()) {
    AmbientExecContext().AddColumnarRowsFallback(input.size());
  }
  return FilterRelation(input, *pred);
}

Relation VectorizedJoin(const RelationView& lhs, const RelationView& rhs,
                        const ScalarExprPtr& pred, const IndexConfig& indexes,
                        const ColumnarConfig& columnar) {
  std::optional<Relation> fast = TryIndexedJoin(lhs, rhs, pred, indexes);
  if (fast.has_value()) return *std::move(fast);
  std::optional<Relation> col = TryColumnarJoin(lhs, rhs, pred, columnar);
  if (col.has_value()) return *std::move(col);
  if (columnar.enabled()) {
    AmbientExecContext().AddColumnarRowsFallback(lhs.size() + rhs.size());
  }
  return JoinRelations(lhs, rhs, pred);
}

}  // namespace hql
