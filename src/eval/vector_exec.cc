#include "eval/vector_exec.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <iterator>
#include <memory>
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/exec_context.h"
#include "common/governor.h"
#include "common/thread_pool.h"
#include "eval/index_exec.h"
#include "eval/ra_eval.h"
#include "eval/simd.h"

namespace hql {

namespace {

// ---------------------------------------------------------------------------
// Predicate compilation
// ---------------------------------------------------------------------------

bool IsComparison(ScalarOp op) {
  switch (op) {
    case ScalarOp::kEq:
    case ScalarOp::kNe:
    case ScalarOp::kLt:
    case ScalarOp::kLe:
    case ScalarOp::kGt:
    case ScalarOp::kGe:
      return true;
    default:
      return false;
  }
}

// `lit OP col` rewritten as `col OP' lit`.
ScalarOp FlipComparison(ScalarOp op) {
  switch (op) {
    case ScalarOp::kLt:
      return ScalarOp::kGt;
    case ScalarOp::kLe:
      return ScalarOp::kGe;
    case ScalarOp::kGt:
      return ScalarOp::kLt;
    case ScalarOp::kGe:
      return ScalarOp::kLe;
    default:
      return op;  // kEq, kNe are symmetric
  }
}

bool OpHolds(ScalarOp op, int cmp) {
  switch (op) {
    case ScalarOp::kEq:
      return cmp == 0;
    case ScalarOp::kNe:
      return cmp != 0;
    case ScalarOp::kLt:
      return cmp < 0;
    case ScalarOp::kLe:
      return cmp <= 0;
    case ScalarOp::kGt:
      return cmp > 0;
    case ScalarOp::kGe:
      return cmp >= 0;
    default:
      return false;
  }
}

bool TruthyLiteral(const Value& v) { return v.is_bool() && v.AsBool(); }

VectorConjunct ConstConjunct(bool holds) {
  VectorConjunct c;
  c.kind = holds ? VectorConjunct::Kind::kConstTrue
                 : VectorConjunct::Kind::kConstFalse;
  return c;
}

/// Structural pre-check mirroring CompileVectorPredicate's acceptance, so
/// callers can rule vectorization out before paying for a batch build.
bool HasCompilableShape(const ScalarExprPtr& pred) {
  std::vector<ScalarExprPtr> conjuncts;
  FlattenConjuncts(pred, &conjuncts);
  if (conjuncts.empty()) return false;
  for (const ScalarExprPtr& c : conjuncts) {
    if (c->kind() == ScalarKind::kLiteral) continue;
    if (c->kind() != ScalarKind::kBinary || !IsComparison(c->op())) {
      return false;
    }
    const bool col_lit = c->lhs()->kind() == ScalarKind::kColumn &&
                         c->rhs()->kind() == ScalarKind::kLiteral;
    const bool lit_col = c->lhs()->kind() == ScalarKind::kLiteral &&
                         c->rhs()->kind() == ScalarKind::kColumn;
    if (!col_lit && !lit_col) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Batch predicate evaluation
// ---------------------------------------------------------------------------

// The typed scans lower (op, tie-break) onto a plain CmpRel *before* any
// lane math, so the SIMD kernels in eval/simd.h never see cross-type
// semantics. The resolution is exact: with cmp(a) = (a == lit ? tie :
// a < lit ? -1 : 1), OpHolds(op, cmp(a)) reduces to a single relation on
// the raw operands, e.g. tie = -1 (int column vs equal double literal)
// turns kLt into "a <= lit" and kEq into constant-false.
CmpRel ResolveRel(ScalarOp op, int tie) {
  if (tie < 0) {
    switch (op) {
      case ScalarOp::kEq:
        return CmpRel::kNever;
      case ScalarOp::kNe:
        return CmpRel::kAlways;
      case ScalarOp::kLt:
      case ScalarOp::kLe:
        return CmpRel::kLe;
      case ScalarOp::kGt:
      case ScalarOp::kGe:
        return CmpRel::kGt;
      default:
        return CmpRel::kNever;
    }
  }
  if (tie > 0) {
    switch (op) {
      case ScalarOp::kEq:
        return CmpRel::kNever;
      case ScalarOp::kNe:
        return CmpRel::kAlways;
      case ScalarOp::kLt:
      case ScalarOp::kLe:
        return CmpRel::kLt;
      case ScalarOp::kGt:
      case ScalarOp::kGe:
        return CmpRel::kGe;
      default:
        return CmpRel::kNever;
    }
  }
  switch (op) {
    case ScalarOp::kEq:
      return CmpRel::kEq;
    case ScalarOp::kNe:
      return CmpRel::kNe;
    case ScalarOp::kLt:
      return CmpRel::kLt;
    case ScalarOp::kLe:
      return CmpRel::kLe;
    case ScalarOp::kGt:
      return CmpRel::kGt;
    case ScalarOp::kGe:
      return CmpRel::kGe;
    default:
      return CmpRel::kNever;
  }
}

void ScanIntInt(const int64_t* v, size_t begin, size_t end, ScalarOp op,
                int64_t k, std::vector<uint32_t>* sel) {
  SimdScanInt64(v, begin, end, ResolveRel(op, 0), k, sel);
}

// Cross-type numeric compare replicating Value::Compare exactly: compare
// as doubles, break exact ties by the type index (int before double).
// The int64-source instantiation stays scalar (there is no cheap packed
// epi64 -> pd conversion pre-AVX-512); the double source rides the SIMD
// scan.
template <typename SrcT>
void ScanNumDouble(const SrcT* v, size_t begin, size_t end, ScalarOp op,
                   double d, int tie, std::vector<uint32_t>* sel) {
  const CmpRel rel = ResolveRel(op, tie);
  if constexpr (std::is_same_v<SrcT, double>) {
    SimdScanFloat64(v, begin, end, rel, d, sel);
  } else {
    if (rel == CmpRel::kNever) return;
    for (size_t i = begin; i < end; ++i) {
      if (RelHoldsFloat64(rel, static_cast<double>(v[i]), d)) {
        sel->push_back(static_cast<uint32_t>(i));
      }
    }
  }
}

void ScanConjunct(const ColumnBatch& batch, const VectorConjunct& c,
                  size_t begin, size_t end, std::vector<uint32_t>* sel) {
  switch (c.kind) {
    case VectorConjunct::Kind::kIntInt:
      return ScanIntInt(batch.ints(c.column), begin, end, c.op, c.int_lit,
                        sel);
    case VectorConjunct::Kind::kNumDouble:
      if (batch.encoding(c.column) == ColumnEncoding::kInt64) {
        return ScanNumDouble(batch.ints(c.column), begin, end, c.op, c.dbl_lit,
                             c.tie_cmp, sel);
      }
      return ScanNumDouble(batch.doubles(c.column), begin, end, c.op,
                           c.dbl_lit, c.tie_cmp, sel);
    case VectorConjunct::Kind::kGeneric: {
      const Value* v = batch.generic(c.column);
      for (size_t i = begin; i < end; ++i) {
        if (OpHolds(c.op, v[i].Compare(c.lit))) {
          sel->push_back(static_cast<uint32_t>(i));
        }
      }
      return;
    }
    default:
      return;
  }
}

bool RowPasses(const ColumnBatch& batch, const VectorConjunct& c, size_t row) {
  switch (c.kind) {
    case VectorConjunct::Kind::kIntInt:
      return OpHolds(c.op, [&] {
        const int64_t a = batch.ints(c.column)[row];
        return a == c.int_lit ? 0 : (a < c.int_lit ? -1 : 1);
      }());
    case VectorConjunct::Kind::kNumDouble: {
      const double a =
          batch.encoding(c.column) == ColumnEncoding::kInt64
              ? static_cast<double>(batch.ints(c.column)[row])
              : batch.doubles(c.column)[row];
      const int cmp = a == c.dbl_lit ? c.tie_cmp : (a < c.dbl_lit ? -1 : 1);
      return OpHolds(c.op, cmp);
    }
    case VectorConjunct::Kind::kGeneric:
      return OpHolds(c.op, batch.generic(c.column)[row].Compare(c.lit));
    case VectorConjunct::Kind::kConstTrue:
      return true;
    case VectorConjunct::Kind::kConstFalse:
      return false;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Morsel dispatch
// ---------------------------------------------------------------------------

// A dedicated pool for morsel tasks, separate from the alternatives pool
// (opt/session.h): columnar kernels run *inside* tasks of that pool, and
// submitting nested work to it could fill every worker with parents
// waiting on children. The calling thread always participates in its own
// parallel-for, so progress never depends on this pool's availability.
ThreadPool& MorselPool() {
  static ThreadPool* pool = new ThreadPool(ThreadPool::DefaultThreads());
  return *pool;
}

struct MorselRun {
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  size_t total = 0;
  std::function<void(size_t)> body;
  std::mutex mu;
  std::condition_variable cv;
};

void DrainMorsels(const std::shared_ptr<MorselRun>& run) {
  for (;;) {
    const size_t m = run->next.fetch_add(1, std::memory_order_relaxed);
    if (m >= run->total) return;
    run->body(m);
    if (run->done.fetch_add(1, std::memory_order_acq_rel) + 1 == run->total) {
      std::lock_guard<std::mutex> lock(run->mu);
      run->cv.notify_all();
    }
  }
}

/// Runs body(0..num_morsels) with up to `threads` workers (0 = hardware
/// concurrency), the caller participating; returns when every morsel
/// finished. Helpers beyond the morsel count are never enqueued.
void MorselParallelFor(size_t num_morsels, size_t threads,
                       std::function<void(size_t)> body) {
  if (num_morsels == 0) return;
  if (threads == 0) threads = ThreadPool::DefaultThreads();
  if (threads <= 1 || num_morsels <= 1) {
    for (size_t m = 0; m < num_morsels; ++m) body(m);
    return;
  }
  auto run = std::make_shared<MorselRun>();
  run->total = num_morsels;
  run->body = std::move(body);
  const size_t helpers = std::min(threads - 1, num_morsels - 1);
  for (size_t i = 0; i < helpers; ++i) {
    MorselPool().Submit(std::function<void()>([run] { DrainMorsels(run); }));
  }
  DrainMorsels(run);
  std::unique_lock<std::mutex> lock(run->mu);
  run->cv.wait(lock, [&run] {
    return run->done.load(std::memory_order_acquire) >= run->total;
  });
}

// Positions (into the base's tuple vector) of the overlay's deletions,
// ascending. Dels are a subset of the base (canonical overlay), so every
// lower_bound lands exactly on its tuple.
std::vector<uint32_t> DelPositions(const Relation& base,
                                   const std::vector<Tuple>& dels) {
  std::vector<uint32_t> out;
  out.reserve(dels.size());
  const std::vector<Tuple>& tuples = base.tuples();
  for (const Tuple& d : dels) {
    auto it = std::lower_bound(tuples.begin(), tuples.end(), d, TupleLess());
    out.push_back(static_cast<uint32_t>(it - tuples.begin()));
  }
  return out;
}

bool OverlayTooLarge(const RelationView& view, const ColumnarConfig& config) {
  return static_cast<double>(view.delta_size()) >
         config.max_delta_fraction * static_cast<double>(view.base()->size());
}

}  // namespace

std::optional<VectorPredicate> CompileVectorPredicate(const ScalarExprPtr& pred,
                                                      const ColumnBatch& batch) {
  std::vector<ScalarExprPtr> conjuncts;
  FlattenConjuncts(pred, &conjuncts);
  if (conjuncts.empty()) return std::nullopt;
  VectorPredicate out;
  out.conjuncts.reserve(conjuncts.size());
  for (const ScalarExprPtr& e : conjuncts) {
    if (e->kind() == ScalarKind::kLiteral) {
      // A bare literal conjunct contributes Truthy(literal) to the AND.
      out.conjuncts.push_back(ConstConjunct(TruthyLiteral(e->literal())));
      continue;
    }
    if (e->kind() != ScalarKind::kBinary || !IsComparison(e->op())) {
      return std::nullopt;
    }
    const ScalarExpr* col = nullptr;
    const ScalarExpr* lit = nullptr;
    ScalarOp op = e->op();
    if (e->lhs()->kind() == ScalarKind::kColumn &&
        e->rhs()->kind() == ScalarKind::kLiteral) {
      col = e->lhs().get();
      lit = e->rhs().get();
    } else if (e->lhs()->kind() == ScalarKind::kLiteral &&
               e->rhs()->kind() == ScalarKind::kColumn) {
      col = e->rhs().get();
      lit = e->lhs().get();
      op = FlipComparison(op);
    } else {
      return std::nullopt;
    }
    const Value& k = lit->literal();
    if (col->column() >= batch.arity()) {
      // Row evaluation folds an out-of-range column to null; the whole
      // conjunct is a constant comparison of null against the literal.
      out.conjuncts.push_back(
          ConstConjunct(OpHolds(op, Value::Nul().Compare(k))));
      continue;
    }
    VectorConjunct c;
    c.op = op;
    c.column = col->column();
    switch (batch.encoding(c.column)) {
      case ColumnEncoding::kInt64:
        if (k.is_int()) {
          c.kind = VectorConjunct::Kind::kIntInt;
          c.int_lit = k.AsInt();
        } else if (k.is_double()) {
          c.kind = VectorConjunct::Kind::kNumDouble;
          c.dbl_lit = k.AsDouble();
          c.tie_cmp = -1;  // int column sorts before an equal double literal
        } else {
          // Family mismatch: every int compares the same way against the
          // literal, so the conjunct is a constant.
          out.conjuncts.push_back(
              ConstConjunct(OpHolds(op, Value::Int(0).Compare(k))));
          continue;
        }
        break;
      case ColumnEncoding::kFloat64:
        if (k.is_number()) {
          c.kind = VectorConjunct::Kind::kNumDouble;
          c.dbl_lit = k.AsDouble();
          c.tie_cmp = k.is_int() ? 1 : 0;
        } else {
          out.conjuncts.push_back(
              ConstConjunct(OpHolds(op, Value::Double(0).Compare(k))));
          continue;
        }
        break;
      case ColumnEncoding::kGeneric:
        c.kind = VectorConjunct::Kind::kGeneric;
        c.lit = k;
        break;
    }
    out.conjuncts.push_back(std::move(c));
  }
  return out;
}

void EvalPredicateBatch(const ColumnBatch& batch, const VectorPredicate& pred,
                        size_t begin, size_t end, std::vector<uint32_t>* sel) {
  sel->clear();
  bool seeded = false;
  for (const VectorConjunct& c : pred.conjuncts) {
    if (c.kind == VectorConjunct::Kind::kConstTrue) continue;
    if (c.kind == VectorConjunct::Kind::kConstFalse) {
      sel->clear();
      return;
    }
    if (!seeded) {
      ScanConjunct(batch, c, begin, end, sel);
      seeded = true;
    } else {
      size_t w = 0;
      for (uint32_t pos : *sel) {
        if (RowPasses(batch, c, pos)) (*sel)[w++] = pos;
      }
      sel->resize(w);
    }
    if (sel->empty()) return;
  }
  if (!seeded) {
    // Every conjunct was constant-true: the whole range qualifies.
    sel->reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      sel->push_back(static_cast<uint32_t>(i));
    }
  }
}

std::optional<Relation> TryColumnarFilter(const RelationView& input,
                                          const ScalarExprPtr& pred,
                                          const ColumnarConfig& config) {
  if (!config.enabled() || pred == nullptr) return std::nullopt;
  const RelationPtr& base = input.base();
  const size_t base_rows = base->size();
  if (base_rows < config.min_rows) return std::nullopt;
  if (OverlayTooLarge(input, config)) return std::nullopt;
  if (!HasCompilableShape(pred)) return std::nullopt;

  ExecGovernor* gov = CurrentGovernor();
  ColumnBatchPtr batch = base->ColumnarBatch();
  // A failpoint firing inside the batch build trips the governor; degrade
  // to the row scan, whose own cooperative checks surface the error.
  if (gov != nullptr && gov->tripped()) return std::nullopt;
  std::optional<VectorPredicate> vpred = CompileVectorPredicate(pred, *batch);
  if (!vpred.has_value()) return std::nullopt;

  TraceSpan span("columnar-select", input.size());
  const std::vector<Tuple>& tuples = base->tuples();
  const std::vector<uint32_t> del_pos = DelPositions(*base, input.dels());

  const size_t morsel_rows = std::max<size_t>(config.morsel_rows, 1);
  const size_t num_morsels = (base_rows + morsel_rows - 1) / morsel_rows;
  std::vector<std::vector<Tuple>> slots(num_morsels);
  std::atomic<bool> stop{false};
  MorselParallelFor(num_morsels, config.threads, [&](size_t m) {
    if (stop.load(std::memory_order_relaxed)) return;
    const size_t mb = m * morsel_rows;
    const size_t me = std::min(base_rows, mb + morsel_rows);
    if (gov != nullptr && !gov->Tick(me - mb)) {
      stop.store(true, std::memory_order_relaxed);
      return;
    }
    std::vector<uint32_t> sel;
    EvalPredicateBatch(*batch, *vpred, mb, me, &sel);
    auto dp = std::lower_bound(del_pos.begin(), del_pos.end(),
                               static_cast<uint32_t>(mb));
    std::vector<Tuple>& out = slots[m];
    out.reserve(sel.size());
    for (uint32_t pos : sel) {
      while (dp != del_pos.end() && *dp < pos) ++dp;
      if (dp != del_pos.end() && *dp == pos) {
        ++dp;
        continue;
      }
      if (gov != nullptr && !gov->ChargeTuples(1)) {
        stop.store(true, std::memory_order_relaxed);
        return;
      }
      out.push_back(tuples[pos]);
    }
  });

  // Morsels partition the sorted base in order and emit ascending runs, so
  // their concatenation is sorted and unique even when a trip truncated it.
  std::vector<Tuple> matched;
  size_t total = 0;
  for (const std::vector<Tuple>& s : slots) total += s.size();
  matched.reserve(total);
  for (std::vector<Tuple>& s : slots) {
    matched.insert(matched.end(), std::make_move_iterator(s.begin()),
                   std::make_move_iterator(s.end()));
  }
  std::vector<Tuple> added;
  for (const Tuple& a : input.adds()) {
    if (pred->EvaluatesTrue(a)) {
      if (gov != nullptr && !gov->ChargeTuples(1)) break;
      added.push_back(a);
    }
  }
  std::vector<Tuple> out;
  out.reserve(matched.size() + added.size());
  std::set_union(matched.begin(), matched.end(), added.begin(), added.end(),
                 std::back_inserter(out), TupleLess());
  ExecContext& ctx = AmbientExecContext();
  ctx.AddColumnarMorselsDispatched(num_morsels);
  ctx.AddColumnarRowsVectorized(base_rows);
  span.set_rows_out(out.size());
  return Relation::FromSortedUnique(input.arity(), std::move(out));
}

std::optional<Relation> TryColumnarJoin(const RelationView& lhs,
                                        const RelationView& rhs,
                                        const ScalarExprPtr& pred,
                                        const ColumnarConfig& config) {
  if (!config.enabled() || pred == nullptr) return std::nullopt;
  std::vector<std::pair<size_t, size_t>> equi;
  std::vector<ScalarExprPtr> residual;
  SplitJoinPredicate(pred, lhs.arity(), &equi, &residual);
  if (equi.empty()) return std::nullopt;

  // Probe the side with the larger base through its batch; build a hash
  // table over the smaller side's full content.
  const bool probe_lhs = lhs.base()->size() >= rhs.base()->size();
  const RelationView& probe = probe_lhs ? lhs : rhs;
  const RelationView& build = probe_lhs ? rhs : lhs;
  const RelationPtr& probe_base = probe.base();
  const size_t probe_rows = probe_base->size();
  if (probe_rows < config.min_rows) return std::nullopt;
  if (OverlayTooLarge(probe, config)) return std::nullopt;

  std::vector<size_t> probe_cols;
  std::vector<size_t> build_cols;
  probe_cols.reserve(equi.size());
  build_cols.reserve(equi.size());
  for (const auto& [lc, rc] : equi) {
    probe_cols.push_back(probe_lhs ? lc : rc);
    build_cols.push_back(probe_lhs ? rc : lc);
  }
  for (size_t c : probe_cols) {
    if (c >= probe.arity()) return std::nullopt;
  }
  for (size_t c : build_cols) {
    if (c >= build.arity()) return std::nullopt;
  }

  ExecGovernor* gov = CurrentGovernor();
  ColumnBatchPtr batch = probe_base->ColumnarBatch();
  if (gov != nullptr && gov->tripped()) return std::nullopt;

  TraceSpan span("columnar-join", lhs.size() + rhs.size());
  auto key_of = [](const Tuple& t, const std::vector<size_t>& cols) {
    Tuple key;
    key.reserve(cols.size());
    for (size_t c : cols) key.push_back(t[c]);
    return key;
  };
  // View iterators hand out references into base/overlay storage, stable
  // for the view's lifetime, so the table stores plain pointers (the same
  // contract the row hash join relies on).
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> table;
  table.reserve(build.size());
  for (const Tuple& b : build) {
    table[key_of(b, build_cols)].push_back(&b);
  }

  // Int fast path: a single join column, int64-encoded on the probe side.
  // Only integer build keys can match an integer probe column (Value's
  // order keeps int 1 and double 1.0 distinct), so the typed table drops
  // the rest; probe adds go through the generic table.
  const bool int_path =
      probe_cols.size() == 1 &&
      batch->encoding(probe_cols[0]) == ColumnEncoding::kInt64;
  std::unordered_map<int64_t, const std::vector<const Tuple*>*> int_table;
  if (int_path) {
    int_table.reserve(table.size());
    for (const auto& [key, run] : table) {
      if (key[0].is_int()) int_table.emplace(key[0].AsInt(), &run);
    }
  }

  const std::vector<Tuple>& probe_tuples = probe_base->tuples();
  const std::vector<uint32_t> del_pos = DelPositions(*probe_base, probe.dels());
  const size_t morsel_rows = std::max<size_t>(config.morsel_rows, 1);
  const size_t num_morsels = (probe_rows + morsel_rows - 1) / morsel_rows;
  std::vector<std::vector<Tuple>> slots(num_morsels);
  std::atomic<bool> stop{false};

  auto emit = [&](const Tuple& p, const Tuple& b,
                  std::vector<Tuple>* out) -> bool {
    Tuple combined = probe_lhs ? ConcatTuples(p, b) : ConcatTuples(b, p);
    for (const ScalarExprPtr& r : residual) {
      if (!r->EvaluatesTrue(combined)) return true;
    }
    if (gov != nullptr && !gov->ChargeTuples(1)) return false;
    out->push_back(std::move(combined));
    return true;
  };

  MorselParallelFor(num_morsels, config.threads, [&](size_t m) {
    if (stop.load(std::memory_order_relaxed)) return;
    const size_t mb = m * morsel_rows;
    const size_t me = std::min(probe_rows, mb + morsel_rows);
    if (gov != nullptr && !gov->Tick(me - mb)) {
      stop.store(true, std::memory_order_relaxed);
      return;
    }
    auto dp = std::lower_bound(del_pos.begin(), del_pos.end(),
                               static_cast<uint32_t>(mb));
    std::vector<Tuple>& out = slots[m];
    auto deleted = [&dp, &del_pos](size_t i) {
      while (dp != del_pos.end() && *dp < i) ++dp;
      if (dp != del_pos.end() && *dp == i) {
        ++dp;
        return true;
      }
      return false;
    };
    if (int_path) {
      const int64_t* keys = batch->ints(probe_cols[0]);
      for (size_t i = mb; i < me; ++i) {
        if (deleted(i)) continue;
        auto it = int_table.find(keys[i]);
        if (it == int_table.end()) continue;
        const Tuple& p = probe_tuples[i];
        for (const Tuple* b : *it->second) {
          if (!emit(p, *b, &out)) {
            stop.store(true, std::memory_order_relaxed);
            return;
          }
        }
      }
    } else {
      for (size_t i = mb; i < me; ++i) {
        if (deleted(i)) continue;
        const Tuple& p = probe_tuples[i];
        auto it = table.find(key_of(p, probe_cols));
        if (it == table.end()) continue;
        for (const Tuple* b : it->second) {
          if (!emit(p, *b, &out)) {
            stop.store(true, std::memory_order_relaxed);
            return;
          }
        }
      }
    }
  });

  std::vector<Tuple> out;
  size_t total = 0;
  for (const std::vector<Tuple>& s : slots) total += s.size();
  out.reserve(total + probe.adds().size());
  for (std::vector<Tuple>& s : slots) {
    out.insert(out.end(), std::make_move_iterator(s.begin()),
               std::make_move_iterator(s.end()));
  }
  // The probe side's adds are not in its base: patch them in row-wise.
  if (!stop.load(std::memory_order_relaxed)) {
    for (const Tuple& a : probe.adds()) {
      auto it = table.find(key_of(a, probe_cols));
      if (it == table.end()) continue;
      bool keep_going = true;
      for (const Tuple* b : it->second) {
        if (!emit(a, *b, &out)) {
          keep_going = false;
          break;
        }
      }
      if (!keep_going) break;
    }
  }
  ExecContext& ctx = AmbientExecContext();
  ctx.AddColumnarMorselsDispatched(num_morsels);
  ctx.AddColumnarRowsVectorized(probe_rows);
  span.set_rows_out(out.size());
  // FromTuples canonicalizes (sort + dedup), so any production order across
  // morsels yields the same relation the row join builds.
  return Relation::FromTuples(lhs.arity() + rhs.arity(), std::move(out));
}

namespace {

// ---------------------------------------------------------------------------
// Vectorized aggregation
// ---------------------------------------------------------------------------

// How the accumulation loop is specialized. Only modes that reproduce the
// row kernel bit-for-bit are ever selected: float sums are excluded
// outright (their accumulation order is observable), integer sums wrap in
// uint64 exactly like the scalar kernel, and min/max are associative
// under Value's total order, so morsel partials merge exactly.
enum class AggAccMode : uint8_t {
  kCount,         // only group membership matters
  kSumInt,        // int64-encoded column, wrap-exact uint64 accumulation
  kMinMaxInt,     // int64-encoded column extrema
  kMinMaxDouble,  // float64-encoded column extrema
  kMinMaxValue,   // Value::Compare extrema via base row positions
                  // (generic column; never runs with overlay adds)
};

// One group's partial state — a 24-byte POD so a 100k-group table stays
// cache-resident (an earlier layout carried two boxed Values per slot and
// the probe loop drowned in misses). Which union arm is live depends on
// the mode; count doubles as the min/max seed flag, mirroring the row
// kernel's Acc (the group's first tuple seeds, later tuples update
// strictly). kMinMaxValue tracks the extremum as a *base row position*
// rather than a Value — sound because that mode never runs with overlay
// adds, so every candidate lives in the base tuple vector.
struct GroupAcc {
  int64_t count = 0;
  union {
    uint64_t sum = 0;
    struct {
      int64_t min_i, max_i;
    } i;
    struct {
      double min_d, max_d;
    } d;
    struct {
      uint32_t min_row, max_row;
    } r;
  } u;
};

inline void AccInt(GroupAcc* a, AggAccMode mode, int64_t v) {
  if (mode == AggAccMode::kSumInt) {
    a->u.sum += static_cast<uint64_t>(v);
  } else if (a->count == 0) {
    a->u.i.min_i = v;
    a->u.i.max_i = v;
  } else {
    if (v < a->u.i.min_i) a->u.i.min_i = v;
    if (v > a->u.i.max_i) a->u.i.max_i = v;
  }
  ++a->count;
}

inline void AccDouble(GroupAcc* a, double v) {
  if (a->count == 0) {
    a->u.d.min_d = v;
    a->u.d.max_d = v;
  } else {
    if (v < a->u.d.min_d) a->u.d.min_d = v;
    if (v > a->u.d.max_d) a->u.d.max_d = v;
  }
  ++a->count;
}

inline void AccValueRow(GroupAcc* a, const std::vector<Tuple>& tuples,
                        size_t agg_column, size_t row) {
  if (a->count == 0) {
    a->u.r.min_row = static_cast<uint32_t>(row);
    a->u.r.max_row = static_cast<uint32_t>(row);
  } else {
    const Value& v = tuples[row][agg_column];
    if (v.Compare(tuples[a->u.r.min_row][agg_column]) < 0) {
      a->u.r.min_row = static_cast<uint32_t>(row);
    }
    if (v.Compare(tuples[a->u.r.max_row][agg_column]) > 0) {
      a->u.r.max_row = static_cast<uint32_t>(row);
    }
  }
  ++a->count;
}

/// Folds one row into `a` for the given mode, reading the agg column from
/// the typed batch arrays (or the base tuple for the generic mode).
inline void AccRow(GroupAcc* a, AggAccMode mode, const ColumnBatch& batch,
                   const std::vector<Tuple>& tuples, size_t agg_column,
                   size_t row) {
  switch (mode) {
    case AggAccMode::kCount:
      ++a->count;
      return;
    case AggAccMode::kSumInt:
    case AggAccMode::kMinMaxInt:
      AccInt(a, mode, batch.ints(agg_column)[row]);
      return;
    case AggAccMode::kMinMaxDouble:
      AccDouble(a, batch.doubles(agg_column)[row]);
      return;
    case AggAccMode::kMinMaxValue:
      AccValueRow(a, tuples, agg_column, row);
      return;
  }
}

/// Folds one overlay-add value into `a`. The engagement gates guarantee
/// the value's family matches the mode (kSumInt/kMinMaxInt see ints,
/// kMinMaxDouble sees doubles, kMinMaxValue never sees adds at all —
/// its accumulators hold base row positions, which adds don't have).
inline void AccAddValue(GroupAcc* a, AggAccMode mode, const Value& v) {
  switch (mode) {
    case AggAccMode::kCount:
      ++a->count;
      return;
    case AggAccMode::kSumInt:
    case AggAccMode::kMinMaxInt:
      AccInt(a, mode, v.AsInt());
      return;
    case AggAccMode::kMinMaxDouble:
      AccDouble(a, v.AsDouble());
      return;
    case AggAccMode::kMinMaxValue:
      return;  // unreachable: gated out before the scan
  }
}

/// Merges a later partial into an earlier one. Partials are merged in
/// morsel (= base position) order, so strict min/max updates keep the
/// earliest representative exactly like the row kernel's seeded strict
/// compares.
void MergeAcc(GroupAcc* dst, const GroupAcc& src, AggAccMode mode,
              const std::vector<Tuple>& tuples, size_t agg_column) {
  if (src.count == 0) return;
  if (dst->count == 0) {
    *dst = src;
    return;
  }
  dst->count += src.count;
  switch (mode) {
    case AggAccMode::kCount:
      return;
    case AggAccMode::kSumInt:
      dst->u.sum += src.u.sum;
      return;
    case AggAccMode::kMinMaxInt:
      if (src.u.i.min_i < dst->u.i.min_i) dst->u.i.min_i = src.u.i.min_i;
      if (src.u.i.max_i > dst->u.i.max_i) dst->u.i.max_i = src.u.i.max_i;
      return;
    case AggAccMode::kMinMaxDouble:
      if (src.u.d.min_d < dst->u.d.min_d) dst->u.d.min_d = src.u.d.min_d;
      if (src.u.d.max_d > dst->u.d.max_d) dst->u.d.max_d = src.u.d.max_d;
      return;
    case AggAccMode::kMinMaxValue:
      if (tuples[src.u.r.min_row][agg_column].Compare(
              tuples[dst->u.r.min_row][agg_column]) < 0) {
        dst->u.r.min_row = src.u.r.min_row;
      }
      if (tuples[src.u.r.max_row][agg_column].Compare(
              tuples[dst->u.r.max_row][agg_column]) > 0) {
        dst->u.r.max_row = src.u.r.max_row;
      }
      return;
  }
}

Value FinalizeAcc(const GroupAcc& a, AggFunc func, AggAccMode mode,
                  const std::vector<Tuple>& tuples, size_t agg_column) {
  switch (func) {
    case AggFunc::kCount:
      return Value::Int(a.count);
    case AggFunc::kSum:
      // kSumInt is the only sum mode, and its gates guarantee every
      // summand was an int, so the row kernel's any_number/any_double
      // branches collapse to the int case.
      return Value::Int(static_cast<int64_t>(a.u.sum));
    case AggFunc::kMin:
      switch (mode) {
        case AggAccMode::kMinMaxInt:
          return Value::Int(a.u.i.min_i);
        case AggAccMode::kMinMaxDouble:
          return Value::Double(a.u.d.min_d);
        default:
          return tuples[a.u.r.min_row][agg_column];
      }
    case AggFunc::kMax:
      switch (mode) {
        case AggAccMode::kMinMaxInt:
          return Value::Int(a.u.i.max_i);
        case AggAccMode::kMinMaxDouble:
          return Value::Double(a.u.d.max_d);
        default:
          return tuples[a.u.r.max_row][agg_column];
      }
  }
  return Value::Nul();
}

// Group keys wider than this go through the generic tuple-keyed table.
constexpr size_t kMaxTypedKeyWidth = 4;

/// Open-addressing hash table on packed int64 group keys: keys live in one
/// contiguous array (key_width words per slot), linear probing, grow at
/// 70% load. This is the flat group table of the typed aggregation path —
/// no per-key allocation, no Value boxing on the probe loop.
class FlatGroupTable {
 public:
  explicit FlatGroupTable(size_t key_width)
      : k_(key_width == 0 ? 1 : key_width) {}

  GroupAcc* FindOrInsert(const int64_t* key) {
    if (size_ * 10 >= cap_ * 7) Grow();
    size_t slot = static_cast<size_t>(Hash(key)) & mask_;
    for (;;) {
      if (used_[slot] == 0) {
        used_[slot] = 1;
        std::copy(key, key + k_, keys_.begin() + slot * k_);
        ++size_;
        return &accs_[slot];
      }
      if (std::equal(key, key + k_, keys_.begin() + slot * k_)) {
        return &accs_[slot];
      }
      slot = (slot + 1) & mask_;
    }
  }

  template <typename Fn>
  void ForEach(Fn fn) {
    for (size_t s = 0; s < cap_; ++s) {
      if (used_[s] != 0) fn(&keys_[s * k_], &accs_[s]);
    }
  }

  size_t size() const { return size_; }

 private:
  // splitmix64 finalizer, word-combined across the packed key.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  uint64_t Hash(const int64_t* key) const {
    uint64_t h = 0;
    for (size_t i = 0; i < k_; ++i) h = Mix(h ^ static_cast<uint64_t>(key[i]));
    return h;
  }

  void Grow() {
    const size_t ncap = cap_ == 0 ? 64 : cap_ * 2;
    std::vector<int64_t> old_keys = std::move(keys_);
    std::vector<uint8_t> old_used = std::move(used_);
    std::vector<GroupAcc> old_accs = std::move(accs_);
    const size_t old_cap = cap_;
    cap_ = ncap;
    mask_ = ncap - 1;
    keys_.assign(ncap * k_, 0);
    used_.assign(ncap, 0);
    accs_.assign(ncap, GroupAcc());
    size_ = 0;
    for (size_t s = 0; s < old_cap; ++s) {
      if (old_used[s] == 0) continue;
      GroupAcc* a = FindOrInsert(&old_keys[s * k_]);
      *a = std::move(old_accs[s]);
    }
  }

  size_t k_;
  size_t cap_ = 0;
  size_t size_ = 0;
  size_t mask_ = 0;
  std::vector<int64_t> keys_;
  std::vector<uint8_t> used_;
  std::vector<GroupAcc> accs_;
};

/// The global-aggregate (no group columns) morsel body: reduces the
/// del-free segments of [mb, me) with the SIMD kernels where the mode is
/// typed, so a whole segment folds at vector width instead of per row.
void ReduceGlobalMorsel(const ColumnBatch& batch,
                        const std::vector<Tuple>& tuples, size_t agg_column,
                        AggAccMode mode, size_t mb, size_t me,
                        const std::vector<uint32_t>& del_pos, GroupAcc* acc) {
  auto seg_begin = std::lower_bound(del_pos.begin(), del_pos.end(),
                                    static_cast<uint32_t>(mb));
  size_t b = mb;
  auto reduce = [&](size_t sb, size_t se) {
    if (se <= sb) return;
    const size_t n = se - sb;
    switch (mode) {
      case AggAccMode::kCount:
        acc->count += static_cast<int64_t>(n);
        return;
      case AggAccMode::kSumInt: {
        const int64_t* v = batch.ints(agg_column) + sb;
        acc->u.sum += static_cast<uint64_t>(SimdSumInt64(v, n));
        acc->count += static_cast<int64_t>(n);
        return;
      }
      case AggAccMode::kMinMaxInt: {
        const int64_t* v = batch.ints(agg_column) + sb;
        if (acc->count == 0) {
          acc->u.i.min_i = v[0];
          acc->u.i.max_i = v[0];
        }
        SimdMinMaxInt64(v, n, &acc->u.i.min_i, &acc->u.i.max_i);
        acc->count += static_cast<int64_t>(n);
        return;
      }
      case AggAccMode::kMinMaxDouble: {
        const double* v = batch.doubles(agg_column) + sb;
        if (acc->count == 0) {
          acc->u.d.min_d = v[0];
          acc->u.d.max_d = v[0];
        }
        SimdMinMaxFloat64(v, n, &acc->u.d.min_d, &acc->u.d.max_d);
        acc->count += static_cast<int64_t>(n);
        return;
      }
      case AggAccMode::kMinMaxValue:
        for (size_t i = sb; i < se; ++i) {
          AccValueRow(acc, tuples, agg_column, i);
        }
        return;
    }
  };
  for (auto dp = seg_begin; dp != del_pos.end() && *dp < me; ++dp) {
    reduce(b, *dp);
    b = *dp + 1;
  }
  reduce(b, me);
}

}  // namespace

std::optional<Relation> TryColumnarAggregate(
    const RelationView& input, const std::vector<size_t>& group_columns,
    AggFunc func, size_t agg_column, const ColumnarConfig& config) {
  if (!config.enabled()) return std::nullopt;
  const size_t arity = input.arity();
  if (agg_column >= arity) return std::nullopt;
  for (size_t c : group_columns) {
    if (c >= arity) return std::nullopt;
  }
  const RelationPtr& base = input.base();
  const size_t base_rows = base->size();
  if (base_rows < config.min_rows) return std::nullopt;
  if (OverlayTooLarge(input, config)) return std::nullopt;

  ExecGovernor* gov = CurrentGovernor();
  ColumnBatchPtr batch = base->ColumnarBatch();
  if (gov != nullptr && gov->tripped()) return std::nullopt;

  // Pick the accumulation mode from the column encoding, then let the
  // overlay adds veto it: a non-int summand rules out the wrap-exact
  // integer sum, and min/max in the boxed Value mode never run with adds
  // at all — the row kernel interleaves adds in sorted order, so a
  // Compare-equal-but-distinct pair (Int(2) vs Double(2.0)) could seed a
  // different representative than folding adds after the base.
  AggAccMode mode;
  switch (func) {
    case AggFunc::kCount:
      mode = AggAccMode::kCount;
      break;
    case AggFunc::kSum:
      if (batch->encoding(agg_column) != ColumnEncoding::kInt64) {
        return std::nullopt;
      }
      mode = AggAccMode::kSumInt;
      break;
    case AggFunc::kMin:
    case AggFunc::kMax:
      switch (batch->encoding(agg_column)) {
        case ColumnEncoding::kInt64:
          mode = AggAccMode::kMinMaxInt;
          break;
        case ColumnEncoding::kFloat64:
          mode = AggAccMode::kMinMaxDouble;
          break;
        default:
          mode = AggAccMode::kMinMaxValue;
          break;
      }
      break;
    default:
      return std::nullopt;
  }
  const size_t key_width = group_columns.size();
  bool typed_keys = key_width >= 1 && key_width <= kMaxTypedKeyWidth;
  if (typed_keys) {
    for (size_t c : group_columns) {
      typed_keys = typed_keys && batch->encoding(c) == ColumnEncoding::kInt64;
    }
  }
  if (mode == AggAccMode::kMinMaxValue && !input.adds().empty()) {
    return std::nullopt;
  }
  for (const Tuple& a : input.adds()) {
    if (typed_keys) {
      for (size_t c : group_columns) {
        if (!a[c].is_int()) {
          typed_keys = false;
          break;
        }
      }
    }
    const Value& v = a[agg_column];
    switch (mode) {
      case AggAccMode::kSumInt:
        if (!v.is_int()) return std::nullopt;
        break;
      case AggAccMode::kMinMaxInt:
        if (!v.is_int()) return std::nullopt;
        break;
      case AggAccMode::kMinMaxDouble:
        if (!v.is_double()) return std::nullopt;
        break;
      default:
        break;
    }
  }

  TraceSpan span("columnar-aggregate", input.size());
  const std::vector<Tuple>& tuples = base->tuples();
  const std::vector<uint32_t> del_pos = DelPositions(*base, input.dels());
  const size_t morsel_rows = std::max<size_t>(config.morsel_rows, 1);
  const size_t num_morsels = (base_rows + morsel_rows - 1) / morsel_rows;
  std::atomic<bool> stop{false};
  const bool global = group_columns.empty();

  // Dense direct-index fast path: a single int64 group key whose observed
  // range (base plus adds) is small indexes an accumulator array directly
  // — no hashing, no per-morsel partials, and groups emit already in
  // canonical key order. This is the high-cardinality regime where the
  // hash table's random probes dominate the scan.
  size_t dense_range = 0;
  int64_t dense_min = 0;
  if (!global && typed_keys && key_width == 1) {
    const int64_t* keys = batch->ints(group_columns[0]);
    int64_t kmin = keys[0];
    int64_t kmax = keys[0];
    SimdMinMaxInt64(keys, base_rows, &kmin, &kmax);
    for (const Tuple& a : input.adds()) {
      const int64_t k = a[group_columns[0]].AsInt();
      if (k < kmin) kmin = k;
      if (k > kmax) kmax = k;
    }
    const uint64_t span_words =
        static_cast<uint64_t>(kmax) - static_cast<uint64_t>(kmin);
    if (span_words < (1u << 20) &&
        span_words < 4 * static_cast<uint64_t>(base_rows)) {
      dense_range = static_cast<size_t>(span_words) + 1;
      dense_min = kmin;
    }
  }

  std::vector<Tuple> out;
  ExecContext& ctx = AmbientExecContext();
  auto emit = [&](Tuple&& key, const GroupAcc& acc) -> bool {
    if (gov != nullptr && !gov->ChargeTuples(1)) return false;
    key.push_back(FinalizeAcc(acc, func, mode, tuples, agg_column));
    out.push_back(std::move(key));
    return true;
  };

  if (dense_range != 0) {
    const int64_t* keys = batch->ints(group_columns[0]);
    std::vector<GroupAcc> accs(dense_range);
    auto dp = del_pos.begin();
    for (size_t m = 0; m < num_morsels; ++m) {
      const size_t mb = m * morsel_rows;
      const size_t me = std::min(base_rows, mb + morsel_rows);
      if (gov != nullptr && !gov->Tick(me - mb)) break;
      for (size_t i = mb; i < me; ++i) {
        if (dp != del_pos.end() && *dp == i) {
          ++dp;
          continue;
        }
        const size_t slot = static_cast<size_t>(
            static_cast<uint64_t>(keys[i]) - static_cast<uint64_t>(dense_min));
        AccRow(&accs[slot], mode, *batch, tuples, agg_column, i);
      }
    }
    for (const Tuple& a : input.adds()) {
      const size_t slot =
          static_cast<size_t>(static_cast<uint64_t>(a[group_columns[0]].AsInt()) -
                              static_cast<uint64_t>(dense_min));
      AccAddValue(&accs[slot], mode, a[agg_column]);
    }
    for (size_t s = 0; s < dense_range; ++s) {
      if (accs[s].count == 0) continue;
      Tuple row;
      row.reserve(2);
      row.push_back(Value::Int(dense_min + static_cast<int64_t>(s)));
      if (!emit(std::move(row), accs[s])) break;
    }
    ctx.AddColumnarMorselsDispatched(num_morsels);
    ctx.AddColumnarAggRowsVectorized(base_rows);
    ctx.AddColumnarAggGroups(out.size());
    span.set_rows_out(out.size());
    // Ascending dense slots are already canonical order; FromTuples just
    // verifies it (group keys are unique, so the dedup is a no-op).
    return Relation::FromTuples(group_columns.size() + 1, std::move(out));
  }

  // Per-morsel partial tables, merged below in morsel order so strict
  // min/max updates see base rows in position order.
  std::vector<FlatGroupTable> typed_partials;
  std::vector<std::unordered_map<Tuple, GroupAcc, TupleHash>> generic_partials;
  std::vector<GroupAcc> global_partials;
  if (global) {
    global_partials.resize(num_morsels);
  } else if (typed_keys) {
    typed_partials.assign(num_morsels, FlatGroupTable(key_width));
  } else {
    generic_partials.resize(num_morsels);
  }

  MorselParallelFor(num_morsels, config.threads, [&](size_t m) {
    if (stop.load(std::memory_order_relaxed)) return;
    const size_t mb = m * morsel_rows;
    const size_t me = std::min(base_rows, mb + morsel_rows);
    if (gov != nullptr && !gov->Tick(me - mb)) {
      stop.store(true, std::memory_order_relaxed);
      return;
    }
    if (global) {
      ReduceGlobalMorsel(*batch, tuples, agg_column, mode, mb, me, del_pos,
                         &global_partials[m]);
      return;
    }
    auto dp = std::lower_bound(del_pos.begin(), del_pos.end(),
                               static_cast<uint32_t>(mb));
    auto deleted = [&dp, &del_pos](size_t i) {
      while (dp != del_pos.end() && *dp < i) ++dp;
      if (dp != del_pos.end() && *dp == i) {
        ++dp;
        return true;
      }
      return false;
    };
    if (typed_keys) {
      const int64_t* key_cols[kMaxTypedKeyWidth] = {nullptr};
      for (size_t k = 0; k < key_width; ++k) {
        key_cols[k] = batch->ints(group_columns[k]);
      }
      FlatGroupTable& table = typed_partials[m];
      int64_t key[kMaxTypedKeyWidth];
      for (size_t i = mb; i < me; ++i) {
        if (deleted(i)) continue;
        for (size_t k = 0; k < key_width; ++k) key[k] = key_cols[k][i];
        AccRow(table.FindOrInsert(key), mode, *batch, tuples, agg_column, i);
      }
    } else {
      std::unordered_map<Tuple, GroupAcc, TupleHash>& table =
          generic_partials[m];
      for (size_t i = mb; i < me; ++i) {
        if (deleted(i)) continue;
        const Tuple& t = tuples[i];
        Tuple key;
        key.reserve(key_width);
        for (size_t c : group_columns) key.push_back(t[c]);
        AccRow(&table[std::move(key)], mode, *batch, tuples, agg_column, i);
      }
    }
  });

  // Merge phase: fold partials in morsel order, then the overlay adds
  // (sorted, disjoint from the base) row-wise.
  if (global) {
    GroupAcc total;
    for (GroupAcc& p : global_partials) {
      MergeAcc(&total, p, mode, tuples, agg_column);
    }
    for (const Tuple& a : input.adds()) {
      AccAddValue(&total, mode, a[agg_column]);
    }
    if (total.count > 0) emit(Tuple(), total);
  } else if (typed_keys) {
    FlatGroupTable merged(key_width);
    for (FlatGroupTable& p : typed_partials) {
      p.ForEach([&](const int64_t* key, GroupAcc* acc) {
        MergeAcc(merged.FindOrInsert(key), *acc, mode, tuples, agg_column);
      });
    }
    for (const Tuple& a : input.adds()) {
      int64_t key[kMaxTypedKeyWidth];
      for (size_t k = 0; k < key_width; ++k) key[k] = a[group_columns[k]].AsInt();
      AccAddValue(merged.FindOrInsert(key), mode, a[agg_column]);
    }
    out.reserve(merged.size());
    bool keep_going = true;
    merged.ForEach([&](const int64_t* key, GroupAcc* acc) {
      if (!keep_going) return;
      Tuple row;
      row.reserve(key_width + 1);
      for (size_t k = 0; k < key_width; ++k) row.push_back(Value::Int(key[k]));
      keep_going = emit(std::move(row), *acc);
    });
  } else {
    std::unordered_map<Tuple, GroupAcc, TupleHash> merged;
    for (auto& p : generic_partials) {
      for (auto& [key, acc] : p) {
        MergeAcc(&merged[key], acc, mode, tuples, agg_column);
      }
    }
    for (const Tuple& a : input.adds()) {
      Tuple key;
      key.reserve(key_width);
      for (size_t c : group_columns) key.push_back(a[c]);
      AccAddValue(&merged[std::move(key)], mode, a[agg_column]);
    }
    out.reserve(merged.size());
    for (auto& [key, acc] : merged) {
      Tuple row = key;
      if (!emit(std::move(row), acc)) break;
    }
  }
  ctx.AddColumnarMorselsDispatched(num_morsels);
  ctx.AddColumnarAggRowsVectorized(base_rows);
  ctx.AddColumnarAggGroups(out.size());
  span.set_rows_out(out.size());
  // FromTuples canonicalizes (sort + dedup; group keys are unique, so the
  // dedup is a no-op), matching the row kernel's output order exactly.
  return Relation::FromTuples(group_columns.size() + 1, std::move(out));
}

Relation VectorizedAggregate(const RelationView& input,
                             const std::vector<size_t>& group_columns,
                             AggFunc func, size_t agg_column,
                             const ColumnarConfig& columnar) {
  std::optional<Relation> col =
      TryColumnarAggregate(input, group_columns, func, agg_column, columnar);
  if (col.has_value()) return *std::move(col);
  if (columnar.enabled()) {
    AmbientExecContext().AddColumnarRowsFallback(input.size());
  }
  return AggregateRelation(input, group_columns, func, agg_column);
}

Relation VectorizedFilter(const RelationView& input, const ScalarExprPtr& pred,
                          const IndexConfig& indexes,
                          const ColumnarConfig& columnar) {
  HQL_CHECK(pred != nullptr);
  std::optional<Relation> fast = TryIndexedFilter(input, pred, indexes);
  if (fast.has_value()) return *std::move(fast);
  std::optional<Relation> col = TryColumnarFilter(input, pred, columnar);
  if (col.has_value()) return *std::move(col);
  if (columnar.enabled()) {
    AmbientExecContext().AddColumnarRowsFallback(input.size());
  }
  return FilterRelation(input, *pred);
}

Relation VectorizedJoin(const RelationView& lhs, const RelationView& rhs,
                        const ScalarExprPtr& pred, const IndexConfig& indexes,
                        const ColumnarConfig& columnar) {
  std::optional<Relation> fast = TryIndexedJoin(lhs, rhs, pred, indexes);
  if (fast.has_value()) return *std::move(fast);
  std::optional<Relation> col = TryColumnarJoin(lhs, rhs, pred, columnar);
  if (col.has_value()) return *std::move(col);
  if (columnar.enabled()) {
    AmbientExecContext().AddColumnarRowsFallback(lhs.size() + rhs.size());
  }
  return JoinRelations(lhs, rhs, pred);
}

}  // namespace hql
