#include "eval/index_exec.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <unordered_map>

#include "common/check.h"
#include "common/exec_context.h"
#include "common/governor.h"
#include "eval/ra_eval.h"

namespace hql {

std::optional<SargablePredicate> ExtractSargable(const ScalarExprPtr& pred) {
  std::vector<ScalarExprPtr> conjuncts;
  FlattenConjuncts(pred, &conjuncts);
  // An ordered map keeps the prefix columns strictly ascending and drops
  // duplicate equalities on one column into the residual.
  std::map<size_t, Value> equalities;
  std::vector<ScalarExprPtr> residual;
  for (const ScalarExprPtr& c : conjuncts) {
    const ScalarExpr* col = nullptr;
    const ScalarExpr* lit = nullptr;
    if (c->kind() == ScalarKind::kBinary && c->op() == ScalarOp::kEq) {
      if (c->lhs()->kind() == ScalarKind::kColumn &&
          c->rhs()->kind() == ScalarKind::kLiteral) {
        col = c->lhs().get();
        lit = c->rhs().get();
      } else if (c->rhs()->kind() == ScalarKind::kColumn &&
                 c->lhs()->kind() == ScalarKind::kLiteral) {
        col = c->rhs().get();
        lit = c->lhs().get();
      }
    }
    if (col != nullptr && equalities.count(col->column()) == 0) {
      equalities.emplace(col->column(), lit->literal());
    } else {
      residual.push_back(c);
    }
  }
  if (equalities.empty()) return std::nullopt;
  SargablePredicate out;
  out.columns.reserve(equalities.size());
  out.key.reserve(equalities.size());
  for (auto& [column, value] : equalities) {
    out.columns.push_back(column);
    out.key.push_back(std::move(value));
  }
  out.residual = std::move(residual);
  return out;
}

void SplitJoinPredicate(const ScalarExprPtr& pred, size_t split,
                        std::vector<std::pair<size_t, size_t>>* equi,
                        std::vector<ScalarExprPtr>* residual) {
  std::vector<ScalarExprPtr> conjuncts;
  FlattenConjuncts(pred, &conjuncts);
  for (const ScalarExprPtr& c : conjuncts) {
    if (c->kind() == ScalarKind::kBinary && c->op() == ScalarOp::kEq &&
        c->lhs()->kind() == ScalarKind::kColumn &&
        c->rhs()->kind() == ScalarKind::kColumn) {
      size_t a = c->lhs()->column();
      size_t b = c->rhs()->column();
      if (a < split && b >= split) {
        equi->push_back({a, b - split});
        continue;
      }
      if (b < split && a >= split) {
        equi->push_back({b, a - split});
        continue;
      }
    }
    residual->push_back(c);
  }
}

namespace {

// Resolves the index to probe under the configured policy. Never builds in
// kManual mode; in kAdvisor mode the advisor decides when a column set has
// earned its build.
RelationIndexPtr LookupIndex(const RelationPtr& base,
                             const std::vector<size_t>& columns,
                             const IndexConfig& config) {
  switch (config.mode) {
    case IndexMode::kOff:
      return nullptr;
    case IndexMode::kManual:
      return base->ExistingIndex(columns);
    case IndexMode::kAdvisor:
      if (config.advisor == nullptr) return base->ExistingIndex(columns);
      // Under a governor, an advisor-driven build over a base past the
      // index-build budget (or on an already-tripped execution) degrades to
      // whatever index already exists — a scan otherwise — instead of
      // paying the build.
      if (ExecGovernor* gov = CurrentGovernor();
          gov != nullptr && !gov->AllowIndexBuild(base->size())) {
        AddIndexFallback();
        return base->ExistingIndex(columns);
      }
      return config.advisor->Advise(base, columns);
  }
  return nullptr;
}

bool ResidualOk(const std::vector<ScalarExprPtr>& residual, const Tuple& t) {
  for (const ScalarExprPtr& r : residual) {
    if (!r->EvaluatesTrue(t)) return false;
  }
  return true;
}

}  // namespace

std::optional<Relation> TryIndexedFilter(const RelationView& input,
                                         const ScalarExprPtr& pred,
                                         const IndexConfig& config) {
  if (!config.enabled() || pred == nullptr) return std::nullopt;
  const RelationPtr& base = input.base();
  if (base->size() < config.min_index_rows) return std::nullopt;
  std::optional<SargablePredicate> sarg = ExtractSargable(pred);
  if (!sarg.has_value()) return std::nullopt;
  // Out-of-arity columns evaluate to null under the scan semantics (and
  // `null = null` is true); that never matches hash-key semantics, so only
  // in-range prefixes are probeable.
  if (sarg->columns.back() >= input.arity()) return std::nullopt;
  RelationIndexPtr index = LookupIndex(base, sarg->columns, config);
  if (index == nullptr) return std::nullopt;

  TraceSpan trace("index-select", input.size());
  RelationIndex::PosSpan span = index->Probe(sarg->key);
  AddIndexTuplesSkipped(base->size() - span.size());

  const std::vector<Tuple>& tuples = base->tuples();
  const std::vector<Tuple>& dels = input.dels();
  std::vector<Tuple> matched;
  matched.reserve(span.size());
  for (uint32_t pos : span) {
    const Tuple& t = tuples[pos];
    if (!dels.empty() &&
        std::binary_search(dels.begin(), dels.end(), t, TupleLess())) {
      continue;
    }
    if (ResidualOk(sarg->residual, t)) matched.push_back(t);
  }
  std::vector<Tuple> added;
  for (const Tuple& a : input.adds()) {
    if (pred->EvaluatesTrue(a)) added.push_back(a);
  }
  // Both runs are sorted and unique (ascending positions over a sorted
  // base; adds are canonical) and disjoint (adds never appear in the
  // base), so one merge rebuilds relation order.
  std::vector<Tuple> out;
  out.reserve(matched.size() + added.size());
  std::set_union(matched.begin(), matched.end(), added.begin(), added.end(),
                 std::back_inserter(out), TupleLess());
  trace.set_rows_out(out.size());
  return Relation::FromSortedUnique(input.arity(), std::move(out));
}

Relation IndexedFilter(const RelationView& input, const ScalarExprPtr& pred,
                       const IndexConfig& config) {
  HQL_CHECK(pred != nullptr);
  std::optional<Relation> fast = TryIndexedFilter(input, pred, config);
  if (fast.has_value()) return *std::move(fast);
  return FilterRelation(input, *pred);
}

std::optional<Relation> TryIndexedJoin(const RelationView& lhs,
                                       const RelationView& rhs,
                                       const ScalarExprPtr& pred,
                                       const IndexConfig& config) {
  if (!config.enabled() || pred == nullptr) return std::nullopt;
  std::vector<std::pair<size_t, size_t>> equi;
  std::vector<ScalarExprPtr> residual;
  SplitJoinPredicate(pred, lhs.arity(), &equi, &residual);
  if (equi.empty()) return std::nullopt;

  // Index the side with the larger base; stream the other. The index pays
  // off when it already exists (shared across a family of alternatives),
  // which LookupIndex's policy decides.
  const bool index_rhs = rhs.base()->size() >= lhs.base()->size();
  const RelationView& big = index_rhs ? rhs : lhs;
  const RelationView& small = index_rhs ? lhs : rhs;
  if (big.base()->size() < config.min_index_rows) return std::nullopt;

  // (index column on big, probe column on small), ascending by index
  // column — the index key shape. A column equated twice cannot form an
  // index key; fall back.
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(equi.size());
  for (const auto& [lc, rc] : equi) {
    size_t big_col = index_rhs ? rc : lc;
    size_t small_col = index_rhs ? lc : rc;
    if (big_col >= big.arity() || small_col >= small.arity()) {
      return std::nullopt;
    }
    pairs.push_back({big_col, small_col});
  }
  std::sort(pairs.begin(), pairs.end());
  for (size_t i = 1; i < pairs.size(); ++i) {
    if (pairs[i].first == pairs[i - 1].first) return std::nullopt;
  }
  std::vector<size_t> columns;
  columns.reserve(pairs.size());
  for (const auto& [big_col, small_col] : pairs) columns.push_back(big_col);

  RelationIndexPtr index = LookupIndex(big.base(), columns, config);
  if (index == nullptr) return std::nullopt;

  TraceSpan trace("index-join", lhs.size() + rhs.size());
  // The indexed side's adds are not in its base; a small hash table keyed
  // the same way patches them in.
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> adds_table;
  for (const Tuple& a : big.adds()) {
    adds_table[index->KeyOf(a)].push_back(&a);
  }

  const std::vector<Tuple>& big_tuples = big.base()->tuples();
  const std::vector<Tuple>& big_dels = big.dels();
  std::vector<Tuple> out;
  uint64_t touched = 0;
  auto emit = [&](const Tuple& probe_tuple, const Tuple& big_tuple) {
    Tuple combined = index_rhs ? ConcatTuples(probe_tuple, big_tuple)
                               : ConcatTuples(big_tuple, probe_tuple);
    if (ResidualOk(residual, combined)) out.push_back(std::move(combined));
  };
  for (const Tuple& p : small) {
    Tuple key;
    key.reserve(pairs.size());
    for (const auto& [big_col, small_col] : pairs) key.push_back(p[small_col]);
    for (uint32_t pos : index->Probe(key)) {
      const Tuple& t = big_tuples[pos];
      ++touched;
      if (!big_dels.empty() &&
          std::binary_search(big_dels.begin(), big_dels.end(), t,
                             TupleLess())) {
        continue;
      }
      emit(p, t);
    }
    auto it = adds_table.find(key);
    if (it != adds_table.end()) {
      for (const Tuple* a : it->second) emit(p, *a);
    }
  }
  uint64_t big_size = big.base()->size();
  AddIndexTuplesSkipped(big_size > touched ? big_size - touched : 0);
  trace.set_rows_out(out.size());
  return Relation::FromTuples(lhs.arity() + rhs.arity(), std::move(out));
}

Relation IndexedJoin(const RelationView& lhs, const RelationView& rhs,
                     const ScalarExprPtr& pred, const IndexConfig& config) {
  std::optional<Relation> fast = TryIndexedJoin(lhs, rhs, pred, config);
  if (fast.has_value()) return *std::move(fast);
  return JoinRelations(lhs, rhs, pred);
}

}  // namespace hql
