#include "eval/ra_eval.h"

#include <vector>

#include "common/check.h"

namespace hql {

Relation FilterRelation(const Relation& input, const ScalarExpr& predicate) {
  std::vector<Tuple> out;
  for (const Tuple& t : input) {
    if (predicate.EvaluatesTrue(t)) out.push_back(t);
  }
  // Filtering preserves order and uniqueness.
  return Relation::FromSortedUnique(input.arity(), std::move(out));
}

Relation ProjectRelation(const Relation& input,
                         const std::vector<size_t>& columns) {
  std::vector<Tuple> out;
  out.reserve(input.size());
  for (const Tuple& t : input) {
    Tuple p;
    p.reserve(columns.size());
    for (size_t c : columns) {
      HQL_CHECK(c < t.size());
      p.push_back(t[c]);
    }
    out.push_back(std::move(p));
  }
  return Relation::FromTuples(columns.size(), std::move(out));
}

namespace {

// Collects `$i = $j` conjuncts with i on the left side and j on the right
// side of a join whose left operand has arity `split`. Returns the residual
// predicate (nullptr when the whole predicate was consumed).
void SplitJoinPredicate(const ScalarExprPtr& pred, size_t split,
                        std::vector<std::pair<size_t, size_t>>* equi,
                        std::vector<ScalarExprPtr>* residual) {
  if (pred->kind() == ScalarKind::kBinary && pred->op() == ScalarOp::kAnd) {
    SplitJoinPredicate(pred->lhs(), split, equi, residual);
    SplitJoinPredicate(pred->rhs(), split, equi, residual);
    return;
  }
  if (pred->kind() == ScalarKind::kBinary && pred->op() == ScalarOp::kEq &&
      pred->lhs()->kind() == ScalarKind::kColumn &&
      pred->rhs()->kind() == ScalarKind::kColumn) {
    size_t a = pred->lhs()->column();
    size_t b = pred->rhs()->column();
    if (a < split && b >= split) {
      equi->push_back({a, b - split});
      return;
    }
    if (b < split && a >= split) {
      equi->push_back({b, a - split});
      return;
    }
  }
  residual->push_back(pred);
}

}  // namespace

Relation JoinRelations(const Relation& lhs, const Relation& rhs,
                       const ScalarExprPtr& predicate) {
  const size_t out_arity = lhs.arity() + rhs.arity();

  std::vector<std::pair<size_t, size_t>> equi;
  std::vector<ScalarExprPtr> residual;
  if (predicate != nullptr) {
    SplitJoinPredicate(predicate, lhs.arity(), &equi, &residual);
  }

  auto residual_ok = [&](const Tuple& combined) {
    for (const ScalarExprPtr& r : residual) {
      if (!r->EvaluatesTrue(combined)) return false;
    }
    return true;
  };

  std::vector<Tuple> out;
  if (!equi.empty()) {
    // Hash join: build on the smaller side conceptually; build on rhs and
    // probe with lhs (keeps output construction simple).
    std::map<Tuple, std::vector<const Tuple*>, TupleLess> table;
    for (const Tuple& r : rhs) {
      Tuple key;
      key.reserve(equi.size());
      for (const auto& [lc, rc] : equi) {
        (void)lc;
        key.push_back(r[rc]);
      }
      table[std::move(key)].push_back(&r);
    }
    for (const Tuple& l : lhs) {
      Tuple key;
      key.reserve(equi.size());
      for (const auto& [lc, rc] : equi) {
        (void)rc;
        key.push_back(l[lc]);
      }
      auto it = table.find(key);
      if (it == table.end()) continue;
      for (const Tuple* r : it->second) {
        Tuple combined = ConcatTuples(l, *r);
        if (residual_ok(combined)) out.push_back(std::move(combined));
      }
    }
  } else {
    // Nested loop with the predicate applied inline (clustered sigma-x).
    for (const Tuple& l : lhs) {
      for (const Tuple& r : rhs) {
        Tuple combined = ConcatTuples(l, r);
        if (residual_ok(combined)) out.push_back(std::move(combined));
      }
    }
  }
  return Relation::FromTuples(out_arity, std::move(out));
}

Relation AggregateRelation(const Relation& input,
                           const std::vector<size_t>& group_columns,
                           AggFunc func, size_t agg_column) {
  struct Acc {
    int64_t count = 0;
    int64_t int_sum = 0;
    double dbl_sum = 0;
    bool any_double = false;
    bool any_number = false;
    Value min_v;
    Value max_v;
  };
  std::map<Tuple, Acc, TupleLess> groups;
  for (const Tuple& t : input) {
    Tuple key;
    key.reserve(group_columns.size());
    for (size_t c : group_columns) key.push_back(t[c]);
    Acc& acc = groups[std::move(key)];
    const Value& v = t[agg_column];
    if (acc.count == 0) {
      acc.min_v = v;
      acc.max_v = v;
    } else {
      if (v.Compare(acc.min_v) < 0) acc.min_v = v;
      if (v.Compare(acc.max_v) > 0) acc.max_v = v;
    }
    ++acc.count;
    if (v.is_int()) {
      acc.int_sum += v.AsInt();
      acc.dbl_sum += static_cast<double>(v.AsInt());
      acc.any_number = true;
    } else if (v.is_double()) {
      acc.dbl_sum += v.AsDouble();
      acc.any_double = true;
      acc.any_number = true;
    }
  }
  std::vector<Tuple> out;
  out.reserve(groups.size());
  for (auto& [key, acc] : groups) {
    Value agg;
    switch (func) {
      case AggFunc::kCount:
        agg = Value::Int(acc.count);
        break;
      case AggFunc::kSum:
        if (!acc.any_number) {
          agg = Value::Nul();
        } else if (acc.any_double) {
          agg = Value::Double(acc.dbl_sum);
        } else {
          agg = Value::Int(acc.int_sum);
        }
        break;
      case AggFunc::kMin:
        agg = acc.min_v;
        break;
      case AggFunc::kMax:
        agg = acc.max_v;
        break;
    }
    Tuple row = key;
    row.push_back(std::move(agg));
    out.push_back(std::move(row));
  }
  return Relation::FromTuples(group_columns.size() + 1, std::move(out));
}

Result<Relation> EvalRa(const QueryPtr& query, const RelResolver& resolver) {
  HQL_CHECK(query != nullptr);
  switch (query->kind()) {
    case QueryKind::kRel:
      return resolver.Resolve(query->rel_name());
    case QueryKind::kEmpty:
      return Relation(query->empty_arity());
    case QueryKind::kSingleton:
      return Relation::FromTuples(query->tuple().size(), {query->tuple()});
    case QueryKind::kSelect: {
      // Cluster sigma over x / join into a theta join.
      const QueryPtr& child = query->left();
      if (child->kind() == QueryKind::kProduct ||
          child->kind() == QueryKind::kJoin) {
        HQL_ASSIGN_OR_RETURN(Relation l, EvalRa(child->left(), resolver));
        HQL_ASSIGN_OR_RETURN(Relation r, EvalRa(child->right(), resolver));
        ScalarExprPtr pred = query->predicate();
        if (child->kind() == QueryKind::kJoin) {
          pred = ScalarExpr::Binary(ScalarOp::kAnd, pred, child->predicate());
        }
        return JoinRelations(l, r, pred);
      }
      HQL_ASSIGN_OR_RETURN(Relation in, EvalRa(child, resolver));
      return FilterRelation(in, *query->predicate());
    }
    case QueryKind::kProject: {
      HQL_ASSIGN_OR_RETURN(Relation in, EvalRa(query->left(), resolver));
      return ProjectRelation(in, query->columns());
    }
    case QueryKind::kAggregate: {
      HQL_ASSIGN_OR_RETURN(Relation in, EvalRa(query->left(), resolver));
      return AggregateRelation(in, query->columns(), query->agg_func(),
                               query->agg_column());
    }
    case QueryKind::kUnion: {
      HQL_ASSIGN_OR_RETURN(Relation l, EvalRa(query->left(), resolver));
      HQL_ASSIGN_OR_RETURN(Relation r, EvalRa(query->right(), resolver));
      return l.UnionWith(r);
    }
    case QueryKind::kIntersect: {
      HQL_ASSIGN_OR_RETURN(Relation l, EvalRa(query->left(), resolver));
      HQL_ASSIGN_OR_RETURN(Relation r, EvalRa(query->right(), resolver));
      return l.IntersectWith(r);
    }
    case QueryKind::kProduct: {
      HQL_ASSIGN_OR_RETURN(Relation l, EvalRa(query->left(), resolver));
      HQL_ASSIGN_OR_RETURN(Relation r, EvalRa(query->right(), resolver));
      return l.ProductWith(r);
    }
    case QueryKind::kJoin: {
      HQL_ASSIGN_OR_RETURN(Relation l, EvalRa(query->left(), resolver));
      HQL_ASSIGN_OR_RETURN(Relation r, EvalRa(query->right(), resolver));
      return JoinRelations(l, r, query->predicate());
    }
    case QueryKind::kDifference: {
      HQL_ASSIGN_OR_RETURN(Relation l, EvalRa(query->left(), resolver));
      HQL_ASSIGN_OR_RETURN(Relation r, EvalRa(query->right(), resolver));
      return l.DifferenceWith(r);
    }
    case QueryKind::kWhen:
      return Status::InvalidArgument(
          "EvalRa evaluates pure RA queries only; use EvalDirect / Filter1 / "
          "Filter2 for hypothetical queries");
  }
  return Status::Internal("unknown query kind in EvalRa");
}

}  // namespace hql
