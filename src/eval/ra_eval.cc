#include "eval/ra_eval.h"

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/exec_context.h"
#include "common/governor.h"
#include "eval/incremental.h"
#include "eval/index_exec.h"
#include "eval/memo.h"
#include "eval/vector_exec.h"

namespace hql {

namespace {

// The operator bodies are templated over the input kind (Relation or
// RelationView): both iterate tuples in sorted order and expose
// arity()/size(), so one implementation serves the flat and the
// merge-streaming form.
//
// Each kernel charges its *output* tuples against the ambient governor's
// tuple budget and ticks *processed* rows toward the cooperative-check
// cadence. On a trip the kernel breaks out and returns truncated data; the
// Status-returning caller (EvalRaNode) observes the trip via GovernorCheck
// and discards the partial result, so truncation never escapes.

template <typename Rel>
Relation FilterImpl(const Rel& input, const ScalarExpr& predicate) {
  TraceSpan span("select", input.size());
  ExecGovernor* gov = CurrentGovernor();
  std::vector<Tuple> out;
  for (const Tuple& t : input) {
    if (gov != nullptr && !gov->Tick()) break;
    if (predicate.EvaluatesTrue(t)) {
      out.push_back(t);
      if (gov != nullptr && !gov->ChargeTuples(1)) break;
    }
  }
  span.set_rows_out(out.size());
  // Filtering preserves order and uniqueness.
  return Relation::FromSortedUnique(input.arity(), std::move(out));
}

template <typename Rel>
Relation ProjectImpl(const Rel& input, const std::vector<size_t>& columns) {
  TraceSpan span("project", input.size());
  ExecGovernor* gov = CurrentGovernor();
  std::vector<Tuple> out;
  out.reserve(input.size());
  for (const Tuple& t : input) {
    Tuple p;
    p.reserve(columns.size());
    for (size_t c : columns) {
      HQL_CHECK(c < t.size());
      p.push_back(t[c]);
    }
    out.push_back(std::move(p));
    if (gov != nullptr && !gov->ChargeTuples(1)) break;
  }
  span.set_rows_out(out.size());
  return Relation::FromTuples(columns.size(), std::move(out));
}

// Equality-conjunct extraction lives in eval/index_exec.h
// (SplitJoinPredicate), shared with the index-nested-loop join.

template <typename Lhs, typename Rhs>
Relation JoinImpl(const Lhs& lhs, const Rhs& rhs,
                  const ScalarExprPtr& predicate) {
  TraceSpan span("join", lhs.size() + rhs.size());
  ExecGovernor* gov = CurrentGovernor();
  const size_t out_arity = lhs.arity() + rhs.arity();

  std::vector<std::pair<size_t, size_t>> equi;
  std::vector<ScalarExprPtr> residual;
  if (predicate != nullptr) {
    SplitJoinPredicate(predicate, lhs.arity(), &equi, &residual);
  }

  auto residual_ok = [&](const Tuple& combined) {
    for (const ScalarExprPtr& r : residual) {
      if (!r->EvaluatesTrue(combined)) return false;
    }
    return true;
  };

  std::vector<Tuple> out;
  if (!equi.empty()) {
    // Hash join, building on the smaller input and probing with the larger
    // one; the build side's key columns come from `equi`'s lhs or rhs slot
    // depending on which side we picked. Output tuples are always
    // (lhs, rhs) regardless of build side. Iteration references stay valid
    // for the inputs' lifetime (view iterators hand out references into the
    // base/overlay storage), so the table stores plain pointers.
    const bool build_rhs = rhs.size() <= lhs.size();

    auto key_of = [&equi](const Tuple& t, bool use_rhs_cols) {
      Tuple key;
      key.reserve(equi.size());
      for (const auto& [lc, rc] : equi) key.push_back(t[use_rhs_cols ? rc : lc]);
      return key;
    };

    std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> table;
    auto build_into = [&](const auto& build, bool keys_from_rhs) {
      table.reserve(build.size());
      for (const Tuple& b : build) {
        table[key_of(b, keys_from_rhs)].push_back(&b);
      }
    };
    auto probe_with = [&](const auto& probe, bool keys_from_rhs) {
      for (const Tuple& p : probe) {
        if (gov != nullptr && !gov->Tick()) return;
        auto it = table.find(key_of(p, keys_from_rhs));
        if (it == table.end()) continue;
        for (const Tuple* b : it->second) {
          Tuple combined =
              keys_from_rhs ? ConcatTuples(*b, p) : ConcatTuples(p, *b);
          if (residual_ok(combined)) {
            out.push_back(std::move(combined));
            if (gov != nullptr && !gov->ChargeTuples(1)) return;
          }
        }
      }
    };
    if (build_rhs) {
      build_into(rhs, /*keys_from_rhs=*/true);
      probe_with(lhs, /*keys_from_rhs=*/false);
    } else {
      build_into(lhs, /*keys_from_rhs=*/false);
      probe_with(rhs, /*keys_from_rhs=*/true);
    }
  } else {
    // Nested loop with the predicate applied inline (clustered sigma-x).
    bool stop = false;
    for (const Tuple& l : lhs) {
      if (stop) break;
      for (const Tuple& r : rhs) {
        if (gov != nullptr && !gov->Tick()) {
          stop = true;
          break;
        }
        Tuple combined = ConcatTuples(l, r);
        if (residual_ok(combined)) {
          out.push_back(std::move(combined));
          if (gov != nullptr && !gov->ChargeTuples(1)) {
            stop = true;
            break;
          }
        }
      }
    }
  }
  span.set_rows_out(out.size());
  return Relation::FromTuples(out_arity, std::move(out));
}

template <typename Rel>
Relation AggregateImpl(const Rel& input,
                       const std::vector<size_t>& group_columns, AggFunc func,
                       size_t agg_column) {
  TraceSpan span("aggregate", input.size());
  struct Acc {
    int64_t count = 0;
    int64_t int_sum = 0;
    double dbl_sum = 0;
    bool any_double = false;
    bool any_number = false;
    Value min_v;
    Value max_v;
  };
  ExecGovernor* gov = CurrentGovernor();
  std::unordered_map<Tuple, Acc, TupleHash> groups;
  groups.reserve(input.size());
  for (const Tuple& t : input) {
    if (gov != nullptr && !gov->Tick()) break;
    Tuple key;
    key.reserve(group_columns.size());
    for (size_t c : group_columns) key.push_back(t[c]);
    Acc& acc = groups[std::move(key)];
    const Value& v = t[agg_column];
    if (acc.count == 0) {
      acc.min_v = v;
      acc.max_v = v;
    } else {
      if (v.Compare(acc.min_v) < 0) acc.min_v = v;
      if (v.Compare(acc.max_v) > 0) acc.max_v = v;
    }
    ++acc.count;
    if (v.is_int()) {
      acc.int_sum += v.AsInt();
      acc.dbl_sum += static_cast<double>(v.AsInt());
      acc.any_number = true;
    } else if (v.is_double()) {
      acc.dbl_sum += v.AsDouble();
      acc.any_double = true;
      acc.any_number = true;
    }
  }
  std::vector<Tuple> out;
  out.reserve(groups.size());
  for (auto& [key, acc] : groups) {
    if (gov != nullptr && !gov->ChargeTuples(1)) break;
    Value agg;
    switch (func) {
      case AggFunc::kCount:
        agg = Value::Int(acc.count);
        break;
      case AggFunc::kSum:
        if (!acc.any_number) {
          agg = Value::Nul();
        } else if (acc.any_double) {
          agg = Value::Double(acc.dbl_sum);
        } else {
          agg = Value::Int(acc.int_sum);
        }
        break;
      case AggFunc::kMin:
        agg = acc.min_v;
        break;
      case AggFunc::kMax:
        agg = acc.max_v;
        break;
    }
    Tuple row = key;
    row.push_back(std::move(agg));
    out.push_back(std::move(row));
  }
  span.set_rows_out(out.size());
  return Relation::FromTuples(group_columns.size() + 1, std::move(out));
}

}  // namespace

Relation FilterRelation(const Relation& input, const ScalarExpr& predicate) {
  return FilterImpl(input, predicate);
}

Relation FilterRelation(const RelationView& input,
                        const ScalarExpr& predicate) {
  return FilterImpl(input, predicate);
}

Relation ProjectRelation(const Relation& input,
                         const std::vector<size_t>& columns) {
  return ProjectImpl(input, columns);
}

Relation ProjectRelation(const RelationView& input,
                         const std::vector<size_t>& columns) {
  return ProjectImpl(input, columns);
}

Relation JoinRelations(const Relation& lhs, const Relation& rhs,
                       const ScalarExprPtr& predicate) {
  return JoinImpl(lhs, rhs, predicate);
}

Relation JoinRelations(const RelationView& lhs, const RelationView& rhs,
                       const ScalarExprPtr& predicate) {
  return JoinImpl(lhs, rhs, predicate);
}

Relation AggregateRelation(const Relation& input,
                           const std::vector<size_t>& group_columns,
                           AggFunc func, size_t agg_column) {
  return AggregateImpl(input, group_columns, func, agg_column);
}

Relation AggregateRelation(const RelationView& input,
                           const std::vector<size_t>& group_columns,
                           AggFunc func, size_t agg_column) {
  return AggregateImpl(input, group_columns, func, agg_column);
}

namespace {

// Subplan results flow through the recursion as copy-on-write views: a leaf
// resolve is a cheap view copy, a memo hit wraps the cached shared relation
// (refcount bump), and computed operator results ride in freshly wrapped
// flat views — no tuple copies move between nodes.
Result<RelationView> EvalRaNode(const QueryPtr& query,
                                const RelResolver& resolver,
                                const EvalMemo* memo);

// The operator switch; recursion goes through EvalRaNode so every subplan
// passes the memo check.
Result<RelationView> EvalRaCompute(const QueryPtr& query,
                                   const RelResolver& resolver,
                                   const EvalMemo* memo) {
  const IndexConfig indexes = memo != nullptr ? memo->indexes : IndexConfig();
  const ColumnarConfig columnar =
      memo != nullptr ? memo->columnar : ColumnarConfig();
  switch (query->kind()) {
    case QueryKind::kRel:
      return resolver.Resolve(query->rel_name());
    case QueryKind::kEmpty:
      return RelationView(query->empty_arity());
    case QueryKind::kSingleton:
      return RelationView(
          Relation::FromTuples(query->tuple().size(), {query->tuple()}));
    case QueryKind::kSelect: {
      // Cluster sigma over x / join into a theta join.
      const QueryPtr& child = query->left();
      if (child->kind() == QueryKind::kProduct ||
          child->kind() == QueryKind::kJoin) {
        HQL_ASSIGN_OR_RETURN(RelationView l,
                             EvalRaNode(child->left(), resolver, memo));
        HQL_ASSIGN_OR_RETURN(RelationView r,
                             EvalRaNode(child->right(), resolver, memo));
        ScalarExprPtr pred = query->predicate();
        if (child->kind() == QueryKind::kJoin) {
          pred = ScalarExpr::Binary(ScalarOp::kAnd, pred, child->predicate());
        }
        return RelationView(VectorizedJoin(l, r, pred, indexes, columnar));
      }
      HQL_ASSIGN_OR_RETURN(RelationView in,
                           EvalRaNode(child, resolver, memo));
      return RelationView(
          VectorizedFilter(in, query->predicate(), indexes, columnar));
    }
    case QueryKind::kProject: {
      HQL_ASSIGN_OR_RETURN(RelationView in,
                           EvalRaNode(query->left(), resolver, memo));
      return RelationView(ProjectRelation(in, query->columns()));
    }
    case QueryKind::kAggregate: {
      HQL_ASSIGN_OR_RETURN(RelationView in,
                           EvalRaNode(query->left(), resolver, memo));
      return RelationView(VectorizedAggregate(in, query->columns(),
                                              query->agg_func(),
                                              query->agg_column(), columnar));
    }
    case QueryKind::kUnion: {
      HQL_ASSIGN_OR_RETURN(RelationView l,
                           EvalRaNode(query->left(), resolver, memo));
      HQL_ASSIGN_OR_RETURN(RelationView r,
                           EvalRaNode(query->right(), resolver, memo));
      return RelationView(ViewUnion(l, r));
    }
    case QueryKind::kIntersect: {
      HQL_ASSIGN_OR_RETURN(RelationView l,
                           EvalRaNode(query->left(), resolver, memo));
      HQL_ASSIGN_OR_RETURN(RelationView r,
                           EvalRaNode(query->right(), resolver, memo));
      return RelationView(ViewIntersect(l, r));
    }
    case QueryKind::kProduct: {
      HQL_ASSIGN_OR_RETURN(RelationView l,
                           EvalRaNode(query->left(), resolver, memo));
      HQL_ASSIGN_OR_RETURN(RelationView r,
                           EvalRaNode(query->right(), resolver, memo));
      return RelationView(ViewProduct(l, r));
    }
    case QueryKind::kJoin: {
      HQL_ASSIGN_OR_RETURN(RelationView l,
                           EvalRaNode(query->left(), resolver, memo));
      HQL_ASSIGN_OR_RETURN(RelationView r,
                           EvalRaNode(query->right(), resolver, memo));
      return RelationView(
          VectorizedJoin(l, r, query->predicate(), indexes, columnar));
    }
    case QueryKind::kDifference: {
      HQL_ASSIGN_OR_RETURN(RelationView l,
                           EvalRaNode(query->left(), resolver, memo));
      HQL_ASSIGN_OR_RETURN(RelationView r,
                           EvalRaNode(query->right(), resolver, memo));
      return RelationView(ViewDifference(l, r));
    }
    case QueryKind::kWhen:
      return Status::InvalidArgument(
          "EvalRa evaluates pure RA queries only; use EvalDirect / RunFilter1 "
          "/ RunFilter2 for hypothetical queries");
  }
  return Status::Internal("unknown query kind in EvalRa");
}

Result<RelationView> EvalRaNode(const QueryPtr& query,
                                const RelResolver& resolver,
                                const EvalMemo* memo) {
  // Operator-boundary checkpoint: surfaces a kernel trip (the kernel broke
  // out with truncated data) before the partial result can propagate, and
  // bounds how long a deep plan runs past a deadline or cancellation.
  HQL_RETURN_IF_ERROR(GovernorCheck());
  const QueryKind kind = query->kind();
  const bool memoizable =
      memo != nullptr && memo->cache != nullptr &&
      kind != QueryKind::kRel && kind != QueryKind::kEmpty &&
      kind != QueryKind::kSingleton;
  uint64_t key = 0;
  if (memoizable) {
    key = MemoKey(query->Fingerprint(), memo->state_fingerprint);
    if (RelationPtr hit = memo->cache->Lookup(key)) {
      TraceSpan span("memo-hit", 0);
      span.set_rows_out(hit->size());
      RelationView view(std::move(hit));
      // A hit still contributes this node's output to the recording: the
      // incremental entry must cover every node of the plan.
      if (memo->recorder != nullptr) {
        memo->recorder->RecordNode(query->Fingerprint(), view);
      }
      return view;
    }
  }
  HQL_ASSIGN_OR_RETURN(RelationView result,
                       EvalRaCompute(query, resolver, memo));
  // A kernel that tripped mid-operator returned truncated data; re-check
  // here so the partial relation is discarded, not memoized or returned.
  HQL_RETURN_IF_ERROR(GovernorCheck());
  // Computed operator results are flat, so Shared() is a refcount bump; the
  // cache and the computation share one relation.
  if (memoizable) memo->cache->Insert(key, result.Shared());
  if (memo != nullptr && memo->recorder != nullptr) {
    if (kind == QueryKind::kRel) {
      memo->recorder->RecordInput(query->rel_name(), result);
    } else if (kind != QueryKind::kEmpty && kind != QueryKind::kSingleton) {
      memo->recorder->RecordNode(query->Fingerprint(), result);
    }
  }
  return result;
}

}  // namespace

Result<Relation> EvalRa(const QueryPtr& query, const RelResolver& resolver) {
  if (query == nullptr) {
    return Status::InvalidArgument("EvalRa: query must not be null");
  }
  HQL_ASSIGN_OR_RETURN(RelationView out, EvalRaNode(query, resolver, nullptr));
  return out.Materialize();
}

namespace {

// A memo with no cache and no physical-operator policy adds nothing;
// dropping it keeps the plain-evaluator fast path. A cacheless memo with
// indexes or columnar execution enabled must still flow down (the configs
// ride on it).
const EvalMemo* MemoOrNull(const EvalMemo& memo) {
  if (memo.cache == nullptr && !memo.indexes.enabled() &&
      !memo.columnar.enabled() && memo.recorder == nullptr) {
    return nullptr;
  }
  return &memo;
}

}  // namespace

Result<Relation> EvalRa(const QueryPtr& query, const RelResolver& resolver,
                        const EvalMemo& memo) {
  if (query == nullptr) {
    return Status::InvalidArgument("EvalRa: query must not be null");
  }
  HQL_ASSIGN_OR_RETURN(RelationView out,
                       EvalRaNode(query, resolver, MemoOrNull(memo)));
  return out.Materialize();
}

Result<RelationView> EvalRaView(const QueryPtr& query,
                                const RelResolver& resolver,
                                const EvalMemo& memo) {
  if (query == nullptr) {
    return Status::InvalidArgument("EvalRaView: query must not be null");
  }
  return EvalRaNode(query, resolver, MemoOrNull(memo));
}

}  // namespace hql
