#ifndef HQL_EVAL_DIRECT_H_
#define HQL_EVAL_DIRECT_H_

// The direct semantics of HQL (paper Sections 3.1 and 4.2), used both as
// the reference implementation in property tests and as the traditional
// fully-eager baseline: evaluating `Q when eta` materializes the complete
// hypothetical database state [eta](DB) and evaluates Q in it — the
// behavior of the run-time when-stack described in Example 2.1(a).
//
//   [ins(R, Q)](DB)   = DB[R <- [R u Q](DB)]
//   [del(R, Q)](DB)   = DB[R <- [R - Q](DB)]
//   [(U1; U2)](DB)    = [U2]([U1](DB))
//   [if C then U1 else U2](DB) = [U1](DB) if [C](DB) nonempty, else [U2](DB)
//
//   [Q when eta](DB)  = [Q]([eta](DB))
//   [{U}](DB)         = [U](DB)
//   [{.., Qi/Ri, ..}](DB) = DB[.., Ri <- [Qi](DB), ..]   (parallel)
//   [eta1 # eta2](DB) = [eta2]([eta1](DB))               (Lemma 3.6 order)

#include "ast/forward.h"
#include "common/result.h"
#include "hql/subst.h"
#include "storage/database.h"

namespace hql {

/// [Q](DB) for any RA_hyp query.
Result<Relation> EvalDirect(const QueryPtr& query, const Database& db);

/// [U](DB).
Result<Database> ExecUpdate(const UpdatePtr& update, const Database& db);

/// [eta](DB).
Result<Database> EvalState(const HypoExprPtr& state, const Database& db);

/// apply(DB, rho) for an abstract substitution (Section 3.3): evaluates all
/// bindings in DB, then assigns them in parallel.
Result<Database> ApplySubstitution(const Substitution& subst,
                                   const Database& db);

}  // namespace hql

#endif  // HQL_EVAL_DIRECT_H_
