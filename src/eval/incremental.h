#ifndef HQL_EVAL_INCREMENTAL_H_
#define HQL_EVAL_INCREMENTAL_H_

// Incremental re-evaluation of cached query results under scenario edits.
//
// Whole-result memoization (eval/memo.h) amortizes work across a family of
// queries against one state, but the moment a session tweaks its
// hypothetical delta by one tuple the state fingerprint changes and every
// cached result is recomputed from scratch. This layer goes one step
// further: when a query re-executes against a state whose relations differ
// from a memoized execution only by a small *overlay edit* — same shared
// base relation, changed adds/dels — the delta-of-delta
// (OverlayEditBetween, storage/view.h) is propagated through per-operator
// delta rules to patch the cached result in time proportional to the edit,
// not the data:
//
//   R (leaf)   the edit itself (computed overlay-to-overlay, O(|edit|))
//   sigma_p    adds' = sigma_p(adds), dels' = sigma_p(dels)
//   pi_X       adds' = pi(adds) - old_out; deletion candidates pi(dels)
//              keep only those with no remaining support (one streaming
//              scan of the new child, skipped when dels is empty)
//   join/x     adds' = theta((adds1 x new2) u (new1 x adds2)),
//              dels' = theta((dels1 x old2) u (old1 x dels2)); the *edit*
//              side probes the cached other side — through the base's
//              secondary index when one exists, else one hash-keyed scan
//   union      adds' = (adds1 u adds2) - old_out,
//              dels' = {t in dels1 : t not in new2} u (symmetric)
//   intersect  adds' = {t in adds1 : t in new2} u (symmetric),
//              dels' = {t in dels1 u dels2 : t in old_out}
//   minus      adds' = {t in adds1 : t not in new2} u
//                      {t in dels2 : t in new1},
//              dels' = {t in dels1 u adds2 : t in old_out}
//   gamma      not incrementalizable: fall back to full evaluation
//
// Each node's new output is old_output.ApplyDelta(adds', dels') — an O(|
// edit|) overlay over the cached value, with the view layer's consolidation
// heuristic keeping patched chains shallow. Results are bit-identical to
// full re-evaluation; anything the rules cannot handle (aggregates, a
// consolidation that replaced the shared base, a node the recording did not
// cover) degrades to full evaluation, never to a wrong answer.

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "ast/query.h"
#include "common/result.h"
#include "eval/memo.h"
#include "storage/database.h"
#include "storage/view.h"

namespace hql {

/// Planner knob: kOff disables the machinery entirely; kAuto patches when a
/// cached execution qualifies and the estimator prefers the patch.
enum class IncrementalMode {
  kOff,
  kAuto,
};

const char* IncrementalModeName(IncrementalMode mode);

/// The incremental policy threaded from PlannerOptions into execution.
struct IncrementalConfig {
  IncrementalMode mode = IncrementalMode::kOff;
  /// Caller-owned entry store; null disables incremental execution even in
  /// kAuto mode (there is nowhere to remember executions between calls).
  IncrementalCache* cache = nullptr;
  /// Edits larger than this fraction of the changed relations' content fall
  /// back to full evaluation (the incremental break-even mirror of the view
  /// layer's consolidation fraction).
  double max_edit_fraction = 0.10;

  bool enabled() const {
    return mode != IncrementalMode::kOff && cache != nullptr;
  }
};

/// Collects one execution's per-node outputs and leaf input views while the
/// RA evaluator runs (hooked via EvalMemo::recorder), producing the
/// IncrementalEntry a later execution patches against. Not thread-safe: one
/// recorder observes one single-threaded evaluation.
class IncrementalRecorder {
 public:
  void RecordNode(uint64_t fingerprint, const RelationView& value) {
    entry_.node_values.insert_or_assign(fingerprint, value);
  }
  void RecordInput(const std::string& name, const RelationView& value) {
    entry_.inputs.insert_or_assign(name, value);
  }

  /// Finalizes the entry with the plan root's output and the state
  /// fingerprint the execution ran against.
  std::shared_ptr<const IncrementalEntry> TakeEntry(
      RelationView result, uint64_t state_fingerprint);

 private:
  IncrementalEntry entry_;
};

/// The qualification of a cached execution against the current database:
/// the entry, the per-relation delta-of-delta edits, and the sizes the
/// gates compare.
struct IncrementalAttempt {
  /// The cached execution (null = cold miss, nothing to patch).
  std::shared_ptr<const IncrementalEntry> entry;
  /// Per leaf relation: the edit taking the recorded view to the current
  /// one. Only names whose content changed appear.
  std::map<std::string, RelationEdit> edits;
  /// Current views of *all* leaf relations of the query.
  std::map<std::string, RelationView> inputs;
  /// Total changed tuples across all edits.
  size_t edit_tuples = 0;
  /// Total current cardinality of the relations that changed.
  size_t changed_relation_tuples = 0;
  /// True when every leaf qualified: recorded view present and sharing the
  /// current view's base (OverlayEditBetween succeeded). False means a
  /// consolidation or swap replaced a base — full evaluation is required.
  bool patchable = false;
};

/// Qualifies the cached execution of `query` (by structural fingerprint)
/// against `db`: resolves every leaf, computes the delta-of-delta per leaf,
/// and reports whether a patch is possible. Never evaluates the query.
Result<IncrementalAttempt> ComputeIncrementalEdits(const QueryPtr& query,
                                                   const Database& db,
                                                   IncrementalCache* cache);

/// Patches the cached result by propagating `attempt`'s edits through the
/// operator delta rules, refreshes the cache entry for the new state, and
/// returns the new root view. Charges the ambient governor per patched
/// tuple and the ambient ExecContext's incremental counters; records an
/// "incremental-patch" TraceSpan. Requires attempt.patchable.
///
/// A kUnimplemented status means the plan contains a non-incrementalizable
/// operator or an unrecorded node: the caller falls back to full
/// evaluation. Any other error (governor trip, cancellation) is final.
Result<RelationView> ApplyIncrementalPatch(const QueryPtr& query,
                                           const IncrementalAttempt& attempt,
                                           uint64_t new_state_fingerprint,
                                           IncrementalCache* cache);

}  // namespace hql

#endif  // HQL_EVAL_INCREMENTAL_H_
