#ifndef HQL_EVAL_INDEX_EXEC_H_
#define HQL_EVAL_INDEX_EXEC_H_

// Index-backed physical operators: the sargable-predicate extractor plus
// selection and join kernels that answer equality work by probing a base
// relation's hash index instead of scanning. Every kernel takes the
// operand as a RelationView and patches the base index's answer with the
// overlay — matches minus `dels` plus a linear filter of `adds` — so a
// hypothetical state probes the index its base state built.
//
// All kernels are exact: they return nullopt (callers fall back to the
// scan kernels in ra_eval.h / delta_ops.h) whenever any part of the
// predicate could diverge from hash-key semantics, and otherwise produce
// byte-identical results to the scan. IndexConfig{} (mode off) disables
// them entirely.

#include <optional>
#include <utility>
#include <vector>

#include "ast/scalar_expr.h"
#include "storage/index.h"
#include "storage/relation.h"
#include "storage/view.h"

namespace hql {

/// A conjunction split into a sargable equality prefix and a residual:
/// `pred` holds on a tuple t iff t[columns[i]] == key[i] for all i and
/// every residual conjunct holds. Columns are strictly ascending — the
/// shape RelationIndex wants.
struct SargablePredicate {
  std::vector<size_t> columns;
  Tuple key;
  std::vector<ScalarExprPtr> residual;
};

/// Splits `pred`'s AND-tree into `$i = literal` equality conjuncts plus the
/// rest. Literal-on-either-side is accepted; a duplicate equality on the
/// same column keeps the first occurrence in the prefix and leaves the rest
/// residual (so contradictions still evaluate). Returns nullopt when no
/// equality conjunct exists or `pred` is null.
std::optional<SargablePredicate> ExtractSargable(const ScalarExprPtr& pred);

/// Collects `$i = $j` conjuncts with i on the left side and j on the right
/// side of a join whose left operand has arity `split`; everything else
/// goes to `residual`. Shared by the hash join (ra_eval.cc) and the
/// index-nested-loop join below.
void SplitJoinPredicate(const ScalarExprPtr& pred, size_t split,
                        std::vector<std::pair<size_t, size_t>>* equi,
                        std::vector<ScalarExprPtr>* residual);

/// sigma_pred(input) answered by probing an index on input's base: base
/// matches (minus dels, filtered by the residual) merged with a full-
/// predicate filter of adds. Returns nullopt when the config, base size,
/// predicate shape, or index policy rules the probe out.
std::optional<Relation> TryIndexedFilter(const RelationView& input,
                                         const ScalarExprPtr& pred,
                                         const IndexConfig& config);

/// TryIndexedFilter with scan fallback; always equals
/// FilterRelation(input, *pred). `pred` must be non-null.
Relation IndexedFilter(const RelationView& input, const ScalarExprPtr& pred,
                       const IndexConfig& config);

/// lhs join_pred rhs as an index-nested-loop join: probes an index on the
/// larger side's base with each tuple of the smaller side (adds of the
/// indexed side go through a small side hash table). Returns nullopt when
/// no equality conjunct crosses the split or the index policy declines.
std::optional<Relation> TryIndexedJoin(const RelationView& lhs,
                                       const RelationView& rhs,
                                       const ScalarExprPtr& pred,
                                       const IndexConfig& config);

/// TryIndexedJoin with hash-join fallback; always equals
/// JoinRelations(lhs, rhs, pred).
Relation IndexedJoin(const RelationView& lhs, const RelationView& rhs,
                     const ScalarExprPtr& pred, const IndexConfig& config);

}  // namespace hql

#endif  // HQL_EVAL_INDEX_EXEC_H_
