#ifndef HQL_EVAL_MEMO_H_
#define HQL_EVAL_MEMO_H_

// A thread-safe memoizing subplan cache. Families of hypothetical
// alternatives (Examples 2.1/2.2) share work by construction — sibling
// alternatives compose the same path prefix, lazy rewrites duplicate the
// same state queries into every family member — and the cache turns that
// structural sharing into computational sharing: a subplan evaluated under
// one alternative is served from memory to every other alternative that
// contains it.
//
// Keys pair a *structural* fingerprint of the subplan (Query::Fingerprint)
// with a fingerprint of the evaluation state it ran against (database
// content plus any xsub/delta environment). A mutation to the database
// changes the state fingerprint, so stale results are unreachable rather
// than invalidated — the stale entries simply age out of the LRU.
//
// The cache is shared across worker threads (opt/session.h's
// EvalAlternatives); all operations take one short critical section.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "eval/delta.h"
#include "eval/xsub.h"
#include "storage/database.h"
#include "storage/relation.h"
#include "storage/view.h"

namespace hql {

/// Combined cache key: structural query fingerprint + state fingerprint.
uint64_t MemoKey(uint64_t query_fingerprint, uint64_t state_fingerprint);

/// Content fingerprint of a database state. O(#relations) once every
/// relation's hash is cached (storage/relation.h).
uint64_t FingerprintState(const Database& db);

/// Database state refined by an xsub environment: bindings shadow base
/// relations, so only names *not* bound contribute the base hash.
uint64_t FingerprintState(const Database& db, const XsubValue& env);

/// Database state refined by a delta environment.
uint64_t FingerprintState(const Database& db, const DeltaValue& env);

class MemoCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t insertions = 0;
    size_t entries = 0;
    uint64_t cached_tuples = 0;  // tuples held across all entries

    double HitRate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };

  /// `capacity` bounds the number of entries; the least recently used entry
  /// is evicted on overflow. Capacity 0 disables caching (every Lookup
  /// misses, Insert is a no-op).
  explicit MemoCache(size_t capacity = kDefaultCapacity);

  static constexpr size_t kDefaultCapacity = 4096;

  /// The cached relation for `key` (nullptr on miss), refreshing its LRU
  /// position; counts a hit or a miss. Entries are immutable and shared —
  /// a hit costs one refcount bump, never a tuple copy.
  std::shared_ptr<const Relation> Lookup(uint64_t key);

  /// Caches `value` under `key` (overwrites an existing entry), evicting
  /// the LRU entry when full. Null values are ignored.
  void Insert(uint64_t key, std::shared_ptr<const Relation> value);

  /// Drops all entries; counters survive (Reset clears those too).
  void Clear();
  void ResetStats();

  Stats stats() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    uint64_t key;
    std::shared_ptr<const Relation> value;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  Stats stats_;
};

/// One memoized execution retained for incremental re-evaluation
/// (eval/incremental.h): alongside every operator node's output, the
/// input-relation identities (the leaf RelationViews, i.e. base pointer +
/// canonical overlay) needed to qualify a later hit as *patchable* — same
/// shared base, changed adds/dels. Entries are self-contained: the views
/// keep their bases alive, so an entry stays usable after the LRU subplan
/// cache has evicted the underlying relations.
struct IncrementalEntry {
  /// Leaf relation views as resolved at the recorded execution, by name.
  std::map<std::string, RelationView> inputs;
  /// Output view of every evaluated operator node, keyed by the node's
  /// structural fingerprint (Query::Fingerprint).
  std::unordered_map<uint64_t, RelationView> node_values;
  /// Output view of the plan root.
  RelationView result{0};
  /// State fingerprint the entry was recorded against (FingerprintState).
  uint64_t state_fingerprint = 0;
};

/// A small thread-safe LRU cache of IncrementalEntry keyed by the *query*
/// fingerprint alone (unlike MemoCache's query x state keys): the point is
/// to find the latest execution of the same plan against a *different*
/// state and patch the difference.
class IncrementalCache {
 public:
  explicit IncrementalCache(size_t capacity = kDefaultCapacity);

  static constexpr size_t kDefaultCapacity = 64;

  /// The most recent entry recorded for `query_fingerprint` (nullptr when
  /// none), refreshing its LRU position.
  std::shared_ptr<const IncrementalEntry> Lookup(uint64_t query_fingerprint);

  /// Records `entry` as the latest execution of `query_fingerprint`
  /// (overwrites), evicting the LRU entry when full.
  void Insert(uint64_t query_fingerprint,
              std::shared_ptr<const IncrementalEntry> entry);

  void Clear();
  size_t entries() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    uint64_t key;
    std::shared_ptr<const IncrementalEntry> value;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace hql

#endif  // HQL_EVAL_MEMO_H_
