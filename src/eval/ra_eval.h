#ifndef HQL_EVAL_RA_EVAL_H_
#define HQL_EVAL_RA_EVAL_H_

// Evaluation of pure relational algebra queries against a pluggable
// name-resolution environment. The resolver abstraction is what lets the
// same evaluator serve plain database states, xsub-filtered states
// (Algorithm HQL-2's eval_filter_x) and collapsed-tree placeholders.
//
// The evaluator clusters operators where a traditional engine would:
// selections over products/joins run as theta joins, equality conjuncts
// drive a hash join, and selections/projections stream over their input.
//
// Names resolve to copy-on-write RelationViews: a leaf scan of a
// hypothetical state streams (base ∖ dels) ∪ adds through the view's merge
// iterator instead of consolidating, so small-delta states are evaluated
// without materializing the state.

#include <map>
#include <string>

#include "ast/query.h"
#include "ast/scalar_expr.h"
#include "common/result.h"
#include "storage/column_batch.h"
#include "storage/database.h"
#include "storage/index.h"
#include "storage/relation.h"
#include "storage/view.h"

namespace hql {

/// Resolves base-relation names to relation values during evaluation.
class RelResolver {
 public:
  virtual ~RelResolver() = default;
  virtual Result<RelationView> Resolve(const std::string& name) const = 0;
};

/// Resolves directly against a database state.
class DatabaseResolver : public RelResolver {
 public:
  explicit DatabaseResolver(const Database& db) : db_(&db) {}
  Result<RelationView> Resolve(const std::string& name) const override {
    return db_->GetView(name);
  }

 private:
  const Database* db_;
};

/// Layers explicit name->relation overrides over another resolver
/// (xsub-value filtering and collapse placeholders).
class OverlayResolver : public RelResolver {
 public:
  explicit OverlayResolver(const RelResolver& base) : base_(&base) {}

  void Bind(const std::string& name, Relation value) {
    overrides_.insert_or_assign(name, RelationView(std::move(value)));
  }
  void Bind(const std::string& name, RelationView value) {
    overrides_.insert_or_assign(name, std::move(value));
  }

  Result<RelationView> Resolve(const std::string& name) const override {
    auto it = overrides_.find(name);
    if (it != overrides_.end()) return it->second;
    return base_->Resolve(name);
  }

 private:
  const RelResolver* base_;
  std::map<std::string, RelationView> overrides_;
};

/// Evaluates a pure RA query (InvalidArgument on `when` nodes).
Result<Relation> EvalRa(const QueryPtr& query, const RelResolver& resolver);

class MemoCache;
class IncrementalRecorder;

/// Memoization context for EvalRa. `state_fingerprint` must identify the
/// contents the resolver serves (FingerprintState in eval/memo.h); entries
/// are keyed by MemoKey(node->Fingerprint(), state_fingerprint), so a
/// caller that fingerprints its state correctly can share one cache across
/// resolvers, queries, and threads.
struct EvalMemo {
  MemoCache* cache = nullptr;
  uint64_t state_fingerprint = 0;
  /// Index policy for the physical operators (eval/index_exec.h). The
  /// default (mode off) reproduces the scan kernels exactly.
  IndexConfig indexes;
  /// Columnar/vectorized execution policy (eval/vector_exec.h). The
  /// default (mode off) reproduces the row kernels exactly.
  ColumnarConfig columnar;
  /// When set, every evaluated node's output and every resolved leaf view
  /// are reported to the recorder (eval/incremental.h), capturing the
  /// execution for later incremental patching. Observation only — results
  /// are unchanged.
  IncrementalRecorder* recorder = nullptr;
};

/// EvalRa with subplan memoization: every operator node (leaves excepted —
/// resolving a name is already cheap) is served from `memo.cache` when a
/// structurally identical subplan was evaluated against the same state. A
/// null `memo.cache` degrades to the plain evaluator.
Result<Relation> EvalRa(const QueryPtr& query, const RelResolver& resolver,
                        const EvalMemo& memo);

/// EvalRa returning the result as a view: a memo hit or a bare leaf scan is
/// a refcount bump instead of a relation copy. `memo.cache` may be null.
Result<RelationView> EvalRaView(const QueryPtr& query,
                                const RelResolver& resolver,
                                const EvalMemo& memo);

// ---- shared physical operators (used by all evaluators) ----
// Each operator has a flat-Relation form and a RelationView form; the view
// forms stream through the merge iterator, so overlay inputs are consumed
// without consolidation.

/// sigma_p(input).
Relation FilterRelation(const Relation& input, const ScalarExpr& predicate);
Relation FilterRelation(const RelationView& input,
                        const ScalarExpr& predicate);

/// pi_X(input).
Relation ProjectRelation(const Relation& input,
                         const std::vector<size_t>& columns);
Relation ProjectRelation(const RelationView& input,
                         const std::vector<size_t>& columns);

/// Theta join with hash-join fast path on equality conjuncts
/// `$i = $j` linking the two sides; `predicate` may be null (product).
Relation JoinRelations(const Relation& lhs, const Relation& rhs,
                       const ScalarExprPtr& predicate);
Relation JoinRelations(const RelationView& lhs, const RelationView& rhs,
                       const ScalarExprPtr& predicate);

/// gamma[group_columns; func(agg_column)](input): hash aggregation. count
/// counts distinct tuples per group (set semantics); sum ignores non-number
/// values and returns int when every summand is an int; min/max use the
/// library-wide value order. An empty input yields an empty result even
/// with no grouping columns.
Relation AggregateRelation(const Relation& input,
                           const std::vector<size_t>& group_columns,
                           AggFunc func, size_t agg_column);
Relation AggregateRelation(const RelationView& input,
                           const std::vector<size_t>& group_columns,
                           AggFunc func, size_t agg_column);

}  // namespace hql

#endif  // HQL_EVAL_RA_EVAL_H_
