#ifndef HQL_HQL_PUSHDOWN_H_
#define HQL_HQL_PUSHDOWN_H_

// An alternative fully lazy pipeline built *entirely* from the EQUIV_when
// rewrite rules of Figure 1 (hql/rewrite_when.h): convert states to
// explicit substitutions, then repeatedly distribute `when` through the
// algebra (push-when-into-algebra-expressions) until it reaches base
// relations, where it is eliminated (R when eps == eps(R) or R).
//
// Semantically this coincides with the substitution-based reduction
// red(·) of Section 4.3 — the property tests assert the two produce
// structurally equal queries — but it demonstrates that the paper's rule
// family is complete for reaching pure relational algebra, and it gives
// the optimizer a second, finer-grained path that can stop pushing at any
// intermediate level (a partial push is a hybrid plan).

#include "ast/forward.h"
#include "common/result.h"
#include "storage/schema.h"

namespace hql {

/// Rewrites `query` to pure RA using only EQUIV_when rule applications.
Result<QueryPtr> PushdownReduce(const QueryPtr& query, const Schema& schema);

/// One-level-limited variant: pushes each `when` at most `max_push_depth`
/// algebra levels deep, leaving residual `when` nodes below (still ENF and
/// evaluable by filter1/filter2). max_push_depth < 0 means unbounded.
Result<QueryPtr> PushdownPartial(const QueryPtr& query, const Schema& schema,
                                 int max_push_depth);

}  // namespace hql

#endif  // HQL_HQL_PUSHDOWN_H_
