#include "hql/slice.h"

#include <set>

#include "ast/metrics.h"
#include "ast/query.h"
#include "ast/typecheck.h"
#include "ast/update.h"
#include "common/check.h"
#include "hql/free_dom.h"

namespace hql {

QueryPtr GuardQuery(const QueryPtr& query, size_t arity,
                    const QueryPtr& cond) {
  HQL_CHECK(arity > 0);
  // pi[0..arity-1](query x pi[0](cond)): the product is empty iff cond is
  // empty, and otherwise replicates query once per (distinct) first column
  // of cond — the projection collapses the replication back to query.
  QueryPtr cond_one = Query::Project({0}, cond);
  std::vector<size_t> keep(arity);
  for (size_t i = 0; i < arity; ++i) keep[i] = i;
  return Query::Project(std::move(keep),
                        Query::Product(query, std::move(cond_one)));
}

Result<Substitution> Slice(const UpdatePtr& update, const Schema& schema) {
  HQL_CHECK(update != nullptr);
  switch (update->kind()) {
    case UpdateKind::kInsert: {
      HQL_CHECK_MSG(IsPureRelAlg(update->query()),
                    "slice() requires pure RA update arguments");
      Substitution s;
      s.Bind(update->rel_name(),
             Query::Union(Query::Rel(update->rel_name()), update->query()));
      return s;
    }
    case UpdateKind::kDelete: {
      HQL_CHECK_MSG(IsPureRelAlg(update->query()),
                    "slice() requires pure RA update arguments");
      Substitution s;
      s.Bind(update->rel_name(), Query::Difference(
                                     Query::Rel(update->rel_name()),
                                     update->query()));
      return s;
    }
    case UpdateKind::kSeq: {
      HQL_ASSIGN_OR_RETURN(Substitution s1, Slice(update->first(), schema));
      HQL_ASSIGN_OR_RETURN(Substitution s2, Slice(update->second(), schema));
      return s1.ComposeWith(s2);
    }
    case UpdateKind::kCond: {
      HQL_CHECK_MSG(IsPureRelAlg(update->guard()),
                    "slice() requires a pure RA guard");
      HQL_ASSIGN_OR_RETURN(Substitution then_s,
                           Slice(update->then_branch(), schema));
      HQL_ASSIGN_OR_RETURN(Substitution else_s,
                           Slice(update->else_branch(), schema));
      const QueryPtr& cond = update->guard();
      NameSet names = DomNames(update);
      Substitution out;
      for (const std::string& name : names) {
        HQL_ASSIGN_OR_RETURN(size_t arity, schema.ArityOf(name));
        QueryPtr q1 = then_s.Get(name);
        if (q1 == nullptr) q1 = Query::Rel(name);
        QueryPtr q2 = else_s.Get(name);
        if (q2 == nullptr) q2 = Query::Rel(name);
        // guard(q1, C) u (q2 - guard(q2, C)).
        QueryPtr value = Query::Union(
            GuardQuery(q1, arity, cond),
            Query::Difference(q2, GuardQuery(q2, arity, cond)));
        out.Bind(name, std::move(value));
      }
      return out;
    }
  }
  return Status::Internal("unknown update kind in slice");
}

}  // namespace hql
