#ifndef HQL_HQL_ENF_H_
#define HQL_HQL_ENF_H_

// Evaluable Normal Form and modified ENF (paper Sections 5.2 and 5.5).
//
// An HQL query is in ENF when it contains no composition (#) and no update
// state {U}: every hypothetical-state expression is an explicit
// substitution (whose binding queries may themselves contain `when`). ENF
// trees drive Algorithms HQL-1 and HQL-2.
//
// A query is in mod-ENF when, instead, every hypothetical state has the
// form {A1; ...; An} with each Ai an atomic insert or delete. Mod-ENF trees
// drive the delta-based Algorithm HQL-3. Explicit substitutions and
// conditional updates have no general mod-ENF image, so ToModEnf reports
// Unimplemented for them and the planner falls back to HQL-2.

#include "ast/forward.h"
#include "common/result.h"
#include "storage/schema.h"

namespace hql {

/// True iff every state inside `query` is an explicit substitution.
bool IsEnf(const QueryPtr& query);

/// Rewrites `query` into an equivalent ENF query using convert-to-explicit,
/// compute-composition and the slice encoding for conditional updates.
Result<QueryPtr> ToEnf(const QueryPtr& query, const Schema& schema);

/// True iff every state inside `query` is {A1; ...; An} with atomic Ai.
bool IsModEnf(const QueryPtr& query);

/// Rewrites `query` so every state is an atomic-update chain, when
/// possible: flattens {U1} # {U2} into {U1; U2}; Unimplemented if the query
/// contains explicit substitutions or conditional updates.
Result<QueryPtr> ToModEnf(const QueryPtr& query, const Schema& schema);

}  // namespace hql

#endif  // HQL_HQL_ENF_H_
