#include "hql/subst.h"

#include <unordered_map>

#include "ast/metrics.h"
#include "ast/query.h"
#include "common/check.h"
#include "common/strings.h"

namespace hql {

Substitution Substitution::Make(std::vector<Binding> bindings) {
  Substitution s;
  for (Binding& b : bindings) {
    HQL_CHECK_MSG(b.query != nullptr && IsPureRelAlg(b.query),
                  "substitution bindings must be pure RA");
    auto [it, inserted] = s.bindings_.emplace(b.rel_name, std::move(b.query));
    (void)it;
    HQL_CHECK_MSG(inserted, "duplicate name in substitution");
  }
  return s;
}

bool Substitution::Has(const std::string& name) const {
  return bindings_.count(name) > 0;
}

QueryPtr Substitution::Get(const std::string& name) const {
  auto it = bindings_.find(name);
  return it == bindings_.end() ? nullptr : it->second;
}

void Substitution::Bind(const std::string& name, QueryPtr query) {
  HQL_CHECK_MSG(query != nullptr && IsPureRelAlg(query),
                "substitution bindings must be pure RA");
  bindings_[name] = std::move(query);
}

void Substitution::Remove(const std::string& name) { bindings_.erase(name); }

std::vector<std::string> Substitution::Domain() const {
  std::vector<std::string> names;
  names.reserve(bindings_.size());
  for (const auto& [name, query] : bindings_) {
    (void)query;
    names.push_back(name);
  }
  return names;
}

namespace {

using ApplyMemo = std::unordered_map<const Query*, QueryPtr>;

}  // namespace

QueryPtr Substitution::Apply(const QueryPtr& query) const {
  HQL_CHECK(query != nullptr);
  if (bindings_.empty()) return query;
  ApplyMemo memo;
  return ApplyImpl(query, &memo);
}

QueryPtr Substitution::ApplyImpl(const QueryPtr& query, void* memo_ptr) const {
  ApplyMemo& memo = *static_cast<ApplyMemo*>(memo_ptr);
  auto found = memo.find(query.get());
  if (found != memo.end()) return found->second;
  QueryPtr result = ApplyNode(query, memo_ptr);
  memo.emplace(query.get(), result);
  return result;
}

QueryPtr Substitution::ApplyNode(const QueryPtr& query, void* memo) const {
  switch (query->kind()) {
    case QueryKind::kRel: {
      QueryPtr bound = Get(query->rel_name());
      return bound != nullptr ? bound : query;
    }
    case QueryKind::kEmpty:
    case QueryKind::kSingleton:
      return query;
    case QueryKind::kSelect: {
      QueryPtr child = ApplyImpl(query->left(), memo);
      if (child == query->left()) return query;
      return Query::Select(query->predicate(), std::move(child));
    }
    case QueryKind::kProject: {
      QueryPtr child = ApplyImpl(query->left(), memo);
      if (child == query->left()) return query;
      return Query::Project(query->columns(), std::move(child));
    }
    case QueryKind::kAggregate: {
      QueryPtr child = ApplyImpl(query->left(), memo);
      if (child == query->left()) return query;
      return Query::Aggregate(query->columns(), query->agg_func(),
                              query->agg_column(), std::move(child));
    }
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kDifference: {
      QueryPtr l = ApplyImpl(query->left(), memo);
      QueryPtr r = ApplyImpl(query->right(), memo);
      if (l == query->left() && r == query->right()) return query;
      switch (query->kind()) {
        case QueryKind::kUnion:
          return Query::Union(std::move(l), std::move(r));
        case QueryKind::kIntersect:
          return Query::Intersect(std::move(l), std::move(r));
        case QueryKind::kProduct:
          return Query::Product(std::move(l), std::move(r));
        default:
          return Query::Difference(std::move(l), std::move(r));
      }
    }
    case QueryKind::kJoin: {
      QueryPtr l = ApplyImpl(query->left(), memo);
      QueryPtr r = ApplyImpl(query->right(), memo);
      if (l == query->left() && r == query->right()) return query;
      return Query::Join(query->predicate(), std::move(l), std::move(r));
    }
    case QueryKind::kWhen:
      HQL_CHECK_MSG(false, "sub() applied to a non-RA query");
  }
  HQL_UNREACHABLE();
}

Substitution Substitution::ComposeWith(const Substitution& other) const {
  // (rho1 # rho2)(S) = sub(rho2(S), rho1) if S in dom(rho2), else rho1(S);
  // domain is the union (the padding condition that makes # unique).
  Substitution out;
  for (const auto& [name, query] : other.bindings_) {
    out.bindings_[name] = Apply(query);
  }
  for (const auto& [name, query] : bindings_) {
    out.bindings_.emplace(name, query);  // keeps rho2's binding if present
  }
  return out;
}

HypoExprPtr Substitution::ToHypoExpr() const {
  std::vector<Binding> bindings;
  bindings.reserve(bindings_.size());
  for (const auto& [name, query] : bindings_) {
    bindings.push_back(Binding{name, query});
  }
  return HypoExpr::Subst(std::move(bindings));
}

void Substitution::RestrictTo(const std::set<std::string>& live) {
  for (auto it = bindings_.begin(); it != bindings_.end();) {
    if (live.count(it->first) == 0) {
      it = bindings_.erase(it);
    } else {
      ++it;
    }
  }
}

void Substitution::DropIdentityBindings() {
  for (auto it = bindings_.begin(); it != bindings_.end();) {
    const QueryPtr& q = it->second;
    if (q->kind() == QueryKind::kRel && q->rel_name() == it->first) {
      it = bindings_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string Substitution::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(bindings_.size());
  for (const auto& [name, query] : bindings_) {
    parts.push_back(query->ToString() + "/" + name);
  }
  return "{" + Join(parts, ", ") + "}";
}

}  // namespace hql
