#ifndef HQL_HQL_RA_REWRITE_H_
#define HQL_HQL_RA_REWRITE_H_

// The "conventional equational theory for the relational algebra" half of
// the paper's optimization framework (Section 5.1): a bottom-up rewriter
// with a canonicalizing predicate simplifier.
//
// Together with the EQUIV_when rules this is what carries out the paper's
// worked derivations: in Example 2.1(b),
//
//   (R u sigma[A>=30](S - sigma[A<60](S))) join (S - sigma[A<60](S))
//     == (R u sigma[A>=60](S)) join sigma[A>=60](S)
//
// falls out of the rules  X - sigma[p](X) == sigma[not p](X)  and the
// interval merge  sigma[A>=30](sigma[A>=60](S)) == sigma[A>=60](S);  and in
// Example 2.4(b) the rule  X - X == empty  collapses an exponential lazy
// rewrite to the empty query before any data is touched.

#include "ast/forward.h"
#include "common/result.h"
#include "storage/schema.h"

namespace hql {

/// Canonicalizes and simplifies a predicate: constant folding, connective
/// identities, negation push-down through comparisons, and single-column
/// interval merging within conjunctions. The output is deterministic, so
/// equivalent simple predicates usually become syntactically equal.
ScalarExprPtr SimplifyPredicate(const ScalarExprPtr& pred);

/// Bottom-up algebraic simplification of a pure RA query (kWhen nodes are
/// rejected with InvalidArgument; reduce or plan first). `schema` supplies
/// arities for the empty queries the rules introduce.
Result<QueryPtr> SimplifyRa(const QueryPtr& query, const Schema& schema);

/// SimplifyRa extended to mixed queries: pure RA regions — maximal `when`-
/// free subtrees, `when` bodies, and explicit-substitution binding values —
/// are simplified in place; `when` structure is preserved. This is how the
/// planner and the delta route give the paper's equational theory a shot at
/// every pure region (e.g. clustering sigma over x into a join) before the
/// physical operators see the plan.
Result<QueryPtr> SimplifyMixed(const QueryPtr& query, const Schema& schema);

}  // namespace hql

#endif  // HQL_HQL_RA_REWRITE_H_
