#include "hql/reduce.h"

#include <cstdint>
#include <limits>

#include "ast/hypo.h"
#include "ast/metrics.h"
#include "ast/query.h"
#include "ast/update.h"
#include "common/check.h"
#include "common/governor.h"
#include "hql/slice.h"

namespace hql {

namespace {

// Charges an expanded-tree size (a double, possibly astronomically large —
// Example 2.4) against the ambient governor's rewrite-node budget.
Status ChargeTreeSize(double nodes) {
  uint64_t n = nodes >= static_cast<double>(
                            std::numeric_limits<uint64_t>::max() / 2)
                   ? std::numeric_limits<uint64_t>::max() / 2
                   : static_cast<uint64_t>(nodes);
  return GovernorChargeRewriteNodes(n);
}

}  // namespace

Result<QueryPtr> Reduce(const QueryPtr& query, const Schema& schema) {
  if (query == nullptr) {
    return Status::InvalidArgument("Reduce: query must not be null");
  }
  HQL_RETURN_IF_ERROR(GovernorCheck());
  switch (query->kind()) {
    case QueryKind::kRel:
    case QueryKind::kEmpty:
    case QueryKind::kSingleton:
      return query;
    case QueryKind::kSelect: {
      HQL_ASSIGN_OR_RETURN(QueryPtr child, Reduce(query->left(), schema));
      if (child == query->left()) return query;
      return Query::Select(query->predicate(), std::move(child));
    }
    case QueryKind::kProject: {
      HQL_ASSIGN_OR_RETURN(QueryPtr child, Reduce(query->left(), schema));
      if (child == query->left()) return query;
      return Query::Project(query->columns(), std::move(child));
    }
    case QueryKind::kAggregate: {
      HQL_ASSIGN_OR_RETURN(QueryPtr child, Reduce(query->left(), schema));
      if (child == query->left()) return query;
      return Query::Aggregate(query->columns(), query->agg_func(),
                              query->agg_column(), std::move(child));
    }
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kDifference: {
      HQL_ASSIGN_OR_RETURN(QueryPtr l, Reduce(query->left(), schema));
      HQL_ASSIGN_OR_RETURN(QueryPtr r, Reduce(query->right(), schema));
      if (l == query->left() && r == query->right()) return query;
      switch (query->kind()) {
        case QueryKind::kUnion:
          return Query::Union(std::move(l), std::move(r));
        case QueryKind::kIntersect:
          return Query::Intersect(std::move(l), std::move(r));
        case QueryKind::kProduct:
          return Query::Product(std::move(l), std::move(r));
        default:
          return Query::Difference(std::move(l), std::move(r));
      }
    }
    case QueryKind::kJoin: {
      HQL_ASSIGN_OR_RETURN(QueryPtr l, Reduce(query->left(), schema));
      HQL_ASSIGN_OR_RETURN(QueryPtr r, Reduce(query->right(), schema));
      if (l == query->left() && r == query->right()) return query;
      return Query::Join(query->predicate(), std::move(l), std::move(r));
    }
    case QueryKind::kWhen: {
      // red(Q when eta) = sub(red(Q), red(eta)).
      HQL_ASSIGN_OR_RETURN(Substitution rho,
                           ReduceHypo(query->state(), schema));
      HQL_ASSIGN_OR_RETURN(QueryPtr body, Reduce(query->left(), schema));
      QueryPtr out = rho.Apply(body);
      // Apply shares subtrees (a DAG), but the result *means* its expanded
      // tree — charge that size so an Example 2.4 blow-up trips the rewrite
      // budget here instead of exploding downstream.
      HQL_RETURN_IF_ERROR(ChargeTreeSize(TreeSize(out)));
      return out;
    }
  }
  return Status::Internal("unknown query kind in reduce");
}

Result<Substitution> ReduceHypo(const HypoExprPtr& state,
                                const Schema& schema) {
  if (state == nullptr) {
    return Status::InvalidArgument("ReduceHypo: state must not be null");
  }
  HQL_RETURN_IF_ERROR(GovernorCheck());
  switch (state->kind()) {
    case HypoKind::kUpdateState: {
      HQL_ASSIGN_OR_RETURN(UpdatePtr reduced,
                           ReduceUpdate(state->update(), schema));
      return Slice(reduced, schema);
    }
    case HypoKind::kSubst: {
      Substitution out;
      for (const Binding& b : state->bindings()) {
        HQL_ASSIGN_OR_RETURN(QueryPtr q, Reduce(b.query, schema));
        out.Bind(b.rel_name, std::move(q));
      }
      return out;
    }
    case HypoKind::kCompose: {
      HQL_ASSIGN_OR_RETURN(Substitution s1,
                           ReduceHypo(state->first(), schema));
      HQL_ASSIGN_OR_RETURN(Substitution s2,
                           ReduceHypo(state->second(), schema));
      return s1.ComposeWith(s2);
    }
    case HypoKind::kStateWhen: {
      // red(eta1 when eta2)(R) = sub(red(eta1)(R), red(eta2)) on
      // dom(eta1) only: like composition, minus eta2's own writes.
      HQL_ASSIGN_OR_RETURN(Substitution s1,
                           ReduceHypo(state->first(), schema));
      HQL_ASSIGN_OR_RETURN(Substitution s2,
                           ReduceHypo(state->second(), schema));
      Substitution out;
      for (const auto& [name, query] : s1.bindings()) {
        out.Bind(name, s2.Apply(query));
      }
      return out;
    }
  }
  return Status::Internal("unknown hypothetical-state kind in reduce");
}

Result<UpdatePtr> ReduceUpdate(const UpdatePtr& update, const Schema& schema) {
  if (update == nullptr) {
    return Status::InvalidArgument("ReduceUpdate: update must not be null");
  }
  HQL_RETURN_IF_ERROR(GovernorCheck());
  switch (update->kind()) {
    case UpdateKind::kInsert: {
      HQL_ASSIGN_OR_RETURN(QueryPtr q, Reduce(update->query(), schema));
      if (q == update->query()) return update;
      return Update::Insert(update->rel_name(), std::move(q));
    }
    case UpdateKind::kDelete: {
      HQL_ASSIGN_OR_RETURN(QueryPtr q, Reduce(update->query(), schema));
      if (q == update->query()) return update;
      return Update::Delete(update->rel_name(), std::move(q));
    }
    case UpdateKind::kSeq: {
      HQL_ASSIGN_OR_RETURN(UpdatePtr a, ReduceUpdate(update->first(), schema));
      HQL_ASSIGN_OR_RETURN(UpdatePtr b,
                           ReduceUpdate(update->second(), schema));
      if (a == update->first() && b == update->second()) return update;
      return Update::Seq(std::move(a), std::move(b));
    }
    case UpdateKind::kCond: {
      HQL_ASSIGN_OR_RETURN(QueryPtr g, Reduce(update->guard(), schema));
      HQL_ASSIGN_OR_RETURN(UpdatePtr a,
                           ReduceUpdate(update->then_branch(), schema));
      HQL_ASSIGN_OR_RETURN(UpdatePtr b,
                           ReduceUpdate(update->else_branch(), schema));
      if (g == update->guard() && a == update->then_branch() &&
          b == update->else_branch()) {
        return update;
      }
      return Update::Cond(std::move(g), std::move(a), std::move(b));
    }
  }
  return Status::Internal("unknown update kind in reduce");
}

}  // namespace hql
