#include "hql/rewrite_when.h"

#include <set>

#include "ast/metrics.h"
#include "ast/query.h"
#include "ast/update.h"
#include "common/check.h"
#include "hql/free_dom.h"
#include "hql/subst.h"

namespace hql {
namespace equiv {

namespace {

bool IsWhen(const QueryPtr& q) { return q->kind() == QueryKind::kWhen; }

bool IsExplicitSubst(const HypoExprPtr& h) {
  return h->kind() == HypoKind::kSubst;
}

/// True if all binding queries of an explicit substitution are pure RA.
bool AllBindingsPure(const HypoExprPtr& h) {
  for (const Binding& b : h->bindings()) {
    if (!IsPureRelAlg(b.query)) return false;
  }
  return true;
}

Substitution ToAbstract(const HypoExprPtr& h) {
  Substitution s;
  for (const Binding& b : h->bindings()) s.Bind(b.rel_name, b.query);
  return s;
}

}  // namespace

QueryPtr RelWhenSubst(const QueryPtr& q) {
  if (!IsWhen(q) || q->left()->kind() != QueryKind::kRel) return nullptr;
  const HypoExprPtr& h = q->state();
  if (!IsExplicitSubst(h)) return nullptr;
  QueryPtr bound = h->BindingFor(q->left()->rel_name());
  return bound != nullptr ? bound : q->left();
}

QueryPtr SingletonWhen(const QueryPtr& q) {
  if (!IsWhen(q) || q->left()->kind() != QueryKind::kSingleton) {
    return nullptr;
  }
  return q->left();
}

QueryPtr EmptyWhen(const QueryPtr& q) {
  if (!IsWhen(q) || q->left()->kind() != QueryKind::kEmpty) return nullptr;
  return q->left();
}

QueryPtr PushWhenUnary(const QueryPtr& q) {
  if (!IsWhen(q)) return nullptr;
  const QueryPtr& body = q->left();
  const HypoExprPtr& h = q->state();
  switch (body->kind()) {
    case QueryKind::kSelect:
      return Query::Select(body->predicate(), Query::When(body->left(), h));
    case QueryKind::kProject:
      return Query::Project(body->columns(), Query::When(body->left(), h));
    case QueryKind::kAggregate:
      return Query::Aggregate(body->columns(), body->agg_func(),
                              body->agg_column(),
                              Query::When(body->left(), h));
    default:
      return nullptr;
  }
}

QueryPtr PushWhenBinary(const QueryPtr& q) {
  if (!IsWhen(q)) return nullptr;
  const QueryPtr& body = q->left();
  const HypoExprPtr& h = q->state();
  if (!body->is_binary_algebra()) return nullptr;
  QueryPtr l = Query::When(body->left(), h);
  QueryPtr r = Query::When(body->right(), h);
  switch (body->kind()) {
    case QueryKind::kUnion:
      return Query::Union(std::move(l), std::move(r));
    case QueryKind::kIntersect:
      return Query::Intersect(std::move(l), std::move(r));
    case QueryKind::kProduct:
      return Query::Product(std::move(l), std::move(r));
    case QueryKind::kJoin:
      return Query::Join(body->predicate(), std::move(l), std::move(r));
    case QueryKind::kDifference:
      return Query::Difference(std::move(l), std::move(r));
    default:
      return nullptr;
  }
}

HypoExprPtr ConvertToExplicit(const HypoExprPtr& h) {
  if (h->kind() != HypoKind::kUpdateState) return nullptr;
  const UpdatePtr& u = h->update();
  switch (u->kind()) {
    case UpdateKind::kInsert:
      return HypoExpr::Subst({Binding{
          u->rel_name(),
          Query::Union(Query::Rel(u->rel_name()), u->query())}});
    case UpdateKind::kDelete:
      return HypoExpr::Subst({Binding{
          u->rel_name(),
          Query::Difference(Query::Rel(u->rel_name()), u->query())}});
    case UpdateKind::kSeq:
      return HypoExpr::Compose(HypoExpr::UpdateState(u->first()),
                               HypoExpr::UpdateState(u->second()));
    case UpdateKind::kCond:
      return nullptr;  // handled by enf/slice, which consult the schema
  }
  HQL_UNREACHABLE();
}

QueryPtr ReplaceNestedWhen(const QueryPtr& q) {
  // (Q when eta1) when eta2 == Q when (eta2 # eta1): the outer state eta2
  // moves the database first, then eta1 is applied in the moved state.
  if (!IsWhen(q) || !IsWhen(q->left())) return nullptr;
  const QueryPtr& inner = q->left();
  return Query::When(inner->left(),
                     HypoExpr::Compose(q->state(), inner->state()));
}

HypoExprPtr AssocCompose(const HypoExprPtr& h) {
  if (h->kind() != HypoKind::kCompose ||
      h->first()->kind() != HypoKind::kCompose) {
    return nullptr;
  }
  const HypoExprPtr& inner = h->first();
  return HypoExpr::Compose(
      inner->first(), HypoExpr::Compose(inner->second(), h->second()));
}

HypoExprPtr ComputeComposition(const HypoExprPtr& h) {
  if (h->kind() != HypoKind::kCompose) return nullptr;
  const HypoExprPtr& e1 = h->first();
  const HypoExprPtr& e2 = h->second();
  if (!IsExplicitSubst(e1) || !IsExplicitSubst(e2)) return nullptr;

  // Fast path: everything pure RA — compose abstractly (textual sub).
  const bool textual = AllBindingsPure(e1) && AllBindingsPure(e2);
  Substitution s1;
  if (textual) s1 = ToAbstract(e1);

  std::vector<Binding> out;
  std::set<std::string> dom2;
  for (const Binding& b : e2->bindings()) {
    dom2.insert(b.rel_name);
    QueryPtr value;
    if (e1->bindings().empty()) {
      value = b.query;
    } else if (textual) {
      value = s1.Apply(b.query);
    } else {
      value = Query::When(b.query, e1);
    }
    out.push_back(Binding{b.rel_name, std::move(value)});
  }
  for (const Binding& b : e1->bindings()) {
    if (dom2.count(b.rel_name) == 0) out.push_back(b);
  }
  return HypoExpr::Subst(std::move(out));
}

QueryPtr SubstSimplify(const QueryPtr& q) {
  if (!IsWhen(q)) return nullptr;
  const HypoExprPtr& h = q->state();
  if (!IsExplicitSubst(h)) return nullptr;

  if (h->bindings().empty()) return q->left();  // Q when {} == Q

  NameSet live = FreeNames(q->left());
  std::vector<Binding> kept;
  for (const Binding& b : h->bindings()) {
    // Binding removal: R not free in Q.
    if (live.count(b.rel_name) == 0) continue;
    // Identity binding R/R.
    if (b.query->kind() == QueryKind::kRel &&
        b.query->rel_name() == b.rel_name) {
      continue;
    }
    kept.push_back(b);
  }
  if (kept.size() == h->bindings().size()) return nullptr;  // nothing to do
  if (kept.empty()) return q->left();
  return Query::When(q->left(), HypoExpr::Subst(std::move(kept)));
}

QueryPtr CommuteHypotheticals(const QueryPtr& q) {
  if (!IsWhen(q) || !IsWhen(q->left())) return nullptr;
  const QueryPtr& inner = q->left();
  const HypoExprPtr& eta1 = inner->state();
  const HypoExprPtr& eta2 = q->state();
  NameSet dom1 = DomNames(eta1);
  NameSet dom2 = DomNames(eta2);
  NameSet free1 = FreeNames(eta1);
  NameSet free2 = FreeNames(eta2);
  if (!Disjoint(dom1, dom2) || !Disjoint(dom1, free2) ||
      !Disjoint(dom2, free1)) {
    return nullptr;
  }
  return Query::When(Query::When(inner->left(), eta2), eta1);
}

}  // namespace equiv
}  // namespace hql
