#include "hql/collapse.h"

#include "ast/hypo.h"
#include "ast/query.h"
#include "ast/typecheck.h"
#include "common/check.h"
#include "common/governor.h"
#include "common/strings.h"

namespace hql {

std::string PlaceholderName(size_t i) { return "#" + std::to_string(i); }

bool IsPlaceholderName(const std::string& name) {
  return !name.empty() && name[0] == '#';
}

namespace {

struct Builder {
  const Schema& schema;

  explicit Builder(const Schema& s) : schema(s) {}

  Result<CollapsedPtr> CollapseQuery(const QueryPtr& q) {
    HQL_RETURN_IF_ERROR(GovernorChargeRewriteNodes(1));
    if (q->kind() == QueryKind::kWhen) return CollapseWhen(q);
    // Maximal pure-RA region: walk down until `when` nodes, replacing each
    // with a placeholder.
    auto node = std::make_shared<CollapsedNode>();
    node->kind = CollapsedKind::kBlock;
    HQL_ASSIGN_OR_RETURN(node->block, BuildBlock(q, node.get()));
    return CollapsedPtr(node);
  }

  Result<CollapsedPtr> CollapseWhen(const QueryPtr& q) {
    HQL_CHECK(q->kind() == QueryKind::kWhen);
    const HypoExprPtr& state = q->state();
    auto node = std::make_shared<CollapsedNode>();
    node->kind = CollapsedKind::kWhen;
    HQL_ASSIGN_OR_RETURN(node->input, CollapseQuery(q->left()));
    if (state->kind() == HypoKind::kSubst) {
      for (const Binding& b : state->bindings()) {
        HQL_ASSIGN_OR_RETURN(CollapsedPtr value, CollapseQuery(b.query));
        node->bindings.push_back(CollapsedBinding{b.rel_name, value});
      }
      return CollapsedPtr(node);
    }
    if (state->kind() == HypoKind::kUpdateState) {
      node->state_is_update = true;
      HQL_RETURN_IF_ERROR(FlattenAtoms(state->update(), node.get()));
      return CollapsedPtr(node);
    }
    return Status::InvalidArgument(
        "Collapse requires an ENF or mod-ENF query (state uses #): " +
        q->ToString());
  }

  // Flattens {A1; ...; An} left-to-right into owner->atoms.
  Status FlattenAtoms(const UpdatePtr& u, CollapsedNode* owner) {
    switch (u->kind()) {
      case UpdateKind::kInsert:
      case UpdateKind::kDelete: {
        HQL_ASSIGN_OR_RETURN(CollapsedPtr arg, CollapseQuery(u->query()));
        owner->atoms.push_back(CollapsedAtom{
            u->kind() == UpdateKind::kInsert, u->rel_name(), arg});
        return Status::OK();
      }
      case UpdateKind::kSeq:
        HQL_RETURN_IF_ERROR(FlattenAtoms(u->first(), owner));
        return FlattenAtoms(u->second(), owner);
      case UpdateKind::kCond:
        return Status::InvalidArgument(
            "Collapse of an update state requires atomic ins/del only "
            "(mod-ENF); found a conditional");
    }
    return Status::Internal("unknown update kind in Collapse");
  }

  // Rebuilds the pure-RA skeleton of `q`, punching a placeholder for every
  // embedded `when` subtree (recorded as a hole on `owner`).
  Result<QueryPtr> BuildBlock(const QueryPtr& q, CollapsedNode* owner) {
    HQL_RETURN_IF_ERROR(GovernorChargeRewriteNodes(1));
    switch (q->kind()) {
      case QueryKind::kRel:
      case QueryKind::kEmpty:
      case QueryKind::kSingleton:
        return q;
      case QueryKind::kSelect: {
        HQL_ASSIGN_OR_RETURN(QueryPtr c, BuildBlock(q->left(), owner));
        if (c == q->left()) return q;
        return Query::Select(q->predicate(), std::move(c));
      }
      case QueryKind::kProject: {
        HQL_ASSIGN_OR_RETURN(QueryPtr c, BuildBlock(q->left(), owner));
        if (c == q->left()) return q;
        return Query::Project(q->columns(), std::move(c));
      }
      case QueryKind::kAggregate: {
        HQL_ASSIGN_OR_RETURN(QueryPtr c, BuildBlock(q->left(), owner));
        if (c == q->left()) return q;
        return Query::Aggregate(q->columns(), q->agg_func(),
                                q->agg_column(), std::move(c));
      }
      case QueryKind::kUnion:
      case QueryKind::kIntersect:
      case QueryKind::kProduct:
      case QueryKind::kDifference: {
        HQL_ASSIGN_OR_RETURN(QueryPtr l, BuildBlock(q->left(), owner));
        HQL_ASSIGN_OR_RETURN(QueryPtr r, BuildBlock(q->right(), owner));
        if (l == q->left() && r == q->right()) return q;
        switch (q->kind()) {
          case QueryKind::kUnion:
            return Query::Union(std::move(l), std::move(r));
          case QueryKind::kIntersect:
            return Query::Intersect(std::move(l), std::move(r));
          case QueryKind::kProduct:
            return Query::Product(std::move(l), std::move(r));
          default:
            return Query::Difference(std::move(l), std::move(r));
        }
      }
      case QueryKind::kJoin: {
        HQL_ASSIGN_OR_RETURN(QueryPtr l, BuildBlock(q->left(), owner));
        HQL_ASSIGN_OR_RETURN(QueryPtr r, BuildBlock(q->right(), owner));
        if (l == q->left() && r == q->right()) return q;
        return Query::Join(q->predicate(), std::move(l), std::move(r));
      }
      case QueryKind::kWhen: {
        size_t index = owner->holes.size();
        HQL_ASSIGN_OR_RETURN(CollapsedPtr hole, CollapseWhen(q));
        HQL_ASSIGN_OR_RETURN(size_t arity, InferQueryArity(q, schema));
        owner->holes.push_back(std::move(hole));
        owner->hole_arities.push_back(arity);
        return Query::Rel(PlaceholderName(index));
      }
    }
    return Status::Internal("unknown query kind in Collapse");
  }
};

std::string ToStr(const CollapsedPtr& n) {
  if (n->kind == CollapsedKind::kBlock) {
    std::string out = "block(" + n->block->ToString();
    for (size_t i = 0; i < n->holes.size(); ++i) {
      out += "; " + PlaceholderName(i) + "=" + ToStr(n->holes[i]);
    }
    return out + ")";
  }
  std::string out = "when(" + ToStr(n->input) + ", {";
  if (n->state_is_update) {
    for (size_t i = 0; i < n->atoms.size(); ++i) {
      if (i > 0) out += "; ";
      out += std::string(n->atoms[i].is_insert ? "ins(" : "del(") +
             n->atoms[i].rel_name + ", " + ToStr(n->atoms[i].arg) + ")";
    }
  } else {
    for (size_t i = 0; i < n->bindings.size(); ++i) {
      if (i > 0) out += ", ";
      out += ToStr(n->bindings[i].value) + "/" + n->bindings[i].rel_name;
    }
  }
  return out + "})";
}

}  // namespace

Result<CollapsedPtr> Collapse(const QueryPtr& query, const Schema& schema) {
  if (query == nullptr) {
    return Status::InvalidArgument("Collapse: query must not be null");
  }
  Builder builder(schema);
  return builder.CollapseQuery(query);
}

std::string CollapsedToString(const CollapsedPtr& node) {
  HQL_CHECK(node != nullptr);
  return ToStr(node);
}

}  // namespace hql
