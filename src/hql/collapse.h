#ifndef HQL_HQL_COLLAPSE_H_
#define HQL_HQL_COLLAPSE_H_

// The `collapse` operator of paper Section 5.4: groups maximal pure-RA
// regions of an ENF syntax tree into single "block" nodes
// Q[S1,...,Sm, R1,...,Rk], so that an optimized relational evaluator can
// cluster several algebraic operators into one physical operation
// (Algorithm HQL-2 / filter2), instead of evaluating node by node
// (Algorithm HQL-1 / filter1).
//
// A collapsed tree has two node kinds:
//   * kBlock — a pure RA query whose leaves are base relation names and
//     placeholder names "#0", "#1", ... ; placeholder #i stands for the
//     i-th hole, itself a collapsed subtree (always rooted at a `when`).
//   * kWhen — an input subtree filtered through a hypothetical state: for
//     ENF trees an explicit substitution whose binding values are collapsed
//     subtrees; for mod-ENF trees (Section 5.5) a chain of atomic
//     inserts/deletes whose arguments are collapsed subtrees.

#include <memory>
#include <string>
#include <vector>

#include "ast/forward.h"
#include "common/result.h"
#include "storage/schema.h"

namespace hql {

struct CollapsedNode;
using CollapsedPtr = std::shared_ptr<const CollapsedNode>;

enum class CollapsedKind { kBlock, kWhen };

struct CollapsedBinding {
  std::string rel_name;
  CollapsedPtr value;
};

/// One atomic update of a mod-ENF state {A1; ...; An}.
struct CollapsedAtom {
  bool is_insert = true;
  std::string rel_name;
  CollapsedPtr arg;
};

struct CollapsedNode {
  CollapsedKind kind = CollapsedKind::kBlock;

  // kBlock: pure RA query over base names and "#i" placeholders.
  QueryPtr block;
  std::vector<CollapsedPtr> holes;     // holes[i] realizes placeholder "#i"
  std::vector<size_t> hole_arities;    // arity of each hole

  // kWhen.
  CollapsedPtr input;
  bool state_is_update = false;          // false: bindings; true: atoms
  std::vector<CollapsedBinding> bindings;
  std::vector<CollapsedAtom> atoms;
};

/// Returns the placeholder relation name for hole `i` ("#i").
std::string PlaceholderName(size_t i);

/// True if `name` is a placeholder produced by Collapse.
bool IsPlaceholderName(const std::string& name);

/// Collapses an ENF or mod-ENF query (InvalidArgument otherwise: every
/// state must be an explicit substitution or an atomic-update chain).
Result<CollapsedPtr> Collapse(const QueryPtr& query, const Schema& schema);

/// Debug rendering, e.g. "when(block(#0 join S; #0=when(...)), {Q/R})".
std::string CollapsedToString(const CollapsedPtr& node);

}  // namespace hql

#endif  // HQL_HQL_COLLAPSE_H_
