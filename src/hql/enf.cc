#include "hql/enf.h"

#include <set>

#include "ast/hypo.h"
#include "ast/query.h"
#include "ast/update.h"
#include "common/check.h"
#include "common/governor.h"
#include "hql/free_dom.h"
#include "hql/rewrite_when.h"
#include "hql/slice.h"

namespace hql {

namespace {

// ---------------------------------------------------------------------------
// IsEnf / IsModEnf.
// ---------------------------------------------------------------------------

bool EnfQueryCheck(const QueryPtr& q);

bool EnfHypoCheck(const HypoExprPtr& h) {
  if (h->kind() != HypoKind::kSubst) return false;
  for (const Binding& b : h->bindings()) {
    if (!EnfQueryCheck(b.query)) return false;
  }
  return true;
}

bool EnfQueryCheck(const QueryPtr& q) {
  switch (q->kind()) {
    case QueryKind::kRel:
    case QueryKind::kEmpty:
    case QueryKind::kSingleton:
      return true;
    case QueryKind::kSelect:
    case QueryKind::kProject:
    case QueryKind::kAggregate:
      return EnfQueryCheck(q->left());
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kJoin:
    case QueryKind::kDifference:
      return EnfQueryCheck(q->left()) && EnfQueryCheck(q->right());
    case QueryKind::kWhen:
      return EnfQueryCheck(q->left()) && EnfHypoCheck(q->state());
  }
  HQL_UNREACHABLE();
}

bool ModQueryCheck(const QueryPtr& q);

bool ModUpdateCheck(const UpdatePtr& u) {
  switch (u->kind()) {
    case UpdateKind::kInsert:
    case UpdateKind::kDelete:
      return ModQueryCheck(u->query());
    case UpdateKind::kSeq:
      return ModUpdateCheck(u->first()) && ModUpdateCheck(u->second());
    case UpdateKind::kCond:
      return false;
  }
  HQL_UNREACHABLE();
}

bool ModQueryCheck(const QueryPtr& q) {
  switch (q->kind()) {
    case QueryKind::kRel:
    case QueryKind::kEmpty:
    case QueryKind::kSingleton:
      return true;
    case QueryKind::kSelect:
    case QueryKind::kProject:
    case QueryKind::kAggregate:
      return ModQueryCheck(q->left());
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kJoin:
    case QueryKind::kDifference:
      return ModQueryCheck(q->left()) && ModQueryCheck(q->right());
    case QueryKind::kWhen:
      return ModQueryCheck(q->left()) &&
             q->state()->kind() == HypoKind::kUpdateState &&
             ModUpdateCheck(q->state()->update());
  }
  HQL_UNREACHABLE();
}

// ---------------------------------------------------------------------------
// ToEnf.
// ---------------------------------------------------------------------------

Result<QueryPtr> EnfQuery(const QueryPtr& q, const Schema& schema);

Result<HypoExprPtr> EnfHypo(const HypoExprPtr& h, const Schema& schema);

/// Composes two explicit substitutions into one (compute-composition).
HypoExprPtr ComposeExplicit(const HypoExprPtr& e1, const HypoExprPtr& e2) {
  HypoExprPtr composed =
      equiv::ComputeComposition(HypoExpr::Compose(e1, e2));
  HQL_CHECK(composed != nullptr);
  return composed;
}

Result<HypoExprPtr> EnfUpdate(const UpdatePtr& u, const Schema& schema) {
  // Each recursion step produces O(1) nodes (plus per-name bindings for
  // kCond), so charging per step bounds the rewriter's output; the charge
  // also polls deadline/cancellation on cadence.
  HQL_RETURN_IF_ERROR(GovernorChargeRewriteNodes(1));
  switch (u->kind()) {
    case UpdateKind::kInsert: {
      HQL_ASSIGN_OR_RETURN(QueryPtr arg, EnfQuery(u->query(), schema));
      return HypoExpr::Subst({Binding{
          u->rel_name(),
          Query::Union(Query::Rel(u->rel_name()), std::move(arg))}});
    }
    case UpdateKind::kDelete: {
      HQL_ASSIGN_OR_RETURN(QueryPtr arg, EnfQuery(u->query(), schema));
      return HypoExpr::Subst({Binding{
          u->rel_name(),
          Query::Difference(Query::Rel(u->rel_name()), std::move(arg))}});
    }
    case UpdateKind::kSeq: {
      HQL_ASSIGN_OR_RETURN(HypoExprPtr e1, EnfUpdate(u->first(), schema));
      HQL_ASSIGN_OR_RETURN(HypoExprPtr e2, EnfUpdate(u->second(), schema));
      return ComposeExplicit(e1, e2);
    }
    case UpdateKind::kCond: {
      // The slice encoding of Section 6, built syntactically so the branch
      // substitutions may contain `when`.
      HQL_ASSIGN_OR_RETURN(QueryPtr guard, EnfQuery(u->guard(), schema));
      HQL_ASSIGN_OR_RETURN(HypoExprPtr then_e,
                           EnfUpdate(u->then_branch(), schema));
      HQL_ASSIGN_OR_RETURN(HypoExprPtr else_e,
                           EnfUpdate(u->else_branch(), schema));
      NameSet names = DomNames(u);
      std::vector<Binding> out;
      for (const std::string& name : names) {
        HQL_ASSIGN_OR_RETURN(size_t arity, schema.ArityOf(name));
        QueryPtr q1 = then_e->BindingFor(name);
        if (q1 == nullptr) q1 = Query::Rel(name);
        QueryPtr q2 = else_e->BindingFor(name);
        if (q2 == nullptr) q2 = Query::Rel(name);
        out.push_back(Binding{
            name, Query::Union(GuardQuery(q1, arity, guard),
                               Query::Difference(
                                   q2, GuardQuery(q2, arity, guard)))});
      }
      return HypoExpr::Subst(std::move(out));
    }
  }
  return Status::Internal("unknown update kind in ToEnf");
}

Result<HypoExprPtr> EnfHypo(const HypoExprPtr& h, const Schema& schema) {
  HQL_RETURN_IF_ERROR(GovernorChargeRewriteNodes(1));
  switch (h->kind()) {
    case HypoKind::kSubst: {
      std::vector<Binding> out;
      out.reserve(h->bindings().size());
      for (const Binding& b : h->bindings()) {
        HQL_ASSIGN_OR_RETURN(QueryPtr q, EnfQuery(b.query, schema));
        out.push_back(Binding{b.rel_name, std::move(q)});
      }
      return HypoExpr::Subst(std::move(out));
    }
    case HypoKind::kUpdateState:
      return EnfUpdate(h->update(), schema);
    case HypoKind::kCompose: {
      HQL_ASSIGN_OR_RETURN(HypoExprPtr e1, EnfHypo(h->first(), schema));
      HQL_ASSIGN_OR_RETURN(HypoExprPtr e2, EnfHypo(h->second(), schema));
      return ComposeExplicit(e1, e2);
    }
    case HypoKind::kStateWhen: {
      // eta1's bindings are evaluated in eta2's world: wrap each binding
      // query with `when e2`; eta2's own bindings do not survive.
      HQL_ASSIGN_OR_RETURN(HypoExprPtr e1, EnfHypo(h->first(), schema));
      HQL_ASSIGN_OR_RETURN(HypoExprPtr e2, EnfHypo(h->second(), schema));
      std::vector<Binding> out;
      out.reserve(e1->bindings().size());
      for (const Binding& b : e1->bindings()) {
        out.push_back(Binding{
            b.rel_name, e2->bindings().empty()
                            ? b.query
                            : Query::When(b.query, e2)});
      }
      return HypoExpr::Subst(std::move(out));
    }
  }
  return Status::Internal("unknown hypothetical-state kind in ToEnf");
}

Result<QueryPtr> EnfQuery(const QueryPtr& q, const Schema& schema) {
  HQL_RETURN_IF_ERROR(GovernorChargeRewriteNodes(1));
  switch (q->kind()) {
    case QueryKind::kRel:
    case QueryKind::kEmpty:
    case QueryKind::kSingleton:
      return q;
    case QueryKind::kSelect: {
      HQL_ASSIGN_OR_RETURN(QueryPtr c, EnfQuery(q->left(), schema));
      if (c == q->left()) return q;
      return Query::Select(q->predicate(), std::move(c));
    }
    case QueryKind::kProject: {
      HQL_ASSIGN_OR_RETURN(QueryPtr c, EnfQuery(q->left(), schema));
      if (c == q->left()) return q;
      return Query::Project(q->columns(), std::move(c));
    }
    case QueryKind::kAggregate: {
      HQL_ASSIGN_OR_RETURN(QueryPtr c, EnfQuery(q->left(), schema));
      if (c == q->left()) return q;
      return Query::Aggregate(q->columns(), q->agg_func(), q->agg_column(),
                              std::move(c));
    }
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kDifference: {
      HQL_ASSIGN_OR_RETURN(QueryPtr l, EnfQuery(q->left(), schema));
      HQL_ASSIGN_OR_RETURN(QueryPtr r, EnfQuery(q->right(), schema));
      if (l == q->left() && r == q->right()) return q;
      switch (q->kind()) {
        case QueryKind::kUnion:
          return Query::Union(std::move(l), std::move(r));
        case QueryKind::kIntersect:
          return Query::Intersect(std::move(l), std::move(r));
        case QueryKind::kProduct:
          return Query::Product(std::move(l), std::move(r));
        default:
          return Query::Difference(std::move(l), std::move(r));
      }
    }
    case QueryKind::kJoin: {
      HQL_ASSIGN_OR_RETURN(QueryPtr l, EnfQuery(q->left(), schema));
      HQL_ASSIGN_OR_RETURN(QueryPtr r, EnfQuery(q->right(), schema));
      if (l == q->left() && r == q->right()) return q;
      return Query::Join(q->predicate(), std::move(l), std::move(r));
    }
    case QueryKind::kWhen: {
      HQL_ASSIGN_OR_RETURN(QueryPtr body, EnfQuery(q->left(), schema));
      HQL_ASSIGN_OR_RETURN(HypoExprPtr state, EnfHypo(q->state(), schema));
      return Query::When(std::move(body), std::move(state));
    }
  }
  return Status::Internal("unknown query kind in ToEnf");
}

// ---------------------------------------------------------------------------
// ToModEnf.
// ---------------------------------------------------------------------------

Result<QueryPtr> ModQuery(const QueryPtr& q, const Schema& schema);

Result<UpdatePtr> ModUpdate(const UpdatePtr& u, const Schema& schema) {
  switch (u->kind()) {
    case UpdateKind::kInsert: {
      HQL_ASSIGN_OR_RETURN(QueryPtr arg, ModQuery(u->query(), schema));
      if (arg == u->query()) return u;
      return Update::Insert(u->rel_name(), std::move(arg));
    }
    case UpdateKind::kDelete: {
      HQL_ASSIGN_OR_RETURN(QueryPtr arg, ModQuery(u->query(), schema));
      if (arg == u->query()) return u;
      return Update::Delete(u->rel_name(), std::move(arg));
    }
    case UpdateKind::kSeq: {
      HQL_ASSIGN_OR_RETURN(UpdatePtr a, ModUpdate(u->first(), schema));
      HQL_ASSIGN_OR_RETURN(UpdatePtr b, ModUpdate(u->second(), schema));
      if (a == u->first() && b == u->second()) return u;
      return Update::Seq(std::move(a), std::move(b));
    }
    case UpdateKind::kCond:
      return Status::Unimplemented(
          "conditional updates have no mod-ENF form; use ENF (HQL-2)");
  }
  return Status::Internal("unknown update kind in ToModEnf");
}

Result<UpdatePtr> ModHypo(const HypoExprPtr& h, const Schema& schema) {
  switch (h->kind()) {
    case HypoKind::kUpdateState:
      return ModUpdate(h->update(), schema);
    case HypoKind::kCompose: {
      HQL_ASSIGN_OR_RETURN(UpdatePtr a, ModHypo(h->first(), schema));
      HQL_ASSIGN_OR_RETURN(UpdatePtr b, ModHypo(h->second(), schema));
      return Update::Seq(std::move(a), std::move(b));
    }
    case HypoKind::kSubst:
      return Status::Unimplemented(
          "explicit substitutions have no general mod-ENF form; use ENF "
          "(HQL-2)");
    case HypoKind::kStateWhen:
      return Status::Unimplemented(
          "state-level when has no mod-ENF form; use ENF (HQL-2)");
  }
  return Status::Internal("unknown hypothetical-state kind in ToModEnf");
}

Result<QueryPtr> ModQuery(const QueryPtr& q, const Schema& schema) {
  HQL_RETURN_IF_ERROR(GovernorChargeRewriteNodes(1));
  switch (q->kind()) {
    case QueryKind::kRel:
    case QueryKind::kEmpty:
    case QueryKind::kSingleton:
      return q;
    case QueryKind::kSelect: {
      HQL_ASSIGN_OR_RETURN(QueryPtr c, ModQuery(q->left(), schema));
      if (c == q->left()) return q;
      return Query::Select(q->predicate(), std::move(c));
    }
    case QueryKind::kProject: {
      HQL_ASSIGN_OR_RETURN(QueryPtr c, ModQuery(q->left(), schema));
      if (c == q->left()) return q;
      return Query::Project(q->columns(), std::move(c));
    }
    case QueryKind::kAggregate: {
      HQL_ASSIGN_OR_RETURN(QueryPtr c, ModQuery(q->left(), schema));
      if (c == q->left()) return q;
      return Query::Aggregate(q->columns(), q->agg_func(), q->agg_column(),
                              std::move(c));
    }
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kDifference: {
      HQL_ASSIGN_OR_RETURN(QueryPtr l, ModQuery(q->left(), schema));
      HQL_ASSIGN_OR_RETURN(QueryPtr r, ModQuery(q->right(), schema));
      if (l == q->left() && r == q->right()) return q;
      switch (q->kind()) {
        case QueryKind::kUnion:
          return Query::Union(std::move(l), std::move(r));
        case QueryKind::kIntersect:
          return Query::Intersect(std::move(l), std::move(r));
        case QueryKind::kProduct:
          return Query::Product(std::move(l), std::move(r));
        default:
          return Query::Difference(std::move(l), std::move(r));
      }
    }
    case QueryKind::kJoin: {
      HQL_ASSIGN_OR_RETURN(QueryPtr l, ModQuery(q->left(), schema));
      HQL_ASSIGN_OR_RETURN(QueryPtr r, ModQuery(q->right(), schema));
      if (l == q->left() && r == q->right()) return q;
      return Query::Join(q->predicate(), std::move(l), std::move(r));
    }
    case QueryKind::kWhen: {
      HQL_ASSIGN_OR_RETURN(QueryPtr body, ModQuery(q->left(), schema));
      HQL_ASSIGN_OR_RETURN(UpdatePtr u, ModHypo(q->state(), schema));
      return Query::When(std::move(body), HypoExpr::UpdateState(std::move(u)));
    }
  }
  return Status::Internal("unknown query kind in ToModEnf");
}

}  // namespace

bool IsEnf(const QueryPtr& query) {
  HQL_CHECK(query != nullptr);
  return EnfQueryCheck(query);
}

Result<QueryPtr> ToEnf(const QueryPtr& query, const Schema& schema) {
  if (query == nullptr) {
    return Status::InvalidArgument("ToEnf: query must not be null");
  }
  return EnfQuery(query, schema);
}

bool IsModEnf(const QueryPtr& query) {
  HQL_CHECK(query != nullptr);
  return ModQueryCheck(query);
}

Result<QueryPtr> ToModEnf(const QueryPtr& query, const Schema& schema) {
  if (query == nullptr) {
    return Status::InvalidArgument("ToModEnf: query must not be null");
  }
  return ModQuery(query, schema);
}

}  // namespace hql
