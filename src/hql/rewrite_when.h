#ifndef HQL_HQL_REWRITE_WHEN_H_
#define HQL_HQL_REWRITE_WHEN_H_

// The EQUIV_when family of equivalences (paper Figure 1) as executable,
// individually testable rewrite rules. Each function applies one rule at
// the root of its argument and returns the rewritten node, or nullptr when
// the rule does not apply. All rules are sound: they preserve the value of
// the expression in every database state (verified exhaustively by the
// property tests in tests/rewrite_when_test.cc).
//
//   RelWhenSubst          R when eps == Q (Q/R in eps) / R (no binding)
//   SingletonWhen         {t} when eta == {t}
//   EmptyWhen             empty[k] when eta == empty[k]
//   PushWhenUnary         u_op(Q) when eta == u_op(Q when eta)
//   PushWhenBinary        (Q1 b_op Q2) when eta == (Q1 when eta) b_op
//                                                  (Q2 when eta)
//   ConvertToExplicit     {ins(R,Q)} == {(R u Q)/R}, {del(R,Q)} == {(R-Q)/R},
//                         {(U1;U2)} == {U1} # {U2}
//   ReplaceNestedWhen     (Q when eta1) when eta2 == Q when (eta2 # eta1)
//   AssocCompose          (e1 # e2) # e3 == e1 # (e2 # e3)
//   ComputeComposition    eps1 # eps2 == one explicit substitution
//   SubstSimplify         binding removal (R not free in Q), identity
//                         bindings, Q when {} == Q
//   CommuteHypotheticals  (Q when eta1) when eta2 == (Q when eta2) when eta1
//                         under the Figure 1 disjointness side conditions

#include "ast/forward.h"
#include "ast/hypo.h"

namespace hql {
namespace equiv {

QueryPtr RelWhenSubst(const QueryPtr& q);
QueryPtr SingletonWhen(const QueryPtr& q);
QueryPtr EmptyWhen(const QueryPtr& q);
QueryPtr PushWhenUnary(const QueryPtr& q);
QueryPtr PushWhenBinary(const QueryPtr& q);
HypoExprPtr ConvertToExplicit(const HypoExprPtr& h);
QueryPtr ReplaceNestedWhen(const QueryPtr& q);
HypoExprPtr AssocCompose(const HypoExprPtr& h);

/// eps1 # eps2 (both explicit substitutions) folded into one explicit
/// substitution. When every involved binding is pure RA the substitution is
/// applied textually; otherwise the paper's `P when eps1` wrapping keeps the
/// result inside HQL.
HypoExprPtr ComputeComposition(const HypoExprPtr& h);

QueryPtr SubstSimplify(const QueryPtr& q);
QueryPtr CommuteHypotheticals(const QueryPtr& q);

}  // namespace equiv
}  // namespace hql

#endif  // HQL_HQL_REWRITE_WHEN_H_
