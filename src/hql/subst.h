#ifndef HQL_HQL_SUBST_H_
#define HQL_HQL_SUBST_H_

// Abstract substitutions over the relational algebra (paper Section 3.2).
//
// A substitution rho is a partial function from relation names to RA
// queries, arity-preserving. The two defining operations are
//
//   sub(Q, rho)     textual replacement of every base-relation occurrence
//                   (Apply below), and
//   rho1 # rho2     composition, the unique substitution with
//                     dom = dom(rho1) u dom(rho2)
//                     (rho1 # rho2)(S) = sub(rho2(S), rho1)  if S in dom(rho2)
//                                      = rho1(S)             otherwise
//                   (ComposeWith below).
//
// Viewed as an update, rho assigns all its bindings in parallel, and
// composition is sequential execution: rho1 first, then rho2 (Lemma 3.6).
// Binding queries must be pure RA (no `when`); the reduction machinery
// (hql/reduce.h) is responsible for producing pure bindings.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/forward.h"
#include "ast/hypo.h"

namespace hql {

class Substitution {
 public:
  /// The identity (empty) substitution.
  Substitution() = default;

  /// Builds from bindings; names must be distinct and queries pure RA
  /// (CHECK-enforced — callers validate untrusted input beforehand).
  static Substitution Make(std::vector<Binding> bindings);

  bool empty() const { return bindings_.empty(); }
  size_t size() const { return bindings_.size(); }

  bool Has(const std::string& name) const;
  /// The binding for `name`, or nullptr.
  QueryPtr Get(const std::string& name) const;

  /// Adds or replaces a binding; `query` must be pure RA.
  void Bind(const std::string& name, QueryPtr query);

  /// Removes the binding for `name` if present (the paper's eps - R,
  /// the basis of binding removal, Example 2.3).
  void Remove(const std::string& name);

  /// Sorted domain.
  std::vector<std::string> Domain() const;

  const std::map<std::string, QueryPtr>& bindings() const { return bindings_; }

  /// sub(Q, rho): replaces every occurrence of each bound name in the pure
  /// RA query `query` (CHECK: no `when` inside). Shared subtrees of the
  /// input stay shared in the output (pointer-memoized), so repeated
  /// substitution grows the DAG linearly even when the expanded tree grows
  /// exponentially (Example 2.4).
  QueryPtr Apply(const QueryPtr& query) const;

  /// this # other (this first when viewed as an update; Lemma 3.2/3.6).
  Substitution ComposeWith(const Substitution& other) const;

  /// Conversion to the syntactic explicit-substitution form.
  HypoExprPtr ToHypoExpr() const;

  /// Drops bindings whose name is not in `live` (repeated binding removal:
  /// sub(E, rho) = sub(E, rho - {t/v}) when v is not free in E).
  void RestrictTo(const std::set<std::string>& live);

  /// Drops identity bindings R/R (the substitution-simplification rule
  /// "Q when eps == Q when eps-R if (R/R) in eps").
  void DropIdentityBindings();

  std::string ToString() const;

 private:
  QueryPtr ApplyImpl(const QueryPtr& query, void* memo) const;
  QueryPtr ApplyNode(const QueryPtr& query, void* memo) const;

  std::map<std::string, QueryPtr> bindings_;
};

}  // namespace hql

#endif  // HQL_HQL_SUBST_H_
