#ifndef HQL_HQL_REDUCE_H_
#define HQL_HQL_REDUCE_H_

// The reduction semantics red(.) of paper Section 4.3 (Theorem 4.1): maps
// any RA_hyp query to an equivalent pure RA query, and any
// hypothetical-state expression to an equivalent abstract substitution:
//
//   red({.., Qj/Sj, ..}) = {.., red(Qj)/Sj, ..}
//   red({U})             = slice(red(U))
//   red(eta1 # eta2)     = red(eta1) # red(eta2)
//
//   red(R) = R,  red({t}) = {t}
//   red(u_op(Q))      = u_op(red(Q))
//   red(Q1 b_op Q2)   = red(Q1) b_op red(Q2)
//   red(Q when eta)   = sub(red(Q), red(eta))
//
// This is the fully lazy evaluation strategy: evaluate red(Q) with a
// conventional RA engine. Note red can blow up exponentially (Example 2.4);
// see ast/metrics.h for measuring it and opt/planner.h for avoiding it.

#include "ast/forward.h"
#include "common/result.h"
#include "hql/subst.h"
#include "storage/schema.h"

namespace hql {

/// red(Q): a pure RA query equivalent to `query` in every database state.
Result<QueryPtr> Reduce(const QueryPtr& query, const Schema& schema);

/// red(eta): an abstract substitution equivalent to `state`.
Result<Substitution> ReduceHypo(const HypoExprPtr& state,
                                const Schema& schema);

/// Reduces the queries nested inside an update, yielding an update whose
/// arguments are pure RA (the precondition of Slice).
Result<UpdatePtr> ReduceUpdate(const UpdatePtr& update, const Schema& schema);

}  // namespace hql

#endif  // HQL_HQL_REDUCE_H_
