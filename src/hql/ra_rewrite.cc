#include "hql/ra_rewrite.h"

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "ast/hypo.h"
#include "ast/metrics.h"
#include "ast/query.h"
#include "ast/scalar_expr.h"
#include "ast/typecheck.h"
#include "common/check.h"

namespace hql {

namespace {

bool IsLiteralBool(const ScalarExprPtr& e, bool value) {
  return e->kind() == ScalarKind::kLiteral && e->literal().is_bool() &&
         e->literal().AsBool() == value;
}

ScalarExprPtr TrueLit() { return ScalarExpr::Literal(Value::Bool(true)); }
ScalarExprPtr FalseLit() { return ScalarExpr::Literal(Value::Bool(false)); }

bool IsComparison(ScalarOp op) {
  switch (op) {
    case ScalarOp::kEq:
    case ScalarOp::kNe:
    case ScalarOp::kLt:
    case ScalarOp::kLe:
    case ScalarOp::kGt:
    case ScalarOp::kGe:
      return true;
    default:
      return false;
  }
}

ScalarOp NegateComparison(ScalarOp op) {
  switch (op) {
    case ScalarOp::kEq:
      return ScalarOp::kNe;
    case ScalarOp::kNe:
      return ScalarOp::kEq;
    case ScalarOp::kLt:
      return ScalarOp::kGe;
    case ScalarOp::kLe:
      return ScalarOp::kGt;
    case ScalarOp::kGt:
      return ScalarOp::kLe;
    case ScalarOp::kGe:
      return ScalarOp::kLt;
    default:
      HQL_UNREACHABLE();
  }
}

ScalarOp MirrorComparison(ScalarOp op) {
  // (a op b) == (b mirror(op) a).
  switch (op) {
    case ScalarOp::kEq:
      return ScalarOp::kEq;
    case ScalarOp::kNe:
      return ScalarOp::kNe;
    case ScalarOp::kLt:
      return ScalarOp::kGt;
    case ScalarOp::kLe:
      return ScalarOp::kGe;
    case ScalarOp::kGt:
      return ScalarOp::kLt;
    case ScalarOp::kGe:
      return ScalarOp::kLe;
    default:
      HQL_UNREACHABLE();
  }
}

// One conjunct of the canonical form: either a single-column bound
// `$col op literal` or an opaque residual expression.
struct ColumnBound {
  size_t column;
  ScalarOp op;  // kEq, kNe, kLt, kLe, kGt, kGe
  Value bound;
};

std::optional<ColumnBound> AsColumnBound(const ScalarExprPtr& e) {
  if (e->kind() != ScalarKind::kBinary || !IsComparison(e->op())) {
    return std::nullopt;
  }
  const ScalarExprPtr& l = e->lhs();
  const ScalarExprPtr& r = e->rhs();
  if (l->kind() == ScalarKind::kColumn && r->kind() == ScalarKind::kLiteral) {
    return ColumnBound{l->column(), e->op(), r->literal()};
  }
  if (l->kind() == ScalarKind::kLiteral && r->kind() == ScalarKind::kColumn) {
    return ColumnBound{r->column(), MirrorComparison(e->op()), l->literal()};
  }
  return std::nullopt;
}

// Half-open-ended interval over the Value total order.
struct Interval {
  std::optional<Value> lo;
  bool lo_strict = false;
  std::optional<Value> hi;
  bool hi_strict = false;
  std::vector<Value> not_equal;  // accumulated kNe bounds
  bool contradictory = false;

  void Add(const ColumnBound& b) {
    switch (b.op) {
      case ScalarOp::kEq:
        AddLo(b.bound, false);
        AddHi(b.bound, false);
        break;
      case ScalarOp::kNe:
        not_equal.push_back(b.bound);
        break;
      case ScalarOp::kLt:
        AddHi(b.bound, true);
        break;
      case ScalarOp::kLe:
        AddHi(b.bound, false);
        break;
      case ScalarOp::kGt:
        AddLo(b.bound, true);
        break;
      case ScalarOp::kGe:
        AddLo(b.bound, false);
        break;
      default:
        HQL_UNREACHABLE();
    }
  }

  void AddLo(const Value& v, bool strict) {
    if (!lo.has_value() || v.Compare(*lo) > 0 ||
        (v.Compare(*lo) == 0 && strict)) {
      lo = v;
      lo_strict = strict;
    }
  }

  void AddHi(const Value& v, bool strict) {
    if (!hi.has_value() || v.Compare(*hi) < 0 ||
        (v.Compare(*hi) == 0 && strict)) {
      hi = v;
      hi_strict = strict;
    }
  }

  void Finalize() {
    if (lo.has_value() && hi.has_value()) {
      int c = lo->Compare(*hi);
      if (c > 0 || (c == 0 && (lo_strict || hi_strict))) {
        contradictory = true;
        return;
      }
    }
    // A point interval [c, c] excluded by a not-equal is contradictory.
    if (lo.has_value() && hi.has_value() && lo->Compare(*hi) == 0) {
      for (const Value& ne : not_equal) {
        if (ne.Compare(*lo) == 0) {
          contradictory = true;
          return;
        }
      }
    }
    // Drop not-equals that fall outside the interval; dedup the rest.
    std::vector<Value> kept;
    for (const Value& ne : not_equal) {
      if (lo.has_value()) {
        int c = ne.Compare(*lo);
        if (c < 0 || (c == 0 && lo_strict)) continue;
      }
      if (hi.has_value()) {
        int c = ne.Compare(*hi);
        if (c > 0 || (c == 0 && hi_strict)) continue;
      }
      bool dup = false;
      for (const Value& k : kept) {
        if (k.Compare(ne) == 0) dup = true;
      }
      if (!dup) kept.push_back(ne);
    }
    std::sort(kept.begin(), kept.end(),
              [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
    not_equal = std::move(kept);
  }

  // Emits canonical conjuncts for this column.
  void Emit(size_t column, std::vector<ScalarExprPtr>* out) const {
    ScalarExprPtr col = ScalarExpr::Column(column);
    if (lo.has_value() && hi.has_value() && lo->Compare(*hi) == 0 &&
        !lo_strict && !hi_strict) {
      out->push_back(ScalarExpr::Binary(ScalarOp::kEq, col,
                                        ScalarExpr::Literal(*lo)));
      return;
    }
    if (lo.has_value()) {
      out->push_back(ScalarExpr::Binary(
          lo_strict ? ScalarOp::kGt : ScalarOp::kGe, col,
          ScalarExpr::Literal(*lo)));
    }
    if (hi.has_value()) {
      out->push_back(ScalarExpr::Binary(
          hi_strict ? ScalarOp::kLt : ScalarOp::kLe, col,
          ScalarExpr::Literal(*hi)));
    }
    for (const Value& ne : not_equal) {
      out->push_back(
          ScalarExpr::Binary(ScalarOp::kNe, col, ScalarExpr::Literal(ne)));
    }
  }
};

ScalarExprPtr Simplify(const ScalarExprPtr& e);

// Rebuilds a conjunction in canonical order: per-column interval bounds
// (by ascending column), then residuals in first-seen order (deduped).
ScalarExprPtr SimplifyConjunction(const ScalarExprPtr& e) {
  std::vector<ScalarExprPtr> conjuncts;
  FlattenConjuncts(e, &conjuncts);

  std::map<size_t, Interval> intervals;
  std::vector<ScalarExprPtr> residuals;
  for (const ScalarExprPtr& c : conjuncts) {
    if (IsLiteralBool(c, true)) continue;
    if (IsLiteralBool(c, false)) return FalseLit();
    std::optional<ColumnBound> b = AsColumnBound(c);
    if (b.has_value() && !b->bound.is_null()) {
      intervals[b->column].Add(*b);
    } else {
      bool dup = false;
      for (const ScalarExprPtr& r : residuals) {
        if (r->Equals(*c)) dup = true;
      }
      if (!dup) residuals.push_back(c);
    }
  }

  std::vector<ScalarExprPtr> pieces;
  for (auto& [column, interval] : intervals) {
    interval.Finalize();
    if (interval.contradictory) return FalseLit();
    interval.Emit(column, &pieces);
  }
  pieces.insert(pieces.end(), residuals.begin(), residuals.end());

  if (pieces.empty()) return TrueLit();
  ScalarExprPtr out = pieces[0];
  for (size_t i = 1; i < pieces.size(); ++i) {
    out = ScalarExpr::Binary(ScalarOp::kAnd, out, pieces[i]);
  }
  return out;
}

ScalarExprPtr Simplify(const ScalarExprPtr& e) {
  switch (e->kind()) {
    case ScalarKind::kColumn:
    case ScalarKind::kLiteral:
      return e;
    case ScalarKind::kUnary: {
      ScalarExprPtr a = Simplify(e->lhs());
      if (e->op() == ScalarOp::kNot) {
        if (IsLiteralBool(a, true)) return FalseLit();
        if (IsLiteralBool(a, false)) return TrueLit();
        // not (not p) == p.
        if (a->kind() == ScalarKind::kUnary && a->op() == ScalarOp::kNot) {
          return a->lhs();
        }
        // Push negation through comparisons (sound for the total order).
        if (a->kind() == ScalarKind::kBinary && IsComparison(a->op())) {
          return ScalarExpr::Binary(NegateComparison(a->op()), a->lhs(),
                                    a->rhs());
        }
        // De Morgan, to expose more comparison flips.
        if (a->kind() == ScalarKind::kBinary &&
            (a->op() == ScalarOp::kAnd || a->op() == ScalarOp::kOr)) {
          ScalarOp dual =
              a->op() == ScalarOp::kAnd ? ScalarOp::kOr : ScalarOp::kAnd;
          return Simplify(ScalarExpr::Binary(
              dual, ScalarExpr::Unary(ScalarOp::kNot, a->lhs()),
              ScalarExpr::Unary(ScalarOp::kNot, a->rhs())));
        }
      }
      if (a == e->lhs()) return e;
      return ScalarExpr::Unary(e->op(), a);
    }
    case ScalarKind::kBinary: {
      ScalarExprPtr l = Simplify(e->lhs());
      ScalarExprPtr r = Simplify(e->rhs());
      // Constant fold anything column-free.
      ScalarExprPtr folded = ScalarExpr::Binary(e->op(), l, r);
      if (folded->MinArity() == 0) {
        return ScalarExpr::Literal(folded->Evaluate(Tuple{}));
      }
      switch (e->op()) {
        case ScalarOp::kAnd: {
          if (IsLiteralBool(l, false) || IsLiteralBool(r, false)) {
            return FalseLit();
          }
          if (IsLiteralBool(l, true)) return r;
          if (IsLiteralBool(r, true)) return l;
          return SimplifyConjunction(folded);
        }
        case ScalarOp::kOr: {
          if (IsLiteralBool(l, true) || IsLiteralBool(r, true)) {
            return TrueLit();
          }
          if (IsLiteralBool(l, false)) return r;
          if (IsLiteralBool(r, false)) return l;
          if (l->Equals(*r)) return l;
          return folded;
        }
        default: {
          // Canonicalize literal-on-left comparisons to column-on-left.
          if (IsComparison(e->op()) && l->kind() == ScalarKind::kLiteral &&
              r->kind() == ScalarKind::kColumn) {
            return ScalarExpr::Binary(MirrorComparison(e->op()), r, l);
          }
          // $i = $i and friends.
          if (IsComparison(e->op()) && l->Equals(*r)) {
            switch (e->op()) {
              case ScalarOp::kEq:
              case ScalarOp::kLe:
              case ScalarOp::kGe:
                return TrueLit();
              case ScalarOp::kNe:
              case ScalarOp::kLt:
              case ScalarOp::kGt:
                return FalseLit();
              default:
                break;
            }
          }
          return folded;
        }
      }
    }
  }
  HQL_UNREACHABLE();
}

}  // namespace

ScalarExprPtr SimplifyPredicate(const ScalarExprPtr& pred) {
  HQL_CHECK(pred != nullptr);
  return Simplify(pred);
}

namespace {

// ---------------------------------------------------------------------------
// Algebraic simplification.
// ---------------------------------------------------------------------------

bool IsEmptyQ(const QueryPtr& q) { return q->kind() == QueryKind::kEmpty; }

// Applies root-level rules once; returns nullptr if nothing applies.
// Children are already simplified. `arity` is the arity of `q`.
Result<QueryPtr> RootStep(const QueryPtr& q, const Schema& schema) {
  switch (q->kind()) {
    case QueryKind::kRel:
    case QueryKind::kEmpty:
    case QueryKind::kSingleton:
      return QueryPtr(nullptr);

    case QueryKind::kSelect: {
      const QueryPtr& child = q->left();
      ScalarExprPtr p = SimplifyPredicate(q->predicate());
      if (IsLiteralBool(p, true)) return child;
      if (IsLiteralBool(p, false) || IsEmptyQ(child)) {
        HQL_ASSIGN_OR_RETURN(size_t arity, InferQueryArity(child, schema));
        return Query::Empty(arity);
      }
      // sigma_p({t}) evaluates statically.
      if (child->kind() == QueryKind::kSingleton) {
        if (p->MinArity() <= child->tuple().size()) {
          return p->EvaluatesTrue(child->tuple())
                     ? child
                     : Query::Empty(child->tuple().size());
        }
      }
      // sigma_p(sigma_q(X)) == sigma_{p and q}(X).
      if (child->kind() == QueryKind::kSelect) {
        return Query::Select(
            SimplifyPredicate(ScalarExpr::Binary(ScalarOp::kAnd, p,
                                                 child->predicate())),
            child->left());
      }
      // Push selection through union / intersection / difference.
      if (child->kind() == QueryKind::kUnion ||
          child->kind() == QueryKind::kIntersect ||
          child->kind() == QueryKind::kDifference) {
        QueryPtr l = Query::Select(p, child->left());
        QueryPtr r = Query::Select(p, child->right());
        switch (child->kind()) {
          case QueryKind::kUnion:
            return Query::Union(std::move(l), std::move(r));
          case QueryKind::kIntersect:
            return Query::Intersect(std::move(l), std::move(r));
          default:
            return Query::Difference(std::move(l), std::move(r));
        }
      }
      // sigma over a join folds into the join predicate.
      if (child->kind() == QueryKind::kJoin) {
        return Query::Join(
            SimplifyPredicate(ScalarExpr::Binary(ScalarOp::kAnd, p,
                                                 child->predicate())),
            child->left(), child->right());
      }
      // sigma over a product becomes a theta join (clustering).
      if (child->kind() == QueryKind::kProduct) {
        return Query::Join(p, child->left(), child->right());
      }
      if (ScalarExprEquals(p, q->predicate())) return QueryPtr(nullptr);
      return Query::Select(p, child);
    }

    case QueryKind::kProject: {
      const QueryPtr& child = q->left();
      if (IsEmptyQ(child)) return Query::Empty(q->columns().size());
      if (child->kind() == QueryKind::kSingleton) {
        Tuple t;
        t.reserve(q->columns().size());
        for (size_t c : q->columns()) t.push_back(child->tuple()[c]);
        return Query::Singleton(std::move(t));
      }
      // Identity projection.
      HQL_ASSIGN_OR_RETURN(size_t child_arity,
                           InferQueryArity(child, schema));
      if (q->columns().size() == child_arity) {
        bool identity = true;
        for (size_t i = 0; i < child_arity; ++i) {
          if (q->columns()[i] != i) identity = false;
        }
        if (identity) return child;
      }
      // pi_X(pi_Y(Q)) == pi_{Y o X}(Q).
      if (child->kind() == QueryKind::kProject) {
        std::vector<size_t> composed;
        composed.reserve(q->columns().size());
        for (size_t c : q->columns()) {
          composed.push_back(child->columns()[c]);
        }
        return Query::Project(std::move(composed), child->left());
      }
      return QueryPtr(nullptr);
    }

    case QueryKind::kAggregate: {
      // gamma over an empty input is empty.
      if (IsEmptyQ(q->left())) {
        return Query::Empty(q->columns().size() + 1);
      }
      return QueryPtr(nullptr);
    }

    case QueryKind::kUnion: {
      const QueryPtr& l = q->left();
      const QueryPtr& r = q->right();
      if (IsEmptyQ(l)) return r;
      if (IsEmptyQ(r)) return l;
      if (l->Equals(*r)) return l;
      return QueryPtr(nullptr);
    }

    case QueryKind::kIntersect: {
      const QueryPtr& l = q->left();
      const QueryPtr& r = q->right();
      if (IsEmptyQ(l)) return l;
      if (IsEmptyQ(r)) return r;
      if (l->Equals(*r)) return l;
      // X n sigma_p(X) == sigma_p(X); sigma_p(X) n sigma_q(X) == both.
      if (r->kind() == QueryKind::kSelect && r->left()->Equals(*l)) return r;
      if (l->kind() == QueryKind::kSelect && l->left()->Equals(*r)) return l;
      if (l->kind() == QueryKind::kSelect && r->kind() == QueryKind::kSelect &&
          l->left()->Equals(*r->left())) {
        return Query::Select(
            SimplifyPredicate(ScalarExpr::Binary(
                ScalarOp::kAnd, l->predicate(), r->predicate())),
            l->left());
      }
      return QueryPtr(nullptr);
    }

    case QueryKind::kDifference: {
      const QueryPtr& l = q->left();
      const QueryPtr& r = q->right();
      if (IsEmptyQ(r)) return l;
      if (IsEmptyQ(l)) return l;
      if (l->Equals(*r)) {
        HQL_ASSIGN_OR_RETURN(size_t arity, InferQueryArity(l, schema));
        return Query::Empty(arity);
      }
      // X - sigma_p(X) == sigma_{not p}(X)   (Example 2.1(b)'s key step).
      if (r->kind() == QueryKind::kSelect && r->left()->Equals(*l)) {
        return Query::Select(
            SimplifyPredicate(
                ScalarExpr::Unary(ScalarOp::kNot, r->predicate())),
            l);
      }
      // sigma_p(X) - sigma_q(X) == sigma_{p and not q}(X).
      if (l->kind() == QueryKind::kSelect && r->kind() == QueryKind::kSelect &&
          l->left()->Equals(*r->left())) {
        return Query::Select(
            SimplifyPredicate(ScalarExpr::Binary(
                ScalarOp::kAnd, l->predicate(),
                ScalarExpr::Unary(ScalarOp::kNot, r->predicate()))),
            l->left());
      }
      return QueryPtr(nullptr);
    }

    case QueryKind::kProduct: {
      const QueryPtr& l = q->left();
      const QueryPtr& r = q->right();
      if (IsEmptyQ(l) || IsEmptyQ(r)) {
        HQL_ASSIGN_OR_RETURN(size_t arity, InferQueryArity(q, schema));
        return Query::Empty(arity);
      }
      if (l->kind() == QueryKind::kSingleton &&
          r->kind() == QueryKind::kSingleton) {
        return Query::Singleton(ConcatTuples(l->tuple(), r->tuple()));
      }
      return QueryPtr(nullptr);
    }

    case QueryKind::kJoin: {
      const QueryPtr& l = q->left();
      const QueryPtr& r = q->right();
      ScalarExprPtr p = SimplifyPredicate(q->predicate());
      if (IsEmptyQ(l) || IsEmptyQ(r) || IsLiteralBool(p, false)) {
        HQL_ASSIGN_OR_RETURN(size_t arity, InferQueryArity(q, schema));
        return Query::Empty(arity);
      }
      if (IsLiteralBool(p, true)) return Query::Product(l, r);
      if (ScalarExprEquals(p, q->predicate())) return QueryPtr(nullptr);
      return Query::Join(p, l, r);
    }

    case QueryKind::kWhen:
      return Status::InvalidArgument(
          "SimplifyRa applies to pure RA queries only (reduce or plan "
          "`when` away first)");
  }
  return Status::Internal("unknown query kind in SimplifyRa");
}

Result<QueryPtr> SimplifyRec(const QueryPtr& q, const Schema& schema) {
  QueryPtr cur = q;
  // Simplify children first.
  switch (cur->kind()) {
    case QueryKind::kRel:
    case QueryKind::kEmpty:
    case QueryKind::kSingleton:
      break;
    case QueryKind::kSelect: {
      HQL_ASSIGN_OR_RETURN(QueryPtr c, SimplifyRec(cur->left(), schema));
      if (c != cur->left()) cur = Query::Select(cur->predicate(), c);
      break;
    }
    case QueryKind::kProject: {
      HQL_ASSIGN_OR_RETURN(QueryPtr c, SimplifyRec(cur->left(), schema));
      if (c != cur->left()) cur = Query::Project(cur->columns(), c);
      break;
    }
    case QueryKind::kAggregate: {
      HQL_ASSIGN_OR_RETURN(QueryPtr c, SimplifyRec(cur->left(), schema));
      if (c != cur->left()) {
        cur = Query::Aggregate(cur->columns(), cur->agg_func(),
                               cur->agg_column(), c);
      }
      break;
    }
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kDifference: {
      HQL_ASSIGN_OR_RETURN(QueryPtr l, SimplifyRec(cur->left(), schema));
      HQL_ASSIGN_OR_RETURN(QueryPtr r, SimplifyRec(cur->right(), schema));
      if (l != cur->left() || r != cur->right()) {
        switch (cur->kind()) {
          case QueryKind::kUnion:
            cur = Query::Union(l, r);
            break;
          case QueryKind::kIntersect:
            cur = Query::Intersect(l, r);
            break;
          case QueryKind::kProduct:
            cur = Query::Product(l, r);
            break;
          default:
            cur = Query::Difference(l, r);
            break;
        }
      }
      break;
    }
    case QueryKind::kJoin: {
      HQL_ASSIGN_OR_RETURN(QueryPtr l, SimplifyRec(cur->left(), schema));
      HQL_ASSIGN_OR_RETURN(QueryPtr r, SimplifyRec(cur->right(), schema));
      if (l != cur->left() || r != cur->right()) {
        cur = Query::Join(cur->predicate(), l, r);
      }
      break;
    }
    case QueryKind::kWhen:
      return Status::InvalidArgument(
          "SimplifyRa applies to pure RA queries only");
  }
  // Apply root rules to fixpoint. A root rewrite may expose opportunities
  // below the new root (e.g. a pushed-down selection), so the whole node is
  // re-simplified after each step. Rules strictly simplify, but a structural
  // no-change guard and an iteration cap protect against accidental cycles.
  for (int i = 0; i < 64; ++i) {
    HQL_ASSIGN_OR_RETURN(QueryPtr next, RootStep(cur, schema));
    if (next == nullptr || next->Equals(*cur)) return cur;
    HQL_ASSIGN_OR_RETURN(cur, SimplifyRec(next, schema));
  }
  return cur;
}

}  // namespace

Result<QueryPtr> SimplifyRa(const QueryPtr& query, const Schema& schema) {
  HQL_CHECK(query != nullptr);
  return SimplifyRec(query, schema);
}

Result<QueryPtr> SimplifyMixed(const QueryPtr& q, const Schema& schema) {
  if (IsPureRelAlg(q)) return SimplifyRa(q, schema);
  switch (q->kind()) {
    case QueryKind::kRel:
    case QueryKind::kEmpty:
    case QueryKind::kSingleton:
      return q;
    case QueryKind::kSelect: {
      HQL_ASSIGN_OR_RETURN(QueryPtr c, SimplifyMixed(q->left(), schema));
      return Query::Select(q->predicate(), std::move(c));
    }
    case QueryKind::kProject: {
      HQL_ASSIGN_OR_RETURN(QueryPtr c, SimplifyMixed(q->left(), schema));
      return Query::Project(q->columns(), std::move(c));
    }
    case QueryKind::kAggregate: {
      HQL_ASSIGN_OR_RETURN(QueryPtr c, SimplifyMixed(q->left(), schema));
      return Query::Aggregate(q->columns(), q->agg_func(), q->agg_column(),
                              std::move(c));
    }
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kDifference: {
      HQL_ASSIGN_OR_RETURN(QueryPtr l, SimplifyMixed(q->left(), schema));
      HQL_ASSIGN_OR_RETURN(QueryPtr r, SimplifyMixed(q->right(), schema));
      switch (q->kind()) {
        case QueryKind::kUnion:
          return Query::Union(std::move(l), std::move(r));
        case QueryKind::kIntersect:
          return Query::Intersect(std::move(l), std::move(r));
        case QueryKind::kProduct:
          return Query::Product(std::move(l), std::move(r));
        default:
          return Query::Difference(std::move(l), std::move(r));
      }
    }
    case QueryKind::kJoin: {
      HQL_ASSIGN_OR_RETURN(QueryPtr l, SimplifyMixed(q->left(), schema));
      HQL_ASSIGN_OR_RETURN(QueryPtr r, SimplifyMixed(q->right(), schema));
      return Query::Join(q->predicate(), std::move(l), std::move(r));
    }
    case QueryKind::kWhen: {
      HQL_ASSIGN_OR_RETURN(QueryPtr body, SimplifyMixed(q->left(), schema));
      if (q->state()->kind() != HypoKind::kSubst) {
        return Query::When(std::move(body), q->state());
      }
      std::vector<Binding> bindings;
      for (const Binding& b : q->state()->bindings()) {
        HQL_ASSIGN_OR_RETURN(QueryPtr v, SimplifyMixed(b.query, schema));
        bindings.push_back(Binding{b.rel_name, std::move(v)});
      }
      return Query::When(std::move(body),
                         HypoExpr::Subst(std::move(bindings)));
    }
  }
  return Status::Internal("unknown query kind in SimplifyMixed");
}

}  // namespace hql
