#include "hql/free_dom.h"

#include <algorithm>

#include "ast/hypo.h"
#include "ast/query.h"
#include "ast/update.h"
#include "common/check.h"

namespace hql {

namespace {

void UnionInto(NameSet* dst, const NameSet& src) {
  dst->insert(src.begin(), src.end());
}

NameSet Minus(NameSet a, const NameSet& b) {
  for (const std::string& n : b) a.erase(n);
  return a;
}

}  // namespace

NameSet FreeNames(const QueryPtr& query) {
  HQL_CHECK(query != nullptr);
  switch (query->kind()) {
    case QueryKind::kRel:
      return {query->rel_name()};
    case QueryKind::kEmpty:
    case QueryKind::kSingleton:
      return {};
    case QueryKind::kSelect:
    case QueryKind::kProject:
    case QueryKind::kAggregate:
      return FreeNames(query->left());
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kJoin:
    case QueryKind::kDifference: {
      NameSet s = FreeNames(query->left());
      UnionInto(&s, FreeNames(query->right()));
      return s;
    }
    case QueryKind::kWhen: {
      // free(eta) u (free(Q) - dom(eta)).
      NameSet s = FreeNames(query->state());
      UnionInto(&s, Minus(FreeNames(query->left()), DomNames(query->state())));
      return s;
    }
  }
  HQL_UNREACHABLE();
}

NameSet FreeNames(const UpdatePtr& update) {
  HQL_CHECK(update != nullptr);
  switch (update->kind()) {
    case UpdateKind::kInsert:
    case UpdateKind::kDelete: {
      // {R} u free(Q): the atomic update reads its target's old value
      // (see the header comment on the deviation from Figure 2).
      NameSet s = FreeNames(update->query());
      s.insert(update->rel_name());
      return s;
    }
    case UpdateKind::kSeq: {
      NameSet s = FreeNames(update->first());
      UnionInto(&s, Minus(FreeNames(update->second()),
                          DomNames(update->first())));
      return s;
    }
    case UpdateKind::kCond: {
      NameSet s = FreeNames(update->guard());
      UnionInto(&s, FreeNames(update->then_branch()));
      UnionInto(&s, FreeNames(update->else_branch()));
      return s;
    }
  }
  HQL_UNREACHABLE();
}

NameSet FreeNames(const HypoExprPtr& state) {
  HQL_CHECK(state != nullptr);
  switch (state->kind()) {
    case HypoKind::kUpdateState:
      return FreeNames(state->update());
    case HypoKind::kSubst: {
      NameSet s;
      for (const Binding& b : state->bindings()) {
        UnionInto(&s, FreeNames(b.query));
      }
      return s;
    }
    case HypoKind::kCompose: {
      NameSet s = FreeNames(state->first());
      UnionInto(&s, Minus(FreeNames(state->second()),
                          DomNames(state->first())));
      return s;
    }
    case HypoKind::kStateWhen: {
      // eta1's reads resolve in eta2's world, like a query under `when`.
      NameSet s = FreeNames(state->second());
      UnionInto(&s, Minus(FreeNames(state->first()),
                          DomNames(state->second())));
      return s;
    }
  }
  HQL_UNREACHABLE();
}

NameSet DomNames(const UpdatePtr& update) {
  HQL_CHECK(update != nullptr);
  switch (update->kind()) {
    case UpdateKind::kInsert:
    case UpdateKind::kDelete:
      return {update->rel_name()};
    case UpdateKind::kSeq: {
      NameSet s = DomNames(update->first());
      UnionInto(&s, DomNames(update->second()));
      return s;
    }
    case UpdateKind::kCond: {
      NameSet s = DomNames(update->then_branch());
      UnionInto(&s, DomNames(update->else_branch()));
      return s;
    }
  }
  HQL_UNREACHABLE();
}

NameSet DomNames(const HypoExprPtr& state) {
  HQL_CHECK(state != nullptr);
  switch (state->kind()) {
    case HypoKind::kUpdateState:
      return DomNames(state->update());
    case HypoKind::kSubst: {
      NameSet s;
      for (const Binding& b : state->bindings()) s.insert(b.rel_name);
      return s;
    }
    case HypoKind::kCompose: {
      NameSet s = DomNames(state->first());
      UnionInto(&s, DomNames(state->second()));
      return s;
    }
    case HypoKind::kStateWhen:
      // Only eta1's writes land; eta2 is a hypothetical context.
      return DomNames(state->first());
  }
  HQL_UNREACHABLE();
}

bool Disjoint(const NameSet& a, const NameSet& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return false;
    if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return true;
}

}  // namespace hql
