#ifndef HQL_HQL_SLICE_H_
#define HQL_HQL_SLICE_H_

// slice(U): the substitution with the same effect as update U (paper
// Section 3.4, Lemma 3.9):
//
//   slice(ins(R, Q)) = {(R u Q)/R}
//   slice(del(R, Q)) = {(R - Q)/R}
//   slice((U1; U2))  = slice(U1) # slice(U2)
//
// The conditional-update extension is compiled away with a
// boolean-as-relation encoding (this is the Section 6 remark that such
// constructs do not add expressive power): writing guard(Q, C) for the
// RA query that equals Q when C is non-empty and the empty set otherwise,
//
//   slice(if C then U1 else U2)(R) =
//       guard(slice(U1)(R), C) u (slice(U2)(R) - guard(slice(U2)(R), C))
//
// for every R in dom(U1) u dom(U2) (with slice(Ui)(R) defaulting to R).
// guard(Q, C) = pi[0..arity(Q)-1](Q x pi[0](C)) needs the arity of Q, hence
// the Schema parameter.

#include "ast/forward.h"
#include "common/result.h"
#include "hql/subst.h"
#include "storage/schema.h"

namespace hql {

/// slice(U). Queries inside `update` must be pure RA (reduce first if not);
/// returns TypeError/NotFound for schema violations in conditional guards.
Result<Substitution> Slice(const UpdatePtr& update, const Schema& schema);

/// guard(Q, C): equals Q when C is non-empty, empty otherwise. Exposed for
/// tests; `arity` is the arity of `query`.
QueryPtr GuardQuery(const QueryPtr& query, size_t arity, const QueryPtr& cond);

}  // namespace hql

#endif  // HQL_HQL_SLICE_H_
