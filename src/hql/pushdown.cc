#include "hql/pushdown.h"

#include "ast/hypo.h"
#include "ast/query.h"
#include "common/check.h"
#include "hql/enf.h"
#include "hql/rewrite_when.h"

namespace hql {

namespace {

// Pushes one `when` node (with an explicit-substitution state whose
// bindings are already pure RA) down to the leaves using only the Figure 1
// rules. `budget` counts remaining push levels (< 0: unbounded).
QueryPtr PushWhen(const QueryPtr& when_node, int budget) {
  HQL_CHECK(when_node->kind() == QueryKind::kWhen);

  // Leaf eliminations first.
  if (QueryPtr r = equiv::RelWhenSubst(when_node); r != nullptr) return r;
  if (QueryPtr r = equiv::SingletonWhen(when_node); r != nullptr) return r;
  if (QueryPtr r = equiv::EmptyWhen(when_node); r != nullptr) return r;
  // Binding removal / identity bindings / Q when {} == Q.
  if (QueryPtr r = equiv::SubstSimplify(when_node); r != nullptr) {
    if (r->kind() != QueryKind::kWhen) return r;  // fully eliminated
    return PushWhen(r, budget);  // fewer bindings; keep pushing
  }
  if (budget == 0) return when_node;  // leave the residual `when`

  // Nested when in the body: fold the two states into one (replace-
  // nested-when + compute-composition keep us in explicit form).
  if (when_node->left()->kind() == QueryKind::kWhen) {
    QueryPtr folded = equiv::ReplaceNestedWhen(when_node);
    HQL_CHECK(folded != nullptr);
    HypoExprPtr composed = equiv::ComputeComposition(folded->state());
    HQL_CHECK(composed != nullptr);
    return PushWhen(Query::When(folded->left(), composed), budget);
  }

  int next = budget < 0 ? -1 : budget - 1;
  if (QueryPtr r = equiv::PushWhenUnary(when_node); r != nullptr) {
    // r = u_op(child when eta): recurse into the new when child.
    QueryPtr pushed = PushWhen(r->left(), next);
    switch (r->kind()) {
      case QueryKind::kSelect:
        return Query::Select(r->predicate(), std::move(pushed));
      case QueryKind::kProject:
        return Query::Project(r->columns(), std::move(pushed));
      case QueryKind::kAggregate:
        return Query::Aggregate(r->columns(), r->agg_func(), r->agg_column(),
                                std::move(pushed));
      default:
        HQL_UNREACHABLE();
    }
  }
  if (QueryPtr r = equiv::PushWhenBinary(when_node); r != nullptr) {
    QueryPtr l = PushWhen(r->left(), next);
    QueryPtr rr = PushWhen(r->right(), next);
    switch (r->kind()) {
      case QueryKind::kUnion:
        return Query::Union(std::move(l), std::move(rr));
      case QueryKind::kIntersect:
        return Query::Intersect(std::move(l), std::move(rr));
      case QueryKind::kProduct:
        return Query::Product(std::move(l), std::move(rr));
      case QueryKind::kJoin:
        return Query::Join(r->predicate(), std::move(l), std::move(rr));
      case QueryKind::kDifference:
        return Query::Difference(std::move(l), std::move(rr));
      default:
        HQL_UNREACHABLE();
    }
  }
  return when_node;  // nothing applies (should not happen on ENF input)
}

// Bottom-up: push every `when` in the tree.
QueryPtr PushAll(const QueryPtr& q, int budget) {
  switch (q->kind()) {
    case QueryKind::kRel:
    case QueryKind::kEmpty:
    case QueryKind::kSingleton:
      return q;
    case QueryKind::kSelect:
      return Query::Select(q->predicate(), PushAll(q->left(), budget));
    case QueryKind::kProject:
      return Query::Project(q->columns(), PushAll(q->left(), budget));
    case QueryKind::kAggregate:
      return Query::Aggregate(q->columns(), q->agg_func(), q->agg_column(),
                              PushAll(q->left(), budget));
    case QueryKind::kUnion:
      return Query::Union(PushAll(q->left(), budget),
                          PushAll(q->right(), budget));
    case QueryKind::kIntersect:
      return Query::Intersect(PushAll(q->left(), budget),
                              PushAll(q->right(), budget));
    case QueryKind::kProduct:
      return Query::Product(PushAll(q->left(), budget),
                            PushAll(q->right(), budget));
    case QueryKind::kJoin:
      return Query::Join(q->predicate(), PushAll(q->left(), budget),
                         PushAll(q->right(), budget));
    case QueryKind::kDifference:
      return Query::Difference(PushAll(q->left(), budget),
                               PushAll(q->right(), budget));
    case QueryKind::kWhen: {
      // Push inside the body and the bindings first, then this node.
      QueryPtr body = PushAll(q->left(), budget);
      HQL_CHECK(q->state()->kind() == HypoKind::kSubst);
      std::vector<Binding> bindings;
      for (const Binding& b : q->state()->bindings()) {
        bindings.push_back(Binding{b.rel_name, PushAll(b.query, budget)});
      }
      return PushWhen(
          Query::When(std::move(body), HypoExpr::Subst(std::move(bindings))),
          budget);
    }
  }
  HQL_UNREACHABLE();
}

}  // namespace

Result<QueryPtr> PushdownReduce(const QueryPtr& query, const Schema& schema) {
  return PushdownPartial(query, schema, -1);
}

Result<QueryPtr> PushdownPartial(const QueryPtr& query, const Schema& schema,
                                 int max_push_depth) {
  HQL_CHECK(query != nullptr);
  HQL_ASSIGN_OR_RETURN(QueryPtr enf, ToEnf(query, schema));
  return PushAll(enf, max_push_depth);
}

}  // namespace hql
