#ifndef HQL_HQL_FREE_DOM_H_
#define HQL_HQL_FREE_DOM_H_

// The functions free(.) and dom(.) of the paper's Figure 2. They articulate
// the scoping rules of `when`:
//
//   free(Q)            all relation names in Q,                 Q in RA
//   free(Q when eta) = free(eta) u (free(Q) - dom(eta))
//   free(ins(R,Q))   = {R} u free(Q)      dom(ins(R,Q))   = {R}
//   free(del(R,Q))   = {R} u free(Q)      dom(del(R,Q))   = {R}
//   free((U1;U2))    = free(U1) u (free(U2) - dom(U1))
//                                         dom((U1;U2))    = dom(U1) u dom(U2)
//   free({Q1/R1,..}) = U free(Qi)         dom({Q1/R1,..}) = {R1,..}
//   free({U})        = free(U)            dom({U})        = dom(U)
//   free(e1 # e2)    = free(e1) u (free(e2) - dom(e1))
//                                         dom(e1 # e2)    = dom(e1) u dom(e2)
//   free(e1 when e2) = free(e2) u (free(e1) - dom(e2))
//                                         dom(e1 when e2) = dom(e1)
//
// DEVIATION FROM THE PAPER'S FIGURE 2 (as printed): the paper lists
// free(ins(R,Q)) = free(Q), omitting R. That reading is unsound: an atomic
// insert/delete *reads* the old value of its target (R := R u Q), so in
// free((U1;U2)) = free(U1) u (free(U2) - dom(U1)) the subtraction would
// shield a later read of R behind an earlier partial write, and binding
// removal ("Q when eps == Q when eps-R if R not free in Q") would then
// drop a binding the update still depends on. Our randomized soundness
// suite finds concrete counterexamples. Explicit-substitution bindings
// R := Q *do* fully redefine R, so the subtraction stays exact for them.
// We therefore use free(ins(R,Q)) = free(del(R,Q)) = {R} u free(Q).
//
// The conditional-update extension (Section 6) adds:
//   free(if Q then U1 else U2) = free(Q) u free(U1) u free(U2)
//   dom(if Q then U1 else U2)  = dom(U1) u dom(U2)
// (both branches' reads and writes are visible, since which branch runs is
// data-dependent).

#include <set>
#include <string>

#include "ast/forward.h"

namespace hql {

using NameSet = std::set<std::string>;

NameSet FreeNames(const QueryPtr& query);
NameSet FreeNames(const UpdatePtr& update);
NameSet FreeNames(const HypoExprPtr& state);

NameSet DomNames(const UpdatePtr& update);
NameSet DomNames(const HypoExprPtr& state);

/// Convenience: a intersect b is empty.
bool Disjoint(const NameSet& a, const NameSet& b);

}  // namespace hql

#endif  // HQL_HQL_FREE_DOM_H_
