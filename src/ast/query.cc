#include "ast/query.h"

#include "ast/hypo.h"
#include "ast/update.h"
#include "common/check.h"
#include "common/strings.h"

namespace hql {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRel:
      return "rel";
    case QueryKind::kEmpty:
      return "empty";
    case QueryKind::kSingleton:
      return "singleton";
    case QueryKind::kSelect:
      return "select";
    case QueryKind::kProject:
      return "project";
    case QueryKind::kUnion:
      return "union";
    case QueryKind::kIntersect:
      return "intersect";
    case QueryKind::kProduct:
      return "product";
    case QueryKind::kJoin:
      return "join";
    case QueryKind::kDifference:
      return "difference";
    case QueryKind::kAggregate:
      return "aggregate";
    case QueryKind::kWhen:
      return "when";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

QueryPtr Query::Rel(std::string name) {
  HQL_CHECK(!name.empty());
  std::shared_ptr<Query> q(new Query());
  q->kind_ = QueryKind::kRel;
  q->rel_name_ = std::move(name);
  return q;
}

QueryPtr Query::Empty(size_t arity) {
  HQL_CHECK(arity > 0);
  std::shared_ptr<Query> q(new Query());
  q->kind_ = QueryKind::kEmpty;
  q->empty_arity_ = arity;
  return q;
}

QueryPtr Query::Singleton(Tuple tuple) {
  HQL_CHECK(!tuple.empty());
  std::shared_ptr<Query> q(new Query());
  q->kind_ = QueryKind::kSingleton;
  q->tuple_ = std::move(tuple);
  return q;
}

QueryPtr Query::Select(ScalarExprPtr predicate, QueryPtr child) {
  HQL_CHECK(predicate != nullptr && child != nullptr);
  std::shared_ptr<Query> q(new Query());
  q->kind_ = QueryKind::kSelect;
  q->predicate_ = std::move(predicate);
  q->left_ = std::move(child);
  return q;
}

QueryPtr Query::Project(std::vector<size_t> columns, QueryPtr child) {
  HQL_CHECK(child != nullptr);
  HQL_CHECK_MSG(!columns.empty(), "projection needs at least one column");
  std::shared_ptr<Query> q(new Query());
  q->kind_ = QueryKind::kProject;
  q->columns_ = std::move(columns);
  q->left_ = std::move(child);
  return q;
}

QueryPtr Query::Union(QueryPtr lhs, QueryPtr rhs) {
  HQL_CHECK(lhs != nullptr && rhs != nullptr);
  std::shared_ptr<Query> q(new Query());
  q->kind_ = QueryKind::kUnion;
  q->left_ = std::move(lhs);
  q->right_ = std::move(rhs);
  return q;
}

QueryPtr Query::Intersect(QueryPtr lhs, QueryPtr rhs) {
  HQL_CHECK(lhs != nullptr && rhs != nullptr);
  std::shared_ptr<Query> q(new Query());
  q->kind_ = QueryKind::kIntersect;
  q->left_ = std::move(lhs);
  q->right_ = std::move(rhs);
  return q;
}

QueryPtr Query::Product(QueryPtr lhs, QueryPtr rhs) {
  HQL_CHECK(lhs != nullptr && rhs != nullptr);
  std::shared_ptr<Query> q(new Query());
  q->kind_ = QueryKind::kProduct;
  q->left_ = std::move(lhs);
  q->right_ = std::move(rhs);
  return q;
}

QueryPtr Query::Join(ScalarExprPtr predicate, QueryPtr lhs, QueryPtr rhs) {
  HQL_CHECK(predicate != nullptr && lhs != nullptr && rhs != nullptr);
  std::shared_ptr<Query> q(new Query());
  q->kind_ = QueryKind::kJoin;
  q->predicate_ = std::move(predicate);
  q->left_ = std::move(lhs);
  q->right_ = std::move(rhs);
  return q;
}

QueryPtr Query::Difference(QueryPtr lhs, QueryPtr rhs) {
  HQL_CHECK(lhs != nullptr && rhs != nullptr);
  std::shared_ptr<Query> q(new Query());
  q->kind_ = QueryKind::kDifference;
  q->left_ = std::move(lhs);
  q->right_ = std::move(rhs);
  return q;
}

QueryPtr Query::Aggregate(std::vector<size_t> group_columns, AggFunc func,
                          size_t agg_column, QueryPtr child) {
  HQL_CHECK(child != nullptr);
  std::shared_ptr<Query> q(new Query());
  q->kind_ = QueryKind::kAggregate;
  q->columns_ = std::move(group_columns);
  q->agg_func_ = func;
  q->agg_column_ = agg_column;
  q->left_ = std::move(child);
  return q;
}

QueryPtr Query::When(QueryPtr query, HypoExprPtr state) {
  HQL_CHECK(query != nullptr && state != nullptr);
  std::shared_ptr<Query> q(new Query());
  q->kind_ = QueryKind::kWhen;
  q->left_ = std::move(query);
  q->state_ = std::move(state);
  return q;
}

const std::string& Query::rel_name() const {
  HQL_CHECK(kind_ == QueryKind::kRel);
  return rel_name_;
}

size_t Query::empty_arity() const {
  HQL_CHECK(kind_ == QueryKind::kEmpty);
  return empty_arity_;
}

const Tuple& Query::tuple() const {
  HQL_CHECK(kind_ == QueryKind::kSingleton);
  return tuple_;
}

const ScalarExprPtr& Query::predicate() const {
  HQL_CHECK(kind_ == QueryKind::kSelect || kind_ == QueryKind::kJoin);
  return predicate_;
}

const std::vector<size_t>& Query::columns() const {
  HQL_CHECK(kind_ == QueryKind::kProject || kind_ == QueryKind::kAggregate);
  return columns_;
}

AggFunc Query::agg_func() const {
  HQL_CHECK(kind_ == QueryKind::kAggregate);
  return agg_func_;
}

size_t Query::agg_column() const {
  HQL_CHECK(kind_ == QueryKind::kAggregate);
  return agg_column_;
}

const QueryPtr& Query::left() const {
  HQL_CHECK(kind_ != QueryKind::kRel && kind_ != QueryKind::kSingleton &&
            kind_ != QueryKind::kEmpty);
  return left_;
}

const QueryPtr& Query::right() const {
  HQL_CHECK(is_binary_algebra());
  return right_;
}

const HypoExprPtr& Query::state() const {
  HQL_CHECK(kind_ == QueryKind::kWhen);
  return state_;
}

bool Query::Equals(const Query& other) const {
  if (this == &other) return true;
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case QueryKind::kRel:
      return rel_name_ == other.rel_name_;
    case QueryKind::kEmpty:
      return empty_arity_ == other.empty_arity_;
    case QueryKind::kSingleton:
      return CompareTuples(tuple_, other.tuple_) == 0;
    case QueryKind::kSelect:
      return predicate_->Equals(*other.predicate_) &&
             left_->Equals(*other.left_);
    case QueryKind::kProject:
      return columns_ == other.columns_ && left_->Equals(*other.left_);
    case QueryKind::kAggregate:
      return columns_ == other.columns_ && agg_func_ == other.agg_func_ &&
             agg_column_ == other.agg_column_ && left_->Equals(*other.left_);
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kDifference:
      return left_->Equals(*other.left_) && right_->Equals(*other.right_);
    case QueryKind::kJoin:
      return predicate_->Equals(*other.predicate_) &&
             left_->Equals(*other.left_) && right_->Equals(*other.right_);
    case QueryKind::kWhen:
      return left_->Equals(*other.left_) && state_->Equals(*other.state_);
  }
  HQL_UNREACHABLE();
}

uint64_t Query::Hash() const {
  uint64_t h = (static_cast<uint64_t>(kind_) + 17) * 0x9E3779B97F4A7C15ULL;
  switch (kind_) {
    case QueryKind::kRel:
      return HashCombine(h, HashString(rel_name_));
    case QueryKind::kEmpty:
      return HashCombine(h, empty_arity_ * 31 + 7);
    case QueryKind::kSingleton:
      return HashCombine(h, HashTuple(tuple_));
    case QueryKind::kSelect:
      return HashCombine(HashCombine(h, predicate_->Hash()), left_->Hash());
    case QueryKind::kProject: {
      for (size_t c : columns_) h = HashCombine(h, c);
      return HashCombine(h, left_->Hash());
    }
    case QueryKind::kAggregate: {
      for (size_t c : columns_) h = HashCombine(h, c);
      h = HashCombine(h, static_cast<uint64_t>(agg_func_) * 131 + 7);
      h = HashCombine(h, agg_column_);
      return HashCombine(h, left_->Hash());
    }
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kDifference:
      return HashCombine(HashCombine(h, left_->Hash()), right_->Hash());
    case QueryKind::kJoin:
      return HashCombine(
          HashCombine(HashCombine(h, predicate_->Hash()), left_->Hash()),
          right_->Hash());
    case QueryKind::kWhen:
      return HashCombine(HashCombine(h, left_->Hash()), state_->Hash());
  }
  HQL_UNREACHABLE();
}

uint64_t Query::Fingerprint() const {
  uint64_t cached = fingerprint_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  // Same mixing as Hash(), but recursing through Fingerprint() so shared
  // DAG subtrees are hashed once ever, not once per reachable path.
  uint64_t h = (static_cast<uint64_t>(kind_) + 17) * 0x9E3779B97F4A7C15ULL;
  switch (kind_) {
    case QueryKind::kRel:
      h = HashCombine(h, HashString(rel_name_));
      break;
    case QueryKind::kEmpty:
      h = HashCombine(h, empty_arity_ * 31 + 7);
      break;
    case QueryKind::kSingleton:
      h = HashCombine(h, HashTuple(tuple_));
      break;
    case QueryKind::kSelect:
      h = HashCombine(HashCombine(h, predicate_->Hash()),
                      left_->Fingerprint());
      break;
    case QueryKind::kProject:
      for (size_t c : columns_) h = HashCombine(h, c);
      h = HashCombine(h, left_->Fingerprint());
      break;
    case QueryKind::kAggregate:
      for (size_t c : columns_) h = HashCombine(h, c);
      h = HashCombine(h, static_cast<uint64_t>(agg_func_) * 131 + 7);
      h = HashCombine(h, agg_column_);
      h = HashCombine(h, left_->Fingerprint());
      break;
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kDifference:
      h = HashCombine(HashCombine(h, left_->Fingerprint()),
                      right_->Fingerprint());
      break;
    case QueryKind::kJoin:
      h = HashCombine(
          HashCombine(HashCombine(h, predicate_->Hash()),
                      left_->Fingerprint()),
          right_->Fingerprint());
      break;
    case QueryKind::kWhen:
      h = HashCombine(HashCombine(h, left_->Fingerprint()), state_->Hash());
      break;
  }
  if (h == 0) h = 1;
  fingerprint_.store(h, std::memory_order_relaxed);
  return h;
}

std::string Query::ToString() const {
  switch (kind_) {
    case QueryKind::kRel:
      return rel_name_;
    case QueryKind::kEmpty:
      return "empty[" + std::to_string(empty_arity_) + "]";
    case QueryKind::kSingleton:
      return "{" + TupleToString(tuple_) + "}";
    case QueryKind::kSelect:
      return "sigma[" + predicate_->ToString() + "](" + left_->ToString() +
             ")";
    case QueryKind::kProject: {
      std::vector<std::string> cols;
      cols.reserve(columns_.size());
      for (size_t c : columns_) cols.push_back(std::to_string(c));
      return "pi[" + hql::Join(cols, ",") + "](" + left_->ToString() + ")";
    }
    case QueryKind::kUnion:
      return "(" + left_->ToString() + " union " + right_->ToString() + ")";
    case QueryKind::kIntersect:
      return "(" + left_->ToString() + " isect " + right_->ToString() + ")";
    case QueryKind::kProduct:
      return "(" + left_->ToString() + " x " + right_->ToString() + ")";
    case QueryKind::kJoin:
      return "(" + left_->ToString() + " join[" + predicate_->ToString() +
             "] " + right_->ToString() + ")";
    case QueryKind::kDifference:
      return "(" + left_->ToString() + " - " + right_->ToString() + ")";
    case QueryKind::kAggregate: {
      std::vector<std::string> cols;
      cols.reserve(columns_.size());
      for (size_t c : columns_) cols.push_back(std::to_string(c));
      return "gamma[" + hql::Join(cols, ",") + "; " +
             AggFuncName(agg_func_) + "(" + std::to_string(agg_column_) +
             ")](" + left_->ToString() + ")";
    }
    case QueryKind::kWhen:
      return "(" + left_->ToString() + " when " + state_->ToString() + ")";
  }
  HQL_UNREACHABLE();
}

bool QueryEquals(const QueryPtr& a, const QueryPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->Equals(*b);
}

}  // namespace hql
