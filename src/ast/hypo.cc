#include "ast/hypo.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace hql {

HypoExprPtr HypoExpr::UpdateState(UpdatePtr update) {
  HQL_CHECK(update != nullptr);
  std::shared_ptr<HypoExpr> h(new HypoExpr());
  h->kind_ = HypoKind::kUpdateState;
  h->update_ = std::move(update);
  return h;
}

HypoExprPtr HypoExpr::Subst(std::vector<Binding> bindings) {
  for (const Binding& b : bindings) {
    HQL_CHECK_MSG(!b.rel_name.empty() && b.query != nullptr,
                  "malformed binding");
  }
  std::sort(bindings.begin(), bindings.end(),
            [](const Binding& a, const Binding& b) {
              return a.rel_name < b.rel_name;
            });
  for (size_t i = 1; i < bindings.size(); ++i) {
    HQL_CHECK_MSG(bindings[i - 1].rel_name != bindings[i].rel_name,
                  "duplicate relation in substitution");
  }
  std::shared_ptr<HypoExpr> h(new HypoExpr());
  h->kind_ = HypoKind::kSubst;
  h->bindings_ = std::move(bindings);
  return h;
}

HypoExprPtr HypoExpr::Compose(HypoExprPtr first, HypoExprPtr second) {
  HQL_CHECK(first != nullptr && second != nullptr);
  std::shared_ptr<HypoExpr> h(new HypoExpr());
  h->kind_ = HypoKind::kCompose;
  h->first_ = std::move(first);
  h->second_ = std::move(second);
  return h;
}

HypoExprPtr HypoExpr::StateWhen(HypoExprPtr state, HypoExprPtr context) {
  HQL_CHECK(state != nullptr && context != nullptr);
  std::shared_ptr<HypoExpr> h(new HypoExpr());
  h->kind_ = HypoKind::kStateWhen;
  h->first_ = std::move(state);
  h->second_ = std::move(context);
  return h;
}

const UpdatePtr& HypoExpr::update() const {
  HQL_CHECK(kind_ == HypoKind::kUpdateState);
  return update_;
}

const std::vector<Binding>& HypoExpr::bindings() const {
  HQL_CHECK(kind_ == HypoKind::kSubst);
  return bindings_;
}

const HypoExprPtr& HypoExpr::first() const {
  HQL_CHECK(kind_ == HypoKind::kCompose || kind_ == HypoKind::kStateWhen);
  return first_;
}

const HypoExprPtr& HypoExpr::second() const {
  HQL_CHECK(kind_ == HypoKind::kCompose || kind_ == HypoKind::kStateWhen);
  return second_;
}

QueryPtr HypoExpr::BindingFor(const std::string& name) const {
  HQL_CHECK(kind_ == HypoKind::kSubst);
  auto it = std::lower_bound(bindings_.begin(), bindings_.end(), name,
                             [](const Binding& b, const std::string& n) {
                               return b.rel_name < n;
                             });
  if (it != bindings_.end() && it->rel_name == name) return it->query;
  return nullptr;
}

bool HypoExpr::Equals(const HypoExpr& other) const {
  if (this == &other) return true;
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case HypoKind::kUpdateState:
      return update_->Equals(*other.update_);
    case HypoKind::kSubst: {
      if (bindings_.size() != other.bindings_.size()) return false;
      for (size_t i = 0; i < bindings_.size(); ++i) {
        if (bindings_[i].rel_name != other.bindings_[i].rel_name) return false;
        if (!bindings_[i].query->Equals(*other.bindings_[i].query)) {
          return false;
        }
      }
      return true;
    }
    case HypoKind::kCompose:
    case HypoKind::kStateWhen:
      return first_->Equals(*other.first_) && second_->Equals(*other.second_);
  }
  HQL_UNREACHABLE();
}

uint64_t HypoExpr::Hash() const {
  uint64_t h = (static_cast<uint64_t>(kind_) + 51) * 0x94D049BB133111EBULL;
  switch (kind_) {
    case HypoKind::kUpdateState:
      return HashCombine(h, update_->Hash());
    case HypoKind::kSubst:
      for (const Binding& b : bindings_) {
        h = HashCombine(h, HashString(b.rel_name));
        h = HashCombine(h, b.query->Hash());
      }
      return h;
    case HypoKind::kCompose:
    case HypoKind::kStateWhen:
      return HashCombine(HashCombine(h, first_->Hash()), second_->Hash());
  }
  HQL_UNREACHABLE();
}

std::string HypoExpr::ToString() const {
  switch (kind_) {
    case HypoKind::kUpdateState:
      return "{" + update_->ToString() + "}";
    case HypoKind::kSubst: {
      std::vector<std::string> parts;
      parts.reserve(bindings_.size());
      for (const Binding& b : bindings_) {
        parts.push_back(b.query->ToString() + "/" + b.rel_name);
      }
      return "{" + Join(parts, ", ") + "}";
    }
    case HypoKind::kCompose:
      return "(" + first_->ToString() + " # " + second_->ToString() + ")";
    case HypoKind::kStateWhen:
      return "(" + first_->ToString() + " when " + second_->ToString() + ")";
  }
  HQL_UNREACHABLE();
}

bool HypoEquals(const HypoExprPtr& a, const HypoExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->Equals(*b);
}

}  // namespace hql
