#ifndef HQL_AST_BUILDERS_H_
#define HQL_AST_BUILDERS_H_

// Terse builder functions for assembling HQL ASTs in C++ (used pervasively
// by tests, benchmarks and examples). All helpers live in namespace
// hql::dsl so call sites can `using namespace hql::dsl;` locally.
//
//   using namespace hql::dsl;
//   auto q = When(Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S")),
//                 Upd(Ins("R", Sel(Gt(Col(0), Int(30)), Rel("S")))));

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ast/hypo.h"
#include "ast/query.h"
#include "ast/scalar_expr.h"
#include "ast/update.h"
#include "storage/value.h"

namespace hql::dsl {

// ---- scalar expressions ----

inline ScalarExprPtr Col(size_t i) { return ScalarExpr::Column(i); }
inline ScalarExprPtr Int(int64_t v) {
  return ScalarExpr::Literal(Value::Int(v));
}
inline ScalarExprPtr Dbl(double v) {
  return ScalarExpr::Literal(Value::Double(v));
}
inline ScalarExprPtr Str(std::string s) {
  return ScalarExpr::Literal(Value::Str(std::move(s)));
}
inline ScalarExprPtr Bool(bool b) {
  return ScalarExpr::Literal(Value::Bool(b));
}

inline ScalarExprPtr Eq(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Binary(ScalarOp::kEq, std::move(a), std::move(b));
}
inline ScalarExprPtr Ne(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Binary(ScalarOp::kNe, std::move(a), std::move(b));
}
inline ScalarExprPtr Lt(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Binary(ScalarOp::kLt, std::move(a), std::move(b));
}
inline ScalarExprPtr Le(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Binary(ScalarOp::kLe, std::move(a), std::move(b));
}
inline ScalarExprPtr Gt(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Binary(ScalarOp::kGt, std::move(a), std::move(b));
}
inline ScalarExprPtr Ge(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Binary(ScalarOp::kGe, std::move(a), std::move(b));
}
inline ScalarExprPtr And(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Binary(ScalarOp::kAnd, std::move(a), std::move(b));
}
inline ScalarExprPtr Or(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Binary(ScalarOp::kOr, std::move(a), std::move(b));
}
inline ScalarExprPtr Not(ScalarExprPtr a) {
  return ScalarExpr::Unary(ScalarOp::kNot, std::move(a));
}
inline ScalarExprPtr Add(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Binary(ScalarOp::kAdd, std::move(a), std::move(b));
}
inline ScalarExprPtr Sub(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Binary(ScalarOp::kSub, std::move(a), std::move(b));
}
inline ScalarExprPtr Mul(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Binary(ScalarOp::kMul, std::move(a), std::move(b));
}

// ---- queries ----

inline QueryPtr Rel(std::string name) { return Query::Rel(std::move(name)); }
inline QueryPtr Empty(size_t arity) { return Query::Empty(arity); }
inline QueryPtr Single(Tuple t) { return Query::Singleton(std::move(t)); }
inline QueryPtr Sel(ScalarExprPtr p, QueryPtr q) {
  return Query::Select(std::move(p), std::move(q));
}
inline QueryPtr Proj(std::vector<size_t> cols, QueryPtr q) {
  return Query::Project(std::move(cols), std::move(q));
}
inline QueryPtr U(QueryPtr a, QueryPtr b) {
  return Query::Union(std::move(a), std::move(b));
}
inline QueryPtr N(QueryPtr a, QueryPtr b) {
  return Query::Intersect(std::move(a), std::move(b));
}
inline QueryPtr X(QueryPtr a, QueryPtr b) {
  return Query::Product(std::move(a), std::move(b));
}
inline QueryPtr Join(ScalarExprPtr p, QueryPtr a, QueryPtr b) {
  return Query::Join(std::move(p), std::move(a), std::move(b));
}
inline QueryPtr Diff(QueryPtr a, QueryPtr b) {
  return Query::Difference(std::move(a), std::move(b));
}
inline QueryPtr When(QueryPtr q, HypoExprPtr h) {
  return Query::When(std::move(q), std::move(h));
}
/// gamma[cols; func(agg_col)](q).
inline QueryPtr Agg(std::vector<size_t> cols, AggFunc func, size_t agg_col,
                    QueryPtr q) {
  return Query::Aggregate(std::move(cols), func, agg_col, std::move(q));
}

// ---- updates ----

inline UpdatePtr Ins(std::string rel, QueryPtr q) {
  return Update::Insert(std::move(rel), std::move(q));
}
inline UpdatePtr Del(std::string rel, QueryPtr q) {
  return Update::Delete(std::move(rel), std::move(q));
}
inline UpdatePtr Seq(UpdatePtr a, UpdatePtr b) {
  return Update::Seq(std::move(a), std::move(b));
}
/// Right-nested sequence of three or more updates.
inline UpdatePtr Seq(UpdatePtr a, UpdatePtr b, UpdatePtr c) {
  return Seq(std::move(a), Seq(std::move(b), std::move(c)));
}
inline UpdatePtr If(QueryPtr guard, UpdatePtr t, UpdatePtr e) {
  return Update::Cond(std::move(guard), std::move(t), std::move(e));
}

// ---- hypothetical states ----

/// {U}.
inline HypoExprPtr Upd(UpdatePtr u) {
  return HypoExpr::UpdateState(std::move(u));
}
/// Explicit substitution from (query, name) bindings.
inline HypoExprPtr Sub(std::vector<Binding> bindings) {
  return HypoExpr::Subst(std::move(bindings));
}
/// One-binding substitution {Q/R}.
inline HypoExprPtr Sub1(QueryPtr q, std::string rel) {
  return HypoExpr::Subst({Binding{std::move(rel), std::move(q)}});
}
inline HypoExprPtr Comp(HypoExprPtr a, HypoExprPtr b) {
  return HypoExpr::Compose(std::move(a), std::move(b));
}

// ---- tuples ----

inline Tuple Row(std::initializer_list<Value> values) {
  return Tuple(values);
}
inline Value IntV(int64_t v) { return Value::Int(v); }
inline Value StrV(std::string s) { return Value::Str(std::move(s)); }

}  // namespace hql::dsl

#endif  // HQL_AST_BUILDERS_H_
