#ifndef HQL_AST_QUERY_H_
#define HQL_AST_QUERY_H_

// Queries of RA_hyp (paper Sections 3.1 and 4.1): the relational algebra
//
//   Q ::= R | {t} | sigma_p(Q) | pi_X(Q) | Q u Q | Q n Q | Q x Q
//       | Q join_p Q | Q - Q
//
// extended with hypothetical queries `Q when eta` at any nesting level,
// where `eta` is a hypothetical-state expression (ast/hypo.h).
//
// Query nodes are immutable and shared (shared_ptr<const Query>); rewrites
// build new DAGs over existing subtrees. This sharing is what makes the
// Example 2.4 distinction between DAG size (linear) and tree size
// (exponential) observable.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "ast/forward.h"
#include "ast/scalar_expr.h"
#include "storage/tuple.h"

namespace hql {

enum class QueryKind : uint8_t {
  kRel,         // base relation name
  kEmpty,       // the empty query (of a fixed arity); not in the paper's
                // grammar but used by it ("the empty query" of Examples
                // 2.1(b) and 2.4(b)) and produced by the RA rewriter
  kSingleton,   // {t}
  kSelect,      // sigma_p(Q)
  kProject,     // pi_X(Q), X a list of column indices (may repeat/reorder)
  kUnion,       // Q u Q
  kIntersect,   // Q n Q
  kProduct,     // Q x Q
  kJoin,        // Q join_p Q  (theta join: sigma_p(Q x Q))
  kDifference,  // Q - Q
  kAggregate,   // gamma[G; f(c)](Q): group by columns G, aggregate f on c
                // (the bags-and-aggregation extension of Section 6)
  kWhen,        // Q when eta
};

/// Aggregate functions for kAggregate. Aggregation is over set semantics:
/// count counts distinct tuples per group.
enum class AggFunc : uint8_t {
  kCount,
  kSum,
  kMin,
  kMax,
};

const char* AggFuncName(AggFunc func);

/// Short stable name, e.g. "select", "when".
const char* QueryKindName(QueryKind kind);

class Query {
 public:
  static QueryPtr Rel(std::string name);
  /// The empty query of the given arity ("empty[k]" in textual syntax).
  static QueryPtr Empty(size_t arity);
  static QueryPtr Singleton(Tuple tuple);
  static QueryPtr Select(ScalarExprPtr predicate, QueryPtr child);
  static QueryPtr Project(std::vector<size_t> columns, QueryPtr child);
  static QueryPtr Union(QueryPtr lhs, QueryPtr rhs);
  static QueryPtr Intersect(QueryPtr lhs, QueryPtr rhs);
  static QueryPtr Product(QueryPtr lhs, QueryPtr rhs);
  static QueryPtr Join(ScalarExprPtr predicate, QueryPtr lhs, QueryPtr rhs);
  static QueryPtr Difference(QueryPtr lhs, QueryPtr rhs);
  /// gamma[group_columns; func(agg_column)](child). The result has arity
  /// group_columns.size() + 1 (the aggregate is the last column); an empty
  /// group list computes one global aggregate row (none for empty input).
  static QueryPtr Aggregate(std::vector<size_t> group_columns, AggFunc func,
                            size_t agg_column, QueryPtr child);
  static QueryPtr When(QueryPtr query, HypoExprPtr state);

  QueryKind kind() const { return kind_; }
  bool is_unary() const {
    return kind_ == QueryKind::kSelect || kind_ == QueryKind::kProject ||
           kind_ == QueryKind::kAggregate;
  }
  bool is_binary_algebra() const {
    switch (kind_) {
      case QueryKind::kUnion:
      case QueryKind::kIntersect:
      case QueryKind::kProduct:
      case QueryKind::kJoin:
      case QueryKind::kDifference:
        return true;
      default:
        return false;
    }
  }

  /// kRel only.
  const std::string& rel_name() const;
  /// kEmpty only.
  size_t empty_arity() const;
  /// kSingleton only.
  const Tuple& tuple() const;
  /// kSelect / kJoin only.
  const ScalarExprPtr& predicate() const;
  /// kProject / kAggregate only (the grouping columns for aggregates).
  const std::vector<size_t>& columns() const;
  /// kAggregate only.
  AggFunc agg_func() const;
  size_t agg_column() const;
  /// Unary operators and kWhen: the query operand. Binary: left operand.
  const QueryPtr& left() const;
  /// Binary operators: right operand.
  const QueryPtr& right() const;
  /// kWhen only: the hypothetical-state expression.
  const HypoExprPtr& state() const;

  /// Structural equality (deep, includes states and updates).
  bool Equals(const Query& other) const;
  uint64_t Hash() const;

  /// Structural fingerprint for memoization (eval/memo.h): structurally
  /// equal queries have equal fingerprints, and the value is cached per
  /// node — O(1) after first use, including on shared DAG subtrees. Nodes
  /// are immutable, so the cache never goes stale; safe to call
  /// concurrently. Never returns 0 (0 is the "unset" sentinel).
  uint64_t Fingerprint() const;

  /// Textual form in the parser's grammar, e.g.
  ///   "sigma[$0 > 30](R join[$0 = $2] S) when {ins(R, S); del(S, R)}".
  std::string ToString() const;

 private:
  Query() = default;

  QueryKind kind_ = QueryKind::kRel;
  std::string rel_name_;
  size_t empty_arity_ = 0;
  Tuple tuple_;
  ScalarExprPtr predicate_;
  std::vector<size_t> columns_;
  AggFunc agg_func_ = AggFunc::kCount;
  size_t agg_column_ = 0;
  QueryPtr left_;
  QueryPtr right_;
  HypoExprPtr state_;

  mutable std::atomic<uint64_t> fingerprint_{0};  // 0 = not yet computed
};

/// Null-tolerant deep equality.
bool QueryEquals(const QueryPtr& a, const QueryPtr& b);

}  // namespace hql

#endif  // HQL_AST_QUERY_H_
