#ifndef HQL_AST_METRICS_H_
#define HQL_AST_METRICS_H_

// Size and shape metrics on query DAGs. Two size notions matter for the
// Example 2.4 blow-up analysis:
//   * TreeSize: the size of the fully expanded expression tree (what a
//     textual query would occupy) — exponential for the E_i(R_i) = R_i x R_i
//     chain. Computed with memoization and returned as a double because it
//     overflows 64 bits quickly.
//   * DagSize: the number of distinct nodes, counting shared subtrees once.

#include <cstdint>
#include <string>

#include "ast/forward.h"

namespace hql {

/// Expanded-tree node count (query/update/state nodes; scalar expressions
/// count as part of their owning node).
double TreeSize(const QueryPtr& query);

/// Distinct-node count of the DAG.
uint64_t DagSize(const QueryPtr& query);

/// Maximum nesting depth of `when` (0 for a pure RA query).
size_t WhenDepth(const QueryPtr& query);

/// Number of occurrences of the base-relation name `name` in the expanded
/// tree of `query` (memoized; used by the hybrid planner to decide whether
/// substitution would duplicate work).
double CountRelOccurrences(const QueryPtr& query, const std::string& name);

/// True if the query contains no `when` anywhere (i.e. it is a pure RA
/// query, the target of Theorem 4.1's reduction).
bool IsPureRelAlg(const QueryPtr& query);

}  // namespace hql

#endif  // HQL_AST_METRICS_H_
