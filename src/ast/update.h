#ifndef HQL_AST_UPDATE_H_
#define HQL_AST_UPDATE_H_

// The update language of paper Section 3.1:
//
//   U ::= ins(R, Q) | del(R, Q) | (U ; U)
//
// plus the conditional-update extension sketched in Section 6:
//
//   U ::= ... | if Q then U else U
//
// (`if` executes its then-branch when the guard query is non-empty). The
// conditional does not add expressive power — hql/slice.cc compiles it away
// using a boolean-as-relation encoding — but it makes update programs far
// more concise, exactly as the paper argues.

#include <cstdint>
#include <string>

#include "ast/forward.h"
#include "ast/query.h"

namespace hql {

enum class UpdateKind : uint8_t {
  kInsert,  // ins(R, Q): R <- R u Q
  kDelete,  // del(R, Q): R <- R - Q
  kSeq,     // (U1 ; U2)
  kCond,    // if Q then U1 else U2
};

const char* UpdateKindName(UpdateKind kind);

class Update {
 public:
  static UpdatePtr Insert(std::string rel, QueryPtr query);
  static UpdatePtr Delete(std::string rel, QueryPtr query);
  static UpdatePtr Seq(UpdatePtr first, UpdatePtr second);
  static UpdatePtr Cond(QueryPtr guard, UpdatePtr then_branch,
                        UpdatePtr else_branch);

  UpdateKind kind() const { return kind_; }

  /// kInsert / kDelete only.
  const std::string& rel_name() const;
  /// kInsert / kDelete only.
  const QueryPtr& query() const;
  /// kSeq only.
  const UpdatePtr& first() const;
  const UpdatePtr& second() const;
  /// kCond only.
  const QueryPtr& guard() const;
  const UpdatePtr& then_branch() const;
  const UpdatePtr& else_branch() const;

  /// True if this update is a sequence of atomic ins/del only (the shape
  /// required by mod-ENF, Section 5.5).
  bool IsAtomicSequence() const;

  bool Equals(const Update& other) const;
  uint64_t Hash() const;
  std::string ToString() const;

 private:
  Update() = default;

  UpdateKind kind_ = UpdateKind::kInsert;
  std::string rel_name_;
  QueryPtr query_;
  UpdatePtr first_;
  UpdatePtr second_;
};

bool UpdateEquals(const UpdatePtr& a, const UpdatePtr& b);

}  // namespace hql

#endif  // HQL_AST_UPDATE_H_
