#include "ast/metrics.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "ast/hypo.h"
#include "ast/query.h"
#include "ast/update.h"
#include "common/check.h"

namespace hql {

namespace {

// All four walkers share the same traversal over the Query / HypoExpr /
// Update mutual recursion; each defines a small visitor.

struct TreeSizer {
  std::unordered_map<const Query*, double> query_memo;
  std::unordered_map<const HypoExpr*, double> hypo_memo;
  std::unordered_map<const Update*, double> update_memo;

  double Size(const QueryPtr& q) {
    auto it = query_memo.find(q.get());
    if (it != query_memo.end()) return it->second;
    double s = 1;
    switch (q->kind()) {
      case QueryKind::kRel:
      case QueryKind::kEmpty:
      case QueryKind::kSingleton:
        break;
      case QueryKind::kSelect:
      case QueryKind::kProject:
      case QueryKind::kAggregate:
        s += Size(q->left());
        break;
      case QueryKind::kUnion:
      case QueryKind::kIntersect:
      case QueryKind::kProduct:
      case QueryKind::kJoin:
      case QueryKind::kDifference:
        s += Size(q->left()) + Size(q->right());
        break;
      case QueryKind::kWhen:
        s += Size(q->left()) + Size(q->state());
        break;
    }
    query_memo[q.get()] = s;
    return s;
  }

  double Size(const HypoExprPtr& h) {
    auto it = hypo_memo.find(h.get());
    if (it != hypo_memo.end()) return it->second;
    double s = 1;
    switch (h->kind()) {
      case HypoKind::kUpdateState:
        s += Size(h->update());
        break;
      case HypoKind::kSubst:
        for (const Binding& b : h->bindings()) s += Size(b.query);
        break;
      case HypoKind::kCompose:
      case HypoKind::kStateWhen:
        s += Size(h->first()) + Size(h->second());
        break;
    }
    hypo_memo[h.get()] = s;
    return s;
  }

  double Size(const UpdatePtr& u) {
    auto it = update_memo.find(u.get());
    if (it != update_memo.end()) return it->second;
    double s = 1;
    switch (u->kind()) {
      case UpdateKind::kInsert:
      case UpdateKind::kDelete:
        s += Size(u->query());
        break;
      case UpdateKind::kSeq:
        s += Size(u->first()) + Size(u->second());
        break;
      case UpdateKind::kCond:
        s += Size(u->guard()) + Size(u->then_branch()) +
             Size(u->else_branch());
        break;
    }
    update_memo[u.get()] = s;
    return s;
  }
};

struct DagWalker {
  std::unordered_set<const void*> seen;
  uint64_t count = 0;

  void Visit(const QueryPtr& q) {
    if (!seen.insert(q.get()).second) return;
    ++count;
    switch (q->kind()) {
      case QueryKind::kRel:
      case QueryKind::kEmpty:
      case QueryKind::kSingleton:
        return;
      case QueryKind::kSelect:
      case QueryKind::kProject:
      case QueryKind::kAggregate:
        Visit(q->left());
        return;
      case QueryKind::kUnion:
      case QueryKind::kIntersect:
      case QueryKind::kProduct:
      case QueryKind::kJoin:
      case QueryKind::kDifference:
        Visit(q->left());
        Visit(q->right());
        return;
      case QueryKind::kWhen:
        Visit(q->left());
        Visit(q->state());
        return;
    }
  }

  void Visit(const HypoExprPtr& h) {
    if (!seen.insert(h.get()).second) return;
    ++count;
    switch (h->kind()) {
      case HypoKind::kUpdateState:
        Visit(h->update());
        return;
      case HypoKind::kSubst:
        for (const Binding& b : h->bindings()) Visit(b.query);
        return;
      case HypoKind::kCompose:
      case HypoKind::kStateWhen:
        Visit(h->first());
        Visit(h->second());
        return;
    }
  }

  void Visit(const UpdatePtr& u) {
    if (!seen.insert(u.get()).second) return;
    ++count;
    switch (u->kind()) {
      case UpdateKind::kInsert:
      case UpdateKind::kDelete:
        Visit(u->query());
        return;
      case UpdateKind::kSeq:
        Visit(u->first());
        Visit(u->second());
        return;
      case UpdateKind::kCond:
        Visit(u->guard());
        Visit(u->then_branch());
        Visit(u->else_branch());
        return;
    }
  }
};

struct Occurrences {
  const std::string& name;
  std::unordered_map<const void*, double> memo;

  explicit Occurrences(const std::string& n) : name(n) {}

  double Count(const QueryPtr& q) {
    auto it = memo.find(q.get());
    if (it != memo.end()) return it->second;
    double s = 0;
    switch (q->kind()) {
      case QueryKind::kRel:
        s = (q->rel_name() == name) ? 1 : 0;
        break;
      case QueryKind::kEmpty:
      case QueryKind::kSingleton:
        break;
      case QueryKind::kSelect:
      case QueryKind::kProject:
      case QueryKind::kAggregate:
        s = Count(q->left());
        break;
      case QueryKind::kUnion:
      case QueryKind::kIntersect:
      case QueryKind::kProduct:
      case QueryKind::kJoin:
      case QueryKind::kDifference:
        s = Count(q->left()) + Count(q->right());
        break;
      case QueryKind::kWhen:
        s = Count(q->left()) + Count(q->state());
        break;
    }
    memo[q.get()] = s;
    return s;
  }

  double Count(const HypoExprPtr& h) {
    auto it = memo.find(h.get());
    if (it != memo.end()) return it->second;
    double s = 0;
    switch (h->kind()) {
      case HypoKind::kUpdateState:
        s = Count(h->update());
        break;
      case HypoKind::kSubst:
        for (const Binding& b : h->bindings()) s += Count(b.query);
        break;
      case HypoKind::kCompose:
      case HypoKind::kStateWhen:
        s = Count(h->first()) + Count(h->second());
        break;
    }
    memo[h.get()] = s;
    return s;
  }

  double Count(const UpdatePtr& u) {
    auto it = memo.find(u.get());
    if (it != memo.end()) return it->second;
    double s = 0;
    switch (u->kind()) {
      case UpdateKind::kInsert:
      case UpdateKind::kDelete:
        s = Count(u->query());
        break;
      case UpdateKind::kSeq:
        s = Count(u->first()) + Count(u->second());
        break;
      case UpdateKind::kCond:
        s = Count(u->guard()) + Count(u->then_branch()) +
            Count(u->else_branch());
        break;
    }
    memo[u.get()] = s;
    return s;
  }
};

size_t WhenDepthQuery(const QueryPtr& q);

size_t WhenDepthUpdate(const UpdatePtr& u) {
  switch (u->kind()) {
    case UpdateKind::kInsert:
    case UpdateKind::kDelete:
      return WhenDepthQuery(u->query());
    case UpdateKind::kSeq: {
      size_t a = WhenDepthUpdate(u->first());
      size_t b = WhenDepthUpdate(u->second());
      return a > b ? a : b;
    }
    case UpdateKind::kCond: {
      size_t a = WhenDepthQuery(u->guard());
      size_t b = WhenDepthUpdate(u->then_branch());
      size_t c = WhenDepthUpdate(u->else_branch());
      return std::max(a, std::max(b, c));
    }
  }
  HQL_UNREACHABLE();
}

size_t WhenDepthHypo(const HypoExprPtr& h) {
  switch (h->kind()) {
    case HypoKind::kUpdateState:
      return WhenDepthUpdate(h->update());
    case HypoKind::kSubst: {
      size_t m = 0;
      for (const Binding& b : h->bindings()) {
        m = std::max(m, WhenDepthQuery(b.query));
      }
      return m;
    }
    case HypoKind::kCompose:
      return std::max(WhenDepthHypo(h->first()), WhenDepthHypo(h->second()));
    case HypoKind::kStateWhen:
      return 1 + std::max(WhenDepthHypo(h->first()),
                          WhenDepthHypo(h->second()));
  }
  HQL_UNREACHABLE();
}

size_t WhenDepthQuery(const QueryPtr& q) {
  switch (q->kind()) {
    case QueryKind::kRel:
    case QueryKind::kEmpty:
    case QueryKind::kSingleton:
      return 0;
    case QueryKind::kSelect:
    case QueryKind::kProject:
    case QueryKind::kAggregate:
      return WhenDepthQuery(q->left());
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kJoin:
    case QueryKind::kDifference:
      return std::max(WhenDepthQuery(q->left()), WhenDepthQuery(q->right()));
    case QueryKind::kWhen:
      return std::max(1 + WhenDepthHypo(q->state()),
                      WhenDepthQuery(q->left()) + 1);
  }
  HQL_UNREACHABLE();
}

bool PureQuery(const QueryPtr& q) {
  switch (q->kind()) {
    case QueryKind::kRel:
    case QueryKind::kEmpty:
    case QueryKind::kSingleton:
      return true;
    case QueryKind::kSelect:
    case QueryKind::kProject:
    case QueryKind::kAggregate:
      return PureQuery(q->left());
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kJoin:
    case QueryKind::kDifference:
      return PureQuery(q->left()) && PureQuery(q->right());
    case QueryKind::kWhen:
      return false;
  }
  HQL_UNREACHABLE();
}

}  // namespace

double TreeSize(const QueryPtr& query) {
  TreeSizer sizer;
  return sizer.Size(query);
}

uint64_t DagSize(const QueryPtr& query) {
  DagWalker walker;
  walker.Visit(query);
  return walker.count;
}

size_t WhenDepth(const QueryPtr& query) { return WhenDepthQuery(query); }

double CountRelOccurrences(const QueryPtr& query, const std::string& name) {
  Occurrences occ(name);
  return occ.Count(query);
}

bool IsPureRelAlg(const QueryPtr& query) { return PureQuery(query); }

}  // namespace hql
