#include "ast/scalar_expr.h"

#include "common/check.h"
#include "common/strings.h"

namespace hql {

const char* ScalarOpName(ScalarOp op) {
  switch (op) {
    case ScalarOp::kAdd:
      return "+";
    case ScalarOp::kSub:
      return "-";
    case ScalarOp::kMul:
      return "*";
    case ScalarOp::kDiv:
      return "/";
    case ScalarOp::kMod:
      return "%";
    case ScalarOp::kEq:
      return "=";
    case ScalarOp::kNe:
      return "!=";
    case ScalarOp::kLt:
      return "<";
    case ScalarOp::kLe:
      return "<=";
    case ScalarOp::kGt:
      return ">";
    case ScalarOp::kGe:
      return ">=";
    case ScalarOp::kAnd:
      return "and";
    case ScalarOp::kOr:
      return "or";
    case ScalarOp::kNot:
      return "not";
    case ScalarOp::kNeg:
      return "-";
  }
  return "?";
}

ScalarExprPtr ScalarExpr::Column(size_t index) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ScalarKind::kColumn;
  e->column_ = index;
  return e;
}

ScalarExprPtr ScalarExpr::Literal(Value v) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ScalarKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ScalarExprPtr ScalarExpr::Unary(ScalarOp op, ScalarExprPtr operand) {
  HQL_CHECK(op == ScalarOp::kNot || op == ScalarOp::kNeg);
  HQL_CHECK(operand != nullptr);
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ScalarKind::kUnary;
  e->op_ = op;
  e->lhs_ = std::move(operand);
  return e;
}

ScalarExprPtr ScalarExpr::Binary(ScalarOp op, ScalarExprPtr lhs,
                                 ScalarExprPtr rhs) {
  HQL_CHECK(op != ScalarOp::kNot && op != ScalarOp::kNeg);
  HQL_CHECK(lhs != nullptr && rhs != nullptr);
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = ScalarKind::kBinary;
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

namespace {

Value EvalArith(ScalarOp op, const Value& a, const Value& b) {
  if (!a.is_number() || !b.is_number()) return Value::Nul();
  if (a.is_int() && b.is_int()) {
    int64_t x = a.AsInt(), y = b.AsInt();
    switch (op) {
      case ScalarOp::kAdd:
        return Value::Int(x + y);
      case ScalarOp::kSub:
        return Value::Int(x - y);
      case ScalarOp::kMul:
        return Value::Int(x * y);
      case ScalarOp::kDiv:
        return y == 0 ? Value::Nul() : Value::Int(x / y);
      case ScalarOp::kMod:
        return y == 0 ? Value::Nul() : Value::Int(x % y);
      default:
        HQL_UNREACHABLE();
    }
  }
  double x = a.AsDouble(), y = b.AsDouble();
  switch (op) {
    case ScalarOp::kAdd:
      return Value::Double(x + y);
    case ScalarOp::kSub:
      return Value::Double(x - y);
    case ScalarOp::kMul:
      return Value::Double(x * y);
    case ScalarOp::kDiv:
      return y == 0.0 ? Value::Nul() : Value::Double(x / y);
    case ScalarOp::kMod:
      return Value::Nul();
    default:
      HQL_UNREACHABLE();
  }
}

bool Truthy(const Value& v) { return v.is_bool() && v.AsBool(); }

}  // namespace

Value ScalarExpr::Evaluate(const Tuple& tuple) const {
  switch (kind_) {
    case ScalarKind::kColumn:
      if (column_ >= tuple.size()) return Value::Nul();
      return tuple[column_];
    case ScalarKind::kLiteral:
      return literal_;
    case ScalarKind::kUnary: {
      Value v = lhs_->Evaluate(tuple);
      if (op_ == ScalarOp::kNot) return Value::Bool(!Truthy(v));
      // kNeg
      if (v.is_int()) return Value::Int(-v.AsInt());
      if (v.is_double()) return Value::Double(-v.AsDouble());
      return Value::Nul();
    }
    case ScalarKind::kBinary: {
      // Short-circuit the connectives.
      if (op_ == ScalarOp::kAnd) {
        if (!Truthy(lhs_->Evaluate(tuple))) return Value::Bool(false);
        return Value::Bool(Truthy(rhs_->Evaluate(tuple)));
      }
      if (op_ == ScalarOp::kOr) {
        if (Truthy(lhs_->Evaluate(tuple))) return Value::Bool(true);
        return Value::Bool(Truthy(rhs_->Evaluate(tuple)));
      }
      Value a = lhs_->Evaluate(tuple);
      Value b = rhs_->Evaluate(tuple);
      switch (op_) {
        case ScalarOp::kAdd:
        case ScalarOp::kSub:
        case ScalarOp::kMul:
        case ScalarOp::kDiv:
        case ScalarOp::kMod:
          return EvalArith(op_, a, b);
        case ScalarOp::kEq:
          return Value::Bool(a.Compare(b) == 0);
        case ScalarOp::kNe:
          return Value::Bool(a.Compare(b) != 0);
        case ScalarOp::kLt:
          return Value::Bool(a.Compare(b) < 0);
        case ScalarOp::kLe:
          return Value::Bool(a.Compare(b) <= 0);
        case ScalarOp::kGt:
          return Value::Bool(a.Compare(b) > 0);
        case ScalarOp::kGe:
          return Value::Bool(a.Compare(b) >= 0);
        default:
          HQL_UNREACHABLE();
      }
    }
  }
  HQL_UNREACHABLE();
}

bool ScalarExpr::EvaluatesTrue(const Tuple& tuple) const {
  return Truthy(Evaluate(tuple));
}

size_t ScalarExpr::MinArity() const {
  switch (kind_) {
    case ScalarKind::kColumn:
      return column_ + 1;
    case ScalarKind::kLiteral:
      return 0;
    case ScalarKind::kUnary:
      return lhs_->MinArity();
    case ScalarKind::kBinary: {
      size_t a = lhs_->MinArity();
      size_t b = rhs_->MinArity();
      return a > b ? a : b;
    }
  }
  HQL_UNREACHABLE();
}

ScalarExprPtr ScalarExpr::ShiftColumns(size_t amount) const {
  switch (kind_) {
    case ScalarKind::kColumn:
      return Column(column_ + amount);
    case ScalarKind::kLiteral:
      return Literal(literal_);
    case ScalarKind::kUnary:
      return Unary(op_, lhs_->ShiftColumns(amount));
    case ScalarKind::kBinary:
      return Binary(op_, lhs_->ShiftColumns(amount),
                    rhs_->ShiftColumns(amount));
  }
  HQL_UNREACHABLE();
}

bool ScalarExpr::Equals(const ScalarExpr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ScalarKind::kColumn:
      return column_ == other.column_;
    case ScalarKind::kLiteral:
      return literal_ == other.literal_ &&
             literal_.type() == other.literal_.type();
    case ScalarKind::kUnary:
      return op_ == other.op_ && lhs_->Equals(*other.lhs_);
    case ScalarKind::kBinary:
      return op_ == other.op_ && lhs_->Equals(*other.lhs_) &&
             rhs_->Equals(*other.rhs_);
  }
  HQL_UNREACHABLE();
}

uint64_t ScalarExpr::Hash() const {
  uint64_t h = HashCombine(static_cast<uint64_t>(kind_) + 1,
                           static_cast<uint64_t>(op_) * 0x9E3779B97F4A7C15ULL);
  switch (kind_) {
    case ScalarKind::kColumn:
      return HashCombine(h, column_);
    case ScalarKind::kLiteral:
      return HashCombine(h, literal_.Hash());
    case ScalarKind::kUnary:
      return HashCombine(h, lhs_->Hash());
    case ScalarKind::kBinary:
      return HashCombine(HashCombine(h, lhs_->Hash()), rhs_->Hash());
  }
  HQL_UNREACHABLE();
}

std::string ScalarExpr::ToString() const {
  switch (kind_) {
    case ScalarKind::kColumn:
      return "$" + std::to_string(column_);
    case ScalarKind::kLiteral:
      return literal_.ToString();
    case ScalarKind::kUnary:
      if (op_ == ScalarOp::kNot) return "(not " + lhs_->ToString() + ")";
      return "(-" + lhs_->ToString() + ")";
    case ScalarKind::kBinary:
      return "(" + lhs_->ToString() + " " + ScalarOpName(op_) + " " +
             rhs_->ToString() + ")";
  }
  HQL_UNREACHABLE();
}

size_t ScalarExpr::NodeCount() const {
  switch (kind_) {
    case ScalarKind::kColumn:
    case ScalarKind::kLiteral:
      return 1;
    case ScalarKind::kUnary:
      return 1 + lhs_->NodeCount();
    case ScalarKind::kBinary:
      return 1 + lhs_->NodeCount() + rhs_->NodeCount();
  }
  HQL_UNREACHABLE();
}

bool ScalarExprEquals(const ScalarExprPtr& a, const ScalarExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->Equals(*b);
}

void FlattenConjuncts(const ScalarExprPtr& e,
                      std::vector<ScalarExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind() == ScalarKind::kBinary && e->op() == ScalarOp::kAnd) {
    FlattenConjuncts(e->lhs(), out);
    FlattenConjuncts(e->rhs(), out);
    return;
  }
  out->push_back(e);
}

}  // namespace hql
