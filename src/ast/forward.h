#ifndef HQL_AST_FORWARD_H_
#define HQL_AST_FORWARD_H_

// Forward declarations for the mutually recursive AST:
//   Query (RA_hyp) contains `when` nodes holding HypoExpr;
//   HypoExpr holds Updates ({U}) and Queries (explicit substitutions);
//   Update holds Queries (ins/del arguments).

#include <memory>

namespace hql {

class ScalarExpr;
class Query;
class Update;
class HypoExpr;

using ScalarExprPtr = std::shared_ptr<const ScalarExpr>;
using QueryPtr = std::shared_ptr<const Query>;
using UpdatePtr = std::shared_ptr<const Update>;
using HypoExprPtr = std::shared_ptr<const HypoExpr>;

}  // namespace hql

#endif  // HQL_AST_FORWARD_H_
