#ifndef HQL_AST_HYPO_H_
#define HQL_AST_HYPO_H_

// Hypothetical-state expressions of HQL (paper Section 4.1):
//
//   eta ::= {U}                        state reached by executing U
//         | {Q1/R1, ..., Qn/Rn}        explicit substitution
//         | eta # eta                  composition
//
// Composition is sequential when states are viewed as updates: in
// `eta1 # eta2`, eta1 is applied to the database first, then eta2
// (Lemma 3.6). Explicit substitutions are the syntactic counterpart of the
// abstract substitutions of Section 3.2; bindings are kept sorted by
// relation name (a substitution's domain is a set).
//
// `eta1 when eta2` (the paper's Section 6 / full-paper extension: `when`
// applied to a hypothetical-state expression on the left) denotes the
// state change described by eta1 *as it would be computed in the
// hypothetical world of eta2*, applied to the current database:
//
//   [eta1 when eta2](DB) = apply(DB, [eta1]xval([eta2](DB))).
//
// This is close to — but subtly different from — eta2 # eta1: composition
// also keeps eta2's own writes, while `eta1 when eta2` discards them and
// writes only dom(eta1). (This is the subtlety the paper says the
// construct illuminates.)

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ast/forward.h"
#include "ast/query.h"
#include "ast/update.h"

namespace hql {

enum class HypoKind : uint8_t {
  kUpdateState,  // {U}
  kSubst,        // {Q1/R1, ..., Qn/Rn}
  kCompose,      // eta1 # eta2
  kStateWhen,    // eta1 when eta2 (Section 6 / GH97 extension)
};

/// One binding Q/R of an explicit substitution.
struct Binding {
  std::string rel_name;
  QueryPtr query;
};

class HypoExpr {
 public:
  /// {U}.
  static HypoExprPtr UpdateState(UpdatePtr update);
  /// {Q1/R1, ...}; relation names must be distinct (bindings are sorted by
  /// name internally). An empty binding list is the identity substitution.
  static HypoExprPtr Subst(std::vector<Binding> bindings);
  /// eta1 # eta2 (eta1 first).
  static HypoExprPtr Compose(HypoExprPtr first, HypoExprPtr second);
  /// eta1 when eta2: eta1's effect computed in eta2's hypothetical world.
  static HypoExprPtr StateWhen(HypoExprPtr state, HypoExprPtr context);

  HypoKind kind() const { return kind_; }

  /// kUpdateState only.
  const UpdatePtr& update() const;
  /// kSubst only; sorted by rel_name, names distinct.
  const std::vector<Binding>& bindings() const;
  /// kCompose / kStateWhen only (for kStateWhen: first = eta1, the state;
  /// second = eta2, the hypothetical context it is computed in).
  const HypoExprPtr& first() const;
  const HypoExprPtr& second() const;

  /// For kSubst: the query bound to `name`, or nullptr if unbound.
  QueryPtr BindingFor(const std::string& name) const;

  bool Equals(const HypoExpr& other) const;
  uint64_t Hash() const;
  std::string ToString() const;

 private:
  HypoExpr() = default;

  HypoKind kind_ = HypoKind::kSubst;
  UpdatePtr update_;
  std::vector<Binding> bindings_;
  HypoExprPtr first_;
  HypoExprPtr second_;
};

bool HypoEquals(const HypoExprPtr& a, const HypoExprPtr& b);

}  // namespace hql

#endif  // HQL_AST_HYPO_H_
