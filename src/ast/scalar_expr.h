#ifndef HQL_AST_SCALAR_EXPR_H_
#define HQL_AST_SCALAR_EXPR_H_

// Scalar expressions over tuples: column references ($i), literals,
// arithmetic, comparisons and boolean connectives. They serve as the
// selection and join conditions of the relational algebra.
//
// Evaluation is total and deterministic (no errors at runtime): arithmetic
// on non-numbers yields null, null propagates through arithmetic and
// comparisons other than the total-order comparisons, and anything that is
// not the boolean `true` is treated as false where a predicate is required.
// Static typing concerns (column bounds) are handled by ast/typecheck.

#include <cstdint>
#include <string>
#include <vector>

#include "ast/forward.h"
#include "storage/tuple.h"
#include "storage/value.h"

namespace hql {

enum class ScalarOp : uint8_t {
  // Binary arithmetic.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  // Comparisons (total order over values, see Value::Compare).
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  // Boolean connectives.
  kAnd,
  kOr,
  // Unary.
  kNot,
  kNeg,
};

/// Symbolic name, e.g. "+", "<=", "and".
const char* ScalarOpName(ScalarOp op);

enum class ScalarKind : uint8_t {
  kColumn,
  kLiteral,
  kUnary,
  kBinary,
};

class ScalarExpr {
 public:
  /// $index.
  static ScalarExprPtr Column(size_t index);
  static ScalarExprPtr Literal(Value v);
  static ScalarExprPtr Unary(ScalarOp op, ScalarExprPtr operand);
  static ScalarExprPtr Binary(ScalarOp op, ScalarExprPtr lhs,
                              ScalarExprPtr rhs);

  ScalarKind kind() const { return kind_; }
  ScalarOp op() const { return op_; }
  size_t column() const { return column_; }
  const Value& literal() const { return literal_; }
  const ScalarExprPtr& lhs() const { return lhs_; }
  const ScalarExprPtr& rhs() const { return rhs_; }

  /// Evaluates against a tuple. Columns beyond the tuple's arity yield null
  /// (statically rejected by typecheck; kept total for robustness).
  Value Evaluate(const Tuple& tuple) const;

  /// Evaluate(...) == Bool(true).
  bool EvaluatesTrue(const Tuple& tuple) const;

  /// One past the largest column index referenced (0 if none): the minimum
  /// arity a tuple must have for evaluation to be well-typed.
  size_t MinArity() const;

  /// Rewrites every column reference $i to $(i + amount). Used when a
  /// predicate written against one operand of a product/join must be
  /// re-based onto the concatenated tuple.
  ScalarExprPtr ShiftColumns(size_t amount) const;

  bool Equals(const ScalarExpr& other) const;
  uint64_t Hash() const;
  std::string ToString() const;
  size_t NodeCount() const;

 private:
  ScalarExpr() = default;

  ScalarKind kind_ = ScalarKind::kLiteral;
  ScalarOp op_ = ScalarOp::kEq;
  size_t column_ = 0;
  Value literal_;
  ScalarExprPtr lhs_;
  ScalarExprPtr rhs_;
};

/// True if `a` and `b` are both null or structurally equal; accepts nulls.
bool ScalarExprEquals(const ScalarExprPtr& a, const ScalarExprPtr& b);

/// Appends the conjuncts of `e`'s AND-tree to `out` in left-to-right order
/// (a non-AND expression is its own single conjunct; null appends nothing).
/// A tuple satisfies `e` iff it satisfies every appended conjunct, which is
/// what lets the simplifier, join splitter and sargable extractor all work
/// conjunct-by-conjunct.
void FlattenConjuncts(const ScalarExprPtr& e, std::vector<ScalarExprPtr>* out);

}  // namespace hql

#endif  // HQL_AST_SCALAR_EXPR_H_
