#include "ast/typecheck.h"

#include "ast/hypo.h"
#include "ast/query.h"
#include "ast/scalar_expr.h"
#include "ast/update.h"
#include "common/strings.h"

namespace hql {

Result<size_t> InferQueryArity(const QueryPtr& query, const Schema& schema) {
  if (query == nullptr) return Status::InvalidArgument("null query");
  switch (query->kind()) {
    case QueryKind::kRel:
      return schema.ArityOf(query->rel_name());
    case QueryKind::kEmpty:
      return query->empty_arity();
    case QueryKind::kSingleton:
      return query->tuple().size();
    case QueryKind::kSelect: {
      HQL_ASSIGN_OR_RETURN(size_t arity,
                           InferQueryArity(query->left(), schema));
      size_t need = query->predicate()->MinArity();
      if (need > arity) {
        return Status::TypeError(
            StrFormat("selection predicate references column %zu of a "
                      "%zu-ary input: %s",
                      need - 1, arity, query->ToString().c_str()));
      }
      return arity;
    }
    case QueryKind::kProject: {
      HQL_ASSIGN_OR_RETURN(size_t arity,
                           InferQueryArity(query->left(), schema));
      for (size_t c : query->columns()) {
        if (c >= arity) {
          return Status::TypeError(
              StrFormat("projection references column %zu of a %zu-ary "
                        "input: %s",
                        c, arity, query->ToString().c_str()));
        }
      }
      return query->columns().size();
    }
    case QueryKind::kAggregate: {
      HQL_ASSIGN_OR_RETURN(size_t arity,
                           InferQueryArity(query->left(), schema));
      for (size_t c : query->columns()) {
        if (c >= arity) {
          return Status::TypeError(
              StrFormat("grouping column %zu of a %zu-ary input", c, arity));
        }
      }
      if (query->agg_column() >= arity) {
        return Status::TypeError(StrFormat(
            "aggregate column %zu of a %zu-ary input", query->agg_column(),
            arity));
      }
      return query->columns().size() + 1;
    }
    case QueryKind::kUnion:
    case QueryKind::kIntersect:
    case QueryKind::kDifference: {
      HQL_ASSIGN_OR_RETURN(size_t a, InferQueryArity(query->left(), schema));
      HQL_ASSIGN_OR_RETURN(size_t b, InferQueryArity(query->right(), schema));
      if (a != b) {
        return Status::TypeError(
            StrFormat("%s operands have arities %zu and %zu",
                      QueryKindName(query->kind()), a, b));
      }
      return a;
    }
    case QueryKind::kProduct: {
      HQL_ASSIGN_OR_RETURN(size_t a, InferQueryArity(query->left(), schema));
      HQL_ASSIGN_OR_RETURN(size_t b, InferQueryArity(query->right(), schema));
      return a + b;
    }
    case QueryKind::kJoin: {
      HQL_ASSIGN_OR_RETURN(size_t a, InferQueryArity(query->left(), schema));
      HQL_ASSIGN_OR_RETURN(size_t b, InferQueryArity(query->right(), schema));
      size_t need = query->predicate()->MinArity();
      if (need > a + b) {
        return Status::TypeError(
            StrFormat("join predicate references column %zu of a %zu-ary "
                      "concatenation",
                      need - 1, a + b));
      }
      return a + b;
    }
    case QueryKind::kWhen: {
      HQL_RETURN_IF_ERROR(CheckHypo(query->state(), schema));
      // The hypothetical state preserves the schema (each binding Q/R has
      // arity(Q) == arity(R)), so Q is checked under the same schema.
      return InferQueryArity(query->left(), schema);
    }
  }
  return Status::Internal("unknown query kind");
}

Status CheckUpdate(const UpdatePtr& update, const Schema& schema) {
  if (update == nullptr) return Status::InvalidArgument("null update");
  switch (update->kind()) {
    case UpdateKind::kInsert:
    case UpdateKind::kDelete: {
      HQL_ASSIGN_OR_RETURN(size_t rel_arity,
                           schema.ArityOf(update->rel_name()));
      HQL_ASSIGN_OR_RETURN(size_t q_arity,
                           InferQueryArity(update->query(), schema));
      if (rel_arity != q_arity) {
        return Status::TypeError(StrFormat(
            "%s(%s, ...): relation arity %zu, argument arity %zu",
            UpdateKindName(update->kind()), update->rel_name().c_str(),
            rel_arity, q_arity));
      }
      return Status::OK();
    }
    case UpdateKind::kSeq:
      HQL_RETURN_IF_ERROR(CheckUpdate(update->first(), schema));
      return CheckUpdate(update->second(), schema);
    case UpdateKind::kCond: {
      HQL_ASSIGN_OR_RETURN(size_t g, InferQueryArity(update->guard(), schema));
      (void)g;  // any arity is acceptable for a guard
      HQL_RETURN_IF_ERROR(CheckUpdate(update->then_branch(), schema));
      return CheckUpdate(update->else_branch(), schema);
    }
  }
  return Status::Internal("unknown update kind");
}

Status CheckHypo(const HypoExprPtr& state, const Schema& schema) {
  if (state == nullptr) return Status::InvalidArgument("null state");
  switch (state->kind()) {
    case HypoKind::kUpdateState:
      return CheckUpdate(state->update(), schema);
    case HypoKind::kSubst: {
      for (const Binding& b : state->bindings()) {
        HQL_ASSIGN_OR_RETURN(size_t rel_arity, schema.ArityOf(b.rel_name));
        HQL_ASSIGN_OR_RETURN(size_t q_arity,
                             InferQueryArity(b.query, schema));
        if (rel_arity != q_arity) {
          return Status::TypeError(StrFormat(
              "binding %s: relation arity %zu, query arity %zu",
              b.rel_name.c_str(), rel_arity, q_arity));
        }
      }
      return Status::OK();
    }
    case HypoKind::kCompose:
    case HypoKind::kStateWhen:
      HQL_RETURN_IF_ERROR(CheckHypo(state->first(), schema));
      return CheckHypo(state->second(), schema);
  }
  return Status::Internal("unknown hypothetical-state kind");
}

}  // namespace hql
