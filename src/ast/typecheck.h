#ifndef HQL_AST_TYPECHECK_H_
#define HQL_AST_TYPECHECK_H_

// Static arity checking for queries, updates and hypothetical-state
// expressions against a schema (the paper's "usual typing rules concerning
// the arities of query expressions").
//
// The key rule for hypothetical constructs is the substitution typing rule
// of Section 3.2: in a binding Q/R, the arity of Q must equal the arity of
// R — which is also why substitution application preserves arities and why
// `Q when eta` has the arity of Q.

#include "ast/forward.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/schema.h"

namespace hql {

/// Infers the arity of `query` under `schema`, checking along the way that
/// relation names exist, set operations have matching arities, predicates
/// and projections stay within bounds, and `when` states are well-formed.
Result<size_t> InferQueryArity(const QueryPtr& query, const Schema& schema);

/// Checks an update: ins/del argument arities must match their relations;
/// guards of conditionals may have any arity.
Status CheckUpdate(const UpdatePtr& update, const Schema& schema);

/// Checks a hypothetical-state expression.
Status CheckHypo(const HypoExprPtr& state, const Schema& schema);

}  // namespace hql

#endif  // HQL_AST_TYPECHECK_H_
