#include "ast/update.h"

#include "common/check.h"
#include "common/strings.h"

namespace hql {

const char* UpdateKindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kInsert:
      return "ins";
    case UpdateKind::kDelete:
      return "del";
    case UpdateKind::kSeq:
      return "seq";
    case UpdateKind::kCond:
      return "if";
  }
  return "?";
}

UpdatePtr Update::Insert(std::string rel, QueryPtr query) {
  HQL_CHECK(!rel.empty() && query != nullptr);
  std::shared_ptr<Update> u(new Update());
  u->kind_ = UpdateKind::kInsert;
  u->rel_name_ = std::move(rel);
  u->query_ = std::move(query);
  return u;
}

UpdatePtr Update::Delete(std::string rel, QueryPtr query) {
  HQL_CHECK(!rel.empty() && query != nullptr);
  std::shared_ptr<Update> u(new Update());
  u->kind_ = UpdateKind::kDelete;
  u->rel_name_ = std::move(rel);
  u->query_ = std::move(query);
  return u;
}

UpdatePtr Update::Seq(UpdatePtr first, UpdatePtr second) {
  HQL_CHECK(first != nullptr && second != nullptr);
  // Sequencing is associative; keep a canonical right-nested form so that
  // structurally distinct but equivalent nestings (and the flat "a; b; c"
  // textual syntax) all build the same AST.
  if (first->kind_ == UpdateKind::kSeq) {
    return Seq(first->first_, Seq(first->second_, std::move(second)));
  }
  std::shared_ptr<Update> u(new Update());
  u->kind_ = UpdateKind::kSeq;
  u->first_ = std::move(first);
  u->second_ = std::move(second);
  return u;
}

UpdatePtr Update::Cond(QueryPtr guard, UpdatePtr then_branch,
                       UpdatePtr else_branch) {
  HQL_CHECK(guard != nullptr && then_branch != nullptr &&
            else_branch != nullptr);
  std::shared_ptr<Update> u(new Update());
  u->kind_ = UpdateKind::kCond;
  u->query_ = std::move(guard);
  u->first_ = std::move(then_branch);
  u->second_ = std::move(else_branch);
  return u;
}

const std::string& Update::rel_name() const {
  HQL_CHECK(kind_ == UpdateKind::kInsert || kind_ == UpdateKind::kDelete);
  return rel_name_;
}

const QueryPtr& Update::query() const {
  HQL_CHECK(kind_ == UpdateKind::kInsert || kind_ == UpdateKind::kDelete);
  return query_;
}

const UpdatePtr& Update::first() const {
  HQL_CHECK(kind_ == UpdateKind::kSeq);
  return first_;
}

const UpdatePtr& Update::second() const {
  HQL_CHECK(kind_ == UpdateKind::kSeq);
  return second_;
}

const QueryPtr& Update::guard() const {
  HQL_CHECK(kind_ == UpdateKind::kCond);
  return query_;
}

const UpdatePtr& Update::then_branch() const {
  HQL_CHECK(kind_ == UpdateKind::kCond);
  return first_;
}

const UpdatePtr& Update::else_branch() const {
  HQL_CHECK(kind_ == UpdateKind::kCond);
  return second_;
}

bool Update::IsAtomicSequence() const {
  switch (kind_) {
    case UpdateKind::kInsert:
    case UpdateKind::kDelete:
      return true;
    case UpdateKind::kSeq:
      return first_->IsAtomicSequence() && second_->IsAtomicSequence();
    case UpdateKind::kCond:
      return false;
  }
  HQL_UNREACHABLE();
}

bool Update::Equals(const Update& other) const {
  if (this == &other) return true;
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case UpdateKind::kInsert:
    case UpdateKind::kDelete:
      return rel_name_ == other.rel_name_ && query_->Equals(*other.query_);
    case UpdateKind::kSeq:
      return first_->Equals(*other.first_) && second_->Equals(*other.second_);
    case UpdateKind::kCond:
      return query_->Equals(*other.query_) && first_->Equals(*other.first_) &&
             second_->Equals(*other.second_);
  }
  HQL_UNREACHABLE();
}

uint64_t Update::Hash() const {
  uint64_t h = (static_cast<uint64_t>(kind_) + 101) * 0xBF58476D1CE4E5B9ULL;
  switch (kind_) {
    case UpdateKind::kInsert:
    case UpdateKind::kDelete:
      return HashCombine(HashCombine(h, HashString(rel_name_)),
                         query_->Hash());
    case UpdateKind::kSeq:
      return HashCombine(HashCombine(h, first_->Hash()), second_->Hash());
    case UpdateKind::kCond:
      return HashCombine(
          HashCombine(HashCombine(h, query_->Hash()), first_->Hash()),
          second_->Hash());
  }
  HQL_UNREACHABLE();
}

std::string Update::ToString() const {
  switch (kind_) {
    case UpdateKind::kInsert:
      return "ins(" + rel_name_ + ", " + query_->ToString() + ")";
    case UpdateKind::kDelete:
      return "del(" + rel_name_ + ", " + query_->ToString() + ")";
    case UpdateKind::kSeq:
      return first_->ToString() + "; " + second_->ToString();
    case UpdateKind::kCond:
      return "if " + query_->ToString() + " then {" + first_->ToString() +
             "} else {" + second_->ToString() + "}";
  }
  HQL_UNREACHABLE();
}

bool UpdateEquals(const UpdatePtr& a, const UpdatePtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->Equals(*b);
}

}  // namespace hql
