// E13 — Vectorized columnar kernels and morsel-driven parallelism.
//
// The columnar layer's target workload: a 1M-row flat base relation,
// selections and equi-joins routed through the vectorized kernels
// (eval/vector_exec.h) against the same queries on the row kernels. The
// batch is built once (install-once cache on the shared base, exactly like
// the secondary-index cache) and every iteration scans the per-column
// contiguous arrays in tight type-specialized loops.
//
// Rows (1M-row base):
//   SelectRow             sigma[lo <= $0 < hi](R), row kernel (per-tuple
//                         expression interpretation).
//   SelectColumnar        the same, vectorized, morsels inline (threads=1).
//   SelectColumnarMorsel  the same, morsel-parallel across the pool.
//   JoinRow               R join[$0 = $2] S (1M probe x 10k build), row
//                         hash join.
//   JoinColumnar          the same, vectorized int-key probe, inline.
//   JoinColumnarMorsel    the same, morsel-parallel.
//   OverlayFallback       an overlay past max_delta_fraction: the columnar
//                         route must decline (TryColumnarFilter nullopt)
//                         and the routed kernel equals the row kernel.
//
// Setup asserts bit-identical results between the vectorized and row routes
// before timing anything, so the speedup is never purchased with a wrong
// answer. Run with --json to write BENCH_e13_columnar.json plus the
// ExecStats sidecar (columnar_* counters included).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "ast/builders.h"
#include "bench/bench_util.h"
#include "common/check.h"
#include "common/exec_context.h"
#include "eval/ra_eval.h"
#include "eval/vector_exec.h"
#include "storage/column_batch.h"
#include "storage/relation.h"
#include "storage/view.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using bench::Unwrap;

constexpr size_t kBaseRows = 1000000;
constexpr int64_t kKeyDomain = 4000000;
constexpr size_t kBuildRows = 10000;

// The shared 1M-row probe base and the small join build side. Built once
// per process; the columnar batch cache on `base` is likewise shared by
// every columnar benchmark (the install-once regime the cache targets).
struct Fixture {
  RelationPtr base;
  RelationPtr build;
  RelationView base_view;
  RelationView build_view;

  Fixture()
      : base(std::make_shared<Relation>([] {
          Rng rng(13);
          return GenRelation(&rng, kBaseRows, 2, kKeyDomain);
        }())),
        build(std::make_shared<Relation>([] {
          Rng rng(17);
          return GenRelation(&rng, kBuildRows, 2, kKeyDomain);
        }())),
        base_view(base),
        build_view(build) {}
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

// ~5% band selection on the sorted key column plus a second conjunct, so
// both the scan and the emit path do real work.
ScalarExprPtr SelectPred() {
  return And(And(Ge(Col(0), Int(kKeyDomain / 2)),
                 Lt(Col(0), Int(kKeyDomain / 2 + kKeyDomain / 20))),
             Ge(Col(1), Int(0)));
}

ScalarExprPtr JoinPred() { return Eq(Col(0), Col(2)); }

ColumnarConfig Config(size_t threads) {
  ColumnarConfig config;
  config.mode = ColumnarMode::kAuto;
  config.threads = threads;  // 1 = inline morsels, 0 = hardware concurrency
  return config;
}

// Asserted once per benchmark: the vectorized route engages and returns the
// bit-identical relation the row kernel computes.
void CheckSelectIdentity(const ColumnarConfig& config) {
  Fixture& fx = SharedFixture();
  ScalarExprPtr pred = SelectPred();
  auto columnar = TryColumnarFilter(fx.base_view, pred, config);
  HQL_CHECK_MSG(columnar.has_value(),
                "columnar select must engage on the 1M-row flat base");
  Relation row = FilterRelation(fx.base_view, *pred);
  HQL_CHECK_MSG(*columnar == row,
                "columnar and row selects must agree bit-identically");
  HQL_CHECK_MSG(!row.empty(), "the workload must be non-trivial");
}

void CheckJoinIdentity(const ColumnarConfig& config) {
  Fixture& fx = SharedFixture();
  ScalarExprPtr pred = JoinPred();
  auto columnar =
      TryColumnarJoin(fx.base_view, fx.build_view, pred, config);
  HQL_CHECK_MSG(columnar.has_value(),
                "columnar join must engage on the 1M-row probe side");
  Relation row = JoinRelations(fx.base_view, fx.build_view, pred);
  HQL_CHECK_MSG(*columnar == row,
                "columnar and row joins must agree bit-identically");
  HQL_CHECK_MSG(!row.empty(), "the workload must be non-trivial");
}

void ExportColumnarCounters(benchmark::State& state, const ExecStats& before) {
  ExecStats after = AmbientExecContext().Snapshot();
  state.counters["batches_built"] = static_cast<double>(
      after.columnar_batches_built - before.columnar_batches_built);
  state.counters["batches_reused"] = static_cast<double>(
      after.columnar_batches_reused - before.columnar_batches_reused);
  state.counters["morsels"] = static_cast<double>(
      after.columnar_morsels_dispatched - before.columnar_morsels_dispatched);
  state.counters["rows_vectorized"] = static_cast<double>(
      after.columnar_rows_vectorized - before.columnar_rows_vectorized);
  state.counters["rows_fallback"] = static_cast<double>(
      after.columnar_rows_fallback - before.columnar_rows_fallback);
}

void BM_SelectRow(benchmark::State& state) {
  Fixture& fx = SharedFixture();
  ScalarExprPtr pred = SelectPred();
  uint64_t total = 0;
  for (auto _ : state) {
    total += FilterRelation(fx.base_view, *pred).size();
  }
  state.counters["result_tuples"] = static_cast<double>(total);
}

void RunSelectColumnar(benchmark::State& state, size_t threads) {
  ColumnarConfig config = Config(threads);
  CheckSelectIdentity(config);
  Fixture& fx = SharedFixture();
  ScalarExprPtr pred = SelectPred();
  IndexConfig no_indexes;
  ExecStats before = AmbientExecContext().Snapshot();
  uint64_t total = 0;
  for (auto _ : state) {
    total += VectorizedFilter(fx.base_view, pred, no_indexes, config).size();
  }
  state.counters["result_tuples"] = static_cast<double>(total);
  ExportColumnarCounters(state, before);
}

void BM_SelectColumnar(benchmark::State& state) {
  RunSelectColumnar(state, /*threads=*/1);
}
void BM_SelectColumnarMorsel(benchmark::State& state) {
  RunSelectColumnar(state, /*threads=*/0);
}

void BM_JoinRow(benchmark::State& state) {
  Fixture& fx = SharedFixture();
  ScalarExprPtr pred = JoinPred();
  uint64_t total = 0;
  for (auto _ : state) {
    total += JoinRelations(fx.base_view, fx.build_view, pred).size();
  }
  state.counters["result_tuples"] = static_cast<double>(total);
}

void RunJoinColumnar(benchmark::State& state, size_t threads) {
  ColumnarConfig config = Config(threads);
  CheckJoinIdentity(config);
  Fixture& fx = SharedFixture();
  ScalarExprPtr pred = JoinPred();
  IndexConfig no_indexes;
  ExecStats before = AmbientExecContext().Snapshot();
  uint64_t total = 0;
  for (auto _ : state) {
    total += VectorizedJoin(fx.base_view, fx.build_view, pred, no_indexes,
                            config)
                 .size();
  }
  state.counters["result_tuples"] = static_cast<double>(total);
  ExportColumnarCounters(state, before);
}

void BM_JoinColumnar(benchmark::State& state) {
  RunJoinColumnar(state, /*threads=*/1);
}
void BM_JoinColumnarMorsel(benchmark::State& state) {
  RunJoinColumnar(state, /*threads=*/0);
}

// The fallback family: an overlay whose delta exceeds max_delta_fraction of
// a (smaller) base. The columnar route must decline and the routed kernel
// must cost what the row kernel costs — the clean-degradation guarantee.
void BM_OverlayFallback(benchmark::State& state) {
  Rng rng(19);
  Relation small = GenRelation(&rng, 100000, 2, kKeyDomain);
  RelationPtr shared = std::make_shared<Relation>(std::move(small));
  Relation adds = GenRelation(&rng, 40000, 2, kKeyDomain);
  Relation dels = SampleFraction(&rng, *shared, 0.1);
  RelationView view =
      RelationView::Overlay(shared, adds.tuples(), dels.tuples());
  ScalarExprPtr pred = SelectPred();

  ColumnarConfig config = Config(/*threads=*/1);
  HQL_CHECK_MSG(!TryColumnarFilter(view, pred, config).has_value(),
                "an overlay past max_delta_fraction must fall back");
  Relation row = FilterRelation(view, *pred);
  IndexConfig no_indexes;
  HQL_CHECK_MSG(VectorizedFilter(view, pred, no_indexes, config) == row,
                "the routed kernel must equal the row kernel on fallback");

  ExecStats before = AmbientExecContext().Snapshot();
  uint64_t total = 0;
  for (auto _ : state) {
    total += VectorizedFilter(view, pred, no_indexes, config).size();
  }
  state.counters["result_tuples"] = static_cast<double>(total);
  ExportColumnarCounters(state, before);
}

BENCHMARK(BM_SelectRow)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelectColumnar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelectColumnarMorsel)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinRow)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinColumnar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinColumnarMorsel)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OverlayFallback)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hql

HQL_BENCH_MAIN(e13_columnar)
