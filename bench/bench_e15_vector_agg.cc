// E15 — Vectorized aggregation and columnar-aware when kernels.
//
// The aggregation kernel's target workload: gamma over a 1M-row flat base,
// the row kernel's Value-hashed std::unordered_map against the flat
// packed-int64 group table with type-specialized accumulation loops
// (eval/vector_exec.h TryColumnarAggregate), plus the global-aggregate
// SIMD reduction and the columnar-when routing of a small scenario delta.
//
// Rows (1M-row base, ~65k groups):
//   AggRow             gamma[$0; sum($1)](R), row kernel (Tuple-keyed hash,
//                      boxed Value accumulation).
//   AggColumnar        the same through the flat group table, inline
//                      morsels (threads=1; speedup is typed loops, not
//                      parallelism).
//   AggColumnarMorsel  the same, morsel-parallel across the pool.
//   AggCount/Min       count and min through the same table.
//   GlobalSumRow       gamma[; sum($1)](R), row kernel.
//   GlobalSumSimd      the same, del-free segments reduced at vector width
//                      (SimdSumInt64; "simd" counter reports the tier).
//   WhenAggRow         the aggregate under a small overlay delta, row path.
//   WhenAggColumnar    the same routed through the batch with the overlay
//                      patched in row-wise (tentpole (b)).
//
// Setup asserts bit-identical results between the vectorized and row routes
// before timing anything, so the speedup is never purchased with a wrong
// answer. Run with --json to write BENCH_e15_vector_agg.json plus the
// ExecStats sidecar (columnar_agg_* counters included).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "ast/builders.h"
#include "bench/bench_util.h"
#include "common/check.h"
#include "common/exec_context.h"
#include "eval/ra_eval.h"
#include "eval/simd.h"
#include "eval/vector_exec.h"
#include "storage/relation.h"
#include "storage/view.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT

constexpr size_t kBaseRows = 1000000;
constexpr int64_t kKeyDomain = 65536;  // ~65k groups over 1M rows

struct Fixture {
  RelationPtr base;
  RelationView base_view;
  RelationView overlay_view{0};

  Fixture()
      : base(std::make_shared<Relation>([] {
          Rng rng(23);
          return GenRelation(&rng, kBaseRows, 2, kKeyDomain);
        }())),
        base_view(base) {
    // A small scenario delta (~0.5% of the base): the when-kernel regime.
    Rng rng(29);
    Relation dels = SampleFraction(&rng, *base, 0.003);
    Relation adds = GenRelation(&rng, 2000, 2, kKeyDomain);
    overlay_view =
        RelationView::Overlay(base, adds.tuples(), dels.tuples());
  }
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

ColumnarConfig Config(size_t threads) {
  ColumnarConfig config;
  config.mode = ColumnarMode::kAuto;
  config.threads = threads;
  return config;
}

const std::vector<size_t> kGroupCols = {0};
constexpr size_t kAggCol = 1;

// Asserted once per benchmark family: the vectorized route engages on this
// shape and returns the bit-identical relation the row kernel computes.
void CheckAggIdentity(const RelationView& view, AggFunc func,
                      const std::vector<size_t>& cols,
                      const ColumnarConfig& config) {
  auto columnar = TryColumnarAggregate(view, cols, func, kAggCol, config);
  HQL_CHECK_MSG(columnar.has_value(),
                "columnar aggregate must engage on the 1M-row base");
  Relation row = AggregateRelation(view, cols, func, kAggCol);
  HQL_CHECK_MSG(*columnar == row,
                "columnar and row aggregates must agree bit-identically");
  HQL_CHECK_MSG(!row.empty(), "the workload must be non-trivial");
}

void ExportAggCounters(benchmark::State& state, const ExecStats& before) {
  ExecStats after = AmbientExecContext().Snapshot();
  state.counters["morsels"] = static_cast<double>(
      after.columnar_morsels_dispatched - before.columnar_morsels_dispatched);
  state.counters["agg_rows_vectorized"] = static_cast<double>(
      after.columnar_agg_rows_vectorized - before.columnar_agg_rows_vectorized);
  state.counters["agg_groups"] = static_cast<double>(
      after.columnar_agg_groups - before.columnar_agg_groups);
  state.counters["rows_fallback"] = static_cast<double>(
      after.columnar_rows_fallback - before.columnar_rows_fallback);
  // 2 = avx2, 1 = sse4, 0 = scalar (the forced-scalar CI gate sees 0).
  const char* isa = SimdIsaName();
  state.counters["simd"] = isa[0] == 'a' ? 2 : (isa[0] == 's' && isa[1] == 's'
                                                    ? 1
                                                    : 0);
}

void BM_AggRow(benchmark::State& state) {
  Fixture& fx = SharedFixture();
  uint64_t total = 0;
  for (auto _ : state) {
    total +=
        AggregateRelation(fx.base_view, kGroupCols, AggFunc::kSum, kAggCol)
            .size();
  }
  state.counters["result_tuples"] = static_cast<double>(total);
}

void RunAggColumnar(benchmark::State& state, AggFunc func, size_t threads) {
  ColumnarConfig config = Config(threads);
  Fixture& fx = SharedFixture();
  CheckAggIdentity(fx.base_view, func, kGroupCols, config);
  ExecStats before = AmbientExecContext().Snapshot();
  uint64_t total = 0;
  for (auto _ : state) {
    total += VectorizedAggregate(fx.base_view, kGroupCols, func, kAggCol,
                                 config)
                 .size();
  }
  state.counters["result_tuples"] = static_cast<double>(total);
  ExportAggCounters(state, before);
}

void BM_AggColumnar(benchmark::State& state) {
  RunAggColumnar(state, AggFunc::kSum, /*threads=*/1);
}
void BM_AggColumnarMorsel(benchmark::State& state) {
  RunAggColumnar(state, AggFunc::kSum, /*threads=*/0);
}
void BM_AggCountColumnar(benchmark::State& state) {
  RunAggColumnar(state, AggFunc::kCount, /*threads=*/1);
}
void BM_AggMinColumnar(benchmark::State& state) {
  RunAggColumnar(state, AggFunc::kMin, /*threads=*/1);
}

void BM_GlobalSumRow(benchmark::State& state) {
  Fixture& fx = SharedFixture();
  uint64_t total = 0;
  for (auto _ : state) {
    total += AggregateRelation(fx.base_view, {}, AggFunc::kSum, kAggCol)
                 .size();
  }
  state.counters["result_tuples"] = static_cast<double>(total);
}

void BM_GlobalSumSimd(benchmark::State& state) {
  ColumnarConfig config = Config(/*threads=*/1);
  Fixture& fx = SharedFixture();
  CheckAggIdentity(fx.base_view, AggFunc::kSum, {}, config);
  ExecStats before = AmbientExecContext().Snapshot();
  uint64_t total = 0;
  for (auto _ : state) {
    total += VectorizedAggregate(fx.base_view, {}, AggFunc::kSum, kAggCol,
                                 config)
                 .size();
  }
  state.counters["result_tuples"] = static_cast<double>(total);
  ExportAggCounters(state, before);
}

// The when-kernel regime: the same aggregate under a small scenario delta.
// The row path streams (base - D) u I per tuple; the columnar path scans
// the cached batch and patches the overlay in row-wise.
void BM_WhenAggRow(benchmark::State& state) {
  Fixture& fx = SharedFixture();
  uint64_t total = 0;
  for (auto _ : state) {
    total += AggregateRelation(fx.overlay_view, kGroupCols, AggFunc::kSum,
                               kAggCol)
                 .size();
  }
  state.counters["result_tuples"] = static_cast<double>(total);
}

void BM_WhenAggColumnar(benchmark::State& state) {
  ColumnarConfig config = Config(/*threads=*/1);
  Fixture& fx = SharedFixture();
  CheckAggIdentity(fx.overlay_view, AggFunc::kSum, kGroupCols, config);
  ExecStats before = AmbientExecContext().Snapshot();
  uint64_t total = 0;
  for (auto _ : state) {
    total += VectorizedAggregate(fx.overlay_view, kGroupCols, AggFunc::kSum,
                                 kAggCol, config)
                 .size();
  }
  state.counters["result_tuples"] = static_cast<double>(total);
  ExportAggCounters(state, before);
}

BENCHMARK(BM_AggRow)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AggColumnar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AggColumnarMorsel)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AggCountColumnar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AggMinColumnar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GlobalSumRow)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GlobalSumSimd)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WhenAggRow)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WhenAggColumnar)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hql

HQL_BENCH_MAIN(e15_vector_agg)
