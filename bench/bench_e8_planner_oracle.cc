// E8 — planner quality: how close does the hybrid planner come to an
// oracle that always picks the best single strategy? (The paper leaves
// cost-based plan selection as future work; this measures our instance of
// it.) Each row times every strategy on one workload configuration and
// reports the hybrid-to-best ratio as a counter.

#include <benchmark/benchmark.h>

#include <chrono>
#include <limits>

#include "ast/builders.h"
#include "bench/bench_util.h"
#include "opt/planner.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using bench::MakeRS;
using bench::Unwrap;

constexpr int64_t kKeyDomain = 40000;

QueryPtr MakeQuery(int depth, int64_t delta_pm, bool selective) {
  QueryPtr q = Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S"));
  if (selective) {
    q = Sel(Lt(Col(0), Int(kKeyDomain / 20)), q);
  }
  int64_t width = kKeyDomain * delta_pm / 1000;
  for (int d = 0; d < depth; ++d) {
    int64_t lo = (d * 131) % kKeyDomain;
    UpdatePtr u = Seq(
        Ins("R", Sel(And(Ge(Col(0), Int(lo)), Lt(Col(0), Int(lo + width))),
                     Rel("S"))),
        Del("S", Sel(And(Ge(Col(0), Int(lo)), Lt(Col(0), Int(lo + width))),
                     Rel("S"))));
    q = Query::When(q, Upd(u));
  }
  return q;
}

double TimeOnce(const QueryPtr& q, const Database& db, const Schema& schema,
                Strategy s) {
  auto start = std::chrono::steady_clock::now();
  Relation out = Unwrap(Execute(q, db, schema, s));
  benchmark::DoNotOptimize(out);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void BM_PlannerVsOracle(benchmark::State& state) {
  const int64_t delta_pm = state.range(0);
  const int depth = static_cast<int>(state.range(1));
  const bool selective = state.range(2) != 0;
  Database db = MakeRS(47, 20000, kKeyDomain);
  const Schema& schema = db.schema();
  QueryPtr q = MakeQuery(depth, delta_pm, selective);

  double best = std::numeric_limits<double>::infinity();
  double hybrid = 0;
  for (auto _ : state) {
    best = std::numeric_limits<double>::infinity();
    for (Strategy s : {Strategy::kLazy, Strategy::kFilter1,
                       Strategy::kFilter2, Strategy::kFilter3}) {
      double t = TimeOnce(q, db, schema, s);
      if (t < best) best = t;
    }
    hybrid = TimeOnce(q, db, schema, Strategy::kHybrid);
  }
  state.counters["oracle_ms"] = best * 1000;
  state.counters["hybrid_ms"] = hybrid * 1000;
  state.counters["regret"] = hybrid / best;
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t delta_pm : {10, 100}) {
    for (int64_t depth : {1, 3}) {
      for (int64_t selective : {0, 1}) {
        b->Args({delta_pm, depth, selective});
      }
    }
  }
  b->Unit(benchmark::kMillisecond)->Iterations(3);
}

BENCHMARK(BM_PlannerVsOracle)->Apply(Args);

}  // namespace
}  // namespace hql

HQL_BENCH_MAIN(e8_planner_oracle)
