// E6 — the full strategy spectrum (Section 5 overall).
//
// One hypothetical query, every evaluation strategy: direct state
// materialization (the when-stack of Example 2.1(a)), fully lazy reduction
// (Theorem 4.1), Algorithm HQL-1 (xsub, node-at-a-time), Algorithm HQL-2
// (xsub, collapsed/clustered), Algorithm HQL-3 (deltas) and the hybrid
// planner. Swept over update size and `when` nesting depth.
//
// Rows: Spectrum/<strategy>/<rows>/<delta_pm>/<depth>.

#include <benchmark/benchmark.h>

#include <string>

#include "ast/builders.h"
#include "bench/bench_util.h"
#include "opt/planner.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using bench::MakeRS;
using bench::Unwrap;

constexpr int64_t kKeyDomain = 40000;  // 2x rows: sparse join keys

// A nested hypothetical query: `depth` stacked updates, each touching a
// delta_pm/1000 fraction of the key domain, under a join query.
QueryPtr MakeQuery(int depth, int64_t delta_pm) {
  QueryPtr q = Sel(Ge(Col(1), Int(0)),
                   Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S")));
  int64_t width = kKeyDomain * delta_pm / 1000;
  for (int d = 0; d < depth; ++d) {
    int64_t lo = (d * 131) % kKeyDomain;
    UpdatePtr u = Seq(
        Ins("R", Sel(And(Ge(Col(0), Int(lo)), Lt(Col(0), Int(lo + width))),
                     Rel("S"))),
        Del("S", Sel(And(Ge(Col(0), Int(lo)), Lt(Col(0), Int(lo + width))),
                     Rel("S"))));
    q = Query::When(q, Upd(u));
  }
  return q;
}

void RunSpectrum(benchmark::State& state, Strategy strategy) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int64_t delta_pm = state.range(1);
  const int depth = static_cast<int>(state.range(2));
  Database db = MakeRS(23, rows, kKeyDomain);
  const Schema& schema = db.schema();
  QueryPtr q = MakeQuery(depth, delta_pm);
  uint64_t total = 0;
  for (auto _ : state) {
    auto result = Execute(q, db, schema, strategy);
    HQL_CHECK_MSG(result.ok(), result.status().ToString().c_str());
    total += result.value().size();
  }
  state.counters["result_tuples"] = static_cast<double>(total);
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t rows : {20000}) {
    for (int64_t delta_pm : {10, 100}) {
      for (int64_t depth : {1, 2, 4}) {
        b->Args({rows, delta_pm, depth});
      }
    }
  }
  b->Unit(benchmark::kMillisecond);
}

#define SPECTRUM_BENCH(name, strategy)                       \
  void BM_##name(benchmark::State& state) {                  \
    RunSpectrum(state, strategy);                            \
  }                                                          \
  BENCHMARK(BM_##name)->Apply(Args)

SPECTRUM_BENCH(Direct, Strategy::kDirect);
SPECTRUM_BENCH(Lazy, Strategy::kLazy);
SPECTRUM_BENCH(Filter1, Strategy::kFilter1);
SPECTRUM_BENCH(Filter2, Strategy::kFilter2);
SPECTRUM_BENCH(Filter3, Strategy::kFilter3);
SPECTRUM_BENCH(Hybrid, Strategy::kHybrid);

#undef SPECTRUM_BENCH

}  // namespace
}  // namespace hql

HQL_BENCH_MAIN(e6_spectrum)
