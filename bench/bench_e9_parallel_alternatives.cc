// E9 — Parallel evaluation of a family of hypothetical alternatives with a
// shared memoizing subplan cache.
//
// The workload is the Example 2.1 tree made wide: one expensive shared
// edge under the root (insert a self-join of S into R, trim S) and
// `alternatives` cheap leaf edges below it, each deleting a different key
// window from R. The state of leaf i is shared # leaf_i, so every
// alternative repeats the shared prefix — exactly the cross-alternative
// redundancy the memo cache exists to eliminate.
//
// Rows:
//   Serial/<rows>/<alts>       one Execute per alternative, no cache — the
//                              baseline an unbatched caller pays today.
//   Parallel/<rows>/<alts>     EvalAlternatives: thread-pool fan-out over a
//                              shared MemoCache (fresh per iteration, so
//                              every hit is genuine intra-family sharing).
//   ParallelNoMemo/<rows>/<alts>  fan-out without the cache (isolates the
//                              thread-pool contribution on this machine).
//
// Counters: cache_hit_rate / memo_hits / memo_misses on the Parallel rows.
// Run with --json to write BENCH_e9_parallel_alternatives.json.

#include <benchmark/benchmark.h>

#include <vector>

#include "ast/builders.h"
#include "bench/bench_util.h"
#include "eval/memo.h"
#include "opt/planner.h"
#include "opt/session.h"
#include "workload/version_tree.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using bench::MakeRS;
using bench::Unwrap;

int64_t KeyDomain(size_t rows) { return static_cast<int64_t>(rows) * 2; }

// The shared root edge, deliberately expensive (self-join of S).
HypoExprPtr SharedEdge(size_t rows) {
  int64_t cut = KeyDomain(rows) / 2;
  return Comp(
      Upd(Del("S", Sel(Lt(Col(0), Int(cut)), Rel("S")))),
      Upd(Ins("R", Proj({0, 1}, Join(Eq(Col(0), Col(2)), Rel("S"),
                                     Rel("S"))))));
}

// Leaf edge i: drop one key window from R — cheap, and different per
// alternative so the family members genuinely disagree.
HypoExprPtr LeafEdge(int i, size_t rows) {
  int64_t window = KeyDomain(rows) / 32;
  int64_t lo = (static_cast<int64_t>(i) * 101) % KeyDomain(rows);
  return Upd(Del("R", Sel(And(Ge(Col(0), Int(lo)), Lt(Col(0), Int(lo + window))),
                          Rel("R"))));
}

// The family's states: root paths of a two-level version tree.
std::vector<HypoExprPtr> FamilyStates(int alternatives, size_t rows) {
  VersionTree tree;
  VersionTree::NodeId shared =
      tree.AddChild(VersionTree::kRoot, "shared", SharedEdge(rows));
  std::vector<HypoExprPtr> states;
  states.reserve(static_cast<size_t>(alternatives));
  for (int i = 0; i < alternatives; ++i) {
    VersionTree::NodeId leaf =
        tree.AddChild(shared, "alt" + std::to_string(i), LeafEdge(i, rows));
    states.push_back(tree.PathState(leaf));
  }
  return states;
}

QueryPtr FamilyQuery(size_t rows) {
  int64_t mid = KeyDomain(rows) / 2;
  return Sel(Ge(Col(0), Int(mid)), Rel("R"));
}

void BM_Serial(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int alts = static_cast<int>(state.range(1));
  Database db = MakeRS(7, rows, KeyDomain(rows));
  const Schema& schema = db.schema();
  std::vector<HypoExprPtr> states = FamilyStates(alts, rows);
  QueryPtr query = FamilyQuery(rows);
  PlannerOptions options;
  uint64_t total = 0;
  for (auto _ : state) {
    for (const HypoExprPtr& s : states) {
      Relation out = Unwrap(
          Execute(Query::When(query, s), db, schema, Strategy::kLazy,
                  options));
      total += out.size();
    }
  }
  state.counters["result_tuples"] = static_cast<double>(total);
}

void RunFanOut(benchmark::State& state, bool with_memo) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int alts = static_cast<int>(state.range(1));
  Database db = MakeRS(7, rows, KeyDomain(rows));
  const Schema& schema = db.schema();
  std::vector<HypoExprPtr> states = FamilyStates(alts, rows);
  QueryPtr query = FamilyQuery(rows);
  uint64_t total = 0;
  uint64_t hits = 0, misses = 0;
  for (auto _ : state) {
    // A fresh cache per iteration: every hit below comes from sharing
    // *within* one family evaluation, not from earlier iterations.
    MemoCache cache;
    AlternativesOptions options;
    options.strategy = Strategy::kLazy;
    options.num_threads = 4;
    if (with_memo) options.planner.memo = &cache;
    std::vector<Relation> results =
        Unwrap(EvalAlternatives(query, states, db, schema, options));
    for (const Relation& r : results) total += r.size();
    MemoCache::Stats stats = cache.stats();
    hits += stats.hits;
    misses += stats.misses;
  }
  state.counters["result_tuples"] = static_cast<double>(total);
  state.counters["memo_hits"] = static_cast<double>(hits);
  state.counters["memo_misses"] = static_cast<double>(misses);
  state.counters["cache_hit_rate"] =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
}

void BM_Parallel(benchmark::State& state) { RunFanOut(state, true); }
void BM_ParallelNoMemo(benchmark::State& state) { RunFanOut(state, false); }

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t rows : {1000, 10000}) {
    for (int64_t alts : {4, 8}) {
      b->Args({rows, alts});
    }
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Serial)->Apply(Args);
BENCHMARK(BM_Parallel)->Apply(Args);
BENCHMARK(BM_ParallelNoMemo)->Apply(Args);

}  // namespace
}  // namespace hql

HQL_BENCH_MAIN(e9_parallel_alternatives)
