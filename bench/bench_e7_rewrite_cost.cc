// E7 — cost of the rewriting machinery itself (Sections 4.3 / 5.1 / 5.2).
//
// Paper-level claim: the substitution-based rewrites (reduce, ENF
// conversion, composition, collapse, planning) are cheap, symbolic
// operations — their cost depends only on query size, not on the data —
// except where the lazy rewrite itself blows up (E4 measures that case).
//
// Rows: <phase>/<query_nodes> with time per rewrite.

#include <benchmark/benchmark.h>

#include <vector>

#include "ast/metrics.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "hql/collapse.h"
#include "hql/enf.h"
#include "hql/ra_rewrite.h"
#include "hql/reduce.h"
#include "opt/planner.h"
#include "workload/generators.h"

namespace hql {
namespace {

using bench::Unwrap;

std::vector<QueryPtr> MakeCorpus(int depth, size_t count) {
  Rng rng(29);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = depth;
  std::vector<QueryPtr> corpus;
  corpus.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    corpus.push_back(RandomQuery(&rng, schema, 2, options));
  }
  return corpus;
}

double AvgTreeSize(const std::vector<QueryPtr>& corpus) {
  double total = 0;
  for (const QueryPtr& q : corpus) total += TreeSize(q);
  return total / static_cast<double>(corpus.size());
}

void BM_Reduce(benchmark::State& state) {
  Schema schema = PropertySchema();
  std::vector<QueryPtr> corpus =
      MakeCorpus(static_cast<int>(state.range(0)), 64);
  size_t i = 0;
  for (auto _ : state) {
    QueryPtr red = Unwrap(Reduce(corpus[i++ % corpus.size()], schema));
    benchmark::DoNotOptimize(red);
  }
  state.counters["avg_query_nodes"] = AvgTreeSize(corpus);
}

void BM_ToEnf(benchmark::State& state) {
  Schema schema = PropertySchema();
  std::vector<QueryPtr> corpus =
      MakeCorpus(static_cast<int>(state.range(0)), 64);
  size_t i = 0;
  for (auto _ : state) {
    QueryPtr enf = Unwrap(ToEnf(corpus[i++ % corpus.size()], schema));
    benchmark::DoNotOptimize(enf);
  }
  state.counters["avg_query_nodes"] = AvgTreeSize(corpus);
}

void BM_Collapse(benchmark::State& state) {
  Schema schema = PropertySchema();
  std::vector<QueryPtr> corpus =
      MakeCorpus(static_cast<int>(state.range(0)), 64);
  std::vector<QueryPtr> enfs;
  enfs.reserve(corpus.size());
  for (const QueryPtr& q : corpus) enfs.push_back(Unwrap(ToEnf(q, schema)));
  size_t i = 0;
  for (auto _ : state) {
    CollapsedPtr tree = Unwrap(Collapse(enfs[i++ % enfs.size()], schema));
    benchmark::DoNotOptimize(tree);
  }
}

void BM_SimplifyRa(benchmark::State& state) {
  Schema schema = PropertySchema();
  std::vector<QueryPtr> corpus =
      MakeCorpus(static_cast<int>(state.range(0)), 64);
  std::vector<QueryPtr> reduced;
  reduced.reserve(corpus.size());
  for (const QueryPtr& q : corpus) {
    reduced.push_back(Unwrap(Reduce(q, schema)));
  }
  size_t i = 0;
  for (auto _ : state) {
    QueryPtr s = Unwrap(SimplifyRa(reduced[i++ % reduced.size()], schema));
    benchmark::DoNotOptimize(s);
  }
}

void BM_PlanHybrid(benchmark::State& state) {
  Schema schema = PropertySchema();
  std::vector<QueryPtr> corpus =
      MakeCorpus(static_cast<int>(state.range(0)), 64);
  StatsCatalog stats;
  for (const auto& [name, arity] : schema.arities()) {
    stats.SetCardinality(name, 10000, arity);
  }
  size_t i = 0;
  for (auto _ : state) {
    Plan plan =
        Unwrap(PlanHybrid(corpus[i++ % corpus.size()], schema, stats));
    benchmark::DoNotOptimize(plan.query);
  }
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t depth : {2, 3, 4, 5}) b->Args({depth});
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Reduce)->Apply(Args);
BENCHMARK(BM_ToEnf)->Apply(Args);
BENCHMARK(BM_Collapse)->Apply(Args);
BENCHMARK(BM_SimplifyRa)->Apply(Args);
BENCHMARK(BM_PlanHybrid)->Apply(Args);

}  // namespace
}  // namespace hql

HQL_BENCH_MAIN(e7_rewrite_cost)
